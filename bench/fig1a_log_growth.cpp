// Fig. 1a: cumulative growth of logged precertificates per CA.
//
// Expected shape (paper): slow growth dominated by DigiCert from 2015,
// irregular additions by Comodo/GlobalSign/StartCom, pronounced jumps from
// March 2018 as the Chrome deadline approached, and Let's Encrypt rising
// from zero to dominance within weeks; the top five CAs carry ~99 %.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

void BM_LogEvolutionAnalysis(benchmark::State& state) {
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  core::LogEvolutionStudy study(ecosystem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(study.run());
  }
}
BENCHMARK(BM_LogEvolutionAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 1a — cumulative logged precertificates per CA",
                "columns: unique precertificates (deduplicated across logs), monthly");
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  core::LogEvolutionStudy study(ecosystem);
  const core::LogEvolutionReport report = study.run();
  std::printf("%s\n", core::LogEvolutionStudy::render_cumulative(report).c_str());
  std::printf("top-5 CA share of all precertificates: %.1f%% (paper: 99%%)\n\n",
              report.top5_share * 100.0);
  return bench::run_benchmarks(argc, argv);
}
