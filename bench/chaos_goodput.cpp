// Chaos goodput harness for the K-of-N multi-log submission client.
//
// Runs the MultiLogSubmitter over a matrix of chaos plans — a healthy
// baseline, the acceptance scenario (10% error rate on every log plus one
// full log outage), and a heavy-failure plan — and reports goodput
// (quorum submissions / total), SCT-quorum latency percentiles, and the
// counted degradation outcomes as JSON. Everything runs on virtual time
// from fixed seeds, so two invocations print identical counters — the
// reproducibility contract the chaos module exists for.
//
//   ./chaos_goodput --submissions=2000 --seed=0xc7a05
//
// Exit code is non-zero if any submission fails to resolve (a lost
// completion) or the acceptance scenario's goodput drops below 95%.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ctwatch/chaos/chaos.hpp"
#include "ctwatch/logsvc/logsvc.hpp"

namespace {

using namespace ctwatch;

struct Options {
  std::uint64_t submissions = 2000;
  std::uint64_t seed = 0xc7a05ULL;
  std::size_t logs = 3;
  std::size_t quorum = 2;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--submissions="))
      options.submissions = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--seed="))
      options.seed = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--logs="))
      options.logs = static_cast<std::size_t>(std::strtoull(v, nullptr, 0));
    else if (const char* v = value("--quorum="))
      options.quorum = static_cast<std::size_t>(std::strtoull(v, nullptr, 0));
    else
      std::fprintf(stderr, "chaos_goodput: ignoring unknown argument %s\n", arg);
  }
  return options;
}

/// One row of the plan matrix: how every log in the fleet misbehaves.
struct Scenario {
  const char* name;
  double error_probability = 0.0;
  double timeout_fraction = 0.5;
  /// Index of a log taken down for the first half of the run, or -1.
  int outage_log = -1;
  bool enforce_goodput_floor = false;  ///< the ISSUE acceptance gate
};

struct ScenarioResult {
  logsvc::MultiLogTotals totals;
  std::uint64_t breaker_trips = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

ScenarioResult run_scenario(const Scenario& scenario, const Options& options) {
  // A fresh injector per scenario keeps every row independent and exactly
  // reproducible from (seed, plan) alone.
  chaos::FaultInjector injector(options.seed);
  std::vector<std::unique_ptr<logsvc::SimulatedLogTarget>> logs;
  std::vector<logsvc::LogTarget*> targets;
  const std::uint64_t pace_us = 3'000'000;  // virtual gap between submissions
  for (std::size_t i = 0; i < options.logs; ++i) {
    chaos::FaultPlan plan;
    plan.error_probability = scenario.error_probability;
    plan.timeout_fraction = scenario.timeout_fraction;
    plan.latency_base_us = 10'000;
    plan.latency_jitter_us = 10'000;
    plan.latency_exp_mean_us = 5'000.0;
    if (scenario.outage_log == static_cast<int>(i)) {
      plan.outages.push_back(
          chaos::OutageWindow{0, options.submissions * pace_us / 2});
      plan.outage_kind = chaos::FaultKind::timeout;
    }
    const std::string point = "goodput.log" + std::to_string(i);
    injector.plan(point, plan);
    logs.push_back(std::make_unique<logsvc::SimulatedLogTarget>("log" + std::to_string(i),
                                                                injector, point));
    targets.push_back(logs.back().get());
  }

  logsvc::MultiLogOptions multilog;
  multilog.quorum = options.quorum;
  multilog.degraded_floor = options.quorum > 0 ? options.quorum - 1 : 0;
  multilog.jitter_seed = options.seed ^ 0x5eedULL;
  logsvc::MultiLogSubmitter submitter(targets, multilog);

  // Latency percentiles over quorum submissions, on virtual time. One
  // registry histogram per scenario so rows do not bleed into each other.
  obs::Histogram& latencies = obs::Registry::global().histogram(
      std::string("chaos_goodput.") + scenario.name + ".quorum_latency_us",
      obs::exponential_bounds(1000.0, 1.5, 24));
  latencies.reset();
  for (std::uint64_t s = 0; s < options.submissions; ++s) {
    const logsvc::SubmitReport report = submitter.submit(s, s * pace_us);
    if (report.outcome == logsvc::QuorumOutcome::quorum) {
      latencies.observe(static_cast<double>(report.latency_us));
    }
  }

  ScenarioResult result;
  result.totals = submitter.totals();
  result.breaker_trips = submitter.breaker_trips();
  result.p50_us = latencies.quantile(0.50);
  result.p99_us = latencies.quantile(0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::banner("chaos goodput: K-of-N multi-log submission under injected faults",
                "deterministic virtual-time fleet; identical seeds print identical counters");

  const Scenario scenarios[] = {
      {"baseline", 0.0, 0.5, -1, false},
      // The ISSUE acceptance gate: 10% error rate on every log plus one
      // log fully down for half the run; goodput must hold >= 95%.
      {"errors10_outage1", 0.10, 0.5, 2, true},
      {"heavy", 0.35, 0.5, 1, false},
  };

  std::printf("fleet: %zu logs, quorum %zu, %" PRIu64 " submissions, seed 0x%" PRIx64 "\n\n",
              options.logs, options.quorum, options.submissions, options.seed);
  std::printf("%-18s %9s %9s %9s %9s %8s %8s %10s %10s\n", "scenario", "quorum", "degraded",
              "failed", "retries", "hedges", "trips", "p50_ms", "p99_ms");

  bool lost_completions = false;
  bool floor_violated = false;
  bench::Json scenarios_json;
  for (const Scenario& scenario : scenarios) {
    const ScenarioResult result = run_scenario(scenario, options);
    const logsvc::MultiLogTotals& totals = result.totals;
    if (totals.resolved() != totals.submissions) lost_completions = true;
    if (scenario.enforce_goodput_floor && totals.goodput() < 0.95) floor_violated = true;

    std::printf("%-18s %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %10.2f %10.2f\n",
                scenario.name, totals.quorum, totals.degraded, totals.failed, totals.retries,
                totals.hedges, result.breaker_trips, result.p50_us / 1000.0,
                result.p99_us / 1000.0);

    scenarios_json.field(
        scenario.name,
        bench::Json()
            .field("goodput", totals.goodput())
            .field("quorum", totals.quorum)
            .field("degraded", totals.degraded)
            .field("failed", totals.failed)
            .field("resolved", totals.resolved())
            .field("attempts", totals.attempts)
            .field("retries", totals.retries)
            .field("hedges", totals.hedges)
            .field("timeouts", totals.timeouts)
            .field("errors", totals.errors)
            .field("breaker_skips", totals.breaker_skips)
            .field("breaker_trips", result.breaker_trips)
            .field("quorum_latency_us", bench::Json()
                                            .field("p50", result.p50_us, 1)
                                            .field("p99", result.p99_us, 1)));
  }
  std::printf("\n");
  bench::emit_result("chaos_goodput",
                     bench::Json()
                         .field("submissions", options.submissions)
                         .field("logs", options.logs)
                         .field("quorum", options.quorum),
                     bench::Json()
                         .field("scenarios", scenarios_json)
                         .field("lost_completions", lost_completions)
                         .field("goodput_floor_met", !floor_violated));
  if (lost_completions) std::fprintf(stderr, "FAIL: some submissions never resolved\n");
  if (floor_violated) {
    std::fprintf(stderr, "FAIL: acceptance scenario goodput below the 95%% floor\n");
  }

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argv[0]));
  return (lost_completions || floor_violated) ? 1 : 0;
}
