// Fig. 2 + §3.2: percent of daily connections containing an SCT, by
// delivery channel, over the 2017-04-26 .. 2018-05-23 passive window.
//
// Expected shape (paper): roughly constant ~33 % total (≈21 % in the
// certificate, ≈11 % via TLS extension, OCSP negligible), occasional peaks
// caused by graph.facebook.com request storms, and ~67 % of clients
// signaling SCT support.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

sim::Ecosystem& passive_ecosystem() {
  static sim::Ecosystem ecosystem = [] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = false;
    options.seed = 1702;
    return sim::Ecosystem(options);
  }();
  return ecosystem;
}

const sim::ServerPopulation& population() {
  static sim::ServerPopulation population(passive_ecosystem(), sim::PopulationOptions{});
  return population;
}

void BM_MonitorThroughput(benchmark::State& state) {
  const sim::ServerPopulation& pop = population();
  monitor::PassiveMonitor monitor(passive_ecosystem().log_list());
  Rng rng(99);
  const SimTime when = SimTime::parse("2018-01-15 12:00:00");
  for (auto _ : state) {
    const std::size_t rank = pop.popularity().sample(rng);
    monitor.process(pop.connect(rank, when, true));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonitorThroughput);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 2 — % of daily connections containing an SCT",
                "passive window 2017-04-26 .. 2018-05-23; weekly samples");
  monitor::PassiveMonitor monitor(passive_ecosystem().log_list());
  sim::TrafficGenerator generator(population(), sim::TrafficOptions{},
                                  passive_ecosystem().rng().fork());
  const sim::TrafficStats stats = generator.run(monitor);
  std::printf("[traffic] %llu connections over %llu days\n\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.days));
  std::printf("%s\n", core::render_daily_series(monitor.daily(), 7).c_str());
  std::printf("%s\n", core::render_adoption_totals(monitor.totals()).c_str());
  // The paper manually traced its peaks to graph.facebook.com; here the
  // attribution is automatic.
  std::printf("%s\n", core::render_peaks(core::detect_peaks(monitor)).c_str());
  return bench::run_benchmarks(argc, argv);
}
