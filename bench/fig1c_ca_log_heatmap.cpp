// Fig. 1c: distribution of precertificate logging by CA over CT logs for
// April 2018.
//
// Expected shape (paper): a very sparsely populated matrix — each CA
// publishes to a small fixed set of logs; Let's Encrypt's load lands on
// Google logs plus Cloudflare Nimbus, which strains Nimbus (the
// disqualification discussion / overload incident).
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

void BM_MatrixConstruction(benchmark::State& state) {
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  core::LogEvolutionStudy study(ecosystem);
  for (auto _ : state) {
    const auto report = study.run("2018-04");
    benchmark::DoNotOptimize(report.ca_log_matrix);
  }
}
BENCHMARK(BM_MatrixConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 1c — CA x log precertificate submissions, April 2018",
                "'.' marks an empty cell; the matrix should be sparse");
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  const core::LogEvolutionReport report = core::LogEvolutionStudy(ecosystem).run("2018-04");
  std::printf("%s\n", core::LogEvolutionStudy::render_matrix(report).c_str());
  std::printf("matrix sparsity: %.1f%% of (CA, log) cells empty\n",
              report.matrix_sparsity * 100.0);
  std::printf("Let's Encrypt submissions by log:\n");
  for (const auto& [log, share] : report.le_log_share) {
    std::printf("  %-26s %5.1f%%\n", log.c_str(), share * 100.0);
  }
  std::printf("overload rejections (the Nimbus strain indicator):\n");
  for (const auto& [log, count] : report.overload_rejections) {
    if (count > 0) {
      std::printf("  %-26s %llu\n", log.c_str(), static_cast<unsigned long long>(count));
    }
  }
  std::printf("\n");
  return bench::run_benchmarks(argc, argv);
}
