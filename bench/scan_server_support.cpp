// §3.3: server support seen by an active Internet-wide scan — and the
// ablation showing why the scan view diverges from the passive view.
//
// Expected shape (paper): ~69 % of unique certificates carry embedded
// SCTs, dominated by Cloudflare Nimbus2018 (~74 %) and Google Icarus
// (~71 %) — the exact opposite of the traffic-weighted Table 1. The
// divergence is driven by popularity skew: an ablation sweep over the Zipf
// exponent shows the two views converging as skew disappears.
#include "bench_common.hpp"

#include "ctwatch/util/strings.hpp"

using namespace ctwatch;

namespace {

void BM_ScanPipeline(benchmark::State& state) {
  static sim::Ecosystem ecosystem = [] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = false;
    options.seed = 31;
    return sim::Ecosystem(options);
  }();
  sim::PopulationOptions pop_options;
  pop_options.site_count = 2000;
  pop_options.popular_tier = 200;
  static sim::ServerPopulation population(ecosystem, pop_options);
  for (auto _ : state) {
    monitor::PassiveMonitor monitor(ecosystem.log_list());
    sim::ScanDriver scan(population, sim::ScanOptions{});
    benchmark::DoNotOptimize(scan.run(monitor));
  }
}
BENCHMARK(BM_ScanPipeline)->Unit(benchmark::kMillisecond);

void run_ablation() {
  std::printf("--- ablation: popularity skew drives the passive/scan divergence ---\n");
  std::printf("%-18s %-22s %-20s\n", "zipf exponent", "passive cert-SCT conns",
              "scan certs w/ SCT");
  for (const double s : {0.6, 1.0, 1.3}) {
    sim::EcosystemOptions eco_options;
    eco_options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    eco_options.verify_submissions = false;
    eco_options.store_bodies = false;
    eco_options.seed = 77;
    sim::Ecosystem ecosystem(eco_options);
    sim::PopulationOptions pop_options;
    pop_options.site_count = 6000;
    pop_options.popular_tier = 600;
    pop_options.zipf_exponent = s;
    sim::ServerPopulation population(ecosystem, pop_options);

    monitor::PassiveMonitor passive(ecosystem.log_list());
    sim::TrafficOptions traffic_options;
    traffic_options.start = "2018-01-01";
    traffic_options.end = "2018-03-01";
    traffic_options.connections_per_day = 2000;
    traffic_options.burst_days = 0;
    sim::TrafficGenerator traffic(population, traffic_options, Rng(5));
    traffic.run(passive);

    monitor::PassiveMonitor scan_monitor(ecosystem.log_list());
    sim::ScanDriver scan(population, sim::ScanOptions{});
    scan.run(scan_monitor);

    const auto& pt = passive.totals();
    const auto& st = scan_monitor.totals();
    std::printf("%-18.1f %-22s %-20s\n", s,
                percent(static_cast<double>(pt.sct_in_cert),
                        static_cast<double>(pt.connections))
                    .c_str(),
                percent(static_cast<double>(st.unique_certs_with_embedded_sct),
                        static_cast<double>(st.unique_certificates))
                    .c_str());
  }
  std::printf("(the passive share is popularity-weighted; the scan share is uniform.\n"
              " with low skew the passive view approaches the scan view.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("§3.3 — active-scan view of server CT support",
                "one connection per server, same pipeline as the passive monitor");
  sim::EcosystemOptions eco_options;
  eco_options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  eco_options.verify_submissions = false;
  eco_options.store_bodies = false;
  eco_options.seed = 1702;
  sim::Ecosystem ecosystem(eco_options);
  sim::ServerPopulation population(ecosystem, sim::PopulationOptions{});
  monitor::PassiveMonitor monitor(ecosystem.log_list());
  sim::ScanDriver scan(population, sim::ScanOptions{});
  const sim::ScanStats stats = scan.run(monitor);
  std::printf("[scan] %llu servers scanned on 2018-05-18\n\n",
              static_cast<unsigned long long>(stats.servers_scanned));
  std::printf("%s\n", core::render_scan_view(monitor).c_str());

  run_ablation();
  return bench::run_benchmarks(argc, argv);
}
