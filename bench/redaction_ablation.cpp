// Countermeasure study: CT label redaction vs. the §4 leakage pipeline.
//
// The paper flags subdomain leakage as a core CT downside and points to
// the (then-draft) label-redaction mechanism and Symantec's subdomain-
// hiding Deneb log; its conclusion calls for work on countermeasures.
// This bench implements that future work: it sweeps the fraction of
// domain operators who redact and measures what is left of Table 2 and of
// the §4.3 enumeration funnel.
//
// Expected shape: leaked labels and novel discoveries fall roughly in
// proportion to redaction deployment; the redacted-name count rises to
// match. Redaction protects exactly the information the honeypot study
// shows attackers are harvesting.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

struct SweepPoint {
  double fraction;
  std::uint64_t valid_names;
  std::uint64_t redacted_names;
  std::uint64_t labels_learned;
  std::uint64_t www_count;
  std::uint64_t novel;
};

SweepPoint run_point(double fraction) {
  sim::DomainCorpusOptions options;
  options.registrable_count = 20000;
  options.redaction_fraction = fraction;
  options.seed = 7;  // same world, different deployment level
  sim::DomainCorpus corpus(options);
  core::LeakageStudy study(corpus);
  enumeration::EnumerationOptions enum_options;
  enum_options.min_label_count = 40;
  const core::LeakageReport report = study.run(enum_options);

  SweepPoint point;
  point.fraction = fraction;
  point.valid_names = report.extraction.valid_fqdns;
  point.redacted_names = report.extraction.redacted;
  point.labels_learned = report.funnel.labels_selected;
  point.www_count = 0;
  for (const auto& [label, count] : report.top_labels) {
    if (label == "www") point.www_count = count;
  }
  point.novel = report.funnel.novel;
  return point;
}

void BM_RedactionPipeline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(0.5));
  }
}
BENCHMARK(BM_RedactionPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Countermeasure ablation — CT label redaction vs. §4 leakage",
                "sweeping the fraction of operators who redact their subdomains");
  std::printf("%-10s %12s %12s %10s %10s %12s\n", "redaction", "valid names", "redacted",
              "labels", "www count", "novel FQDNs");
  SweepPoint baseline{};
  for (const double fraction : {0.0, 0.25, 0.5, 0.9}) {
    const SweepPoint point = run_point(fraction);
    if (fraction == 0.0) baseline = point;
    std::printf("%-10.2f %12llu %12llu %10llu %10llu %12llu\n", point.fraction,
                static_cast<unsigned long long>(point.valid_names),
                static_cast<unsigned long long>(point.redacted_names),
                static_cast<unsigned long long>(point.labels_learned),
                static_cast<unsigned long long>(point.www_count),
                static_cast<unsigned long long>(point.novel));
  }
  const SweepPoint heavy = run_point(0.9);
  std::printf("\nat 90%% deployment, novel discoveries drop to %.0f%% of the undefended"
              " baseline.\n",
              baseline.novel > 0
                  ? 100.0 * static_cast<double>(heavy.novel) / static_cast<double>(baseline.novel)
                  : 0.0);
  std::printf("\nthe countermeasure's limit, quantified: common labels (www, mail, ...)\n"
              "remain learnable from the minority who do not redact, and once a label is\n"
              "known it can be prepended to *every* registrable domain — so enumeration\n"
              "degrades only in proportion to the rare labels that vanish below the\n"
              "frequency threshold (here: labels usable fell %llu -> %llu). Redaction\n"
              "protects unusual subdomains; it cannot unpublish the common ones.\n\n",
              static_cast<unsigned long long>(baseline.labels_learned),
              static_cast<unsigned long long>(heavy.labels_learned));
  return bench::run_benchmarks(argc, argv);
}
