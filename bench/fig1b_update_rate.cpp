// Fig. 1b: relative per-CA logging rate over time.
//
// Expected shape (paper): DigiCert dominates the monthly volume for a long
// period, with irregular bursts from Comodo, GlobalSign and StartCom; from
// March 2018 Let's Encrypt (>2M precertificates/day) dwarfs everyone.
#include "bench_common.hpp"

#include "ctwatch/util/strings.hpp"

using namespace ctwatch;

namespace {

void BM_MonthlyShareComputation(benchmark::State& state) {
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  core::LogEvolutionStudy study(ecosystem);
  for (auto _ : state) {
    const auto report = study.run();
    benchmark::DoNotOptimize(report.monthly_share_by_ca);
  }
}
BENCHMARK(BM_MonthlyShareComputation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 1b — relative logging rate per CA and month",
                "cells: CA share of that month's newly logged precertificates");
  sim::Ecosystem& ecosystem = bench::timeline_ecosystem();
  const core::LogEvolutionReport report = core::LogEvolutionStudy(ecosystem).run();

  std::printf("%s", pad_right("month", 10).c_str());
  std::vector<std::string> cas;
  for (const auto& [ca, series] : report.monthly_share_by_ca) {
    cas.push_back(ca);
    std::printf("%s", pad_left(ca.substr(0, 13), 15).c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < report.months.size(); ++i) {
    std::printf("%s", pad_right(report.months[i], 10).c_str());
    for (const auto& ca : cas) {
      const double share = report.monthly_share_by_ca.at(ca)[i];
      char cell[16];
      std::snprintf(cell, sizeof cell, "%.1f%%", share * 100.0);
      std::printf("%s", pad_left(share > 0 ? cell : ".", 15).c_str());
    }
    std::printf("\n");
  }
  // The headline check: who dominates before and after Let's Encrypt starts.
  auto share_at = [&](const std::string& ca, const std::string& month) -> double {
    for (std::size_t i = 0; i < report.months.size(); ++i) {
      if (report.months[i] == month) {
        const auto it = report.monthly_share_by_ca.find(ca);
        return it != report.monthly_share_by_ca.end() ? it->second[i] : 0.0;
      }
    }
    return 0.0;
  };
  std::printf("\nDigiCert share 2017-06: %.1f%% (dominates pre-2018)\n",
              share_at("DigiCert", "2017-06") * 100.0);
  std::printf("Let's Encrypt share 2018-04: %.1f%% (paper: dominates after it starts logging)\n\n",
              share_at("Let's Encrypt", "2018-04") * 100.0);
  return bench::run_benchmarks(argc, argv);
}
