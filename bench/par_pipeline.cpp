// ctwatch::par — the sharded parallel pipeline head-to-head with its own
// serial path, parity enforced.
//
// Runs the three parallelized analysis stages (census build + Table 2
// ranking, the §4.3 DNS-verification funnel, the phishing scan) once per
// thread count: 1 (the compiled-down serial path), 2, and the machine
// width. Every run must be byte-identical to the single-thread baseline —
// rendered Table 2 rows, every funnel counter, every phishing finding —
// or the binary exits nonzero. With --strict the census+funnel pair must
// additionally reach a 3x combined speedup, gated only on machines with
// >= 8 hardware threads and never under sanitizers (parity is always
// gated).
#include "bench_common.hpp"

#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/par/par.hpp"
#include "ctwatch/phishing/detector.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CTWATCH_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CTWATCH_BENCH_SANITIZED 1
#endif
#endif
#ifndef CTWATCH_BENCH_SANITIZED
#define CTWATCH_BENCH_SANITIZED 0
#endif

using namespace ctwatch;

namespace {

sim::DomainCorpus& corpus() {
  static sim::DomainCorpus corpus;
  return corpus;
}

struct PipelineRun {
  unsigned threads = 0;
  std::string table2;
  enumeration::FunnelResult funnel;
  std::vector<phishing::Finding> findings;
  double census_seconds = 0;
  double funnel_seconds = 0;
  double phishing_seconds = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// One full pass over the corpus at `threads`. Fresh census, enumerator
/// and detector per run so interning freshness and counters are
/// comparable across thread counts.
PipelineRun run_pipeline(unsigned threads) {
  par::TaskPool::set_global_threads(threads);
  PipelineRun run;
  run.threads = threads;

  auto start = std::chrono::steady_clock::now();
  enumeration::SubdomainCensus census(corpus().psl());
  census.add_names(corpus().ct_names());
  const auto top = census.top_labels(20);
  run.census_seconds = seconds_since(start);
  for (const auto& [label, count] : top) {
    run.table2 += label + " " + std::to_string(count) + "\n";
  }

  const dns::RecursiveResolver resolver(
      corpus().universe(),
      dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "bench", false});
  const std::set<std::string> sonar(corpus().sonar_names().begin(),
                                    corpus().sonar_names().end());
  enumeration::SubdomainEnumerator enumerator(census, corpus().psl());
  Rng rng(corpus().options().seed ^ 0xabcdef);
  start = std::chrono::steady_clock::now();
  run.funnel = enumerator.run(corpus().registrable_domains(), sonar, resolver,
                              corpus().routing_table(), rng, SimTime::parse("2018-04-27"));
  run.funnel_seconds = seconds_since(start);

  phishing::PhishingDetector detector(corpus().psl(), phishing::standard_rules());
  start = std::chrono::steady_clock::now();
  run.findings = detector.scan(corpus().ct_names());
  run.phishing_seconds = seconds_since(start);

  par::TaskPool::set_global_threads(0);
  return run;
}

bool funnel_equal(const enumeration::FunnelResult& a, const enumeration::FunnelResult& b) {
  return a.labels_selected == b.labels_selected &&
         a.label_suffix_pairs == b.label_suffix_pairs && a.candidates == b.candidates &&
         a.unique_candidates == b.unique_candidates && a.test_replies == b.test_replies &&
         a.test_unanswered == b.test_unanswered && a.control_replies == b.control_replies &&
         a.unroutable_dropped == b.unroutable_dropped && a.chain_too_long == b.chain_too_long &&
         a.control_rejected == b.control_rejected && a.confirmed == b.confirmed &&
         a.known_in_sonar == b.known_in_sonar && a.novel == b.novel &&
         a.lost_test_queries == b.lost_test_queries &&
         a.lost_control_queries == b.lost_control_queries && a.dns_timeouts == b.dns_timeouts &&
         a.dns_servfails == b.dns_servfails && a.dns_retries == b.dns_retries &&
         a.discoveries == b.discoveries;
}

bool findings_equal(const std::vector<phishing::Finding>& a,
                    const std::vector<phishing::Finding>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].brand != b[i].brand || a[i].fqdn != b[i].fqdn ||
        a[i].public_suffix != b[i].public_suffix ||
        a[i].registrable_domain != b[i].registrable_domain) {
      return false;
    }
  }
  return true;
}

/// Byte-identity of `run` against the serial baseline; mismatches go to
/// stderr with the thread count that produced them.
bool check_parity(const PipelineRun& run, const PipelineRun& baseline) {
  bool ok = true;
  if (run.table2 != baseline.table2) {
    std::fprintf(stderr, "PARITY MISMATCH at %u threads: Table 2 rows differ\n", run.threads);
    ok = false;
  }
  if (!funnel_equal(run.funnel, baseline.funnel)) {
    std::fprintf(stderr, "PARITY MISMATCH at %u threads: funnel counters differ\n",
                 run.threads);
    ok = false;
  }
  if (!findings_equal(run.findings, baseline.findings)) {
    std::fprintf(stderr, "PARITY MISMATCH at %u threads: phishing findings differ\n",
                 run.threads);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  bench::banner("ctwatch::par — sharded parallel pipeline vs its serial path",
                "census + funnel + phishing at 1/2/N threads; byte-identical or exit 1");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Always run the 2-thread config, even on one core: oversubscription is
  // harmless and keeps the parity check meaningful on any machine.
  std::vector<unsigned> thread_counts = {1, 2};
  if (hw > 2) thread_counts.push_back(hw);

  std::vector<PipelineRun> runs;
  for (const unsigned threads : thread_counts) runs.push_back(run_pipeline(threads));
  const PipelineRun& baseline = runs.front();
  const PipelineRun& widest = runs.back();

  bool parity = true;
  for (std::size_t i = 1; i < runs.size(); ++i) parity &= check_parity(runs[i], baseline);

  for (const PipelineRun& run : runs) {
    std::printf("%2u threads: census %7.1f ms   funnel %7.1f ms   phishing %7.1f ms\n",
                run.threads, run.census_seconds * 1e3, run.funnel_seconds * 1e3,
                run.phishing_seconds * 1e3);
  }
  const double serial_core = baseline.census_seconds + baseline.funnel_seconds;
  const double widest_core = widest.census_seconds + widest.funnel_seconds;
  const double speedup = widest_core > 0 ? serial_core / widest_core : 0;
  std::printf("census+funnel speedup at %u threads: %.2fx   parity: %s\n\n", widest.threads,
              speedup, parity ? "ok" : "FAILED");

  bench::emit_result(
      "par_pipeline",
      bench::Json()
          .field("hardware_threads", hw)
          .field("widest_threads", widest.threads)
          .field("sanitized", static_cast<bool>(CTWATCH_BENCH_SANITIZED)),
      bench::Json()
          .field("census_serial_s", baseline.census_seconds, 4)
          .field("funnel_serial_s", baseline.funnel_seconds, 4)
          .field("phishing_serial_s", baseline.phishing_seconds, 4)
          .field("census_parallel_s", widest.census_seconds, 4)
          .field("funnel_parallel_s", widest.funnel_seconds, 4)
          .field("phishing_parallel_s", widest.phishing_seconds, 4)
          .field("speedup", speedup, 3)
          .field("candidates", baseline.funnel.candidates)
          .field("confirmed", baseline.funnel.confirmed)
          .field("phishing_findings", static_cast<std::uint64_t>(baseline.findings.size()))
          .field("parity", parity));

  int violations = 0;
  if (!parity) {
    std::fprintf(stderr, "FAIL: parallel/serial parity\n");
    ++violations;
  }
  // The throughput floor only means something on real parallel hardware
  // running real code: waived below 8 threads and under sanitizers.
  if (strict && hw >= 8 && !CTWATCH_BENCH_SANITIZED && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: census+funnel speedup %.2fx below the 3x floor\n", speedup);
    ++violations;
  }

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argc > 0 ? argv[0] : nullptr));
  return violations;
}
