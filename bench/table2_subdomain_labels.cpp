// Table 2 + §4.2: the subdomain labels leaked through CT-logged
// certificates.
//
// Expected shape (paper): an extreme head — www by far first, then mail,
// webdisk, webmail, cpanel, autodiscover, and an operational tail (m,
// shop, whm, dev, remote, test, api, blog, secure, admin, mobile, server,
// cloud, smtp); per-suffix signatures such as git for .tech, autoconfig
// for .email, api for .cloud, ftp for .design, sip for .gov, dialin for
// .gov.uk.
#include "bench_common.hpp"

#include "ctwatch/util/strings.hpp"

using namespace ctwatch;

namespace {

sim::DomainCorpus& corpus() {
  static sim::DomainCorpus corpus;
  return corpus;
}

void BM_CensusIngest(benchmark::State& state) {
  const auto& names = corpus().ct_names();
  for (auto _ : state) {
    enumeration::SubdomainCensus census(corpus().psl());
    census.add_names(names);
    benchmark::DoNotOptimize(census.label_counts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(names.size()));
}
BENCHMARK(BM_CensusIngest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table 2 — top subdomain labels in CT-logged certificates",
                "counts are scaled (~1/1000 of the paper's corpus)");
  enumeration::SubdomainCensus census(corpus().psl());
  census.add_names(corpus().ct_names());
  const auto& stats = census.stats();
  std::printf("names in corpus: %llu, valid FQDNs: %llu, rejected invalid: %llu\n\n",
              static_cast<unsigned long long>(stats.names_in),
              static_cast<unsigned long long>(stats.valid_fqdns),
              static_cast<unsigned long long>(stats.invalid_rejected));

  std::printf("%-6s %-16s %10s    (paper count, x1000)\n", "rank", "label", "count");
  const auto& paper = sim::table2_labels();
  std::size_t rank = 1;
  for (const auto& [label, count] : census.top_labels(20)) {
    double paper_count = 0;
    for (const auto& spec : paper) {
      if (label == spec.label) paper_count = spec.paper_count;
    }
    std::printf("%-6zu %-16s %10llu    %s\n", rank++, label.c_str(),
                static_cast<unsigned long long>(count),
                paper_count > 0 ? human_count(paper_count).c_str() : "-");
  }

  std::printf("\nper-suffix signature labels (§4.2):\n");
  const auto signatures = census.top_label_per_suffix();
  for (const char* suffix : {"tech", "email", "cloud", "design", "gov", "gov.uk"}) {
    const auto it = signatures.find(suffix);
    std::printf("  %-8s -> %s\n", suffix, it != signatures.end() ? it->second.c_str() : "-");
  }
  std::printf("\n");
  return bench::run_benchmarks(argc, argv);
}
