// Detection-latency study for aggregation-based STH gossip against a
// split-view (equivocating) log.
//
// One log identity serves two divergent Merkle histories; monitors are
// partitioned across the faces and pollinate signed tree heads along a
// gossip topology, with optional aggregation points passively observing
// the STHs fetched by the peers they cover (Dahlberg et al.). The sweep
// crosses fanout x aggregation coverage x partition shape and reports,
// per leg, whether the equivocation was caught and in how many rounds
// (rounds are 60 virtual seconds apart on the simulated clock).
//
// Every verdict is re-verified cryptographically HERE, from the log's
// public key and the carried evidence — a detection the harness cannot
// independently confirm counts as a failure, not a success. Honest-log
// legs run the same topologies under heavy chaos (fetch losses, link
// outages, dropped challenges) and must never produce a verdict.
//
//   ./gossip_detect --monitors=12 --fork=8 --rounds=40 --strict
//
// --strict gates the adversarial floor: every full-coverage leg must
// detect with verifiable evidence, the no-coverage split control must
// NOT detect (partitions stay mutually invisible), and the honest legs
// must stay verdict-free. Exit codes: 2 = missed detection, 3 = bad or
// unverifiable evidence, 4 = false positive on an honest log.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/gossip/gossip.hpp"
#include "ctwatch/logsvc/logsvc.hpp"

namespace {

using namespace ctwatch;
using namespace std::chrono_literals;

struct Options {
  std::uint64_t monitors = 12;
  std::uint64_t fork = 8;
  std::uint64_t rounds = 40;  ///< per-leg round budget
  std::uint64_t seed = 0x905519ULL;
  bool strict = false;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--monitors="))
      options.monitors = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--fork="))
      options.fork = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--rounds="))
      options.rounds = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--seed="))
      options.seed = std::strtoull(v, nullptr, 0);
    else if (std::strcmp(arg, "--strict") == 0)
      options.strict = true;
    else
      std::fprintf(stderr, "gossip_detect: ignoring unknown argument %s\n", arg);
  }
  if (options.monitors < 4) options.monitors = 4;
  return options;
}

const SimTime kNow = SimTime::parse("2018-04-01");

SimTime at_round(std::uint64_t round) {
  return SimTime{kNow.unix_seconds() + static_cast<std::int64_t>(round) * 60};
}

enum class Shape { split, bridge, isolated };

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::split: return "split";
    case Shape::bridge: return "bridge";
    case Shape::isolated: return "isolated";
  }
  return "?";
}

/// Independent re-verification of a verdict: both signatures under the
/// log's key, plus either a same-size root conflict or the log's own
/// proof failing verify_consistency. The detector is not trusted.
bool evidence_verifies(const gossip::SplitViewDetected& detection, BytesView public_key) {
  if (!ct::verify_sth(detection.sth_a, public_key)) return false;
  if (!ct::verify_sth(detection.sth_b, public_key)) return false;
  if (detection.same_size) {
    return detection.sth_a.tree_size == detection.sth_b.tree_size &&
           detection.sth_a.root_hash != detection.sth_b.root_hash && detection.proof.empty();
  }
  const ct::SignedTreeHead& old_sth =
      detection.sth_a.tree_size <= detection.sth_b.tree_size ? detection.sth_a : detection.sth_b;
  const ct::SignedTreeHead& new_sth =
      detection.sth_a.tree_size <= detection.sth_b.tree_size ? detection.sth_b : detection.sth_a;
  return old_sth.tree_size != new_sth.tree_size &&
         !ct::verify_consistency(old_sth.tree_size, new_sth.tree_size, old_sth.root_hash,
                                 new_sth.root_hash, detection.proof);
}

/// Peers split evenly across the faces; edges per `shape`:
///   split    — one clique per side, no cross edges
///   bridge   — split plus a single left[0]-right[0] cross edge
///   isolated — split with left[0] stranded (no gossip edges at all)
/// Coverage places one aggregation point over the first
/// round(coverage * monitors) peers, alternating sides — the in-network
/// vantage that straddles the partition when the topology does not.
struct Leg {
  gossip::GossipNet* net = nullptr;
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
};

Leg build_leg(gossip::GossipNet& net, gossip::LogView& left_view, gossip::LogView& right_view,
              std::uint64_t monitors, Shape shape, double coverage) {
  Leg leg;
  leg.net = &net;
  for (std::uint64_t i = 0; i < monitors / 2; ++i) leg.left.push_back(net.add_peer(left_view));
  for (std::uint64_t i = 0; i < monitors - monitors / 2; ++i)
    leg.right.push_back(net.add_peer(right_view));

  const std::size_t left_start = shape == Shape::isolated ? 1 : 0;
  for (std::size_t a = left_start; a < leg.left.size(); ++a)
    for (std::size_t b = a + 1; b < leg.left.size(); ++b) net.connect(leg.left[a], leg.left[b]);
  for (std::size_t a = 0; a < leg.right.size(); ++a)
    for (std::size_t b = a + 1; b < leg.right.size(); ++b) net.connect(leg.right[a], leg.right[b]);
  if (shape == Shape::bridge) net.connect(leg.left[0], leg.right[0]);

  const auto covered = static_cast<std::size_t>(coverage * static_cast<double>(monitors) + 0.5);
  if (covered > 0) {
    const std::size_t aggregator = net.add_aggregator(left_view);
    for (std::size_t i = 0; i < covered; ++i) {
      const auto& side = i % 2 == 0 ? leg.left : leg.right;
      const std::size_t index = i / 2;
      if (index < side.size()) net.cover(aggregator, side[index]);
    }
  }
  return leg;
}

struct LegResult {
  bool detected = false;
  std::uint64_t detect_round = 0;  ///< 0 when undetected
  bool evidence_ok = true;         ///< every verdict independently re-verified
  gossip::NetStats stats;
};

LegResult run_adversarial_leg(const Options& options, std::size_t fanout, double coverage,
                              Shape shape) {
  gossip::EquivocationPlan plan;
  plan.base.name = "Detect Equivocator";
  plan.base.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  plan.base.merge_delay = 500us;
  plan.fork_index = options.fork;
  gossip::EquivocatingLog log(plan);
  log.grow(options.fork * 2, kNow);  // both faces past the fork, equal sizes

  gossip::NetConfig net_config;
  net_config.fanout = fanout;
  net_config.seed = options.seed ^ (static_cast<std::uint64_t>(shape) << 8) ^ fanout;
  gossip::GossipNet net(net_config, log.public_key());
  build_leg(net, log.view(gossip::Side::left), log.view(gossip::Side::right), options.monitors,
            shape, coverage);

  LegResult result;
  for (std::uint64_t round = 1; round <= options.rounds && !net.detected(); ++round) {
    net.step(at_round(round));
  }
  result.detected = net.detected();
  result.stats = net.stats();
  if (result.detected) {
    result.detect_round = net.detections().front().round;
    obs::Registry::global().latency("gossip.detect_rounds")
        .observe(static_cast<double>(result.detect_round));
    for (const gossip::SplitViewDetected& detection : net.detections()) {
      if (!evidence_verifies(detection, log.public_key())) result.evidence_ok = false;
    }
  }
  return result;
}

/// Same topology, honest log, heavy chaos: fetch/challenge losses plus a
/// mid-run outage window on a band of gossip links. The log grows every
/// round, so actors continually reconcile stale/fresh head pairs — any
/// verdict here is a false positive.
LegResult run_honest_leg(const Options& options, std::size_t fanout, Shape shape) {
  logsvc::Config config;
  config.name = "Detect Honest";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 500us;
  logsvc::LogService honest(config);
  gossip::ServiceView view(honest);

  chaos::FaultInjector injector(options.seed * 2654435761ULL + fanout);
  chaos::FaultPlan flaky;
  flaky.error_probability = 0.4;
  flaky.timeout_fraction = 0.5;
  flaky.latency_base_us = 1000;
  flaky.latency_jitter_us = 4000;
  injector.plan("gossip.fetch", flaky);
  injector.plan("gossip.challenge", flaky);
  chaos::FaultPlan outage = flaky;
  outage.outages.push_back({static_cast<std::uint64_t>(at_round(4).unix_seconds()) * 1'000'000,
                            static_cast<std::uint64_t>(at_round(10).unix_seconds()) * 1'000'000});
  for (std::uint64_t a = 0; a < options.monitors; ++a) {
    injector.plan("gossip.link." + std::to_string(a) + "-" + std::to_string(a + 1), outage);
  }

  gossip::NetConfig net_config;
  net_config.fanout = fanout;
  net_config.seed = options.seed + 17;
  net_config.chaos = &injector;
  gossip::GossipNet net(net_config, honest.public_key());
  build_leg(net, view, view, options.monitors, shape, /*coverage=*/1.0);

  LegResult result;
  for (std::uint64_t round = 1; round <= options.rounds; ++round) {
    std::promise<void> sealed;
    auto wait = sealed.get_future();
    const logsvc::SubmitStatus status = honest.submit(
        ct::SignedEntry{ct::EntryType::x509_entry, to_bytes("h-" + std::to_string(round)), {}},
        crypto::Sha256::hash(to_bytes("hfp-" + std::to_string(round))), "CA", at_round(round),
        [&sealed](const logsvc::SubmitOutcome&) { sealed.set_value(); });
    if (status == logsvc::SubmitStatus::ok) wait.get();
    net.step(at_round(round));
  }
  result.detected = net.detected();
  result.stats = net.stats();
  for (const gossip::SplitViewDetected& detection : net.detections()) {
    // Evidence from an honest log cannot verify; record it if it does.
    if (evidence_verifies(detection, honest.public_key())) result.evidence_ok = false;
  }
  return result;
}

bench::Json leg_metrics(const LegResult& result) {
  bench::Json metrics;
  metrics.field("detected", result.detected)
      .field("detect_round", result.detect_round)
      .field("evidence_ok", result.evidence_ok)
      .field("sths_fetched", result.stats.sths_fetched)
      .field("sths_gossiped", result.stats.sths_gossiped)
      .field("sths_accepted", result.stats.sths_accepted)
      .field("forged_dropped", result.stats.forged_dropped)
      .field("challenges_run", result.stats.challenges_run)
      .field("challenges_pending", result.stats.challenges_pending)
      .field("fetch_faults", result.stats.fetch_faults)
      .field("link_faults", result.stats.link_faults)
      .field("challenge_faults", result.stats.challenge_faults);
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::banner("gossip detection latency: fanout x aggregation coverage x partition shape",
                "split-view verdicts re-verified cryptographically; honest chaos legs must stay "
                "verdict-free");

  const std::size_t fanouts[] = {1, 2, 4};
  const double coverages[] = {0.0, 0.5, 1.0};
  const Shape shapes[] = {Shape::split, Shape::bridge, Shape::isolated};

  std::uint64_t missed_full_coverage = 0;
  std::uint64_t bad_evidence = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t split_control_detections = 0;
  std::uint64_t detections = 0;
  std::uint64_t legs = 0;

  for (const Shape shape : shapes) {
    for (const std::size_t fanout : fanouts) {
      for (const double coverage : coverages) {
        const LegResult result = run_adversarial_leg(options, fanout, coverage, shape);
        ++legs;
        detections += result.detected ? 1 : 0;
        if (!result.evidence_ok) ++bad_evidence;
        if (coverage >= 1.0 && !result.detected) ++missed_full_coverage;
        // The control: with no coverage and no cross edge the partitions
        // are mutually invisible, so "detection" there means a bug.
        if (coverage == 0.0 && shape != Shape::bridge && result.detected)
          ++split_control_detections;
        bench::Json config;
        config.field("monitors", options.monitors)
            .field("fork", options.fork)
            .field("shape", shape_name(shape))
            .field("fanout", static_cast<std::uint64_t>(fanout))
            .field("coverage", coverage, 2)
            .field("honest", false)
            .field("seed", options.seed);
        bench::emit_result("gossip_detect", config, leg_metrics(result));
      }
    }

    const LegResult honest = run_honest_leg(options, /*fanout=*/2, shape);
    ++legs;
    if (honest.detected) ++false_positives;
    if (!honest.evidence_ok) ++false_positives;  // a *verifying* honest verdict is worse
    bench::Json config;
    config.field("monitors", options.monitors)
        .field("fork", 0)
        .field("shape", shape_name(shape))
        .field("fanout", 2)
        .field("coverage", 1.0, 2)
        .field("honest", true)
        .field("seed", options.seed);
    bench::emit_result("gossip_detect", config, leg_metrics(honest));
  }

  bench::Json summary_config;
  summary_config.field("monitors", options.monitors)
      .field("fork", options.fork)
      .field("rounds", options.rounds)
      .field("legs", legs)
      .field("strict", options.strict);
  bench::Json summary_metrics;
  summary_metrics.field("detections", detections)
      .field("missed_full_coverage", missed_full_coverage)
      .field("bad_evidence", bad_evidence)
      .field("false_positives", false_positives)
      .field("split_control_detections", split_control_detections);
  bench::emit_result("gossip_detect_summary", summary_config, summary_metrics);

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argc > 0 ? argv[0] : nullptr));

  if (bad_evidence > 0 || split_control_detections > 0) {
    std::fprintf(stderr,
                 "gossip_detect: FAIL — %" PRIu64 " unverifiable verdicts, %" PRIu64
                 " detections without any cross-partition channel\n",
                 bad_evidence, split_control_detections);
    return 3;
  }
  if (false_positives > 0) {
    std::fprintf(stderr, "gossip_detect: FAIL — %" PRIu64 " verdicts against an honest log\n",
                 false_positives);
    return 4;
  }
  if (options.strict && missed_full_coverage > 0) {
    std::fprintf(stderr,
                 "gossip_detect: FAIL (--strict) — %" PRIu64
                 " full-coverage legs never detected the split view\n",
                 missed_full_coverage);
    return 2;
  }
  std::printf("gossip_detect: ok (%" PRIu64 " legs, %" PRIu64 " detections)\n", legs, detections);
  return 0;
}
