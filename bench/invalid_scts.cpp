// §3.4: certificates with invalid embedded SCTs, attributed to the four
// real-world CA bugs the paper disclosed.
//
// Expected shape (paper): a handful of invalid certificates among many
// valid ones — 12 GlobalSign (SAN reorder), 2 D-Trust (extension reorder),
// 1 NetLock (different SAN/issuer), 1 TeliaSonera (stale re-issued SCT) —
// each detectable by comparing the final certificate with the logged
// precertificate.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

sim::Ecosystem make_ecosystem(crypto::SignatureScheme scheme) {
  sim::EcosystemOptions options;
  options.scheme = scheme;
  options.verify_submissions = true;
  options.store_bodies = true;  // precert lookup needs bodies
  options.seed = 34;
  return sim::Ecosystem(options);
}

void BM_EmbeddedSctValidation(benchmark::State& state) {
  static sim::Ecosystem ecosystem = make_ecosystem(crypto::SignatureScheme::hmac_sha256_simulated);
  static const auto issued = [] {
    sim::CertificateAuthority& ca = ecosystem.ca("GlobalSign");
    sim::IssuanceRequest request;
    request.subject_cn = "bench.example.net";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = SimTime::parse("2018-03-20");
    request.not_after = SimTime::parse("2019-03-20");
    request.logs = ecosystem.logs_of("GlobalSign");
    return ca.issue(request, SimTime::parse("2018-03-20"));
  }();
  const Bytes ca_key = ecosystem.ca("GlobalSign").public_key();
  for (auto _ : state) {
    const ct::SignedEntry entry = ct::make_precert_entry(issued.final_certificate, ca_key);
    bool ok = true;
    for (const auto& sct : issued.scts) {
      const ct::LogListEntry* log = ecosystem.log_list().find(sct.log_id);
      ok = ok && log != nullptr && ct::verify_sct(sct, entry, log->public_key);
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EmbeddedSctValidation);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("§3.4 — invalid embedded SCTs and their root causes",
                "bulk run with the simulation signer, spot-check with real ECDSA");
  {
    sim::Ecosystem ecosystem = make_ecosystem(crypto::SignatureScheme::hmac_sha256_simulated);
    core::InvalidSctStudy study(ecosystem);
    const core::InvalidSctReport report = study.run();
    std::printf("%s\n", core::InvalidSctStudy::render(report).c_str());
  }
  {
    std::printf("--- same study, real ECDSA P-256 signatures (reduced volume) ---\n");
    sim::Ecosystem ecosystem = make_ecosystem(crypto::SignatureScheme::ecdsa_p256_sha256);
    core::InvalidSctOptions options;
    options.clean_per_bug = 2;
    core::InvalidSctStudy study(ecosystem, options);
    const core::InvalidSctReport report = study.run();
    std::printf("%s\n", core::InvalidSctStudy::render(report).c_str());
  }
  return bench::run_benchmarks(argc, argv);
}
