// Attacker-model study (§6): CT-informed targeting vs. uninformed
// address-space scanning — including the IPv6 case the paper's conclusion
// highlights ("With the increase of IPv6 deployment, which challenges
// scanning per se, we expect more incidents in which CT logs are
// leveraged by attackers").
//
// A fleet of services comes online inside an IPv4 /16 and an IPv6 /48;
// every service obtains a CT-logged certificate. Three attackers race to
// find them: a blind IPv4 scanner, a blind IPv6 scanner, and a CT-fed
// attacker that follows the log stream and resolves the leaked names.
#include "bench_common.hpp"

#include "ctwatch/ct/stream.hpp"

#include <set>

using namespace ctwatch;

namespace {

struct Service {
  std::string fqdn;
  net::IPv4 v4;
  net::IPv6 v6;
};

void BM_CtFedTargeting(benchmark::State& state) {
  // Cost of the informed attack step: stream entry -> name -> resolution.
  dns::AuthoritativeServer server;
  server.set_logging(false);
  dns::Zone& zone = server.add_zone(dns::DnsName::parse_or_throw("svc.example"));
  zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("a.svc.example"), dns::RrType::A,
                               300, net::IPv4(100, 64, 1, 1)});
  dns::DnsUniverse universe;
  universe.add_server(server);
  const dns::RecursiveResolver resolver(
      universe, dns::RecursiveResolver::Identity{net::IPv4(9, 9, 9, 9), 64500, "atk", false});
  const dns::DnsName name = dns::DnsName::parse_or_throw("a.svc.example");
  const SimTime when = SimTime::parse("2018-05-01");
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(name, dns::RrType::A, when));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CtFedTargeting);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("§6 attacker model — CT-informed targeting vs. blind scanning",
                "services hidden in an IPv4 /16 and an IPv6 /48");
  Rng rng(41);

  // Deploy 200 services at random addresses; leak names only through CT.
  ct::LogConfig config;
  config.name = "Exposure Log";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  ct::CtLog log(config);
  sim::CertificateAuthority ca("Exposure CA", "Exposure Issuing CA",
                               crypto::SignatureScheme::hmac_sha256_simulated);

  dns::AuthoritativeServer authoritative;
  authoritative.set_logging(false);
  dns::Zone& zone = authoritative.add_zone(dns::DnsName::parse_or_throw("deploy.example"));
  dns::DnsUniverse universe;
  universe.add_server(authoritative);

  const SimTime t0 = SimTime::parse("2018-05-01 08:00:00");
  std::vector<Service> services;
  std::set<std::uint32_t> used_v4;
  for (int i = 0; i < 200; ++i) {
    Service service;
    service.fqdn = rng.alnum_label(10) + ".deploy.example";
    std::uint32_t host = 0;
    do {
      host = static_cast<std::uint32_t>(rng.below(65536));
    } while (!used_v4.insert(host).second);
    service.v4 = net::IPv4(0x64400000u + host);  // inside 100.64.0.0/16
    service.v6 = net::IPv6::from_hextets({0x2001, 0xdb8, 0x77, 0, 0, 0,
                                          static_cast<std::uint16_t>(rng.below(65536)),
                                          static_cast<std::uint16_t>(rng.below(65536))});
    const dns::DnsName name = dns::DnsName::parse_or_throw(service.fqdn);
    zone.add(dns::ResourceRecord{name, dns::RrType::A, 300, service.v4});
    zone.add(dns::ResourceRecord{name, dns::RrType::AAAA, 300, service.v6});

    sim::IssuanceRequest request;
    request.subject_cn = service.fqdn;
    request.sans = {x509::SanEntry::dns(service.fqdn)};
    request.not_before = t0;
    request.not_after = t0 + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, t0 + i * 30);
    services.push_back(std::move(service));
  }

  std::set<std::uint32_t> v4_targets;
  std::set<std::string> v6_targets;
  for (const Service& service : services) {
    v4_targets.insert(service.v4.value());
    v6_targets.insert(service.v6.to_string());
  }

  const std::uint64_t probe_budget = 50000;

  // Attacker 1: blind IPv4 scan of the /16 (random order, no repeats
  // assumed away — this is the generous case for the scanner).
  std::set<std::uint32_t> v4_probed;
  std::uint64_t blind_v4_hits = 0;
  while (v4_probed.size() < probe_budget && v4_probed.size() < 65536) {
    const std::uint32_t host = static_cast<std::uint32_t>(rng.below(65536));
    if (!v4_probed.insert(0x64400000u + host).second) continue;
    if (v4_targets.contains(0x64400000u + host)) ++blind_v4_hits;
  }

  // Attacker 2: blind IPv6 scan of the /48 (2^80 addresses).
  std::uint64_t blind_v6_hits = 0;
  for (std::uint64_t i = 0; i < probe_budget; ++i) {
    const net::IPv6 probe = net::IPv6::from_hextets(
        {0x2001, 0xdb8, 0x77, static_cast<std::uint16_t>(rng.below(65536)),
         static_cast<std::uint16_t>(rng.below(65536)),
         static_cast<std::uint16_t>(rng.below(65536)),
         static_cast<std::uint16_t>(rng.below(65536)),
         static_cast<std::uint16_t>(rng.below(65536))});
    if (v6_targets.contains(probe.to_string())) ++blind_v6_hits;
  }

  // Attacker 3: follows the log, resolves every leaked name, probes the
  // answers — one probe per service, both address families.
  const dns::RecursiveResolver resolver(
      universe,
      dns::RecursiveResolver::Identity{net::IPv4(198, 18, 0, 66), 64666, "ct-fed", false});
  std::uint64_t ct_probes = 0, ct_v4_hits = 0, ct_v6_hits = 0;
  ct::BatchPoller poller(log);
  for (const ct::LogEntry& entry : poller.poll()) {
    for (const std::string& fqdn : entry.certificate.tbs.dns_names()) {
      const auto name = dns::DnsName::parse(fqdn);
      if (!name) continue;
      const auto a = resolver.resolve(*name, dns::RrType::A, t0 + 7200);
      ++ct_probes;
      if (a.status == dns::ResolveStatus::ok && v4_targets.contains(a.first_a()->value())) {
        ++ct_v4_hits;
      }
      const auto aaaa = resolver.resolve(*name, dns::RrType::AAAA, t0 + 7200);
      ++ct_probes;
      for (const auto& rr : aaaa.answers) {
        if (rr.type == dns::RrType::AAAA && v6_targets.contains(rr.aaaa().to_string())) {
          ++ct_v6_hits;
        }
      }
    }
  }

  std::printf("services deployed: 200 (unique IPv4 in a /16, unique IPv6 in a /48)\n\n");
  std::printf("%-28s %12s %12s %12s\n", "attacker", "probes", "v4 found", "v6 found");
  std::printf("%-28s %12llu %12llu %12s\n", "blind IPv4 scan",
              static_cast<unsigned long long>(probe_budget),
              static_cast<unsigned long long>(blind_v4_hits), "-");
  std::printf("%-28s %12llu %12s %12llu\n", "blind IPv6 scan",
              static_cast<unsigned long long>(probe_budget), "-",
              static_cast<unsigned long long>(blind_v6_hits));
  std::printf("%-28s %12llu %12llu %12llu\n", "CT-fed targeting",
              static_cast<unsigned long long>(ct_probes),
              static_cast<unsigned long long>(ct_v4_hits),
              static_cast<unsigned long long>(ct_v6_hits));
  std::printf("\nthe CT-fed attacker finds every service with ~2 probes each; the blind\n"
              "IPv6 scanner finds nothing at any feasible budget — CT cancels IPv6's\n"
              "scanning resistance, exactly the paper's concern.\n\n");
  return bench::run_benchmarks(argc, argv);
}
