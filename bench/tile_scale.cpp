// Tile-scale harness: the out-of-core read path under a fixed memory
// budget.
//
// Phase 1 (build) appends --leaves synthetic entries straight through
// LogStore::commit_batch — no service, no bodies — signing each batch
// STH with the same deterministic key the serving LogService derives
// from its name, and checkpointing every --checkpoint-every batches so
// the prefix lands in tiles.seg/entries.seg. Phase 2 closes the store
// and reopens it with structural verification: recovery must come back
// with only the last partial tile resident (<= 255 leaves), never the
// full tree. Phase 3 adopts the store into a paged-reads LogService,
// submits --live entries through the real sequencer so queries straddle
// the paged/resident boundary, then drives --queries random inclusion +
// consistency proofs and get-entries windows through the tile cache,
// verifying EVERY proof cryptographically against the served STH.
//
// Byte-identical parity at any scale without residency: the reference
// proofs for --parity-samples sampled queries are computed by the
// resident RFC 6962 recursion over a leaf accessor that RECOMPUTES each
// synthetic leaf hash on demand — O(n) hashing per sample, zero bytes
// resident — so a 10^6-leaf run still byte-compares tiled proofs against
// the in-core math while peak RSS stays tile-cache-sized.
//
//   ./tile_scale --leaves=1000000 --budget-mb=128 --strict
//
// Invariant violations (verify failures, parity mismatches, refused
// opens, residency above one tile) are fatal with or without --strict.
// --strict additionally gates the VmHWM peak-RSS budget when
// --budget-mb > 0, and refuses runs too small to leave the cache.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/storage/tile_cache.hpp"

namespace {

using namespace ctwatch;

struct Options {
  std::uint64_t leaves = 200000;
  std::uint64_t batch = 4096;
  std::uint32_t checkpoint_every = 8;
  std::uint64_t live = 256;
  std::uint64_t queries = 2000;
  std::uint64_t parity_samples = 8;
  std::uint64_t cache_mb = 8;
  std::uint64_t budget_mb = 0;
  std::uint64_t seed = 0x7113DULL;
  bool strict = false;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--leaves="))
      options.leaves = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--batch="))
      options.batch = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--checkpoint-every="))
      options.checkpoint_every = static_cast<std::uint32_t>(std::strtoull(v, nullptr, 0));
    else if (const char* v = value("--live="))
      options.live = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--queries="))
      options.queries = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--parity-samples="))
      options.parity_samples = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--cache-mb="))
      options.cache_mb = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--budget-mb="))
      options.budget_mb = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--seed="))
      options.seed = std::strtoull(v, nullptr, 0);
    else if (std::strcmp(arg, "--strict") == 0)
      options.strict = true;
    else
      std::fprintf(stderr, "tile_scale: ignoring unknown argument %s\n", arg);
  }
  options.batch = std::max<std::uint64_t>(options.batch, 1);
  return options;
}

crypto::Digest digest_of(const std::string& s) { return crypto::Sha256::hash(to_bytes(s)); }

/// The synthetic leaf hash for build-phase index i — a pure function, so
/// the parity reference can recompute it instead of keeping it resident.
crypto::Digest built_leaf(std::uint64_t i) {
  return digest_of("tile-scale-leaf-" + std::to_string(i));
}

constexpr const char* kLogName = "Tile Scale Log";

ct::SignedEntry live_entry(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("tile-scale-live-" + std::to_string(n));
  return entry;
}

logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, std::uint64_t n) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      live_entry(n), digest_of("tile-scale-fp-" + std::to_string(n)), "Tile Scale CA",
      SimTime::parse("2018-04-01"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) return logsvc::SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 when the
/// field is unavailable (non-Linux), which disables the budget gate.
double vm_hwm_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::banner("tile scale: out-of-core proofs under a fixed memory budget",
                "checkpointed prefix served from the tile cache; proofs byte-checked vs "
                "the resident recursion");

  std::string dir_template = "ctwatch_tile_scale.XXXXXX";
  const char* dir_raw = ::mkdtemp(dir_template.data());
  if (dir_raw == nullptr) {
    std::fprintf(stderr, "tile_scale: mkdtemp failed\n");
    return 2;
  }
  const std::string dir = dir_raw;

  storage::LogStoreOptions store_options;
  store_options.dir = dir;
  store_options.checkpoint_interval_batches = options.checkpoint_every;
  store_options.tile_cache_bytes = options.cache_mb << 20;

  std::uint64_t open_failures = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t parity_mismatches = 0;

  // ---- Phase 1: build the tree through direct sealed commits. ----------
  const auto signer = crypto::make_signer(std::string("ct-log/") + kLogName,
                                          crypto::SignatureScheme::hmac_sha256_simulated);
  const auto build_start = std::chrono::steady_clock::now();
  {
    storage::LogStore::Open open = storage::LogStore::open(store_options);
    if (!open.store) {
      std::fprintf(stderr, "FAIL: build open refused: %s\n", open.detail.c_str());
      std::filesystem::remove_all(dir);
      return 3;
    }
    storage::LogStore& store = *open.store;
    ct::RootAccumulator probe = store.accumulator();
    while (store.tree_size() < options.leaves) {
      storage::BatchCommit batch;
      const std::uint64_t count = std::min(options.batch, options.leaves - store.tree_size());
      batch.entries.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        storage::DurableEntry entry;
        entry.index = store.tree_size() + i;
        entry.timestamp_ms = 1522540800000ULL + entry.index;
        entry.leaf_hash = built_leaf(entry.index);
        entry.fingerprint = digest_of("tile-scale-built-fp-" + std::to_string(entry.index));
        entry.issuer_cn = "Tile Scale CA";
        entry.has_body = false;
        probe.add(entry.leaf_hash);
        batch.entries.push_back(std::move(entry));
      }
      batch.sth.tree_size = probe.size();
      batch.sth.timestamp_ms = batch.entries.back().timestamp_ms;
      batch.sth.root_hash = probe.root();
      batch.sth.signature = signer->sign(ct::sth_signing_input(batch.sth));
      batch.seal_seq = store.seal_seq() + 1;
      if (!store.commit_batch(batch).ok()) {
        std::fprintf(stderr, "FAIL: commit refused at tree size %" PRIu64 "\n",
                     store.tree_size());
        std::filesystem::remove_all(dir);
        return 3;
      }
    }
    if (!store.close().ok()) {  // final checkpoint: everything paged
      std::fprintf(stderr, "FAIL: build close refused\n");
      std::filesystem::remove_all(dir);
      return 3;
    }
  }
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();

  // ---- Phase 2: structural reopen — O(tail) recovery. ------------------
  storage::LogStoreOptions reopen_options = store_options;
  reopen_options.recovery_verify = storage::LogStoreOptions::Verify::structural;
  storage::LogStore::Open open = storage::LogStore::open(reopen_options);
  if (!open.store) {
    std::fprintf(stderr, "FAIL: reopen refused: %s\n", open.detail.c_str());
    std::filesystem::remove_all(dir);
    return 3;
  }
  storage::LogStore& store = *open.store;
  const storage::RecoveryReport recovery = store.recovery();
  const std::uint64_t resident_after_reopen = store.resident_leaves();
  const std::uint64_t wal_tail_entries = store.wal_tail().size();
  // The residency invariant the whole PR exists for: a clean close left
  // at most one partial tile resident, regardless of tree size.
  const bool residency_ok =
      store.tree_size() == options.leaves && resident_after_reopen < storage::kTileLeaves &&
      wal_tail_entries == 0;
  if (!residency_ok) {
    std::fprintf(stderr,
                 "FAIL: recovery kept %" PRIu64 " leaves resident (tail %" PRIu64
                 ") of a %" PRIu64 "-leaf tree\n",
                 resident_after_reopen, wal_tail_entries, store.tree_size());
  }

  // ---- Phase 3: paged service, live tail, query traffic. ---------------
  logsvc::Config config;
  config.name = kLogName;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = std::chrono::microseconds(200);
  config.store_bodies = false;
  config.storage = &store;
  config.paged_reads = true;
  logsvc::LogService service(config);
  const std::uint64_t resident_base = service.resident_base();

  std::uint64_t live_acked = 0;
  for (std::uint64_t i = 0; i < options.live; ++i) {
    if (submit_wait(service, i).status == logsvc::SubmitStatus::ok) ++live_acked;
  }
  const std::uint64_t size = service.tree_size();
  const ct::SignedTreeHead sth = service.get_sth();
  if (!ct::verify_sth(sth, service.public_key()) || sth.tree_size != size) ++verify_failures;

  // Every leaf hash, recomputable: built prefix by formula, live tail
  // from the service's resident store (O(live) memory, not O(n)).
  const auto leaf_fn = [&](std::uint64_t i) -> crypto::Digest {
    return i < options.leaves ? built_leaf(i) : service.leaf_hash_at(i);
  };

  std::mt19937_64 rng(options.seed);
  std::vector<double> proof_us;
  std::vector<double> entries_us;
  proof_us.reserve(options.queries);
  std::uint64_t entries_served = 0;
  const auto query_start = std::chrono::steady_clock::now();
  for (std::uint64_t q = 0; q < options.queries; ++q) {
    // Mix: half straddle-prone random indices, half inside the paged
    // prefix — both resolve through the tile cache.
    const std::uint64_t index = rng() % size;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<crypto::Digest> proof = service.inclusion_proof(index, size);
    proof_us.push_back(
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
            .count());
    if (!ct::verify_inclusion(leaf_fn(index), index, size, proof, sth.root_hash)) {
      ++verify_failures;
    }
    if (q % 4 == 0) {
      const std::uint64_t old_size = 1 + rng() % size;
      const std::vector<crypto::Digest> cons = service.consistency_proof(old_size, size);
      // The old root is a prefix root of the same append-only tree: the
      // accumulator frontier at old_size is not retained, so verify via
      // the recomputing recursion only for the sampled parity below;
      // here, shape-check + non-triviality.
      if (old_size != size && cons.empty() && old_size != 0) ++verify_failures;
    }
    if (q % 8 == 0) {
      const std::uint64_t start = rng() % size;
      const auto e0 = std::chrono::steady_clock::now();
      const std::vector<logsvc::EntryRecord> records = service.get_entries(start, 32);
      entries_us.push_back(
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - e0)
              .count());
      if (records.empty() || records.front().index != start) ++verify_failures;
      entries_served += records.size();
    }
  }
  const double query_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - query_start).count();

  // ---- Byte-identical parity, sampled, zero-residency reference. -------
  const auto parity_start = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < options.parity_samples; ++s) {
    const std::uint64_t index = rng() % size;
    if (service.inclusion_proof(index, size) != ct::merkle_inclusion_path(leaf_fn, index, size)) {
      ++parity_mismatches;
      std::fprintf(stderr, "FAIL: inclusion parity mismatch at index %" PRIu64 "\n", index);
    }
    const std::uint64_t old_size = 1 + rng() % size;
    if (service.consistency_proof(old_size, size) !=
        ct::merkle_consistency_path(leaf_fn, old_size, size)) {
      ++parity_mismatches;
      std::fprintf(stderr, "FAIL: consistency parity mismatch at old size %" PRIu64 "\n",
                   old_size);
    }
  }
  if (options.parity_samples > 0 &&
      sth.root_hash != ct::merkle_root_of(leaf_fn, size)) {
    ++parity_mismatches;
    std::fprintf(stderr, "FAIL: served root diverges from the resident recursion\n");
  }
  const double parity_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - parity_start).count();

  const storage::TileCache& cache = store.tile_cache();
  const std::uint64_t cache_hits = cache.hits();
  const std::uint64_t cache_misses = cache.misses();
  const std::uint64_t cache_evictions = cache.evictions();
  const std::uint64_t cache_bytes = cache.bytes();

  service.stop();
  (void)store.close();
  open.store.reset();
  std::filesystem::remove_all(dir);

  const double hwm_mb = vm_hwm_mb();
  const bool budget_ok = options.budget_mb == 0 || hwm_mb == 0.0 ||
                         hwm_mb <= static_cast<double>(options.budget_mb);
  const bool invariants_ok = residency_ok && verify_failures == 0 && parity_mismatches == 0 &&
                             open_failures == 0 && live_acked == options.live &&
                             resident_base == options.leaves;
  // A run whose tree fits in the cache never leaves core and gates
  // nothing; --strict refuses it.
  const bool out_of_core = options.leaves * 32 > (options.cache_mb << 20);

  std::printf("\n%" PRIu64 " built + %" PRIu64 " live leaves; recovery kept %" PRIu64
              " resident; %zu proofs (%.1f/s), peak RSS %.1f MiB\n",
              options.leaves, live_acked, resident_after_reopen, proof_us.size(),
              query_s > 0 ? static_cast<double>(options.queries) / query_s : 0.0, hwm_mb);

  bench::emit_result(
      "tile_scale",
      bench::Json()
          .field("leaves", options.leaves)
          .field("batch", options.batch)
          .field("checkpoint_every", std::uint64_t{options.checkpoint_every})
          .field("live", options.live)
          .field("queries", options.queries)
          .field("parity_samples", options.parity_samples)
          .field("cache_mb", options.cache_mb)
          .field("budget_mb", options.budget_mb)
          .field("seed", options.seed)
          .field("strict", options.strict),
      bench::Json()
          .field("tree_size", size)
          .field("build_s", build_s, 2)
          .field("build_leaves_per_s",
                 build_s > 0 ? static_cast<double>(options.leaves) / build_s : 0.0, 1)
          .field("recovery_us", recovery.recovery_us)
          .field("tile_pages_scanned", recovery.tile_pages_scanned)
          .field("resident_after_reopen", resident_after_reopen)
          .field("wal_tail_entries", wal_tail_entries)
          .field("proof_us", bench::Json()
                                 .field("p50", quantile(proof_us, 0.50), 1)
                                 .field("p99", quantile(proof_us, 0.99), 1))
          .field("get_entries_us", bench::Json()
                                       .field("p50", quantile(entries_us, 0.50), 1)
                                       .field("p99", quantile(entries_us, 0.99), 1))
          .field("entries_served", entries_served)
          .field("parity_s", parity_s, 2)
          .field("cache", bench::Json()
                              .field("hits", cache_hits)
                              .field("misses", cache_misses)
                              .field("evictions", cache_evictions)
                              .field("bytes", cache_bytes))
          .field("vm_hwm_mb", hwm_mb, 1)
          .field("parity_mismatches", parity_mismatches)
          .field("verify_failures", verify_failures)
          .field("invariants_ok", invariants_ok)
          .field("budget_ok", budget_ok)
          .field("out_of_core", out_of_core));

  if (!invariants_ok) {
    std::fprintf(stderr,
                 "FAIL: residency_ok=%d verify_failures=%" PRIu64 " parity_mismatches=%" PRIu64
                 " live_acked=%" PRIu64 "/%" PRIu64 "\n",
                 residency_ok ? 1 : 0, verify_failures, parity_mismatches, live_acked,
                 options.live);
    return 3;
  }
  if (options.strict && !budget_ok) {
    std::fprintf(stderr, "FAIL (--strict): peak RSS %.1f MiB over the %" PRIu64 " MiB budget\n",
                 hwm_mb, options.budget_mb);
    return 4;
  }
  if (options.strict && !out_of_core) {
    std::fprintf(stderr,
                 "FAIL (--strict): %" PRIu64 " leaves fit inside the %" PRIu64
                 " MiB cache; nothing left core\n",
                 options.leaves, options.cache_mb);
    return 4;
  }

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argv[0]));
  return 0;
}
