// Table 3: potential phishing domains identified in CT.
//
// Expected shape (paper): Apple ~63k, PayPal ~58k, Microsoft ~4k, Google
// ~1k, eBay <1k (we run at ~1/100 scale); legitimate brand domains are
// excluded; 28 % of eBay findings sit on bid/review, ~4 % of Microsoft
// findings on the live suffix; government taxation offices also appear.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

void BM_PhishingScan(benchmark::State& state) {
  static const sim::PhishingCorpus corpus = sim::generate_phishing_corpus();
  static const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  for (auto _ : state) {
    phishing::PhishingDetector detector(psl, phishing::standard_rules());
    benchmark::DoNotOptimize(detector.scan(corpus.names));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.names.size()));
}
BENCHMARK(BM_PhishingScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table 3 — potential phishing domains identified in CT",
                "regex matching + legitimate-domain exclusion, ~1/100 scale");
  const sim::PhishingCorpus corpus = sim::generate_phishing_corpus();
  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  // Mix the phishing corpus into a large benign background so exclusion and
  // false positives are actually exercised.
  sim::DomainCorpusOptions bg_options;
  bg_options.registrable_count = 20000;
  sim::DomainCorpus background(bg_options);
  std::vector<std::string> names = background.ct_names();
  names.insert(names.end(), corpus.names.begin(), corpus.names.end());

  phishing::PhishingDetector detector(psl, phishing::standard_rules());
  const auto findings = detector.scan(names);
  const auto summary = phishing::PhishingDetector::summarize(findings);

  std::printf("scanned %llu names (%llu planted phishing, %llu legitimate brand names)\n\n",
              static_cast<unsigned long long>(detector.names_scanned()),
              static_cast<unsigned long long>(corpus.planted_phishing),
              static_cast<unsigned long long>(corpus.planted_legitimate));
  std::printf("%-12s %8s   %-46s (paper, x100)\n", "service", "count", "example");
  struct PaperRow {
    const char* brand;
    const char* paper;
  };
  for (const PaperRow& row : {PaperRow{"Apple", "63k"}, PaperRow{"PayPal", "58k"},
                              PaperRow{"Microsoft", "4k"}, PaperRow{"Google", "1k"},
                              PaperRow{"eBay", "<1k"}, PaperRow{"Taxation", "-"}}) {
    const auto it = summary.find(row.brand);
    if (it == summary.end()) continue;
    std::printf("%-12s %8llu   %-46s %s\n", row.brand,
                static_cast<unsigned long long>(it->second.count),
                it->second.example.c_str(), row.paper);
  }

  // Suffix-choice links.
  auto suffix_share = [&](const char* brand, std::initializer_list<const char*> suffixes) {
    const auto it = summary.find(brand);
    if (it == summary.end()) return 0.0;
    std::uint64_t hits = 0;
    for (const char* suffix : suffixes) {
      const auto sit = it->second.by_suffix.find(suffix);
      if (sit != it->second.by_suffix.end()) hits += sit->second;
    }
    return 100.0 * static_cast<double>(hits) / static_cast<double>(it->second.count);
  };
  std::printf("\neBay findings on bid/review: %.1f%% (paper: 28%%)\n",
              suffix_share("eBay", {"bid", "review"}));
  std::printf("Microsoft findings on live:  %.1f%% (paper: 4%%)\n",
              suffix_share("Microsoft", {"live"}));

  // Ground truth: nothing legitimate flagged.
  std::uint64_t legit_flagged = 0;
  for (const auto& finding : findings) {
    for (const auto& rule : phishing::standard_rules()) {
      if (rule.legitimate_domains.contains(finding.registrable_domain)) ++legit_flagged;
    }
  }
  std::printf("legitimate brand domains flagged: %llu (must be 0)\n\n",
              static_cast<unsigned long long>(legit_flagged));
  return bench::run_benchmarks(argc, argv);
}
