// Load generator for ctwatch::logsvc — the "heavy traffic" harness.
//
// Drives a live LogService with N submitter threads (pipelined: each keeps
// submissions in flight and collects SCTs via completion callbacks) and M
// proof-reader threads that continuously fetch STHs and verify inclusion
// and consistency proofs — including against a deliberately stale pinned
// STH, the access pattern gossip/light-monitor designs assume. Reports
// throughput, p50/p99 submit-to-SCT latency, and overload rejections as
// JSON on stdout, and snapshots the obs metrics registry per the
// CTWATCH_METRICS_JSON convention.
//
//   ./logsvc_loadgen --submitters=8 --readers=2 --seconds=2
//
// Exit code is non-zero if any sampled proof fails to verify or any
// accepted submission never completes.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/util/rng.hpp"

namespace {

using namespace ctwatch;
using Clock = std::chrono::steady_clock;

struct Options {
  int submitters = 8;
  int readers = 2;
  double seconds = 2.0;
  std::size_t payload = 64;
  std::size_t queue_capacity = 1 << 16;
  std::size_t max_batch = 1 << 13;
  std::int64_t merge_delay_us = 500;
};

long long parse_ll(const char* text) { return std::strtoll(text, nullptr, 10); }

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--submitters=")) options.submitters = static_cast<int>(parse_ll(v));
    else if (const char* v = value("--readers=")) options.readers = static_cast<int>(parse_ll(v));
    else if (const char* v = value("--seconds=")) options.seconds = std::strtod(v, nullptr);
    else if (const char* v = value("--payload=")) options.payload = static_cast<std::size_t>(parse_ll(v));
    else if (const char* v = value("--queue=")) options.queue_capacity = static_cast<std::size_t>(parse_ll(v));
    else if (const char* v = value("--max-batch=")) options.max_batch = static_cast<std::size_t>(parse_ll(v));
    else if (const char* v = value("--merge-delay-us=")) options.merge_delay_us = parse_ll(v);
    else std::fprintf(stderr, "logsvc_loadgen: ignoring unknown argument %s\n", arg);
  }
  return options;
}

struct SubmitterStats {
  std::uint64_t attempted = 0;
  std::uint64_t queued = 0;
  std::uint64_t overloaded = 0;
};

struct ReaderStats {
  std::uint64_t sth_verified = 0;
  std::uint64_t inclusion_verified = 0;
  std::uint64_t consistency_verified = 0;
  std::uint64_t failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::banner("logsvc load generator",
                "concurrent submit/proof traffic against the batched log service layer");

  logsvc::Config config;
  config.name = "Loadgen Log";
  config.operator_name = "bench";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;  // raw submit path: entries are synthetic
  config.store_bodies = false;
  config.dedup = false;
  config.queue_capacity = options.queue_capacity;
  config.max_batch = options.max_batch;
  config.merge_delay = std::chrono::microseconds(options.merge_delay_us);
  logsvc::LogService service(config);

  obs::Histogram& latency_us = obs::Registry::global().histogram(
      "loadgen.submit_to_sct_us", obs::exponential_bounds(1.0, 2.0, 26));
  std::atomic<std::uint64_t> completed{0};

  const SimTime sim_now = SimTime::parse("2018-04-01");
  const auto started_at = Clock::now();
  const auto deadline =
      started_at + std::chrono::microseconds(static_cast<std::int64_t>(options.seconds * 1e6));

  // --- submitters: pipelined submit loops, SCT latency via callback ---
  std::vector<SubmitterStats> submitter_stats(static_cast<std::size_t>(options.submitters));
  std::vector<std::thread> submitters;
  submitters.reserve(static_cast<std::size_t>(options.submitters));
  for (int t = 0; t < options.submitters; ++t) {
    submitters.emplace_back([&, t] {
      SubmitterStats& stats = submitter_stats[static_cast<std::size_t>(t)];
      ct::SignedEntry entry;
      entry.type = ct::EntryType::x509_entry;
      entry.data.assign(options.payload, static_cast<std::uint8_t>(0xc0 + t));
      crypto::Digest fingerprint{};
      fingerprint[0] = static_cast<std::uint8_t>(t);
      std::uint64_t ordinal = 0;
      while (Clock::now() < deadline) {
        // Stamp the ordinal so every leaf (and fingerprint) is distinct.
        ++ordinal;
        std::memcpy(entry.data.data(), &ordinal, sizeof(ordinal));
        std::memcpy(fingerprint.data() + 1, &ordinal, sizeof(ordinal));
        ++stats.attempted;
        const auto t0 = Clock::now();
        const logsvc::SubmitStatus status = service.submit(
            ct::SignedEntry{entry}, fingerprint, {}, sim_now,
            [t0, &latency_us, &completed](const logsvc::SubmitOutcome&) {
              latency_us.observe(
                  std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
              completed.fetch_add(1, std::memory_order_relaxed);
            });
        if (status == logsvc::SubmitStatus::ok) {
          ++stats.queued;
        } else {
          ++stats.overloaded;
          std::this_thread::yield();  // backpressure: give the sequencer the core
        }
      }
    });
  }

  // --- readers: verify STH signatures, inclusion + consistency proofs ---
  // Proof construction over n leaves costs O(n) hashing, so readers pin an
  // early STH (<= kPinCap leaves) for their steady-state samples — a
  // *stale* snapshot, as gossip clients hold — and take a full-size proof
  // only every kFullProofPeriod rounds.
  constexpr std::uint64_t kPinCap = 1 << 16;
  constexpr int kFullProofPeriod = 64;
  std::vector<ReaderStats> reader_stats(static_cast<std::size_t>(options.readers));
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(options.readers));
  const Bytes log_key = service.public_key();
  for (int t = 0; t < options.readers; ++t) {
    readers.emplace_back([&, t] {
      ReaderStats& stats = reader_stats[static_cast<std::size_t>(t)];
      Rng rng(0x10adbeefULL + static_cast<std::uint64_t>(t));
      ct::SignedTreeHead pinned;  // tree_size 0 until the first seal
      ct::SignedTreeHead previous_pin;
      int round = 0;
      while (Clock::now() < deadline) {
        ++round;
        const ct::SignedTreeHead sth = service.get_sth();
        if (!ct::verify_sth(sth, log_key)) {
          ++stats.failures;
          std::fprintf(stderr, "reader %d: STH signature failed at size %llu\n", t,
                       static_cast<unsigned long long>(sth.tree_size));
          continue;
        }
        ++stats.sth_verified;
        if (sth.tree_size == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        if (sth.tree_size <= kPinCap || pinned.tree_size == 0) {
          previous_pin = pinned.tree_size != 0 ? pinned : sth;
          pinned = sth;
        }
        // Inclusion against the pinned (possibly stale) head.
        {
          const std::uint64_t index = rng() % pinned.tree_size;
          const auto proof = service.inclusion_proof(index, pinned.tree_size);
          if (!ct::verify_inclusion(service.leaf_hash_at(index), index, pinned.tree_size, proof,
                                    pinned.root_hash)) {
            ++stats.failures;
            std::fprintf(stderr, "reader %d: inclusion proof failed (index %llu, size %llu)\n", t,
                         static_cast<unsigned long long>(index),
                         static_cast<unsigned long long>(pinned.tree_size));
          } else {
            ++stats.inclusion_verified;
          }
        }
        // Consistency previous pin -> pin, and periodically pin -> head.
        const bool full_round = round % kFullProofPeriod == 0;
        const ct::SignedTreeHead& old_sth = full_round ? pinned : previous_pin;
        const ct::SignedTreeHead& new_sth = full_round ? sth : pinned;
        if (old_sth.tree_size != 0 && old_sth.tree_size <= new_sth.tree_size) {
          const auto proof = service.consistency_proof(old_sth.tree_size, new_sth.tree_size);
          if (!ct::verify_consistency(old_sth.tree_size, new_sth.tree_size, old_sth.root_hash,
                                      new_sth.root_hash, proof)) {
            ++stats.failures;
            std::fprintf(stderr, "reader %d: consistency proof failed (%llu -> %llu)\n", t,
                         static_cast<unsigned long long>(old_sth.tree_size),
                         static_cast<unsigned long long>(new_sth.tree_size));
          } else {
            ++stats.consistency_verified;
          }
        }
        if (full_round) {
          // One full-size inclusion proof against the fresh head.
          const std::uint64_t index = rng() % sth.tree_size;
          const auto proof = service.inclusion_proof(index, sth.tree_size);
          if (!ct::verify_inclusion(service.leaf_hash_at(index), index, sth.tree_size, proof,
                                    sth.root_hash)) {
            ++stats.failures;
          } else {
            ++stats.inclusion_verified;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  for (std::thread& thread : submitters) thread.join();
  const double submit_window_s =
      std::chrono::duration<double>(Clock::now() - started_at).count();
  for (std::thread& thread : readers) thread.join();
  service.stop();  // seals the residual queue and flushes every completion
  const double total_s = std::chrono::duration<double>(Clock::now() - started_at).count();

  SubmitterStats submit_total;
  for (const SubmitterStats& stats : submitter_stats) {
    submit_total.attempted += stats.attempted;
    submit_total.queued += stats.queued;
    submit_total.overloaded += stats.overloaded;
  }
  ReaderStats read_total;
  for (const ReaderStats& stats : reader_stats) {
    read_total.sth_verified += stats.sth_verified;
    read_total.inclusion_verified += stats.inclusion_verified;
    read_total.consistency_verified += stats.consistency_verified;
    read_total.failures += stats.failures;
  }

  const std::uint64_t done = completed.load();
  const bool complete = done == submit_total.queued;
  const double throughput = static_cast<double>(done) / submit_window_s;
  const double p50 = latency_us.quantile(0.50);
  const double p90 = latency_us.quantile(0.90);
  const double p99 = latency_us.quantile(0.99);

  std::printf("submitters=%d readers=%d window=%.2fs (total %.2fs)\n", options.submitters,
              options.readers, submit_window_s, total_s);
  std::printf("submits: attempted=%llu queued=%llu overloaded=%llu completed=%llu%s\n",
              static_cast<unsigned long long>(submit_total.attempted),
              static_cast<unsigned long long>(submit_total.queued),
              static_cast<unsigned long long>(submit_total.overloaded),
              static_cast<unsigned long long>(done), complete ? "" : "  [INCOMPLETE]");
  std::printf("throughput: %.0f submits/s (tree size %llu, %llu batches)\n", throughput,
              static_cast<unsigned long long>(service.tree_size()),
              static_cast<unsigned long long>(service.sealed_batches()));
  std::printf("submit-to-SCT latency: p50=%.0fus p90=%.0fus p99=%.0fus\n", p50, p90, p99);
  std::printf("reads: sth=%llu inclusion=%llu consistency=%llu failures=%llu\n",
              static_cast<unsigned long long>(read_total.sth_verified),
              static_cast<unsigned long long>(read_total.inclusion_verified),
              static_cast<unsigned long long>(read_total.consistency_verified),
              static_cast<unsigned long long>(read_total.failures));
  bench::emit_result(
      "logsvc_loadgen",
      bench::Json()
          .field("submitters", options.submitters)
          .field("readers", options.readers)
          .field("window_s", submit_window_s, 3),
      bench::Json()
          .field("attempted", submit_total.attempted)
          .field("queued", submit_total.queued)
          .field("overload_rejected", submit_total.overloaded)
          .field("completed", done)
          .field("throughput_per_s", throughput, 1)
          .field("latency_us",
                 bench::Json().field("p50", p50, 1).field("p90", p90, 1).field("p99", p99, 1))
          .field("reads", bench::Json()
                              .field("sth", read_total.sth_verified)
                              .field("inclusion", read_total.inclusion_verified)
                              .field("consistency", read_total.consistency_verified)
                              .field("failures", read_total.failures)));

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argv[0]));
  return (read_total.failures == 0 && complete) ? 0 : 1;
}
