// §4.3: constructing FQDNs from CT data and verifying them with DNS.
//
// Expected funnel shape (paper, full scale): 210.7M constructed candidates
// -> 80.3M replies to test names, 61.5M replies to pseudo-random controls
// (catch-all zones!), 18.8M confirmed new FQDNs, of which only 1.1M were
// known to Sonar -> 17.7M novel. Our corpus runs at reduced scale; the
// ratios are the reproduction target.
//
// Ablations: disabling the control probes or the routing filter inflates
// the "discoveries" — quantified below.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

sim::DomainCorpus& corpus() {
  static sim::DomainCorpus corpus;
  return corpus;
}

void BM_DnsVerification(benchmark::State& state) {
  const dns::RecursiveResolver resolver(
      corpus().universe(),
      dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "bench", false});
  const auto& domains = corpus().registrable_domains();
  std::size_t i = 0;
  const SimTime when = SimTime::parse("2018-04-27");
  for (auto _ : state) {
    const auto name = dns::DnsName::parse("www." + domains[i % domains.size()]);
    ++i;
    if (name) benchmark::DoNotOptimize(resolver.resolve(*name, dns::RrType::A, when));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DnsVerification);

void print_funnel(const char* title, const core::LeakageReport& report) {
  std::printf("--- %s ---\n%s\n", title, core::LeakageStudy::render_funnel(report).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("§4.3 — subdomain enumeration funnel with DNS verification",
                "constructed candidates -> replies -> control-filtered -> novel");
  core::LeakageStudy study(corpus());

  const core::LeakageReport full = study.run();
  print_funnel("full methodology (controls + routing filter)", full);
  const double confirm_rate = full.funnel.candidates > 0
                                  ? 100.0 * static_cast<double>(full.funnel.confirmed) /
                                        static_cast<double>(full.funnel.candidates)
                                  : 0;
  const double novel_rate = full.funnel.confirmed > 0
                                ? 100.0 * static_cast<double>(full.funnel.novel) /
                                      static_cast<double>(full.funnel.confirmed)
                                : 0;
  std::printf("confirm rate: %.1f%% of candidates (paper: 18.8M/210.7M = 8.9%%)\n", confirm_rate);
  std::printf("novel rate:   %.1f%% of confirmed (paper: 17.7M/18.8M = 94%%)\n\n", novel_rate);

  enumeration::EnumerationOptions no_controls;
  no_controls.use_controls = false;
  print_funnel("ablation: without pseudo-random controls (default-A zones pollute)",
               study.run(no_controls));

  enumeration::EnumerationOptions no_routing;
  no_routing.use_routing_filter = false;
  print_funnel("ablation: without the routing-table filter", study.run(no_routing));

  return bench::run_benchmarks(argc, argv);
}
