// Shared scaffolding for the experiment binaries: each binary prints its
// paper artifact (the reproduction), runs its registered google-benchmark
// timings for the analysis hot paths, and finally snapshots the obs
// metrics registry as JSON next to the artifact output — the
// machine-readable producer behind the BENCH_*.json trajectory.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ctwatch/core/ctwatch.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::bench {

/// Minimal JSON object builder for RESULT lines. Insertion order is
/// preserved; values are rendered eagerly so a field() chain reads like
/// the object it produces.
class Json {
 public:
  Json& field(const char* key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  Json& field(const char* key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  Json& field(const char* key, int value) { return field(key, static_cast<std::int64_t>(value)); }
  Json& field(const char* key, unsigned value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  Json& field(const char* key, double value, int precision = 4) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return raw(key, buffer);
  }
  Json& field(const char* key, bool value) { return raw(key, value ? "true" : "false"); }
  Json& field(const char* key, const char* value) { return field(key, std::string(value)); }
  Json& field(const char* key, const std::string& value) {
    return raw(key, "\"" + value + "\"");  // RESULT strings are identifier-like; no escaping
  }
  Json& field(const char* key, const Json& value) { return raw(key, value.str()); }

  /// Appends a pre-rendered JSON value verbatim.
  Json& raw(const char* key, const std::string& rendered) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
    body_ += rendered;
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// The one RESULT schema every bench prints (and CI archives as
/// BENCH_<name>.json): {"bench":<name>,"config":<inputs>,"metrics":<outputs>}.
/// Scrapers key on the bench name instead of guessing each binary's shape.
inline void emit_result(const char* bench, const Json& config, const Json& metrics) {
  std::printf("RESULT {\"bench\":\"%s\",\"config\":%s,\"metrics\":%s}\n", bench,
              config.str().c_str(), metrics.str().c_str());
}

inline void banner(const char* artifact, const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

/// Builds the standard ecosystem and runs the 2013-2018 issuance timeline.
/// `scale` is the fraction of real-world volume. One magic-static guards
/// both construction and the run, so concurrent first calls are safe and
/// the timeline executes exactly once (with the first caller's scale).
/// The run's totals land in the obs metrics registry (sim.timeline.*,
/// ct.log.*) instead of being printf'd here.
inline sim::Ecosystem& timeline_ecosystem(double scale = 1.0 / 2000.0) {
  static sim::Ecosystem* ecosystem = [scale] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = false;
    auto* built = new sim::Ecosystem(options);
    sim::TimelineOptions timeline_options;
    timeline_options.scale = scale;
    sim::TimelineSimulator simulator(*built, timeline_options);
    simulator.run();
    return built;
  }();
  return *ecosystem;
}

/// Where run_benchmarks() writes the metrics snapshot (see
/// obs::metrics_snapshot_path — the logic lives in obs so tests share it).
inline std::string metrics_snapshot_path(const char* argv0) {
  return obs::metrics_snapshot_path(argv0);
}

/// Dumps the full metrics registry as JSON via obs::dump_metrics_snapshot
/// (headline metrics pre-registered for a stable key set).
inline void dump_metrics_snapshot(const std::string& path) {
  if (obs::dump_metrics_snapshot(path)) {
    std::printf("[obs] metrics snapshot written to %s\n", path.c_str());
  }
}

inline int run_benchmarks(int argc, char** argv) {
  const std::string snapshot_path = metrics_snapshot_path(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dump_metrics_snapshot(snapshot_path);
  return 0;
}

}  // namespace ctwatch::bench
