// Shared scaffolding for the experiment binaries: each binary prints its
// paper artifact (the reproduction) and then runs its registered
// google-benchmark timings for the analysis hot paths.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ctwatch/core/ctwatch.hpp"

namespace ctwatch::bench {

inline void banner(const char* artifact, const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

/// Builds the standard ecosystem and runs the 2013-2018 issuance timeline.
/// `scale` is the fraction of real-world volume.
inline sim::Ecosystem& timeline_ecosystem(double scale = 1.0 / 2000.0) {
  static sim::Ecosystem ecosystem = [] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = false;
    return sim::Ecosystem(options);
  }();
  static bool ran = false;
  if (!ran) {
    ran = true;
    sim::TimelineOptions options;
    options.scale = scale;
    sim::TimelineSimulator simulator(ecosystem, options);
    const sim::TimelineStats stats = simulator.run();
    std::printf("[timeline] issued %llu certificates, %llu log submissions, "
                "%llu rejected for overload (scale %.5f)\n\n",
                static_cast<unsigned long long>(stats.issued),
                static_cast<unsigned long long>(stats.log_submissions),
                static_cast<unsigned long long>(stats.overloaded), scale);
  }
  return ecosystem;
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ctwatch::bench
