// Table 4 + §6.2: the CT honeypot.
//
// Expected shape (paper): first DNS queries arrive 73 s to ~3 min after
// the CT log entry; a handful of ASes (Google, 1&1, Deteque, Amazon,
// OpenDNS, DigitalOcean) cover nearly all domains, 76 other ASes trail at
// one-to-two-plus hours; HTTP(S) probes follow after ~1-2 hours (two
// stragglers after 5 and 19 days); EDNS Client Subnet unmasks stub
// networks behind Google DNS, one of which (Quasi Networks) scans 30
// ports; the unique IPv6 addresses receive no traffic at all.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

void BM_HoneypotAnalysis(benchmark::State& state) {
  static sim::Ecosystem ecosystem = [] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = true;
    options.seed = 4242;
    return sim::Ecosystem(options);
  }();
  static honeypot::CtHoneypot pot = [] {
    honeypot::CtHoneypot hp(ecosystem);
    hp.create_subdomain(SimTime::parse("2018-04-12 14:16:14"));
    honeypot::AttackerFleet fleet(hp, honeypot::standard_fleet(), Rng(7));
    fleet.run();
    return hp;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(honeypot::analyze(pot));
  }
}
BENCHMARK(BM_HoneypotAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table 4 — CT honeypot: who reacts to new log entries, and how fast",
                "11 random subdomains in 3 batches; full fleet replay");
  sim::EcosystemOptions eco_options;
  eco_options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  eco_options.verify_submissions = false;
  eco_options.store_bodies = true;
  eco_options.seed = 1804;
  sim::Ecosystem ecosystem(eco_options);
  honeypot::CtHoneypot pot(ecosystem);

  // Three batches over 18 days, as in the paper.
  const char* batch1[] = {"2018-04-12 14:16:14", "2018-04-12 14:17:46"};
  const char* batch2[] = {"2018-04-20 10:42:59"};
  const char* batch3[] = {"2018-04-30 13:00:00", "2018-04-30 13:02:25", "2018-04-30 13:49:21",
                          "2018-04-30 13:59:22", "2018-04-30 14:09:22", "2018-04-30 14:19:22",
                          "2018-04-30 14:29:22", "2018-04-30 14:39:22"};
  for (const char* when : batch1) pot.create_subdomain(SimTime::parse(when));
  for (const char* when : batch2) pot.create_subdomain(SimTime::parse(when));
  for (const char* when : batch3) pot.create_subdomain(SimTime::parse(when));

  honeypot::AttackerFleet fleet(pot, honeypot::standard_fleet(), ecosystem.rng().fork());
  const honeypot::FleetStats stats = fleet.run();
  std::printf("[fleet] %llu DNS queries, %llu HTTP(S) connections, %llu port probes\n\n",
              static_cast<unsigned long long>(stats.dns_queries),
              static_cast<unsigned long long>(stats.http_connections),
              static_cast<unsigned long long>(stats.port_probes));

  const honeypot::HoneypotReport report = honeypot::analyze(pot);
  std::printf("%s\n", honeypot::render_table4(report).c_str());

  std::printf("EDNS client subnets observed: %zu (paper: 12 /24s)\n",
              report.ecs_subnets.size());
  std::vector<std::pair<std::string, std::uint64_t>> subnets(report.ecs_subnets.begin(),
                                                             report.ecs_subnets.end());
  std::sort(subnets.begin(), subnets.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top ECS subnets by query count:");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, subnets.size()); ++i) {
    std::printf(" %s(%llu)", subnets[i].first.c_str(),
                static_cast<unsigned long long>(subnets[i].second));
  }
  std::printf("  (paper: 115, 25, 10)\n");
  std::printf("ECS subnets with later IPv4 connections: %zu (paper: 4)\n",
              report.ecs_subnets_with_connections);
  for (const auto& scanner : report.port_scanners) {
    const auto origin = pot.as_registry().origin(scanner.source);
    std::printf("port scanner: %s probed %zu ports (AS%u %s) — paper: Quasi Networks, 30 ports\n",
                scanner.source.to_string().c_str(), scanner.distinct_ports,
                origin.value_or(0),
                origin ? pot.as_registry().name_of(*origin).c_str() : "?");
  }
  std::printf("IPv6 contacts beyond the CA validator: %llu (paper: none)\n",
              static_cast<unsigned long long>(report.ipv6_contacts));
  std::printf("CA-validation queries filtered: %llu\n\n",
              static_cast<unsigned long long>(report.queries_filtered_as_validation));
  return bench::run_benchmarks(argc, argv);
}
