// Micro-benchmarks of the hot substrate operations: hashing, signatures,
// Merkle tree maintenance, DER encoding, PSL splitting, DNS resolution.
#include <benchmark/benchmark.h>

#include "ctwatch/ct/log.hpp"
#include "ctwatch/dns/psl.hpp"
#include "ctwatch/sim/ca.hpp"

using namespace ctwatch;

namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = crypto::EcdsaKeyPair::derive("bench");
  const Bytes msg = to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = crypto::EcdsaKeyPair::derive("bench");
  const Bytes msg = to_bytes("benchmark message");
  const auto sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_verify(key.public_point(), msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_SimulatedSign(benchmark::State& state) {
  const auto signer = crypto::SimulatedSigner::derive("bench");
  const Bytes msg = to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->sign(msg));
  }
}
BENCHMARK(BM_SimulatedSign);

void BM_MerkleAppend(benchmark::State& state) {
  ct::MerkleTree tree;
  const crypto::Digest leaf = crypto::Sha256::hash(to_bytes("leaf"));
  for (auto _ : state) {
    tree.append(leaf);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MerkleAppend);

void BM_MerkleInclusionProof(benchmark::State& state) {
  ct::MerkleTree tree;
  for (int i = 0; i < 4096; ++i) {
    tree.append(crypto::Sha256::hash(to_bytes("leaf" + std::to_string(i))));
  }
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.inclusion_proof(index % 4096, 4096));
    ++index;
  }
}
BENCHMARK(BM_MerkleInclusionProof);

void BM_CertificateIssuance(benchmark::State& state) {
  sim::CertificateAuthority ca("Bench CA", "Bench Issuing CA",
                               crypto::SignatureScheme::hmac_sha256_simulated);
  ct::LogConfig config;
  config.name = "Bench Log";
  config.operator_name = "Bench";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  config.store_bodies = false;
  ct::CtLog log(config);
  const SimTime when = SimTime::parse("2018-04-01");
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim::IssuanceRequest request;
    request.subject_cn = "bench-" + std::to_string(n++) + ".example.org";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = when;
    request.not_after = when + 90 * 86400;
    request.logs = {&log};
    benchmark::DoNotOptimize(ca.issue(request, when));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CertificateIssuance);

void BM_PslSplit(benchmark::State& state) {
  const auto psl = dns::PublicSuffixList::bundled();
  const std::string name = "www.dev.example.co.uk";
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl.split(name));
  }
}
BENCHMARK(BM_PslSplit);

}  // namespace

BENCHMARK_MAIN();
