// namepool vs. heap strings on the §4.3 candidate composition.
//
// The tentpole claim behind ctwatch::namepool, measured head-to-head: the
// label × registrable-domain cross product (step 3 of the enumeration
// funnel) composed as interned-integer work against the pre-refactor
// representation (one std::string per candidate, an unordered_set for
// uniqueness). Both sides consume the identical construction plan and the
// identical domain list and both do their own suffix grouping inside the
// timed region, so the comparison is end-to-end for "generate candidates".
//
// Parity is enforced, not assumed: the pooled candidate stream must
// materialize byte-identically, in order, to the string stream, with the
// same composed/unique/too-long counts — any mismatch exits nonzero.
// The Table 2 ranking gets the same treatment: the pooled census top-20
// must equal the pre-refactor string pipeline's row for row.
// With --strict the bench also fails unless the pooled path is >= 2x
// faster and holds the candidate corpus in >= 4x fewer resident bytes.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ctwatch/x509/redaction.hpp"

using namespace ctwatch;

namespace {

sim::DomainCorpus& corpus() {
  static sim::DomainCorpus corpus;
  return corpus;
}

/// Census over the CT corpus; its pool carries the interned side.
enumeration::SubdomainCensus& census() {
  static enumeration::SubdomainCensus* census = [] {
    auto* built = new enumeration::SubdomainCensus(corpus().psl());
    built->add_names(corpus().ct_names());
    return built;
  }();
  return *census;
}

/// What the composition produced before the namepool refactor: every
/// candidate as its own heap string, uniqueness via a string hash set.
struct StringCandidates {
  std::vector<std::string> texts;
  std::unordered_set<std::string> uniq;
  std::uint64_t composed = 0;
  std::uint64_t unique = 0;
  std::uint64_t too_long = 0;
};

StringCandidates string_generate_candidates(
    const std::vector<std::pair<std::string, std::string>>& plan,
    const std::vector<std::string>& domain_list, const dns::PublicSuffixList& psl) {
  StringCandidates out;
  // Group the domain list by public suffix, preserving list order — the
  // same grouping generate_candidates() performs on refs.
  std::unordered_map<std::string, std::vector<const std::string*>> by_suffix;
  for (const std::string& domain : domain_list) {
    const auto split = psl.split(domain);
    if (!split) continue;
    by_suffix[split->public_suffix].push_back(&domain);
  }
  std::string candidate;
  for (const auto& [label, suffix] : plan) {
    const auto it = by_suffix.find(suffix);
    if (it == by_suffix.end()) continue;
    for (const std::string* domain : it->second) {
      if (label.size() + 1 + domain->size() > 253) {
        ++out.too_long;
        continue;
      }
      candidate.clear();
      candidate.reserve(label.size() + 1 + domain->size());
      candidate += label;
      candidate += '.';
      candidate += *domain;
      ++out.composed;
      if (out.uniq.insert(candidate).second) ++out.unique;
      out.texts.push_back(candidate);
    }
  }
  return out;
}

/// Heap footprint of one std::string (libstdc++ SSO threshold 15).
std::size_t string_heap_bytes(const std::string& s) {
  return s.capacity() > 15 ? s.capacity() + 1 : 0;
}

/// Resident bytes of the string-side candidate corpus: the candidate
/// vector's strings plus the uniqueness set (node + bucket overhead).
std::size_t string_resident_bytes(const StringCandidates& c) {
  std::size_t bytes = c.texts.capacity() * sizeof(std::string);
  for (const std::string& s : c.texts) bytes += string_heap_bytes(s);
  bytes += c.uniq.bucket_count() * sizeof(void*);
  for (const std::string& s : c.uniq) {
    bytes += sizeof(std::string) + 2 * sizeof(void*);  // node: string + next + hash
    bytes += string_heap_bytes(s);
  }
  return bytes;
}

/// Pre-refactor Table 2: parse every raw CT name with the string DnsName,
/// dedupe on canonical text, split at the public suffix, count the leading
/// subdomain label in a string-keyed map, sort for the top-n.
std::vector<std::pair<std::string, std::uint64_t>> string_table2_ranking(
    const std::vector<std::string>& raw_names, const dns::PublicSuffixList& psl,
    std::size_t top_n) {
  std::unordered_set<std::string> seen;
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const std::string& raw : raw_names) {
    if (x509::is_redacted_name(raw)) continue;
    const auto name = dns::DnsName::parse(raw);
    if (!name) continue;
    if (!seen.insert(name->to_string()).second) continue;
    const auto split = psl.split(*name);
    if (!split || split->subdomain_labels.empty()) continue;
    ++counts[name->labels().front()];
  }
  std::vector<std::pair<std::string, std::uint64_t>> all(counts.begin(), counts.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

struct Timed {
  double seconds = 0;
};

template <typename F>
Timed best_of(int repetitions, F&& body) {
  Timed best{1e300};
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best.seconds) best.seconds = elapsed.count();
  }
  return best;
}

void BM_PooledComposition(benchmark::State& state) {
  const enumeration::SubdomainEnumerator enumerator(census(), corpus().psl());
  std::uint64_t composed = 0;
  for (auto _ : state) {
    const auto set = enumerator.generate_candidates(corpus().registrable_domains());
    composed = set.composed;
    benchmark::DoNotOptimize(set.refs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(composed));
}
BENCHMARK(BM_PooledComposition)->Unit(benchmark::kMillisecond);

void BM_StringComposition(benchmark::State& state) {
  const enumeration::SubdomainEnumerator enumerator(census(), corpus().psl());
  const auto plan = enumerator.build_plan();
  std::uint64_t composed = 0;
  for (auto _ : state) {
    const auto set =
        string_generate_candidates(plan, corpus().registrable_domains(), corpus().psl());
    composed = set.composed;
    benchmark::DoNotOptimize(set.texts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(composed));
}
BENCHMARK(BM_StringComposition)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  bench::banner("namepool — interned vs. string candidate composition (§4.3 step 3)",
                "same plan, same domain list; parity enforced, --strict gates the floors");

  const enumeration::SubdomainEnumerator enumerator(census(), corpus().psl());
  const auto& domain_list = corpus().registrable_domains();
  namepool::NamePool& pool = census().pool();

  // Index the construction inputs first — intern the domain list and its
  // suffix splits, outside the measured delta. Both sides consume this
  // input corpus; what the memory comparison isolates is the *candidate*
  // corpus each representation then has to hold.
  for (const std::string& domain : domain_list) {
    if (const auto ref = dns::DnsName::parse_into(pool, domain)) {
      (void)corpus().psl().split(pool, *ref);
    }
  }

  // Cold run next: it carries the candidate interning cost, the
  // pool-growth delta and the fresh-composition count (vs. a pool already
  // holding the CT census). Timing then uses warm repetitions — the
  // steady state the funnel actually runs in, where every composition is
  // a dedup hit.
  const std::size_t pool_bytes_before = pool.bytes_used();
  enumeration::SubdomainEnumerator::CandidateSet pooled =
      enumerator.generate_candidates(domain_list);
  const std::size_t pool_bytes_delta = pool.bytes_used() - pool_bytes_before;
  const std::size_t pooled_resident =
      pool_bytes_delta + pooled.refs.capacity() * sizeof(namepool::NameRef);
  const Timed pooled_time = best_of(3, [&] {
    const auto warm = enumerator.generate_candidates(domain_list);
    benchmark::DoNotOptimize(warm.refs.data());
  });

  const auto plan = enumerator.build_plan();
  StringCandidates strings;
  const Timed string_time =
      best_of(3, [&] { strings = string_generate_candidates(plan, domain_list, corpus().psl()); });
  const std::size_t string_resident = string_resident_bytes(strings);

  // ---- Table 2 ranking: raw CT names -> top-20 leading labels ----
  // Pooled side rebuilds a census from scratch each repetition (pool
  // construction included); string side is the pre-refactor pipeline.
  const auto& ct_names = corpus().ct_names();
  constexpr std::size_t kTop = 20;
  std::vector<std::pair<std::string, std::uint64_t>> pooled_top;
  const Timed pooled_rank_time = best_of(3, [&] {
    enumeration::SubdomainCensus fresh(corpus().psl());
    fresh.add_names(ct_names);
    pooled_top = fresh.top_labels(kTop);
  });
  std::vector<std::pair<std::string, std::uint64_t>> string_top;
  const Timed string_rank_time =
      best_of(3, [&] { string_top = string_table2_ranking(ct_names, corpus().psl(), kTop); });
  const bool table2_parity = pooled_top == string_top;
  if (!table2_parity) {
    std::fprintf(stderr, "TABLE2 PARITY MISMATCH: pooled %zu rows vs string %zu rows\n",
                 pooled_top.size(), string_top.size());
    for (std::size_t i = 0; i < std::max(pooled_top.size(), string_top.size()); ++i) {
      const auto* p = i < pooled_top.size() ? &pooled_top[i] : nullptr;
      const auto* s = i < string_top.size() ? &string_top[i] : nullptr;
      std::fprintf(stderr, "  [%zu] pooled=%s:%llu string=%s:%llu\n", i,
                   p ? p->first.c_str() : "-", p ? static_cast<unsigned long long>(p->second) : 0,
                   s ? s->first.c_str() : "-", s ? static_cast<unsigned long long>(s->second) : 0);
    }
  }

  // ---- parity: the pooled stream must be byte-identical, in order ----
  // ("unique" is not compared: the pooled count is fresh-vs-census-pool,
  // the string count is distinct-within-run — different denominators.)
  bool parity = pooled.composed == strings.composed && pooled.too_long == strings.too_long &&
                pooled.refs.size() == strings.texts.size();
  if (parity) {
    std::string text;
    for (std::size_t i = 0; i < pooled.refs.size(); ++i) {
      text.clear();
      pool.append_to(text, pooled.refs[i]);
      if (text != strings.texts[i]) {
        std::fprintf(stderr, "PARITY MISMATCH at %zu: pooled=%s string=%s\n", i, text.c_str(),
                     strings.texts[i].c_str());
        parity = false;
        break;
      }
    }
  } else {
    std::fprintf(stderr,
                 "PARITY MISMATCH in counts: pooled composed=%llu too_long=%llu, "
                 "string composed=%llu too_long=%llu\n",
                 static_cast<unsigned long long>(pooled.composed),
                 static_cast<unsigned long long>(pooled.too_long),
                 static_cast<unsigned long long>(strings.composed),
                 static_cast<unsigned long long>(strings.too_long));
  }

  const double speedup = pooled_time.seconds > 0 ? string_time.seconds / pooled_time.seconds : 0;
  const double mem_ratio = pooled_resident > 0
                               ? static_cast<double>(string_resident) /
                                     static_cast<double>(pooled_resident)
                               : 0;
  const double pooled_rate =
      pooled_time.seconds > 0 ? static_cast<double>(pooled.composed) / pooled_time.seconds : 0;
  const double string_rate =
      string_time.seconds > 0 ? static_cast<double>(strings.composed) / string_time.seconds : 0;

  std::printf("candidates composed: %llu (%llu fresh vs census pool, %llu too long)\n",
              static_cast<unsigned long long>(pooled.composed),
              static_cast<unsigned long long>(pooled.unique),
              static_cast<unsigned long long>(pooled.too_long));
  std::printf("pooled:  %.3f ms  (%.1fM candidates/s)  resident %zu bytes\n",
              pooled_time.seconds * 1e3, pooled_rate / 1e6, pooled_resident);
  std::printf("strings: %.3f ms  (%.1fM candidates/s)  resident %zu bytes\n",
              string_time.seconds * 1e3, string_rate / 1e6, string_resident);
  std::printf("speedup: %.2fx (floor 2x)   memory ratio: %.2fx (floor 4x)   parity: %s\n",
              speedup, mem_ratio, parity ? "ok" : "FAILED");

  const double table2_speedup =
      pooled_rank_time.seconds > 0 ? string_rank_time.seconds / pooled_rank_time.seconds : 0;
  const double pooled_rank_rate = pooled_rank_time.seconds > 0
                                      ? static_cast<double>(ct_names.size()) /
                                            pooled_rank_time.seconds
                                      : 0;
  const double string_rank_rate = string_rank_time.seconds > 0
                                      ? static_cast<double>(ct_names.size()) /
                                            string_rank_time.seconds
                                      : 0;
  std::printf("table2:  pooled %.3f ms vs strings %.3f ms over %zu names (%.2fx, parity: %s)\n\n",
              pooled_rank_time.seconds * 1e3, string_rank_time.seconds * 1e3, ct_names.size(),
              table2_speedup, table2_parity ? "ok" : "FAILED");

  bench::emit_result(
      "name_interning",
      bench::Json()
          .field("composed", pooled.composed)
          .field("unique", pooled.unique)
          .field("too_long", pooled.too_long),
      bench::Json()
          .field("pooled_candidates_per_s", pooled_rate, 0)
          .field("string_candidates_per_s", string_rate, 0)
          .field("speedup", speedup, 3)
          .field("pooled_resident_bytes", static_cast<std::uint64_t>(pooled_resident))
          .field("string_resident_bytes", static_cast<std::uint64_t>(string_resident))
          .field("memory_ratio", mem_ratio, 3)
          .field("pool_bytes_used", static_cast<std::uint64_t>(pool.bytes_used()))
          .field("parity", parity)
          .field("table2_pooled_names_per_s", pooled_rank_rate, 0)
          .field("table2_string_names_per_s", string_rank_rate, 0)
          .field("table2_speedup", table2_speedup, 3)
          .field("table2_parity", table2_parity));

  int violations = 0;
  if (!parity) {
    std::fprintf(stderr, "FAIL: pooled/string candidate parity\n");
    ++violations;
  }
  if (!table2_parity) {
    std::fprintf(stderr, "FAIL: pooled/string Table 2 ranking parity\n");
    ++violations;
  }
  if (strict && speedup < 2.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the 2x floor\n", speedup);
    ++violations;
  }
  if (strict && mem_ratio < 4.0) {
    std::fprintf(stderr, "FAIL: memory ratio %.2fx below the 4x floor\n", mem_ratio);
    ++violations;
  }

  const int bench_rc = bench::run_benchmarks(argc, argv);
  return violations > 0 ? 1 : bench_rc;
}
