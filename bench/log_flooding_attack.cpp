// Attack study: overwhelming a CT log with valid submissions (§3.4's
// closing warning).
//
// "As CT logs accept all valid certificates, a mass submission of valid
//  unlogged final certificates could be used to overwhelm logs, which
//  could lead to log disqualification."
//
// The experiment: a victim log with finite capacity serves a legitimate CA
// at a comfortable rate. An attacker then harvests valid, never-logged
// final certificates and mass-submits them via add-chain. Because every
// submission is *valid*, the log cannot reject them on merit; its capacity
// drains, legitimate submissions start failing, and the operational health
// monitor disqualifies the log — at which point certificates relying on it
// lose Chrome CT compliance.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

void BM_FloodSubmission(benchmark::State& state) {
  ct::LogConfig config;
  config.name = "Flood Bench Log";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = true;
  config.store_bodies = false;
  ct::CtLog log(config);
  sim::CertificateAuthority ca("Flood CA", "Flood Issuing CA",
                               crypto::SignatureScheme::hmac_sha256_simulated);
  const SimTime when = SimTime::parse("2018-05-01");
  sim::IssuanceRequest request;
  request.subject_cn = "flood.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = when;
  request.not_after = when + 90 * 86400;
  const x509::Certificate cert = ca.issue_unlogged(request, when);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.add_chain(cert, ca.public_key(), when + (t++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FloodSubmission);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Log-flooding attack — mass submission of valid unlogged certificates",
                "capacity exhaustion -> legitimate rejections -> disqualification");

  ct::LogConfig config;
  config.name = "Victim Log";
  config.operator_name = "VictimOp";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = true;
  config.store_bodies = false;
  config.capacity_per_hour = 200;
  ct::CtLog victim(config);
  ct::LogConfig google_config = config;
  google_config.name = "Backup Google Log";
  google_config.capacity_per_hour = 0;
  ct::CtLog google_log(google_config);

  ct::LogList log_list;
  log_list.add_log(victim, SimTime::parse("2017-01-01"), /*google=*/false);
  log_list.add_log(google_log, SimTime::parse("2015-01-01"), /*google=*/true);

  sim::CertificateAuthority legit_ca("Legit CA", "Legit Issuing CA",
                                     crypto::SignatureScheme::hmac_sha256_simulated);
  sim::CertificateAuthority victim_ca("Harvested CA", "Harvested Issuing CA",
                                      crypto::SignatureScheme::hmac_sha256_simulated);

  // The attacker's ammunition: valid, unlogged final certificates. In the
  // real attack these are harvested from scans; their validity is what
  // makes them un-rejectable.
  const SimTime base = SimTime::parse("2018-05-01 00:00:00");
  std::vector<x509::Certificate> ammunition;
  for (int i = 0; i < 3000; ++i) {
    sim::IssuanceRequest request;
    request.subject_cn = "victimsite" + std::to_string(i) + ".example.net";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = base - 30 * 86400;
    request.not_after = base + 60 * 86400;
    ammunition.push_back(victim_ca.issue_unlogged(request, base - 30 * 86400));
  }

  // Hour-by-hour: legitimate issuance at 50/h; the attacker floods
  // 1000 submissions/h during hours 3..6.
  std::printf("%-6s %10s %12s %12s %14s\n", "hour", "legit ok", "legit fail", "flood sent",
              "rejections");
  Rng rng(3);
  std::size_t ammo_cursor = 0;
  bool disqualified = false;
  SimTime disqualified_at;
  for (int hour = 0; hour < 9; ++hour) {
    const SimTime hour_start = base + hour * 3600;
    std::uint64_t legit_ok = 0, legit_fail = 0, flood = 0;

    // Interleave legitimate and attack traffic through the hour (arrival
    // order matters: capacity is first-come-first-served).
    const bool attacking = hour >= 3 && hour < 7;
    const int legit_rate = 50;
    const int flood_rate = attacking ? 1000 : 0;
    const int total = legit_rate + flood_rate;
    std::vector<bool> is_legit_at(static_cast<std::size_t>(total), false);
    for (int i = 0; i < legit_rate; ++i) is_legit_at[static_cast<std::size_t>(i)] = true;
    rng.shuffle(is_legit_at);
    for (int i = 0; i < total; ++i) {
      const SimTime when = hour_start + rng.between(0, 3599);
      const bool is_legit = is_legit_at[static_cast<std::size_t>(i)];
      if (is_legit) {
        sim::IssuanceRequest request;
        request.subject_cn =
            "legit-" + std::to_string(hour) + "-" + std::to_string(i) + ".example.org";
        request.sans = {x509::SanEntry::dns(request.subject_cn)};
        request.not_before = when;
        request.not_after = when + 90 * 86400;
        request.logs = {&victim, &google_log};
        const auto issued = legit_ca.issue(request, when);
        if (issued.failed_logs.empty()) {
          ++legit_ok;
        } else {
          ++legit_fail;
        }
      } else {
        const auto& cert = ammunition[ammo_cursor++ % ammunition.size()];
        victim.add_chain(cert, victim_ca.public_key(), when);
        ++flood;
      }
    }
    std::printf("%-6d %10llu %12llu %12llu %14llu\n", hour,
                static_cast<unsigned long long>(legit_ok),
                static_cast<unsigned long long>(legit_fail),
                static_cast<unsigned long long>(flood),
                static_cast<unsigned long long>(victim.overload_rejections()));

    // The operator community reacts once rejections pile up.
    if (!disqualified) {
      const auto hit = ct::disqualify_overloaded_logs(log_list, {&victim}, 500,
                                                      hour_start + 3600);
      if (!hit.empty()) {
        disqualified = true;
        disqualified_at = hour_start + 3600;
        std::printf("       >>> %s disqualified at %s <<<\n", hit[0].c_str(),
                    disqualified_at.datetime_string().c_str());
      }
    }
  }

  // Policy impact: a certificate whose non-Google SCT came from the victim
  // log is no longer Chrome-compliant after disqualification.
  sim::IssuanceRequest request;
  request.subject_cn = "collateral.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = base;
  request.not_after = base + 90 * 86400;
  request.logs = {&victim, &google_log};
  const auto issued = legit_ca.issue(request, base + 1800);  // before the flood
  const ct::SignedEntry entry =
      ct::make_precert_entry(issued.final_certificate, legit_ca.public_key());
  const auto before = ct::evaluate_chrome_policy(issued.scts, entry, log_list,
                                                 disqualified_at - 86400, request.not_before,
                                                 request.not_after);
  const auto after = ct::evaluate_chrome_policy(issued.scts, entry, log_list,
                                                disqualified_at + 86400, request.not_before,
                                                request.not_after);
  std::printf("\ncollateral damage: certificate compliant before the incident: %s, "
              "after disqualification: %s (%s)\n\n",
              before.compliant ? "yes" : "no", after.compliant ? "yes" : "no",
              after.reason.c_str());
  return bench::run_benchmarks(argc, argv);
}
