// httpd_wire: wire-level load generator for the ctwatch::httpd front end.
//
// An in-process client fleet opens >= 1k real TCP connections to a live
// Server serving the RFC 6962 API over a LogService, then drives an
// open-loop request stream (exponential inter-arrivals at a target rate
// — arrivals never wait for completions, so queueing delay is measured,
// not hidden) with a Zipf-distributed endpoint mix: get-sth dominates,
// then get-entries, get-proof-by-hash, add-chain, get-sth-consistency —
// the shape real log front ends see (monitors poll heads far more often
// than anyone submits).
//
// Each client thread runs a poll loop over its share of the connections:
// requests are pipelined onto keep-alive connections at their arrival
// instants, responses stream back through the shared ResponseParser, and
// every completion records wire latency (arrival -> last response byte).
//
// Prints the unified RESULT schema:
//   RESULT {"bench":"httpd_wire","config":{...},"metrics":{rps,
//           rps_per_core, p50_us, p99_us, ...}}
//
// --strict gates zero transport/HTTP errors (CI smoke). Deterministic
// endpoint mix per --seed; timings are hardware-dependent, correctness
// (status codes, response parse) is not.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/ct/log.hpp"
#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/httpd/ct_handlers.hpp"
#include "ctwatch/httpd/http.hpp"
#include "ctwatch/httpd/json.hpp"
#include "ctwatch/httpd/server.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/util/encoding.hpp"
#include "ctwatch/x509/certificate.hpp"

using namespace ctwatch;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::size_t connections = 1024;
  int client_threads = 8;
  int server_workers = 4;
  double duration_seconds = 3.0;
  double target_rps = 8000.0;
  double zipf_s = 1.0;
  std::uint64_t seed = 42;
  bool strict = false;
};

/// Raises RLIMIT_NOFILE to its hard cap; returns the resulting soft cap.
std::size_t raise_nofile_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
    getrlimit(RLIMIT_NOFILE, &lim);
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

// --- request templates -----------------------------------------------------

struct Endpoint {
  const char* name;
  std::string wire;  ///< full serialized request (keep-alive)
};

std::string get_request(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
}

std::string post_request(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n"
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string url_encode_b64(const std::string& b64) {
  std::string out;
  for (const char c : b64) {
    if (c == '+') out += "%2B";
    else if (c == '/') out += "%2F";
    else if (c == '=') out += "%3D";
    else out.push_back(c);
  }
  return out;
}

// --- per-thread client loop ------------------------------------------------

struct Conn {
  int fd = -1;
  std::string out;
  std::size_t out_pos = 0;
  httpd::ResponseParser parser;
  std::deque<std::pair<Clock::time_point, std::size_t>> inflight;  // (sent_at, endpoint)
};

struct ThreadStats {
  std::vector<std::uint32_t> latencies_us;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;       ///< non-200 statuses
  std::uint64_t transport = 0;    ///< socket/parse failures
  std::uint64_t sent = 0;
};

int connect_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

void client_thread(std::uint16_t port, const Options& options,
                   const std::vector<Endpoint>& endpoints, const std::vector<double>& cdf,
                   std::size_t n_conns, std::uint64_t seed, Clock::time_point deadline,
                   ThreadStats& stats) {
  std::vector<Conn> conns(n_conns);
  for (Conn& c : conns) {
    c.fd = connect_client(port);
    if (c.fd < 0) {
      ++stats.transport;
    }
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double thread_rate =
      options.target_rps / static_cast<double>(options.client_threads);
  std::exponential_distribution<double> interarrival(thread_rate);

  Clock::time_point next_arrival = Clock::now();
  std::size_t rr = 0;
  std::vector<pollfd> fds(conns.size());

  while (Clock::now() < deadline) {
    // Open loop: emit every arrival whose instant has passed, regardless
    // of how many responses are still outstanding.
    const Clock::time_point now = Clock::now();
    while (next_arrival <= now) {
      const double u = uniform(rng);
      const std::size_t pick = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      const std::size_t endpoint = std::min(pick, endpoints.size() - 1);
      Conn& c = conns[rr++ % conns.size()];
      if (c.fd >= 0) {
        c.out += endpoints[endpoint].wire;
        c.inflight.emplace_back(next_arrival, endpoint);
        ++stats.sent;
      }
      next_arrival += std::chrono::microseconds(
          static_cast<std::int64_t>(interarrival(rng) * 1e6));
    }

    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i].fd;
      fds[i].events = POLLIN;
      if (conns[i].out_pos < conns[i].out.size()) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    const auto wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
        next_arrival - Clock::now()).count();
    const int timeout_ms = static_cast<int>(std::clamp<std::int64_t>(wait_us / 1000, 0, 10));
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      if (c.fd < 0) continue;
      if ((fds[i].revents & POLLOUT) != 0 && c.out_pos < c.out.size()) {
        const ssize_t n = ::write(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos);
        if (n > 0) {
          c.out_pos += static_cast<std::size_t>(n);
          if (c.out_pos == c.out.size()) {
            c.out.clear();
            c.out_pos = 0;
          }
        }
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[8192];
        for (;;) {
          const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
          if (n > 0) {
            c.parser.feed(chunk, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          // Peer closed or error: everything outstanding is lost.
          stats.transport += c.inflight.size();
          c.inflight.clear();
          ::close(c.fd);
          c.fd = -1;
          break;
        }
        if (c.fd < 0) continue;
        httpd::ParsedResponse response;
        while (c.parser.next(response) == httpd::ParseResult::request) {
          if (c.inflight.empty()) {
            ++stats.transport;  // response with no matching request
            continue;
          }
          const auto [sent_at, endpoint] = c.inflight.front();
          c.inflight.pop_front();
          (void)endpoint;
          ++stats.completed;
          if (response.status != 200) ++stats.errors;
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - sent_at).count();
          stats.latencies_us.push_back(
              static_cast<std::uint32_t>(std::clamp<std::int64_t>(us, 0, UINT32_MAX)));
        }
      }
    }
  }

  // Drain grace: give outstanding responses a moment to land.
  const Clock::time_point drain_end = Clock::now() + std::chrono::milliseconds(500);
  for (Conn& c : conns) {
    while (c.fd >= 0 && !c.inflight.empty() && Clock::now() < drain_end) {
      if (c.out_pos < c.out.size()) {
        const ssize_t n = ::write(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos);
        if (n > 0) c.out_pos += static_cast<std::size_t>(n);
      }
      char chunk[8192];
      const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
      if (n > 0) {
        c.parser.feed(chunk, static_cast<std::size_t>(n));
        httpd::ParsedResponse response;
        while (c.parser.next(response) == httpd::ParseResult::request) {
          if (c.inflight.empty()) break;
          const auto [sent_at, endpoint] = c.inflight.front();
          (void)endpoint;
          c.inflight.pop_front();
          ++stats.completed;
          if (response.status != 200) ++stats.errors;
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - sent_at).count();
          stats.latencies_us.push_back(
              static_cast<std::uint32_t>(std::clamp<std::int64_t>(us, 0, UINT32_MAX)));
        }
      } else if (n == 0) {
        break;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  for (Conn& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

/// Blocking startup round trip: the server must answer before the clock
/// starts, and the tree must be seeded so every read endpoint has data.
std::optional<std::string> blocking_round_trip(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  httpd::ResponseParser parser;
  httpd::ParsedResponse response;
  for (;;) {
    const httpd::ParseResult r = parser.next(response);
    if (r == httpd::ParseResult::request) {
      ::close(fd);
      if (response.status != 200) return std::nullopt;
      return response.body;
    }
    if (r != httpd::ParseResult::need_more) break;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    parser.feed(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return std::nullopt;
}

std::uint32_t percentile(std::vector<std::uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::strlen(prefix));
      return std::nullopt;
    };
    if (const auto v = value("--connections=")) options.connections = std::stoull(*v);
    else if (const auto v = value("--client-threads=")) options.client_threads = std::stoi(*v);
    else if (const auto v = value("--workers=")) options.server_workers = std::stoi(*v);
    else if (const auto v = value("--duration-seconds=")) options.duration_seconds = std::stod(*v);
    else if (const auto v = value("--target-rps=")) options.target_rps = std::stod(*v);
    else if (const auto v = value("--zipf-s=")) options.zipf_s = std::stod(*v);
    else if (const auto v = value("--seed=")) options.seed = std::stoull(*v);
    else if (arg == "--strict") options.strict = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::size_t nofile = raise_nofile_limit();
  // Both ends of every connection live in this process, plus headroom
  // for the listener, wake pipes, and runtime fds.
  const std::size_t max_conns = nofile > 256 ? (nofile - 256) / 2 : 64;
  if (options.connections > max_conns) {
    std::printf("[httpd_wire] clamping connections %zu -> %zu (RLIMIT_NOFILE %zu)\n",
                options.connections, max_conns, nofile);
    options.connections = max_conns;
  }

  // --- server under test ---
  logsvc::Config config;
  config.name = "Wire Bench Log";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = std::chrono::milliseconds(1);
  logsvc::LogService service(config);

  httpd::Router router;
  httpd::register_ct_api(router, service);
  httpd::ServerOptions server_options;
  server_options.workers = options.server_workers;
  server_options.max_connections = options.connections + 64;
  httpd::Server server(server_options, std::move(router));
  if (!server.start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }

  // --- seed the tree + startup round-trip check ---
  auto signer = crypto::make_signer("wire-bench-ca", crypto::SignatureScheme::hmac_sha256_simulated);
  x509::DistinguishedName dn;
  dn.common_name = "Wire Bench CA";
  x509::CertificateBuilder issuer_builder;
  issuer_builder.serial(1).issuer(dn).subject_cn("Wire Bench CA")
      .validity(SimTime::parse("2018-01-01"), SimTime::parse("2020-01-01"))
      .subject_key(*signer);
  const x509::Certificate issuer_cert = issuer_builder.sign(*signer);
  x509::CertificateBuilder leaf_builder;
  leaf_builder.serial(2).issuer(dn).subject_cn("bench.example.org")
      .validity(SimTime::parse("2018-04-01"), SimTime::parse("2018-07-01"))
      .subject_key(*signer).add_dns_san("bench.example.org");
  const x509::Certificate leaf = leaf_builder.sign(*signer);
  httpd::json::Array chain;
  chain.emplace_back(base64_encode(leaf.encode()));
  chain.emplace_back(base64_encode(issuer_cert.encode()));
  httpd::json::Object chain_obj;
  chain_obj.emplace("chain", httpd::json::Value(std::move(chain)));
  const std::string chain_body = httpd::json::Value(std::move(chain_obj)).dump();

  const auto seeded = blocking_round_trip(
      server.port(), post_request("/ct/v1/add-chain", chain_body) );
  if (!seeded) {
    std::fprintf(stderr, "startup round trip failed: add-chain did not answer 200\n");
    return 1;
  }
  const auto sct_doc = httpd::json::parse(*seeded);
  const std::uint64_t ts = sct_doc ? sct_doc->get_u64("timestamp").value_or(0) : 0;
  const crypto::Digest leaf_hash =
      ct::leaf_hash(ct::merkle_leaf_bytes(ts, ct::make_x509_entry(leaf)));
  if (!blocking_round_trip(server.port(), get_request("/ct/v1/get-sth"))) {
    std::fprintf(stderr, "startup round trip failed: get-sth did not answer 200\n");
    return 1;
  }

  // --- Zipf endpoint mix (rank order: what real front ends see) ---
  std::vector<Endpoint> endpoints;
  endpoints.push_back({"get-sth", get_request("/ct/v1/get-sth")});
  endpoints.push_back({"get-entries", get_request("/ct/v1/get-entries?start=0&end=31")});
  endpoints.push_back(
      {"get-proof-by-hash",
       get_request("/ct/v1/get-proof-by-hash?hash=" +
                   url_encode_b64(base64_encode(leaf_hash)) + "&tree_size=1")});
  endpoints.push_back({"add-chain", post_request("/ct/v1/add-chain", chain_body)});
  endpoints.push_back(
      {"get-sth-consistency", get_request("/ct/v1/get-sth-consistency?first=1&second=1")});
  std::vector<double> cdf;
  double total = 0;
  for (std::size_t k = 0; k < endpoints.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), options.zipf_s);
  }
  double acc = 0;
  for (std::size_t k = 0; k < endpoints.size(); ++k) {
    acc += (1.0 / std::pow(static_cast<double>(k + 1), options.zipf_s)) / total;
    cdf.push_back(acc);
  }

  // --- the fleet ---
  bench::banner("httpd_wire: open-loop wire load on the RFC 6962 front end",
                "Zipf endpoint mix over >= 1k keep-alive connections; "
                "latency is arrival -> last response byte (queueing included).");
  const int threads = std::max(1, options.client_threads);
  std::vector<ThreadStats> stats(static_cast<std::size_t>(threads));
  std::vector<std::thread> fleet;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::microseconds(
                  static_cast<std::int64_t>(options.duration_seconds * 1e6));
  const std::size_t base = options.connections / static_cast<std::size_t>(threads);
  std::size_t extra = options.connections % static_cast<std::size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    const std::size_t n_conns = base + (static_cast<std::size_t>(t) < extra ? 1 : 0);
    fleet.emplace_back(client_thread, server.port(), std::cref(options), std::cref(endpoints),
                       std::cref(cdf), n_conns, options.seed + static_cast<std::uint64_t>(t),
                       deadline, std::ref(stats[static_cast<std::size_t>(t)]));
  }
  for (std::thread& thread : fleet) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  // --- aggregate ---
  std::vector<std::uint32_t> latencies;
  std::uint64_t completed = 0, errors = 0, transport = 0, sent = 0;
  for (const ThreadStats& s : stats) {
    completed += s.completed;
    errors += s.errors;
    transport += s.transport;
    sent += s.sent;
    latencies.insert(latencies.end(), s.latencies_us.begin(), s.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double rps = completed / elapsed;
  const double rps_per_core = rps / std::max(1, options.server_workers);

  std::printf("connections=%zu sent=%llu completed=%llu errors=%llu transport=%llu\n",
              options.connections, static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(transport));
  std::printf("rps=%.0f rps/core=%.0f p50=%uus p90=%uus p99=%uus max=%uus\n", rps, rps_per_core,
              percentile(latencies, 0.50), percentile(latencies, 0.90),
              percentile(latencies, 0.99), latencies.empty() ? 0 : latencies.back());

  bench::Json config_json;
  config_json.field("connections", static_cast<std::uint64_t>(options.connections))
      .field("client_threads", options.client_threads)
      .field("server_workers", options.server_workers)
      .field("duration_seconds", options.duration_seconds, 2)
      .field("target_rps", options.target_rps, 0)
      .field("zipf_s", options.zipf_s, 2)
      .field("seed", options.seed);
  bench::Json metrics_json;
  metrics_json.field("sent", sent)
      .field("completed", completed)
      .field("errors", errors)
      .field("transport_failures", transport)
      .field("rps", rps, 1)
      .field("rps_per_core", rps_per_core, 1)
      .field("p50_us", static_cast<std::uint64_t>(percentile(latencies, 0.50)))
      .field("p90_us", static_cast<std::uint64_t>(percentile(latencies, 0.90)))
      .field("p99_us", static_cast<std::uint64_t>(percentile(latencies, 0.99)))
      .field("max_us",
             static_cast<std::uint64_t>(latencies.empty() ? 0 : latencies.back()))
      .field("server_accepted", server.connections_accepted())
      .field("server_requests", server.requests_served())
      .field("tree_size", service.tree_size());
  bench::emit_result("httpd_wire", config_json, metrics_json);

  server.stop();
  service.stop();

  if (options.strict) {
    if (completed == 0 || errors != 0 || transport != 0) {
      std::fprintf(stderr, "STRICT FAIL: completed=%llu errors=%llu transport=%llu\n",
                   static_cast<unsigned long long>(completed),
                   static_cast<unsigned long long>(errors),
                   static_cast<unsigned long long>(transport));
      return 1;
    }
    std::printf("STRICT OK\n");
  }
  return 0;
}
