// Table 1: top CT logs by number of observed connections, split by SCT
// delivery channel.
//
// Expected shape (paper): the certificate channel is led by Google Pilot
// (~29 %), Symantec (~18 %), Google Rocketeer (~17 %), DigiCert (~10 %);
// the TLS-extension channel is led by Symantec (~40 %), Pilot (~26 %),
// Rocketeer (~23 %); the Let's Encrypt logs (Nimbus/Icarus) are almost
// invisible in traffic despite dominating issuance — the §3.3 contrast.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

sim::Ecosystem& passive_ecosystem() {
  static sim::Ecosystem ecosystem = [] {
    sim::EcosystemOptions options;
    options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    options.verify_submissions = false;
    options.store_bodies = false;
    options.seed = 1702;
    return sim::Ecosystem(options);
  }();
  return ecosystem;
}

void BM_TopLogAggregation(benchmark::State& state) {
  // Re-render the Table 1 aggregation from an already filled monitor.
  static sim::ServerPopulation population(passive_ecosystem(), sim::PopulationOptions{});
  static monitor::PassiveMonitor monitor = [] {
    monitor::PassiveMonitor m(passive_ecosystem().log_list());
    sim::TrafficOptions options;
    options.connections_per_day = 1000;  // smaller run for the timing loop
    sim::TrafficGenerator generator(population, options, Rng(4));
    generator.run(m);
    return m;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::render_top_logs(monitor.log_usage()));
  }
}
BENCHMARK(BM_TopLogAggregation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table 1 — top CT logs by observed SCTs (passive view)",
                "shares within each delivery channel; compare with Table 1 of the paper");
  sim::ServerPopulation population(passive_ecosystem(), sim::PopulationOptions{});
  monitor::PassiveMonitor monitor(passive_ecosystem().log_list());
  sim::TrafficGenerator generator(population, sim::TrafficOptions{},
                                  passive_ecosystem().rng().fork());
  generator.run(monitor);
  std::printf("%s\n", core::render_top_logs(monitor.log_usage(), 15).c_str());
  return bench::run_benchmarks(argc, argv);
}
