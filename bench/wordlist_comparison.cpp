// §4.3 (first half): brute-force wordlists vs. the labels CT actually
// leaks.
//
// Expected shape (paper): of subbrute's 101k entries only 16 occur as CT
// subdomain labels; of dnsrecon's 1.9k entries only 12 — the wordlists
// would not have found the real, existing FQDNs that CT exposes for free.
#include "bench_common.hpp"

using namespace ctwatch;

namespace {

sim::DomainCorpus& corpus() {
  static sim::DomainCorpus corpus;
  return corpus;
}

void BM_WordlistComparison(benchmark::State& state) {
  static const auto census = [] {
    enumeration::SubdomainCensus c(corpus().psl());
    c.add_names(corpus().ct_names());
    return c;
  }();
  const auto wordlist = enumeration::subbrute_like_wordlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumeration::compare_wordlist(wordlist, census));
  }
}
BENCHMARK(BM_WordlistComparison)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("§4.3 — brute-force wordlists vs. CT-leaked labels",
                "how many wordlist entries occur as subdomain labels in CT");
  enumeration::SubdomainCensus census(corpus().psl());
  census.add_names(corpus().ct_names());

  const auto subbrute = enumeration::subbrute_like_wordlist();
  const auto dnsrecon = enumeration::dnsrecon_like_wordlist();
  const auto sb = enumeration::compare_wordlist(subbrute, census);
  const auto dr = enumeration::compare_wordlist(dnsrecon, census);
  std::printf("subbrute-like list: %zu entries, %zu occur in CT (paper: 101k -> 16)\n",
              sb.wordlist_size, sb.present_in_ct);
  std::printf("dnsrecon-like list: %zu entries, %zu occur in CT (paper: 1.9k -> 12)\n\n",
              dr.wordlist_size, dr.present_in_ct);
  return bench::run_benchmarks(argc, argv);
}
