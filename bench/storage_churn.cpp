// Storage churn harness: kill/recover cycles against the durable log store.
//
// Each cycle opens the store (running crash recovery), adopts it into a
// live LogService, submits a stream of entries, and kills the process
// model at a seed-derived write ordinal via the deterministic crash-point
// seam ("storage.crash"). Acknowledged submissions — SCT released, which
// the service only does after the sealed batch is fsync'd — must ALL
// survive into the next cycle: `sealed_lost` stays zero or the binary
// fails. Every recovery is cross-checked cryptographically: the adopted
// STH verifies against the log key, and a consistency proof links the
// last acknowledged head to the recovered head.
//
// Submissions are sequential (one batch per entry), so the write-ordinal
// stream is deterministic: same seed, same crash points, same JSON.
//
//   ./storage_churn --cycles=25 --entries=40 --seed=0x57C4A5 --strict
//
// --strict additionally gates that the churn actually exercised the crash
// path (at least a quarter of the cycles died mid-write) — a degenerate
// run where every cycle closes cleanly must not pass CI as a recovery
// test. Invariant violations (sealed loss, proof failures, refused opens)
// are fatal with or without --strict.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/storage/log_store.hpp"

namespace {

using namespace ctwatch;

struct Options {
  std::uint64_t cycles = 25;
  std::uint64_t entries = 40;
  std::uint32_t checkpoint_interval = 4;
  std::uint64_t seed = 0x57C4A5ULL;
  bool strict = false;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--cycles="))
      options.cycles = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--entries="))
      options.entries = std::strtoull(v, nullptr, 0);
    else if (const char* v = value("--checkpoint-interval="))
      options.checkpoint_interval = static_cast<std::uint32_t>(std::strtoull(v, nullptr, 0));
    else if (const char* v = value("--seed="))
      options.seed = std::strtoull(v, nullptr, 0);
    else if (std::strcmp(arg, "--strict") == 0)
      options.strict = true;
    else
      std::fprintf(stderr, "storage_churn: ignoring unknown argument %s\n", arg);
  }
  return options;
}

std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

crypto::Digest digest_of(const std::string& s) { return crypto::Sha256::hash(to_bytes(s)); }

ct::SignedEntry entry_of(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("churn-entry-" + std::to_string(n));
  return entry;
}

logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, std::uint64_t n) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      entry_of(n), digest_of("churn-fp-" + std::to_string(n)), "Churn CA",
      SimTime::parse("2018-04-01"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) return logsvc::SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::banner("storage churn: kill/recover cycles on the durable log store",
                "deterministic crash points; acknowledged entries must survive every kill");

  std::string dir_template = "ctwatch_storage_churn.XXXXXX";
  const char* dir_raw = ::mkdtemp(dir_template.data());
  if (dir_raw == nullptr) {
    std::fprintf(stderr, "storage_churn: mkdtemp failed\n");
    return 2;
  }
  const std::string dir = dir_raw;

  std::uint64_t rng = options.seed | 1;
  std::uint64_t submitted = 0;
  std::uint64_t acked_total = 0;
  std::uint64_t storage_errors = 0;
  std::uint64_t crashed_cycles = 0;
  std::uint64_t orderly_cycles = 0;
  std::uint64_t sealed_lost = 0;
  std::uint64_t replayed_batches = 0;
  std::uint64_t replayed_entries = 0;
  std::uint64_t discarded_unsealed = 0;
  std::uint64_t wal_torn_bytes = 0;
  std::uint64_t stale_wal_records = 0;
  std::uint64_t open_failures = 0;
  std::uint64_t sth_verify_failures = 0;
  std::uint64_t consistency_failures = 0;
  std::vector<double> recovery_us;

  // The last acknowledged head: every later recovery must contain it.
  std::optional<ct::SignedTreeHead> last_acked;

  // Rough ceiling on write ordinals per cycle: 2 per commit (append +
  // sync) plus checkpoint traffic. Drawing crash points from ~1.5x that
  // range mixes mid-write kills with orderly closes.
  const std::uint64_t ordinal_range = options.entries * 3 + 12;

  std::printf("dir %s, %" PRIu64 " cycles x %" PRIu64 " entries, checkpoint every %u, seed 0x%"
              PRIx64 "\n\n",
              dir.c_str(), options.cycles, options.entries, options.checkpoint_interval,
              options.seed);
  std::printf("%5s %9s %7s %9s %9s %10s %8s\n", "cycle", "recovered", "acked", "replayed",
              "discard", "recover_us", "fate");

  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint64_t cycle = 0; cycle < options.cycles; ++cycle) {
    chaos::FaultInjector injector(options.seed ^ (cycle * 0x9E3779B97F4A7C15ULL));
    const std::uint64_t crash_at = xorshift64(rng) % ordinal_range;
    chaos::FaultPlan plan;
    plan.outages.push_back(chaos::OutageWindow{crash_at, std::uint64_t{1} << 62});
    plan.outage_kind = chaos::FaultKind::error;
    injector.plan("storage.crash", plan);

    storage::LogStoreOptions store_options;
    store_options.dir = dir;
    store_options.chaos = &injector;
    store_options.checkpoint_interval_batches = options.checkpoint_interval;
    storage::LogStore::Open open = storage::LogStore::open(store_options);
    if (!open.store) {
      std::fprintf(stderr, "FAIL: cycle %" PRIu64 " refused to open: %s\n", cycle,
                   open.detail.c_str());
      ++open_failures;
      break;
    }
    const storage::RecoveryReport report = open.store->recovery();  // by value: outlives the store
    replayed_batches += report.replayed_batches;
    replayed_entries += report.replayed_entries;
    discarded_unsealed += report.discarded_unsealed;
    wal_torn_bytes += report.wal_torn_bytes;
    stale_wal_records += report.stale_wal_records;
    recovery_us.push_back(static_cast<double>(report.recovery_us));

    // Every acknowledged entry must have survived the previous kill.
    const std::uint64_t recovered = open.store->tree_size();
    if (recovered < acked_total) sealed_lost += acked_total - recovered;

    logsvc::Config config;
    config.name = "Storage Churn Log";
    config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    config.merge_delay = std::chrono::microseconds(200);
    config.storage = open.store.get();
    logsvc::LogService service(config);

    // Cryptographic cross-check: the recovered head verifies under the
    // log key, and extends the last acknowledged head.
    const ct::SignedTreeHead recovered_sth = service.get_sth();
    if (!ct::verify_sth(recovered_sth, service.public_key())) ++sth_verify_failures;
    if (last_acked && recovered >= last_acked->tree_size) {
      const auto proof = service.consistency_proof(last_acked->tree_size, recovered);
      if (!ct::verify_consistency(last_acked->tree_size, recovered, last_acked->root_hash,
                                  recovered_sth.root_hash, proof)) {
        ++consistency_failures;
      }
    }

    std::uint64_t acked_this_cycle = 0;
    bool crashed = false;
    for (std::uint64_t i = 0; i < options.entries; ++i) {
      const logsvc::SubmitOutcome outcome = submit_wait(service, submitted);
      ++submitted;
      if (outcome.status == logsvc::SubmitStatus::ok) {
        ++acked_this_cycle;
        ++acked_total;
        last_acked = service.get_sth();
      } else if (outcome.status == logsvc::SubmitStatus::storage_error) {
        ++storage_errors;
        crashed = true;
        break;  // fail-stop: the store is dead until reopen
      }
    }
    if (crashed) {
      ++crashed_cycles;
    } else {
      ++orderly_cycles;
    }
    service.stop();
    // Orderly close flushes and checkpoints; after a crash it fails
    // against the latched store, which is exactly the point.
    (void)open.store->close();
    open.store.reset();

    std::printf("%5" PRIu64 " %9" PRIu64 " %7" PRIu64 " %9" PRIu64 " %9" PRIu64 " %10" PRIu64
                " %8s\n",
                cycle, recovered, acked_this_cycle, report.replayed_batches,
                report.discarded_unsealed, report.recovery_us, crashed ? "killed" : "orderly");
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // Final recovery with no chaos: everything acknowledged is served.
  {
    storage::LogStoreOptions store_options;
    store_options.dir = dir;
    store_options.checkpoint_interval_batches = options.checkpoint_interval;
    storage::LogStore::Open open = storage::LogStore::open(store_options);
    if (!open.store) {
      std::fprintf(stderr, "FAIL: final reopen refused: %s\n", open.detail.c_str());
      ++open_failures;
    } else {
      if (open.store->tree_size() < acked_total) {
        sealed_lost += acked_total - open.store->tree_size();
      }
      (void)open.store->close();
    }
  }
  std::filesystem::remove_all(dir);

  const bool invariants_ok =
      sealed_lost == 0 && open_failures == 0 && sth_verify_failures == 0 &&
      consistency_failures == 0;
  // A churn run that never crashed tested nothing; --strict refuses it.
  const bool exercised = crashed_cycles * 4 >= options.cycles;

  std::printf("\n%" PRIu64 " cycles (%" PRIu64 " killed, %" PRIu64 " orderly): %" PRIu64
              "/%" PRIu64 " entries acked, %" PRIu64 " sealed lost\n",
              crashed_cycles + orderly_cycles, crashed_cycles, orderly_cycles, acked_total,
              submitted, sealed_lost);

  bench::emit_result(
      "storage_churn",
      bench::Json()
          .field("cycles", options.cycles)
          .field("entries_per_cycle", options.entries)
          .field("checkpoint_interval", std::uint64_t{options.checkpoint_interval})
          .field("seed", options.seed)
          .field("strict", options.strict),
      bench::Json()
          .field("submitted", submitted)
          .field("acked", acked_total)
          .field("sealed_lost", sealed_lost)
          .field("storage_errors", storage_errors)
          .field("crashed_cycles", crashed_cycles)
          .field("orderly_cycles", orderly_cycles)
          .field("replayed_batches", replayed_batches)
          .field("replayed_entries", replayed_entries)
          .field("discarded_unsealed", discarded_unsealed)
          .field("wal_torn_bytes", wal_torn_bytes)
          .field("stale_wal_records", stale_wal_records)
          .field("open_failures", open_failures)
          .field("sth_verify_failures", sth_verify_failures)
          .field("consistency_failures", consistency_failures)
          .field("recovery_us", bench::Json()
                                    .field("p50", quantile(recovery_us, 0.50), 1)
                                    .field("p99", quantile(recovery_us, 0.99), 1))
          .field("acked_per_sec", elapsed_s > 0 ? acked_total / elapsed_s : 0.0, 1)
          .field("invariants_ok", invariants_ok)
          .field("crash_path_exercised", exercised));

  if (!invariants_ok) {
    std::fprintf(stderr,
                 "FAIL: sealed_lost=%" PRIu64 " open_failures=%" PRIu64
                 " sth_verify_failures=%" PRIu64 " consistency_failures=%" PRIu64 "\n",
                 sealed_lost, open_failures, sth_verify_failures, consistency_failures);
    return 3;
  }
  if (options.strict && !exercised) {
    std::fprintf(stderr,
                 "FAIL (--strict): only %" PRIu64 "/%" PRIu64
                 " cycles hit a crash point; the recovery path was barely exercised\n",
                 crashed_cycles, options.cycles);
    return 4;
  }

  bench::dump_metrics_snapshot(bench::metrics_snapshot_path(argv[0]));
  return 0;
}
