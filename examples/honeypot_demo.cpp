// Running a CT honeypot (the §6 scenario): create random subdomains whose
// existence leaks only through CT, watch who resolves and probes them, and
// quantify how fast CT-fed scanners react.
//
// Build & run:  ./build/examples/honeypot_demo
#include <cstdio>

#include "ctwatch/honeypot/analysis.hpp"
#include "ctwatch/honeypot/attackers.hpp"

using namespace ctwatch;

int main() {
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = true;
  options.seed = 77;
  sim::Ecosystem ecosystem(options);

  // Deploy the honeypot: three subdomains, minutes apart.
  honeypot::CtHoneypot pot(ecosystem);
  SimTime when = SimTime::parse("2018-04-30 13:00:00");
  for (int i = 0; i < 3; ++i) {
    const honeypot::HoneypotDomain& domain = pot.create_subdomain(when);
    std::printf("deployed %s (A %s, AAAA %s), precert logged at %s\n",
                domain.fqdn.c_str(), domain.a_record.to_string().c_str(),
                domain.aaaa_record.to_string().c_str(),
                domain.ct_logged.datetime_string().c_str());
    when += 15 * 60;
  }

  // Unleash the CT-watching internet.
  honeypot::AttackerFleet fleet(pot, honeypot::standard_fleet(), Rng(5));
  const honeypot::FleetStats stats = fleet.run();
  std::printf("\nfleet activity: %llu DNS queries, %llu HTTPS connections, %llu port probes\n\n",
              static_cast<unsigned long long>(stats.dns_queries),
              static_cast<unsigned long long>(stats.http_connections),
              static_cast<unsigned long long>(stats.port_probes));

  // Analyze: Table 4 style.
  const honeypot::HoneypotReport report = honeypot::analyze(pot);
  std::printf("%s\n", honeypot::render_table4(report).c_str());

  for (const auto& scanner : report.port_scanners) {
    const auto asn = pot.as_registry().origin(scanner.source);
    std::printf("port scanner found: %s (%zu ports) from AS%u — abuse contact honored: %s\n",
                scanner.source.to_string().c_str(), scanner.distinct_ports, asn.value_or(0),
                asn && pot.as_registry().lookup(*asn)->honors_abuse ? "yes" : "NO");
  }
  std::printf("IPv6 contacts beyond the CA validator: %llu (the AAAA records never leak)\n",
              static_cast<unsigned long long>(report.ipv6_contacts));

  bool ok = report.ipv6_contacts == 0 && !report.port_scanners.empty();
  for (const auto& row : report.rows) {
    ok = ok && row.first_dns.has_value() && row.dns_delta < 600;
  }
  std::printf("\nconclusion: CT logs are being watched — first queries arrived within "
              "minutes of the log entry.\n");
  return ok ? 0 : 1;
}
