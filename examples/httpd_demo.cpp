// httpd demo: the RFC 6962 front end end to end over real sockets.
//
// Starts a LogService behind the epoll HTTP server and serves the CT API
// (add-chain, get-sth, proofs, entries) plus the obs exposition routes.
// Three modes compose for CI and humans alike:
//
//   ./build/examples/httpd_demo --self-check
//       in-process wire round trip: POST add-chain, verify the returned
//       SCT cryptographically, fetch get-proof-by-hash and verify the
//       audit path against get-sth. Exit 0 on success.
//
//   ./build/examples/httpd_demo --emit-chain /tmp/chain.json
//       write a valid add-chain request body (leaf + issuer, base64 DER)
//       for use with curl:  curl -d @/tmp/chain.json .../ct/v1/add-chain
//
//   ./build/examples/httpd_demo --port 8080 --serve-seconds 30
//       serve for N seconds (0 = until stdin closes), for external
//       clients such as the CI curl smoke.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/ct/log.hpp"
#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/wire.hpp"
#include "ctwatch/httpd/ct_handlers.hpp"
#include "ctwatch/httpd/json.hpp"
#include "ctwatch/httpd/server.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/util/encoding.hpp"
#include "ctwatch/x509/certificate.hpp"

using namespace ctwatch;

namespace {

struct DemoCa {
  std::unique_ptr<crypto::Signer> signer =
      crypto::make_signer("httpd-demo-ca", crypto::SignatureScheme::ecdsa_p256_sha256);
  x509::Certificate issuer_cert;
  std::atomic<std::uint64_t> next_serial{100};

  DemoCa() {
    x509::CertificateBuilder builder;
    x509::DistinguishedName dn;
    dn.common_name = "Httpd Demo CA";
    builder.serial(1)
        .issuer(dn)
        .subject_cn("Httpd Demo CA")
        .validity(SimTime::parse("2018-01-01"), SimTime::parse("2020-01-01"))
        .subject_key(*signer);
    issuer_cert = builder.sign(*signer);
  }

  x509::Certificate leaf(const std::string& cn) {
    x509::CertificateBuilder builder;
    x509::DistinguishedName dn;
    dn.common_name = "Httpd Demo CA";
    builder.serial(next_serial.fetch_add(1))
        .issuer(dn)
        .subject_cn(cn)
        .validity(SimTime::parse("2018-04-01"), SimTime::parse("2018-07-01"))
        .subject_key(*signer)
        .add_dns_san(cn);
    return builder.sign(*signer);
  }

  std::string chain_body(const x509::Certificate& leaf_cert) const {
    httpd::json::Array chain;
    chain.emplace_back(base64_encode(leaf_cert.encode()));
    chain.emplace_back(base64_encode(issuer_cert.encode()));
    httpd::json::Object body;
    body.emplace("chain", httpd::json::Value(std::move(chain)));
    return httpd::json::Value(std::move(body)).dump();
  }
};

/// Blocking one-shot HTTP client for the self-check.
std::optional<httpd::ParsedResponse> wire_request(std::uint16_t port, const std::string& head,
                                                  const std::string& body = {}) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string wire = head + body;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  httpd::ResponseParser parser;
  httpd::ParsedResponse parsed;
  for (;;) {
    const httpd::ParseResult r = parser.next(parsed);
    if (r == httpd::ParseResult::request) {
      ::close(fd);
      return parsed;
    }
    if (r != httpd::ParseResult::need_more) break;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    parser.feed(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return std::nullopt;
}

std::optional<httpd::ParsedResponse> wire_get(std::uint16_t port, const std::string& path) {
  return wire_request(port, "GET " + path + " HTTP/1.1\r\nHost: demo\r\n"
                            "Connection: close\r\n\r\n");
}

std::optional<httpd::ParsedResponse> wire_post(std::uint16_t port, const std::string& path,
                                               const std::string& body) {
  return wire_request(port,
                      "POST " + path + " HTTP/1.1\r\nHost: demo\r\n"
                      "Content-Type: application/json\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n",
                      body);
}

int self_check(std::uint16_t port, logsvc::LogService& service, DemoCa& ca) {
  const x509::Certificate leaf = ca.leaf("self-check.example.org");
  const auto added = wire_post(port, "/ct/v1/add-chain", ca.chain_body(leaf));
  if (!added || added->status != 200) {
    std::fprintf(stderr, "self-check: add-chain failed (%d)\n", added ? added->status : -1);
    return 1;
  }
  const auto sct_doc = httpd::json::parse(added->body);
  if (!sct_doc) return 1;
  ct::SignedCertificateTimestamp sct;
  sct.version = 0;
  const Bytes id = base64_decode(std::string(*sct_doc->get_string("id")));
  std::copy(id.begin(), id.end(), sct.log_id.begin());
  sct.timestamp_ms = *sct_doc->get_u64("timestamp");
  sct.extensions = base64_decode(std::string(*sct_doc->get_string("extensions")));
  const Bytes sig = base64_decode(std::string(*sct_doc->get_string("signature")));
  ct::wire::Reader sig_reader(sig);
  sct.signature.scheme = static_cast<crypto::SignatureScheme>(sig_reader.u8());
  const BytesView sig_bytes = sig_reader.opaque16();
  sct.signature.data.assign(sig_bytes.begin(), sig_bytes.end());

  const ct::SignedEntry entry = ct::make_x509_entry(leaf);
  const bool sct_ok = ct::verify_sct(sct, entry, service.public_key());
  std::printf("self-check: SCT over the wire verifies: %s\n", sct_ok ? "yes" : "NO");

  const auto sth_response = wire_get(port, "/ct/v1/get-sth");
  if (!sth_response || sth_response->status != 200) return 1;
  const auto sth_doc = httpd::json::parse(sth_response->body);
  const std::uint64_t tree_size = *sth_doc->get_u64("tree_size");

  const crypto::Digest leaf_hash = ct::leaf_hash(ct::merkle_leaf_bytes(sct.timestamp_ms, entry));
  std::string hash_param;
  for (const char c : base64_encode(leaf_hash)) {
    if (c == '+') hash_param += "%2B";
    else if (c == '/') hash_param += "%2F";
    else if (c == '=') hash_param += "%3D";
    else hash_param.push_back(c);
  }
  const auto proof_response =
      wire_get(port, "/ct/v1/get-proof-by-hash?hash=" + hash_param +
                         "&tree_size=" + std::to_string(tree_size));
  if (!proof_response || proof_response->status != 200) {
    std::fprintf(stderr, "self-check: get-proof-by-hash failed\n");
    return 1;
  }
  const auto proof_doc = httpd::json::parse(proof_response->body);
  std::vector<crypto::Digest> path;
  for (const auto& node : proof_doc->get("audit_path")->as_array()) {
    const Bytes raw = base64_decode(node.as_string());
    crypto::Digest digest{};
    std::copy(raw.begin(), raw.end(), digest.begin());
    path.push_back(digest);
  }
  const Bytes root = base64_decode(std::string(*sth_doc->get_string("sha256_root_hash")));
  crypto::Digest root_digest{};
  std::copy(root.begin(), root.end(), root_digest.begin());
  const bool proof_ok = ct::verify_inclusion(leaf_hash, *proof_doc->get_u64("leaf_index"),
                                             tree_size, path, root_digest);
  std::printf("self-check: inclusion proven over the wire: %s\n", proof_ok ? "yes" : "NO");
  return sct_ok && proof_ok ? 0 : 1;
}

/// SIGINT/SIGTERM land here: the serve loop notices and shuts down
/// gracefully (drain connections, flush, stop the service) instead of
/// dying mid-response. Async-signal-safe: just a flag store.
std::atomic<bool> g_stop_requested{false};

void request_stop(int) { g_stop_requested.store(true, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = request_stop;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  int workers = 2;
  int serve_seconds = -1;
  std::string emit_chain;
  bool run_self_check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::strlen(prefix));
      return std::nullopt;
    };
    if (const auto v = value("--port=")) port = static_cast<std::uint16_t>(std::stoi(*v));
    else if (const auto v = value("--workers=")) workers = std::stoi(*v);
    else if (const auto v = value("--serve-seconds=")) serve_seconds = std::stoi(*v);
    else if (const auto v = value("--emit-chain=")) emit_chain = *v;
    else if (arg == "--self-check") run_self_check = true;
    else {
      std::fprintf(stderr,
                   "usage: httpd_demo [--port=N] [--workers=N] [--serve-seconds=N]\n"
                   "                  [--emit-chain=FILE] [--self-check]\n");
      return 2;
    }
  }

  DemoCa ca;
  if (!emit_chain.empty()) {
    std::ofstream out(emit_chain);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", emit_chain.c_str());
      return 1;
    }
    out << ca.chain_body(ca.leaf("curl.example.org"));
    std::printf("wrote add-chain body to %s\n", emit_chain.c_str());
    if (serve_seconds < 0 && !run_self_check) return 0;
  }

  logsvc::Config config;
  config.name = "Httpd Demo Log";
  config.merge_delay = std::chrono::milliseconds(5);
  logsvc::LogService service(config);

  httpd::Router router;
  httpd::register_ct_api(router, service);
  router.get("/metrics", [](const httpd::Request&, httpd::Completion done) {
    done(httpd::text_response(200, obs::Registry::global().render_prometheus()));
  });
  router.get("/healthz", [](const httpd::Request&, httpd::Completion done) {
    done(httpd::text_response(200, "ok\n"));
  });

  httpd::ServerOptions options;
  options.port = port;
  options.workers = workers;
  httpd::Server server(options, std::move(router));
  if (!server.start()) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", static_cast<unsigned>(port));
    return 1;
  }
  std::printf("serving RFC 6962 API on 127.0.0.1:%u (%d workers)\n",
              static_cast<unsigned>(server.port()), workers);

  install_signal_handlers();

  int rc = 0;
  if (run_self_check) {
    rc = self_check(server.port(), service, ca);
  }
  if (serve_seconds > 0) {
    // Poll so SIGINT/SIGTERM cut the wait short.
    const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(serve_seconds);
    while (std::chrono::steady_clock::now() < until &&
           !g_stop_requested.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else if (serve_seconds == 0) {
    // Serve until stdin closes (Ctrl-D / parent exits) or a signal.
    char buf[64];
    while (!g_stop_requested.load(std::memory_order_relaxed)) {
      const ssize_t n = ::read(0, buf, sizeof buf);
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;  // signal: loop re-checks the flag
      break;
    }
  }

  if (g_stop_requested.load(std::memory_order_relaxed)) {
    std::printf("signal received; draining connections\n");
  }
  // Graceful: stop accepting, let in-flight responses flush, then stop
  // the log service (which checkpoints and flushes its durable store).
  server.shutdown(std::chrono::milliseconds(3000));
  service.stop();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_accepted()));
  return rc;
}
