// logsvc demo: the production-shaped log service end to end.
//
// A CA mints a precertificate, submits it over the asynchronous add-pre-chain
// path, and the SCT arrives via completion callback once the sequencer seals
// the batch (the merge delay). A streaming subscriber sees the new entry, and
// a client verifies the SCT, the STH, and an inclusion proof against the
// published snapshot — all without ever touching the sequencer's write lock.
//
// A second act restarts the same log from its durable store: the service
// flushes and closes on stop(), a fresh process-model open() replays the
// WAL, and the republished STH is byte-identical to the one signed before
// the restart — the log never forks its own history.
//
// Build & run:  ./build/examples/logsvc_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>

#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/storage/log_store.hpp"

using namespace ctwatch;

int main() {
  // 1. The service: bounded queue in front, sequencer behind, snapshot reads.
  logsvc::Config config;
  config.name = "Demo Log";
  config.operator_name = "Example";
  config.merge_delay = std::chrono::milliseconds(20);  // a miniature MMD
  logsvc::LogService service(config);
  std::printf("log '%s' key id: %s...\n", config.name.c_str(),
              hex_encode(BytesView{service.log_id().data(), 8}).c_str());

  // 2. A streaming consumer, as ct_search/Censys-style trackers attach.
  std::atomic<std::uint64_t> streamed{0};
  service.subscribe("demo-watcher", [&streamed](const logsvc::StreamEvent& event) {
    streamed.fetch_add(1);
    std::printf("  [stream] new entry #%llu at t=%llums\n",
                static_cast<unsigned long long>(event.index),
                static_cast<unsigned long long>(event.timestamp_ms));
  });

  // 3. A CA mints a precertificate (no legacy log attached) and submits it
  //    through the asynchronous add-pre-chain path.
  sim::CertificateAuthority ca("Demo CA", "Demo Issuing CA",
                               crypto::SignatureScheme::ecdsa_p256_sha256);
  sim::IssuanceRequest request;
  request.subject_cn = "www.example.org";
  request.sans = {x509::SanEntry::dns("www.example.org")};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2018-06-30");
  const x509::Certificate precert =
      ca.issue(request, SimTime::parse("2018-04-01 10:00:00")).precertificate;

  std::promise<logsvc::SubmitOutcome> promise;
  auto outcome_future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit_pre_chain(
      precert, ca.public_key(), SimTime::parse("2018-04-01 10:00:00"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) {
    std::printf("submission rejected\n");
    return 1;
  }
  std::printf("submitted; waiting out the merge delay...\n");
  const logsvc::SubmitOutcome outcome = outcome_future.get();  // sealed + published
  std::printf("SCT received for leaf index %llu\n",
              static_cast<unsigned long long>(outcome.index));

  // 4. Client-side verification: SCT signature, STH signature, inclusion.
  const ct::SignedEntry entry = ct::make_precert_entry(precert, ca.public_key());
  const bool sct_ok = ct::verify_sct(*outcome.sct, entry, service.public_key());
  const ct::SignedTreeHead sth = service.get_sth();
  const bool sth_ok = ct::verify_sth(sth, service.public_key());
  const auto proof = service.inclusion_proof(outcome.index, sth.tree_size);
  const bool proof_ok = ct::verify_inclusion(service.leaf_hash_at(outcome.index), outcome.index,
                                             sth.tree_size, proof, sth.root_hash);
  std::printf("SCT valid: %s | STH valid: %s | inclusion proven: %s\n", sct_ok ? "yes" : "NO",
              sth_ok ? "yes" : "NO", proof_ok ? "yes" : "NO");

  // 5. Shut down gracefully: drains the queue, joins sequencer and fanout.
  service.stop();
  std::printf("streamed events seen: %llu (dropped %llu)\n",
              static_cast<unsigned long long>(streamed.load()),
              static_cast<unsigned long long>(service.fanout().dropped()));

  // 6. The durable act: the same log, twice. A storage-backed service
  //    commits every sealed batch (WAL + fsync) before releasing SCTs;
  //    stop() flushes and closes; a fresh open() replays to the last
  //    durable STH and the restarted service republishes the exact bytes.
  const std::string store_dir = "logsvc_demo.store";
  std::filesystem::remove_all(store_dir);
  bool durable_ok = false;
  {
    auto opened = storage::LogStore::open({.dir = store_dir});
    if (!opened.store) {
      std::printf("storage open failed: %s\n", opened.detail.c_str());
      return 1;
    }
    logsvc::Config durable_config = config;
    durable_config.name = "Durable Demo Log";
    durable_config.storage = opened.store.get();
    ct::SignedTreeHead before_restart;
    {
      logsvc::LogService durable(durable_config);
      std::promise<logsvc::SubmitOutcome> sealed;
      auto sealed_future = sealed.get_future();
      durable.submit_pre_chain(
          precert, ca.public_key(), SimTime::parse("2018-04-01 10:05:00"),
          [&sealed](const logsvc::SubmitOutcome& o) { sealed.set_value(o); });
      sealed_future.get();
      before_restart = durable.get_sth();
      durable.stop();  // flush-and-close: seals are already on disk
    }
    opened.store->close();
    opened.store.reset();

    auto reopened = storage::LogStore::open({.dir = store_dir});
    if (!reopened.store) {
      std::printf("storage reopen failed: %s\n", reopened.detail.c_str());
      return 1;
    }
    std::printf("recovered tree size %llu (replayed %llu batch(es) from the WAL)\n",
                static_cast<unsigned long long>(reopened.store->tree_size()),
                static_cast<unsigned long long>(reopened.store->recovery().replayed_batches));
    durable_config.storage = reopened.store.get();
    logsvc::LogService restarted(durable_config);
    durable_ok = restarted.get_sth() == before_restart;
    std::printf("STH after restart byte-identical: %s\n", durable_ok ? "yes" : "NO");
    restarted.stop();
  }
  std::filesystem::remove_all(store_dir);

  return sct_ok && sth_ok && proof_ok && streamed.load() == 1 && durable_ok ? 0 : 1;
}
