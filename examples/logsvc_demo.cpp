// logsvc demo: the production-shaped log service end to end.
//
// A CA mints a precertificate, submits it over the asynchronous add-pre-chain
// path, and the SCT arrives via completion callback once the sequencer seals
// the batch (the merge delay). A streaming subscriber sees the new entry, and
// a client verifies the SCT, the STH, and an inclusion proof against the
// published snapshot — all without ever touching the sequencer's write lock.
//
// Build & run:  ./build/examples/logsvc_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>

#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/sim/ca.hpp"

using namespace ctwatch;

int main() {
  // 1. The service: bounded queue in front, sequencer behind, snapshot reads.
  logsvc::Config config;
  config.name = "Demo Log";
  config.operator_name = "Example";
  config.merge_delay = std::chrono::milliseconds(20);  // a miniature MMD
  logsvc::LogService service(config);
  std::printf("log '%s' key id: %s...\n", config.name.c_str(),
              hex_encode(BytesView{service.log_id().data(), 8}).c_str());

  // 2. A streaming consumer, as ct_search/Censys-style trackers attach.
  std::atomic<std::uint64_t> streamed{0};
  service.subscribe("demo-watcher", [&streamed](const logsvc::StreamEvent& event) {
    streamed.fetch_add(1);
    std::printf("  [stream] new entry #%llu at t=%llums\n",
                static_cast<unsigned long long>(event.index),
                static_cast<unsigned long long>(event.timestamp_ms));
  });

  // 3. A CA mints a precertificate (no legacy log attached) and submits it
  //    through the asynchronous add-pre-chain path.
  sim::CertificateAuthority ca("Demo CA", "Demo Issuing CA",
                               crypto::SignatureScheme::ecdsa_p256_sha256);
  sim::IssuanceRequest request;
  request.subject_cn = "www.example.org";
  request.sans = {x509::SanEntry::dns("www.example.org")};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2018-06-30");
  const x509::Certificate precert =
      ca.issue(request, SimTime::parse("2018-04-01 10:00:00")).precertificate;

  std::promise<logsvc::SubmitOutcome> promise;
  auto outcome_future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit_pre_chain(
      precert, ca.public_key(), SimTime::parse("2018-04-01 10:00:00"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) {
    std::printf("submission rejected\n");
    return 1;
  }
  std::printf("submitted; waiting out the merge delay...\n");
  const logsvc::SubmitOutcome outcome = outcome_future.get();  // sealed + published
  std::printf("SCT received for leaf index %llu\n",
              static_cast<unsigned long long>(outcome.index));

  // 4. Client-side verification: SCT signature, STH signature, inclusion.
  const ct::SignedEntry entry = ct::make_precert_entry(precert, ca.public_key());
  const bool sct_ok = ct::verify_sct(*outcome.sct, entry, service.public_key());
  const ct::SignedTreeHead sth = service.get_sth();
  const bool sth_ok = ct::verify_sth(sth, service.public_key());
  const auto proof = service.inclusion_proof(outcome.index, sth.tree_size);
  const bool proof_ok = ct::verify_inclusion(service.leaf_hash_at(outcome.index), outcome.index,
                                             sth.tree_size, proof, sth.root_hash);
  std::printf("SCT valid: %s | STH valid: %s | inclusion proven: %s\n", sct_ok ? "yes" : "NO",
              sth_ok ? "yes" : "NO", proof_ok ? "yes" : "NO");

  // 5. Shut down gracefully: drains the queue, joins sequencer and fanout.
  service.stop();
  std::printf("streamed events seen: %llu (dropped %llu)\n",
              static_cast<unsigned long long>(streamed.load()),
              static_cast<unsigned long long>(service.fanout().dropped()));
  return sct_ok && sth_ok && proof_ok && streamed.load() == 1 ? 0 : 1;
}
