// chaos_demo — the fault-injection framework in one tour.
//
// Three vignettes, all deterministic from the seeds on this page:
//   1. a FaultInjector scripting a flaky dependency (watch the same seed
//      replay the same fault sequence),
//   2. the K-of-N multi-log submitter riding out a log outage on circuit
//      breakers, hedges, and retries,
//   3. the enumeration funnel over a lossy DNS, with every lost query
//      accounted for instead of silently deflating `confirmed`.
//
// Build & run:  ./chaos_demo

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ctwatch/chaos/chaos.hpp"
#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/enumeration/enumerator.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/util/rng.hpp"

using namespace ctwatch;

namespace {

const char* kind_name(chaos::FaultKind kind) {
  switch (kind) {
    case chaos::FaultKind::none: return "ok";
    case chaos::FaultKind::error: return "error";
    case chaos::FaultKind::timeout: return "timeout";
  }
  return "?";
}

void demo_injector() {
  std::printf("-- 1. deterministic fault injection ----------------------------\n");
  chaos::FaultPlan plan;
  plan.error_probability = 0.3;
  plan.timeout_fraction = 0.5;
  plan.latency_base_us = 2000;
  plan.latency_exp_mean_us = 3000.0;

  for (int round = 0; round < 2; ++round) {
    chaos::FaultInjector injector(/*seed=*/0xbadcafeULL);
    injector.plan("upstream.rpc", plan);
    std::printf("seed 0xbadcafe, round %d: ", round + 1);
    for (int i = 0; i < 8; ++i) {
      const chaos::FaultDecision d = injector.evaluate("upstream.rpc");
      std::printf("%s(%lluus) ", kind_name(d.kind),
                  static_cast<unsigned long long>(d.latency_us));
    }
    std::printf("\n");
  }
  std::printf("identical rows: the i-th draw is a pure function of (seed, point, i)\n\n");
}

void demo_multilog() {
  std::printf("-- 2. K-of-N submission through a log outage -------------------\n");
  chaos::FaultInjector injector(/*seed=*/7);
  std::vector<std::unique_ptr<logsvc::SimulatedLogTarget>> logs;
  std::vector<logsvc::LogTarget*> targets;
  for (int i = 0; i < 3; ++i) {
    chaos::FaultPlan plan;
    plan.error_probability = 0.05;
    plan.latency_base_us = 15'000;
    plan.latency_jitter_us = 10'000;
    if (i == 2) {
      // log2 is dark for the first 60 virtual seconds.
      plan.outages.push_back(chaos::OutageWindow{0, 60'000'000});
      plan.outage_kind = chaos::FaultKind::timeout;
    }
    const std::string point = "demo.log" + std::to_string(i);
    injector.plan(point, plan);
    logs.push_back(
        std::make_unique<logsvc::SimulatedLogTarget>("log" + std::to_string(i), injector, point));
    targets.push_back(logs.back().get());
  }
  logsvc::MultiLogSubmitter submitter(targets, logsvc::MultiLogOptions{});
  for (std::uint64_t s = 0; s < 50; ++s) submitter.submit(s, s * 3'000'000);
  const logsvc::MultiLogTotals& totals = submitter.totals();
  std::printf("50 submissions, quorum 2 of 3, log2 down for the first 20:\n");
  std::printf("  quorum=%llu degraded=%llu failed=%llu (resolved=%llu — never silence)\n",
              static_cast<unsigned long long>(totals.quorum),
              static_cast<unsigned long long>(totals.degraded),
              static_cast<unsigned long long>(totals.failed),
              static_cast<unsigned long long>(totals.resolved()));
  std::printf("  retries=%llu hedges=%llu breaker trips=%llu — goodput %.1f%%\n\n",
              static_cast<unsigned long long>(totals.retries),
              static_cast<unsigned long long>(totals.hedges),
              static_cast<unsigned long long>(submitter.breaker_trips()),
              totals.goodput() * 100.0);
}

void demo_funnel() {
  std::printf("-- 3. enumeration funnel over a lossy DNS ----------------------\n");
  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  enumeration::SubdomainCensus census(psl);
  census.add_names(std::vector<std::string>{"api.seen1.de", "api.seen2.de", "api.seen3.de"});

  dns::AuthoritativeServer server;
  server.set_logging(false);
  std::vector<std::string> domains;
  for (int i = 0; i < 40; ++i) {
    const std::string domain = "zone" + std::to_string(i) + ".de";
    auto& zone = server.add_zone(dns::DnsName::parse_or_throw(domain));
    if (i % 2 == 0) {
      zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api." + domain), dns::RrType::A,
                                   300, net::IPv4(100, 64, 0, static_cast<std::uint8_t>(i + 1))});
    }
    domains.push_back(domain);
  }
  chaos::FaultInjector injector(/*seed=*/1234);
  chaos::FaultPlan lossy;
  lossy.error_probability = 0.35;
  lossy.timeout_fraction = 0.7;
  injector.plan("dns.auth", lossy);
  server.set_chaos(&injector);

  dns::DnsUniverse universe;
  universe.add_server(server);
  const dns::RecursiveResolver resolver(
      universe, dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "demo", false});
  net::RoutingTable routing;
  routing.add_route(*net::Prefix4::parse("100.64.0.0/10"));

  enumeration::EnumerationOptions options;
  options.min_label_count = 2;
  for (const int retries : {0, 2}) {
    options.dns_max_retries = retries;
    enumeration::SubdomainEnumerator enumerator(census, psl, options);
    Rng rng(1);
    injector.reset_ordinals();  // same fault sequence for both rows
    const enumeration::FunnelResult result = enumerator.run(
        domains, /*sonar=*/{}, resolver, routing, rng, SimTime::parse("2018-04-27"));
    std::printf("retries=%d: candidates=%llu confirmed=%llu lost_test=%llu lost_control=%llu "
                "dns_retries=%llu conserves=%s\n",
                retries, static_cast<unsigned long long>(result.candidates),
                static_cast<unsigned long long>(result.confirmed),
                static_cast<unsigned long long>(result.lost_test_queries),
                static_cast<unsigned long long>(result.lost_control_queries),
                static_cast<unsigned long long>(result.dns_retries),
                result.conserves() ? "yes" : "NO");
  }
  std::printf("retries recover most of the loss; what remains is *counted*, not hidden\n");
}

}  // namespace

int main() {
  demo_injector();
  demo_multilog();
  demo_funnel();
  return 0;
}
