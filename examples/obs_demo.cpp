// Observability demo: run a small issuance timeline with metrics, spans
// and structured logging all enabled, print the metrics table and the
// per-span aggregate, and write a chrome://tracing-loadable trace file.
//
// Build & run:  ./build/examples/obs_demo
// Then open obs_demo.trace.json in chrome://tracing or https://ui.perfetto.dev
//
// With --serve PORT [--serve-seconds N] it also starts the live
// exposition endpoint after the workload and keeps it up, so
//
//   ./build/examples/obs_demo --serve 9464 &
//   curl http://127.0.0.1:9464/metrics
//
// scrapes the Prometheus rendering of everything the run recorded (CI
// uses exactly this as the /metrics smoke test). /vars serves the JSON
// view and /trace the recent spans.
//
// The same instrumentation is reachable without code through environment
// variables: CTWATCH_LOG=info enables the logger, CTWATCH_TRACE=1 the
// tracer, and bench binaries honour CTWATCH_METRICS_JSON for their
// snapshot path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "ctwatch/core/log_evolution.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/sim/timeline.hpp"

using namespace ctwatch;

int main(int argc, char** argv) {
  int serve_port = -1;
  int serve_seconds = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atoi(argv[++i]);
    }
  }

  // Switch everything on via the API (the default is silence). The flight
  // recorder is always on; the signal handler makes `kill -USR1 <pid>`
  // dump its recent events while the demo serves.
  obs::Logger::global().set_level(obs::LogLevel::info);
  obs::Logger::global().set_rate_limit(20);
  obs::Tracer::global().set_enabled(true);
  obs::FlightRecorder::install_signal_handler();
  obs::preregister_pipeline_metrics();
  obs::flight_note("obs_demo.start");

  // A small slice of the 2013-2018 timeline: enough to exercise the CA ->
  // log -> Merkle pipeline and light up the sim.timeline.* / ct.log.*
  // metrics without a long run.
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = false;
  sim::Ecosystem ecosystem(options);

  sim::TimelineOptions timeline_options;
  timeline_options.start = "2018-03-01";
  timeline_options.end = "2018-03-15";
  timeline_options.scale = 1.0 / 20000.0;
  sim::TimelineSimulator simulator(ecosystem, timeline_options);
  const sim::TimelineStats stats = simulator.run();

  {
    CTWATCH_SPAN("obs_demo.analysis");
    core::LogEvolutionStudy study(ecosystem);
    const core::LogEvolutionReport report = study.run();
    std::printf("analysis: %zu months, top-5 CA share %.1f%%\n",
                report.months.size(), 100.0 * report.top5_share);
  }
  obs::flight_note("obs_demo.workload_done", stats.issued);

  std::printf("\n--- metrics registry ---\n%s",
              obs::Registry::global().render_text().c_str());
  std::printf("\n--- span aggregate ---\n%s",
              obs::Tracer::global().aggregate_table().c_str());

  const char* trace_path = "obs_demo.trace.json";
  if (obs::Tracer::global().write_chrome_trace(trace_path)) {
    std::printf("\nchrome trace written to %s (load it in chrome://tracing)\n", trace_path);
  } else {
    // Expected when the library was built with CTWATCH_OBS_DISABLED.
    std::printf("\ntracing unavailable; no %s written\n", trace_path);
  }

  if (serve_port >= 0) {
    obs::ExpoServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(serve_port);
    obs::ExpoServer server(server_options);
    if (!server.start()) {
      std::fprintf(stderr, "failed to start exposition server on port %d\n", serve_port);
      return 1;
    }
    std::printf("\nserving http://127.0.0.1:%u/metrics (/vars, /trace) for %d s\n",
                server.port(), serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    std::printf("served %llu requests\n",
                static_cast<unsigned long long>(server.requests_served()));
    server.stop();
  }
  return stats.issued > 0 ? 0 : 1;
}
