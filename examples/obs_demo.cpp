// Observability demo: run a small issuance timeline with metrics, spans
// and structured logging all enabled, print the metrics table and the
// per-span aggregate, and write a chrome://tracing-loadable trace file.
//
// Build & run:  ./build/examples/obs_demo
// Then open obs_demo.trace.json in chrome://tracing or https://ui.perfetto.dev
//
// The same instrumentation is reachable without code through environment
// variables: CTWATCH_LOG=info enables the logger, CTWATCH_TRACE=1 the
// tracer, and bench binaries honour CTWATCH_METRICS_JSON for their
// snapshot path.
#include <cstdio>

#include "ctwatch/core/log_evolution.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/sim/timeline.hpp"

using namespace ctwatch;

int main() {
  // Switch everything on via the API (the default is silence).
  obs::Logger::global().set_level(obs::LogLevel::info);
  obs::Logger::global().set_rate_limit(20);
  obs::Tracer::global().set_enabled(true);
  obs::preregister_pipeline_metrics();

  // A small slice of the 2013-2018 timeline: enough to exercise the CA ->
  // log -> Merkle pipeline and light up the sim.timeline.* / ct.log.*
  // metrics without a long run.
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = false;
  sim::Ecosystem ecosystem(options);

  sim::TimelineOptions timeline_options;
  timeline_options.start = "2018-03-01";
  timeline_options.end = "2018-03-15";
  timeline_options.scale = 1.0 / 20000.0;
  sim::TimelineSimulator simulator(ecosystem, timeline_options);
  const sim::TimelineStats stats = simulator.run();

  {
    CTWATCH_SPAN("obs_demo.analysis");
    core::LogEvolutionStudy study(ecosystem);
    const core::LogEvolutionReport report = study.run();
    std::printf("analysis: %zu months, top-5 CA share %.1f%%\n",
                report.months.size(), 100.0 * report.top5_share);
  }

  std::printf("\n--- metrics registry ---\n%s",
              obs::Registry::global().render_text().c_str());
  std::printf("\n--- span aggregate ---\n%s",
              obs::Tracer::global().aggregate_table().c_str());

  const char* trace_path = "obs_demo.trace.json";
  if (obs::Tracer::global().write_chrome_trace(trace_path)) {
    std::printf("\nchrome trace written to %s (load it in chrome://tracing)\n", trace_path);
  } else {
    // Expected when the library was built with CTWATCH_OBS_DISABLED.
    std::printf("\ntracing unavailable; no %s written\n", trace_path);
  }
  return stats.issued > 0 ? 0 : 1;
}
