// A brand-protection service built on CT (the §5 scenario, and what
// Facebook's/CertSpotter's notification tools do): follow the logs live via
// a CertStream-style subscription, check every new certificate's DNS names
// against brand rules, and alert on lookalikes — while never flagging the
// brand's real infrastructure.
//
// Build & run:  ./build/examples/phishing_monitor
#include <cstdio>

#include "ctwatch/ct/stream.hpp"
#include "ctwatch/phishing/detector.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/sim/phishing_gen.hpp"

using namespace ctwatch;

int main() {
  // A log and a CA issuing into it.
  ct::LogConfig config;
  config.name = "Watched Log";
  config.operator_name = "Example";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  ct::CtLog log(config);
  sim::CertificateAuthority ca("Budget CA", "Budget DV CA",
                               crypto::SignatureScheme::hmac_sha256_simulated);

  // The brand-protection backend: CertStream -> name extraction -> detector.
  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  phishing::PhishingDetector detector(psl, phishing::standard_rules());
  std::uint64_t alerts = 0;
  std::uint64_t seen = 0;

  ct::CertStream stream;
  stream.attach(log);
  stream.on_entry([&](const ct::CtLog&, const ct::LogEntry& entry) {
    ++seen;
    const auto names = entry.certificate.tbs.dns_names();
    const auto findings = detector.scan(names);
    for (const auto& finding : findings) {
      ++alerts;
      std::printf("ALERT [%s] lookalike certificate: %s (suffix .%s)\n",
                  finding.brand.c_str(), finding.fqdn.c_str(), finding.public_suffix.c_str());
    }
  });

  // Issuance mix: mostly benign, a few phish, plus legitimate brand certs
  // that must NOT alert.
  SimTime now = SimTime::parse("2018-04-20 09:00:00");
  auto issue = [&](const std::string& fqdn) {
    sim::IssuanceRequest request;
    request.subject_cn = fqdn;
    request.sans = {x509::SanEntry::dns(fqdn)};
    request.not_before = now;
    request.not_after = now + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, now);
    now += 60;
  };

  issue("blog.cooking-club.org");
  issue("www.paypal.com");                         // legitimate: no alert
  issue("paypal.com-account-verify.1uok3bd2.ml");  // phish
  issue("shop.flower-store.de");
  issue("appleid.apple.com-signin.h77arq0x.gq");   // phish
  issue("login.live.com");                         // legitimate: no alert
  issue("www-hotmail-login.live");                 // phish
  issue("api.weather-widgets.io");

  std::printf("\nprocessed %llu new log entries, raised %llu alerts "
              "(expected 3; legitimate brand certs stayed quiet)\n",
              static_cast<unsigned long long>(seen), static_cast<unsigned long long>(alerts));
  return alerts == 3 ? 0 : 1;
}
