// CT as a search engine (the crt.sh / Facebook-monitoring scenario):
// build a queryable index over logs and run the lookups a domain owner —
// or an attacker doing reconnaissance on a single target — would run, then
// register a live watch for new issuances.
//
// Build & run:  ./build/examples/ct_search
#include <cstdio>

#include "ctwatch/ct/index.hpp"
#include "ctwatch/sim/ca.hpp"

using namespace ctwatch;

int main() {
  ct::LogConfig config;
  config.name = "Search Log";
  config.operator_name = "Example";
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  ct::CtLog log(config);
  sim::CertificateAuthority enterprise_ca("Enterprise CA", "Enterprise Issuing CA",
                                          crypto::SignatureScheme::hmac_sha256_simulated);
  sim::CertificateAuthority budget_ca("Budget CA", "Budget DV CA",
                                      crypto::SignatureScheme::hmac_sha256_simulated);

  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  ct::LogIndex index(psl);
  index.attach(log);

  // A notification service like the ones the paper cites (Facebook's CT
  // monitoring, CertSpotter): the owner of corp.example registers a watch.
  ct::DomainWatcher watcher(psl);
  watcher.attach(log);
  watcher.watch("corp.example", [](const std::string& domain, const ct::IndexedEntry& entry) {
    std::printf("  [watch:%s] new certificate logged: %s (issuer %s)\n", domain.c_str(),
                entry.subject_cn.c_str(), entry.issuer_cn.c_str());
  });

  // History builds up...
  SimTime now = SimTime::parse("2018-04-02 08:00:00");
  auto issue = [&](sim::CertificateAuthority& ca, const std::string& cn) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    request.not_before = now;
    request.not_after = now + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, now);
    now += 3600;
  };
  std::printf("issuing into the log (watch alerts fire live):\n");
  issue(enterprise_ca, "www.corp.example");
  issue(enterprise_ca, "vpn.corp.example");
  issue(enterprise_ca, "staging.corp.example");   // oops — internal name, now public
  issue(budget_ca, "www.shop-site.de");
  issue(budget_ca, "mail.other-site.fr");
  // Someone else gets a certificate naming the watched domain — exactly
  // what the notification service exists to catch.
  issue(budget_ca, "login.corp.example");

  // The owner's (or attacker's) queries.
  std::printf("\ncrt.sh-style query %%.corp.example:\n");
  for (const auto& entry : index.by_registrable_domain("corp.example")) {
    std::printf("  #%llu %-28s issuer: %s\n", static_cast<unsigned long long>(entry.index),
                entry.subject_cn.c_str(), entry.issuer_cn.c_str());
  }
  std::printf("\nby issuer 'Budget DV CA': %zu certificates\n",
              index.by_issuer("Budget DV CA").size());
  std::printf("exact-name lookup staging.corp.example: %zu hit(s)\n",
              index.by_name("staging.corp.example").size());

  // The interesting verdict: the unknown-issuer certificate for the watched
  // domain is visible to its owner thanks to CT.
  const auto corp = index.by_registrable_domain("corp.example");
  bool foreign_issuer_spotted = false;
  for (const auto& entry : corp) {
    if (entry.issuer_cn != "Enterprise Issuing CA") foreign_issuer_spotted = true;
  }
  std::printf("\nforeign-issuer certificate for corp.example spotted: %s "
              "(the owner can now investigate mis-issuance)\n",
              foreign_issuer_spotted ? "yes" : "no");
  return corp.size() == 4 && foreign_issuer_spotted && watcher.notifications_sent() == 4 ? 0 : 1;
}
