// ctwatch — command-line driver over the library's studies.
//
//   ctwatch_cli evolution [scale-denominator]   §2  Fig. 1a/1b/1c
//   ctwatch_cli adoption  [conns-per-day]       §3  Fig. 2 + Table 1
//   ctwatch_cli scan                            §3.3 active-scan view
//   ctwatch_cli leakage   [registrable-count]   §4  Table 2 + funnel
//   ctwatch_cli phishing                        §5  Table 3
//   ctwatch_cli honeypot  [subdomains]          §6  Table 4
//
// Everything is deterministic; re-runs reproduce byte-identical reports.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ctwatch/core/ctwatch.hpp"

using namespace ctwatch;

namespace {

sim::EcosystemOptions bulk_options() {
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = false;
  options.seed = 1702;
  return options;
}

int cmd_evolution(double denominator) {
  sim::Ecosystem ecosystem(bulk_options());
  sim::TimelineOptions options;
  options.scale = 1.0 / denominator;
  const sim::TimelineStats stats = sim::TimelineSimulator(ecosystem, options).run();
  std::printf("timeline: %llu certificates issued at 1/%.0f scale\n\n",
              static_cast<unsigned long long>(stats.issued), denominator);
  const core::LogEvolutionReport report = core::LogEvolutionStudy(ecosystem).run();
  std::printf("%s\n", core::LogEvolutionStudy::render_cumulative(report).c_str());
  std::printf("%s\n", core::LogEvolutionStudy::render_matrix(report).c_str());
  std::printf("top-5 CA share: %.1f%%, matrix sparsity: %.1f%%\n", report.top5_share * 100,
              report.matrix_sparsity * 100);
  return 0;
}

int cmd_adoption(std::uint64_t per_day) {
  sim::Ecosystem ecosystem(bulk_options());
  sim::ServerPopulation population(ecosystem, sim::PopulationOptions{});
  monitor::PassiveMonitor monitor(ecosystem.log_list());
  sim::TrafficOptions options;
  options.connections_per_day = per_day;
  sim::TrafficGenerator traffic(population, options, ecosystem.rng().fork());
  traffic.run(monitor);
  std::printf("%s\n", core::render_adoption_totals(monitor.totals()).c_str());
  std::printf("%s\n", core::render_top_logs(monitor.log_usage()).c_str());
  std::printf("%s\n", core::render_peaks(core::detect_peaks(monitor)).c_str());
  return 0;
}

int cmd_scan() {
  sim::Ecosystem ecosystem(bulk_options());
  sim::ServerPopulation population(ecosystem, sim::PopulationOptions{});
  monitor::PassiveMonitor monitor(ecosystem.log_list());
  sim::ScanDriver scan(population, sim::ScanOptions{});
  scan.run(monitor);
  std::printf("%s\n", core::render_scan_view(monitor).c_str());
  return 0;
}

int cmd_leakage(std::size_t registrable) {
  sim::DomainCorpusOptions options;
  options.registrable_count = registrable;
  sim::DomainCorpus corpus(options);
  core::LeakageStudy study(corpus);
  enumeration::EnumerationOptions enum_options;
  enum_options.min_label_count = std::max<std::uint64_t>(10, registrable / 600);
  const core::LeakageReport report = study.run(enum_options);
  std::printf("%s\n", core::LeakageStudy::render_table2(report).c_str());
  std::printf("%s\n", core::LeakageStudy::render_funnel(report).c_str());
  return 0;
}

int cmd_phishing() {
  const sim::PhishingCorpus corpus = sim::generate_phishing_corpus();
  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  phishing::PhishingDetector detector(psl, phishing::standard_rules());
  const auto findings = detector.scan(corpus.names);
  for (const auto& [brand, summary] : phishing::PhishingDetector::summarize(findings)) {
    std::printf("%-12s %6llu   e.g. %s\n", brand.c_str(),
                static_cast<unsigned long long>(summary.count), summary.example.c_str());
  }
  return 0;
}

int cmd_honeypot(int subdomains) {
  sim::EcosystemOptions options = bulk_options();
  options.store_bodies = true;
  sim::Ecosystem ecosystem(options);
  honeypot::CtHoneypot pot(ecosystem);
  for (int i = 0; i < subdomains; ++i) {
    pot.create_subdomain(SimTime::parse("2018-04-30 13:00:00") + i * 600);
  }
  honeypot::AttackerFleet fleet(pot, honeypot::standard_fleet(), ecosystem.rng().fork());
  fleet.run();
  std::printf("%s\n", honeypot::render_table4(honeypot::analyze(pot)).c_str());
  return 0;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s <command> [arg]\n"
      "  evolution [scale-denominator=2000]   Fig. 1a/1b/1c (section 2)\n"
      "  adoption  [conns-per-day=5000]       Fig. 2 + Table 1 (section 3)\n"
      "  scan                                 active-scan view (section 3.3)\n"
      "  leakage   [registrable-count=20000]  Table 2 + funnel (section 4)\n"
      "  phishing                             Table 3 (section 5)\n"
      "  honeypot  [subdomains=11]            Table 4 (section 6)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  const char* arg = argc > 2 ? argv[2] : nullptr;
  try {
    if (command == "evolution") return cmd_evolution(arg ? std::atof(arg) : 2000.0);
    if (command == "adoption") {
      return cmd_adoption(arg ? static_cast<std::uint64_t>(std::atoll(arg)) : 5000ull);
    }
    if (command == "scan") return cmd_scan();
    if (command == "leakage") {
      return cmd_leakage(arg ? static_cast<std::size_t>(std::atoll(arg)) : 20000u);
    }
    if (command == "phishing") return cmd_phishing();
    if (command == "honeypot") return cmd_honeypot(arg ? std::atoi(arg) : 11);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(argv[0]);
  return 2;
}
