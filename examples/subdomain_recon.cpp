// Subdomain reconnaissance from CT data (the §4 scenario): harvest DNS
// names from logged certificates, rank the leaked subdomain labels,
// construct candidate FQDNs for *other* domains, and verify them against
// the DNS with pseudo-random control probes — demonstrating both the
// attack value of CT data and the methodology needed to keep results clean.
//
// Build & run:  ./build/examples/subdomain_recon
#include <cstdio>

#include "ctwatch/core/leakage.hpp"

using namespace ctwatch;

int main() {
  // A reduced world: ~8k registrable domains with zones, catch-alls,
  // CNAMEs and a CT corpus leaked from their certificates.
  sim::DomainCorpusOptions corpus_options;
  corpus_options.registrable_count = 8000;
  sim::DomainCorpus corpus(corpus_options);
  std::printf("corpus: %zu registrable domains, %zu CT-logged names, %zu Sonar names\n\n",
              corpus.registrable_domains().size(), corpus.ct_names().size(),
              corpus.sonar_names().size());

  // Step 1: census of leaked labels.
  enumeration::SubdomainCensus census(corpus.psl());
  census.add_names(corpus.ct_names());
  std::printf("top leaked subdomain labels:\n");
  for (const auto& [label, count] : census.top_labels(8)) {
    std::printf("  %-14s %6llu\n", label.c_str(), static_cast<unsigned long long>(count));
  }

  // Step 2: what a brute-force wordlist would have found instead.
  const auto wordlist = enumeration::subbrute_like_wordlist();
  const auto comparison = enumeration::compare_wordlist(wordlist, census);
  std::printf("\nbrute-force wordlist: %zu entries, only %zu appear as CT labels\n",
              comparison.wordlist_size, comparison.present_in_ct);

  // Step 3: construct + verify candidates (controls and routing filter on).
  core::LeakageStudy study(corpus);
  enumeration::EnumerationOptions options;
  options.min_label_count = 30;
  const core::LeakageReport report = study.run(options);
  std::printf("\n%s", core::LeakageStudy::render_funnel(report).c_str());

  std::printf("\nsample discoveries (all verified against ground truth):\n");
  std::size_t shown = 0;
  for (const std::string& fqdn : report.funnel.discoveries) {
    if (shown++ >= 5) break;
    std::printf("  %s%s\n", fqdn.c_str(),
                corpus.truly_exists(fqdn) ? "" : "  [FALSE POSITIVE]");
  }

  // A correct run discovers real names only.
  for (const std::string& fqdn : report.funnel.discoveries) {
    if (!corpus.truly_exists(fqdn)) return 1;
  }
  return report.funnel.novel > 0 ? 0 : 1;
}
