// Quickstart: run a CT log, issue a certificate through the RFC 6962
// precertificate flow, verify the SCT, and audit the log.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ctwatch/ct/auditor.hpp"
#include "ctwatch/sim/ca.hpp"

using namespace ctwatch;

int main() {
  // 1. A CT log with a real ECDSA P-256 key (derived from its name).
  ct::LogConfig config;
  config.name = "Quickstart Log";
  config.operator_name = "Example";
  config.scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  ct::CtLog log(config);
  std::printf("log '%s' key id: %s...\n", log.name().c_str(),
              hex_encode(BytesView{log.log_id().data(), 8}).c_str());

  // 2. A CA issues a certificate with CT embedding: precertificate to the
  //    log, SCT back, final certificate with the SCT-list extension.
  sim::CertificateAuthority ca("Quickstart CA", "Quickstart Issuing CA",
                               crypto::SignatureScheme::ecdsa_p256_sha256);
  sim::IssuanceRequest request;
  request.subject_cn = "www.example.org";
  request.sans = {x509::SanEntry::dns("www.example.org"),
                  x509::SanEntry::dns("example.org")};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2018-06-30");
  request.logs = {&log};
  const sim::IssuanceResult issued = ca.issue(request, SimTime::parse("2018-04-01 10:00:00"));
  std::printf("issued %s with %zu embedded SCT(s)\n", request.subject_cn.c_str(),
              issued.scts.size());

  // 3. A client validates the embedded SCT: reconstruct the precertificate
  //    entry from the final certificate and check the log's signature.
  const ct::SignedEntry entry =
      ct::make_precert_entry(issued.final_certificate, ca.public_key());
  const bool valid = ct::verify_sct(issued.scts.at(0), entry, log.public_key());
  std::printf("embedded SCT valid: %s\n", valid ? "yes" : "NO");

  // 4. An auditor checks the log's append-only behaviour over time.
  ct::LogAuditor auditor;
  const auto first = auditor.audit(log, SimTime::parse("2018-04-01 11:00:00"));
  std::printf("audit #1: %s (tree size %llu)\n", first.ok ? "ok" : first.problem.c_str(),
              static_cast<unsigned long long>(first.sth.tree_size));

  sim::IssuanceRequest more = request;
  more.subject_cn = "api.example.org";
  more.sans = {x509::SanEntry::dns("api.example.org")};
  ca.issue(more, SimTime::parse("2018-04-02 09:00:00"));
  const auto second = auditor.audit(log, SimTime::parse("2018-04-02 10:00:00"));
  std::printf("audit #2: %s (tree size %llu, consistency proven)\n",
              second.ok ? "ok" : second.problem.c_str(),
              static_cast<unsigned long long>(second.sth.tree_size));

  return valid && first.ok && second.ok ? 0 : 1;
}
