# Empty dependencies file for table2_subdomain_labels.
# This may be replaced when dependencies are built.
