file(REMOVE_RECURSE
  "CMakeFiles/table2_subdomain_labels.dir/table2_subdomain_labels.cpp.o"
  "CMakeFiles/table2_subdomain_labels.dir/table2_subdomain_labels.cpp.o.d"
  "table2_subdomain_labels"
  "table2_subdomain_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_subdomain_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
