# Empty compiler generated dependencies file for fig1b_update_rate.
# This may be replaced when dependencies are built.
