file(REMOVE_RECURSE
  "CMakeFiles/fig1b_update_rate.dir/fig1b_update_rate.cpp.o"
  "CMakeFiles/fig1b_update_rate.dir/fig1b_update_rate.cpp.o.d"
  "fig1b_update_rate"
  "fig1b_update_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_update_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
