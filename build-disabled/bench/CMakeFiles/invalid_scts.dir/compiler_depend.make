# Empty compiler generated dependencies file for invalid_scts.
# This may be replaced when dependencies are built.
