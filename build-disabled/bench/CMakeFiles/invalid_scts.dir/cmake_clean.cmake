file(REMOVE_RECURSE
  "CMakeFiles/invalid_scts.dir/invalid_scts.cpp.o"
  "CMakeFiles/invalid_scts.dir/invalid_scts.cpp.o.d"
  "invalid_scts"
  "invalid_scts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalid_scts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
