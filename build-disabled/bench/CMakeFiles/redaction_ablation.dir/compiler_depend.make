# Empty compiler generated dependencies file for redaction_ablation.
# This may be replaced when dependencies are built.
