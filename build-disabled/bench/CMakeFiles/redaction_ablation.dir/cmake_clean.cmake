file(REMOVE_RECURSE
  "CMakeFiles/redaction_ablation.dir/redaction_ablation.cpp.o"
  "CMakeFiles/redaction_ablation.dir/redaction_ablation.cpp.o.d"
  "redaction_ablation"
  "redaction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redaction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
