# Empty compiler generated dependencies file for fig1c_ca_log_heatmap.
# This may be replaced when dependencies are built.
