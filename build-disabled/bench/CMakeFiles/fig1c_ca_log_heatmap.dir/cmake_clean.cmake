file(REMOVE_RECURSE
  "CMakeFiles/fig1c_ca_log_heatmap.dir/fig1c_ca_log_heatmap.cpp.o"
  "CMakeFiles/fig1c_ca_log_heatmap.dir/fig1c_ca_log_heatmap.cpp.o.d"
  "fig1c_ca_log_heatmap"
  "fig1c_ca_log_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_ca_log_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
