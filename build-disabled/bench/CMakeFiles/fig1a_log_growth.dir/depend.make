# Empty dependencies file for fig1a_log_growth.
# This may be replaced when dependencies are built.
