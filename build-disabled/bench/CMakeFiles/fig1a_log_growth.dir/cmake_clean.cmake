file(REMOVE_RECURSE
  "CMakeFiles/fig1a_log_growth.dir/fig1a_log_growth.cpp.o"
  "CMakeFiles/fig1a_log_growth.dir/fig1a_log_growth.cpp.o.d"
  "fig1a_log_growth"
  "fig1a_log_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_log_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
