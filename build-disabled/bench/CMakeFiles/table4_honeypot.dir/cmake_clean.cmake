file(REMOVE_RECURSE
  "CMakeFiles/table4_honeypot.dir/table4_honeypot.cpp.o"
  "CMakeFiles/table4_honeypot.dir/table4_honeypot.cpp.o.d"
  "table4_honeypot"
  "table4_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
