# Empty dependencies file for table4_honeypot.
# This may be replaced when dependencies are built.
