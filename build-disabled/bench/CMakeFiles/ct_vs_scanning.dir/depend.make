# Empty dependencies file for ct_vs_scanning.
# This may be replaced when dependencies are built.
