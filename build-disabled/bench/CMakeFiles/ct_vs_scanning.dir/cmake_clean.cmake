file(REMOVE_RECURSE
  "CMakeFiles/ct_vs_scanning.dir/ct_vs_scanning.cpp.o"
  "CMakeFiles/ct_vs_scanning.dir/ct_vs_scanning.cpp.o.d"
  "ct_vs_scanning"
  "ct_vs_scanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_vs_scanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
