# Empty compiler generated dependencies file for log_flooding_attack.
# This may be replaced when dependencies are built.
