file(REMOVE_RECURSE
  "CMakeFiles/log_flooding_attack.dir/log_flooding_attack.cpp.o"
  "CMakeFiles/log_flooding_attack.dir/log_flooding_attack.cpp.o.d"
  "log_flooding_attack"
  "log_flooding_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_flooding_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
