# Empty dependencies file for table1_top_logs.
# This may be replaced when dependencies are built.
