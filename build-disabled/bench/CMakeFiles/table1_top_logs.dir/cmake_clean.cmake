file(REMOVE_RECURSE
  "CMakeFiles/table1_top_logs.dir/table1_top_logs.cpp.o"
  "CMakeFiles/table1_top_logs.dir/table1_top_logs.cpp.o.d"
  "table1_top_logs"
  "table1_top_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_top_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
