file(REMOVE_RECURSE
  "CMakeFiles/fig2_sct_connections.dir/fig2_sct_connections.cpp.o"
  "CMakeFiles/fig2_sct_connections.dir/fig2_sct_connections.cpp.o.d"
  "fig2_sct_connections"
  "fig2_sct_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sct_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
