# Empty compiler generated dependencies file for fig2_sct_connections.
# This may be replaced when dependencies are built.
