# Empty compiler generated dependencies file for wordlist_comparison.
# This may be replaced when dependencies are built.
