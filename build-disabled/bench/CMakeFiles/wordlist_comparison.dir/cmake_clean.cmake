file(REMOVE_RECURSE
  "CMakeFiles/wordlist_comparison.dir/wordlist_comparison.cpp.o"
  "CMakeFiles/wordlist_comparison.dir/wordlist_comparison.cpp.o.d"
  "wordlist_comparison"
  "wordlist_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordlist_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
