file(REMOVE_RECURSE
  "CMakeFiles/table3_phishing.dir/table3_phishing.cpp.o"
  "CMakeFiles/table3_phishing.dir/table3_phishing.cpp.o.d"
  "table3_phishing"
  "table3_phishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_phishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
