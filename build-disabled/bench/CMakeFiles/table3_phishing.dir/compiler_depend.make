# Empty compiler generated dependencies file for table3_phishing.
# This may be replaced when dependencies are built.
