# Empty compiler generated dependencies file for scan_server_support.
# This may be replaced when dependencies are built.
