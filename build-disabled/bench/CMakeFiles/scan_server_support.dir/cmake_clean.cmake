file(REMOVE_RECURSE
  "CMakeFiles/scan_server_support.dir/scan_server_support.cpp.o"
  "CMakeFiles/scan_server_support.dir/scan_server_support.cpp.o.d"
  "scan_server_support"
  "scan_server_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_server_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
