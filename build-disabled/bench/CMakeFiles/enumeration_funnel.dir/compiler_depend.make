# Empty compiler generated dependencies file for enumeration_funnel.
# This may be replaced when dependencies are built.
