file(REMOVE_RECURSE
  "CMakeFiles/enumeration_funnel.dir/enumeration_funnel.cpp.o"
  "CMakeFiles/enumeration_funnel.dir/enumeration_funnel.cpp.o.d"
  "enumeration_funnel"
  "enumeration_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumeration_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
