# Empty dependencies file for obs_demo.
# This may be replaced when dependencies are built.
