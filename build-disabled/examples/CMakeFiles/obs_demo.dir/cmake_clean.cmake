file(REMOVE_RECURSE
  "CMakeFiles/obs_demo.dir/obs_demo.cpp.o"
  "CMakeFiles/obs_demo.dir/obs_demo.cpp.o.d"
  "obs_demo"
  "obs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
