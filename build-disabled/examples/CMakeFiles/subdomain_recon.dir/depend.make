# Empty dependencies file for subdomain_recon.
# This may be replaced when dependencies are built.
