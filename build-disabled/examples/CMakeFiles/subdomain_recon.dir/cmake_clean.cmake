file(REMOVE_RECURSE
  "CMakeFiles/subdomain_recon.dir/subdomain_recon.cpp.o"
  "CMakeFiles/subdomain_recon.dir/subdomain_recon.cpp.o.d"
  "subdomain_recon"
  "subdomain_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdomain_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
