# Empty dependencies file for honeypot_demo.
# This may be replaced when dependencies are built.
