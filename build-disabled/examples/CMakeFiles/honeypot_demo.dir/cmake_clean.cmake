file(REMOVE_RECURSE
  "CMakeFiles/honeypot_demo.dir/honeypot_demo.cpp.o"
  "CMakeFiles/honeypot_demo.dir/honeypot_demo.cpp.o.d"
  "honeypot_demo"
  "honeypot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/honeypot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
