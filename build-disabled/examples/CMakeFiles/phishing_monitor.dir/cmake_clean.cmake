file(REMOVE_RECURSE
  "CMakeFiles/phishing_monitor.dir/phishing_monitor.cpp.o"
  "CMakeFiles/phishing_monitor.dir/phishing_monitor.cpp.o.d"
  "phishing_monitor"
  "phishing_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phishing_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
