# Empty compiler generated dependencies file for phishing_monitor.
# This may be replaced when dependencies are built.
