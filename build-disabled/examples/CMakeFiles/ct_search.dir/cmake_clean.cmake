file(REMOVE_RECURSE
  "CMakeFiles/ct_search.dir/ct_search.cpp.o"
  "CMakeFiles/ct_search.dir/ct_search.cpp.o.d"
  "ct_search"
  "ct_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
