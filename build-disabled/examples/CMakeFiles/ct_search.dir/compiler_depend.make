# Empty compiler generated dependencies file for ct_search.
# This may be replaced when dependencies are built.
