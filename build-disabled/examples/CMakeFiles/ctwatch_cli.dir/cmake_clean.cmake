file(REMOVE_RECURSE
  "CMakeFiles/ctwatch_cli.dir/ctwatch_cli.cpp.o"
  "CMakeFiles/ctwatch_cli.dir/ctwatch_cli.cpp.o.d"
  "ctwatch_cli"
  "ctwatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctwatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
