# Empty dependencies file for ctwatch_cli.
# This may be replaced when dependencies are built.
