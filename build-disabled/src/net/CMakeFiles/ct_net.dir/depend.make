# Empty dependencies file for ct_net.
# This may be replaced when dependencies are built.
