file(REMOVE_RECURSE
  "CMakeFiles/ct_net.dir/autonomous_system.cpp.o"
  "CMakeFiles/ct_net.dir/autonomous_system.cpp.o.d"
  "CMakeFiles/ct_net.dir/capture.cpp.o"
  "CMakeFiles/ct_net.dir/capture.cpp.o.d"
  "CMakeFiles/ct_net.dir/ip.cpp.o"
  "CMakeFiles/ct_net.dir/ip.cpp.o.d"
  "CMakeFiles/ct_net.dir/reverse_dns.cpp.o"
  "CMakeFiles/ct_net.dir/reverse_dns.cpp.o.d"
  "libct_net.a"
  "libct_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
