
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/autonomous_system.cpp" "src/net/CMakeFiles/ct_net.dir/autonomous_system.cpp.o" "gcc" "src/net/CMakeFiles/ct_net.dir/autonomous_system.cpp.o.d"
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/ct_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/ct_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/ct_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/ct_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/reverse_dns.cpp" "src/net/CMakeFiles/ct_net.dir/reverse_dns.cpp.o" "gcc" "src/net/CMakeFiles/ct_net.dir/reverse_dns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-disabled/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/obs/CMakeFiles/ct_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
