file(REMOVE_RECURSE
  "libct_net.a"
)
