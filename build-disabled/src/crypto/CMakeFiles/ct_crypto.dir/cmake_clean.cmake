file(REMOVE_RECURSE
  "CMakeFiles/ct_crypto.dir/ec_p256.cpp.o"
  "CMakeFiles/ct_crypto.dir/ec_p256.cpp.o.d"
  "CMakeFiles/ct_crypto.dir/sha256.cpp.o"
  "CMakeFiles/ct_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/ct_crypto.dir/signature.cpp.o"
  "CMakeFiles/ct_crypto.dir/signature.cpp.o.d"
  "CMakeFiles/ct_crypto.dir/u256.cpp.o"
  "CMakeFiles/ct_crypto.dir/u256.cpp.o.d"
  "libct_crypto.a"
  "libct_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
