file(REMOVE_RECURSE
  "libct_crypto.a"
)
