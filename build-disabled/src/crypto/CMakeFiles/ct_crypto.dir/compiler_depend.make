# Empty compiler generated dependencies file for ct_crypto.
# This may be replaced when dependencies are built.
