file(REMOVE_RECURSE
  "libct_monitor.a"
)
