file(REMOVE_RECURSE
  "CMakeFiles/ct_monitor.dir/passive_monitor.cpp.o"
  "CMakeFiles/ct_monitor.dir/passive_monitor.cpp.o.d"
  "CMakeFiles/ct_monitor.dir/ssl_log.cpp.o"
  "CMakeFiles/ct_monitor.dir/ssl_log.cpp.o.d"
  "libct_monitor.a"
  "libct_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
