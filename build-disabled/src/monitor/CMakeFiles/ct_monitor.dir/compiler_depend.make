# Empty compiler generated dependencies file for ct_monitor.
# This may be replaced when dependencies are built.
