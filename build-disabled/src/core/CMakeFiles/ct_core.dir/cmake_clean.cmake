file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/adoption.cpp.o"
  "CMakeFiles/ct_core.dir/adoption.cpp.o.d"
  "CMakeFiles/ct_core.dir/invalid_sct.cpp.o"
  "CMakeFiles/ct_core.dir/invalid_sct.cpp.o.d"
  "CMakeFiles/ct_core.dir/leakage.cpp.o"
  "CMakeFiles/ct_core.dir/leakage.cpp.o.d"
  "CMakeFiles/ct_core.dir/log_evolution.cpp.o"
  "CMakeFiles/ct_core.dir/log_evolution.cpp.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
