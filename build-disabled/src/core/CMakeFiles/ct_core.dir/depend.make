# Empty dependencies file for ct_core.
# This may be replaced when dependencies are built.
