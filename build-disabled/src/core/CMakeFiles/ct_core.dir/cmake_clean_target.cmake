file(REMOVE_RECURSE
  "libct_core.a"
)
