file(REMOVE_RECURSE
  "CMakeFiles/ct_log.dir/auditor.cpp.o"
  "CMakeFiles/ct_log.dir/auditor.cpp.o.d"
  "CMakeFiles/ct_log.dir/index.cpp.o"
  "CMakeFiles/ct_log.dir/index.cpp.o.d"
  "CMakeFiles/ct_log.dir/log.cpp.o"
  "CMakeFiles/ct_log.dir/log.cpp.o.d"
  "CMakeFiles/ct_log.dir/loglist.cpp.o"
  "CMakeFiles/ct_log.dir/loglist.cpp.o.d"
  "CMakeFiles/ct_log.dir/merkle.cpp.o"
  "CMakeFiles/ct_log.dir/merkle.cpp.o.d"
  "CMakeFiles/ct_log.dir/sct.cpp.o"
  "CMakeFiles/ct_log.dir/sct.cpp.o.d"
  "CMakeFiles/ct_log.dir/stream.cpp.o"
  "CMakeFiles/ct_log.dir/stream.cpp.o.d"
  "libct_log.a"
  "libct_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
