# Empty dependencies file for ct_log.
# This may be replaced when dependencies are built.
