
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ct/auditor.cpp" "src/ct/CMakeFiles/ct_log.dir/auditor.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/auditor.cpp.o.d"
  "/root/repo/src/ct/index.cpp" "src/ct/CMakeFiles/ct_log.dir/index.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/index.cpp.o.d"
  "/root/repo/src/ct/log.cpp" "src/ct/CMakeFiles/ct_log.dir/log.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/log.cpp.o.d"
  "/root/repo/src/ct/loglist.cpp" "src/ct/CMakeFiles/ct_log.dir/loglist.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/loglist.cpp.o.d"
  "/root/repo/src/ct/merkle.cpp" "src/ct/CMakeFiles/ct_log.dir/merkle.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/merkle.cpp.o.d"
  "/root/repo/src/ct/sct.cpp" "src/ct/CMakeFiles/ct_log.dir/sct.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/sct.cpp.o.d"
  "/root/repo/src/ct/stream.cpp" "src/ct/CMakeFiles/ct_log.dir/stream.cpp.o" "gcc" "src/ct/CMakeFiles/ct_log.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-disabled/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/crypto/CMakeFiles/ct_crypto.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/x509/CMakeFiles/ct_x509.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/dns/CMakeFiles/ct_dns.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/asn1/CMakeFiles/ct_asn1.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/net/CMakeFiles/ct_net.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/obs/CMakeFiles/ct_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
