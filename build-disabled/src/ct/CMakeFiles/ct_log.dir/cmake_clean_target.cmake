file(REMOVE_RECURSE
  "libct_log.a"
)
