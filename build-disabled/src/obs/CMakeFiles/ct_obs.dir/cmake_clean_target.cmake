file(REMOVE_RECURSE
  "libct_obs.a"
)
