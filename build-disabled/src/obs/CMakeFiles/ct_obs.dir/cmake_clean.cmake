file(REMOVE_RECURSE
  "CMakeFiles/ct_obs.dir/log.cpp.o"
  "CMakeFiles/ct_obs.dir/log.cpp.o.d"
  "CMakeFiles/ct_obs.dir/metrics.cpp.o"
  "CMakeFiles/ct_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ct_obs.dir/trace.cpp.o"
  "CMakeFiles/ct_obs.dir/trace.cpp.o.d"
  "libct_obs.a"
  "libct_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
