# Empty compiler generated dependencies file for ct_obs.
# This may be replaced when dependencies are built.
