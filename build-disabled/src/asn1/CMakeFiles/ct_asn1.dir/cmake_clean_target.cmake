file(REMOVE_RECURSE
  "libct_asn1.a"
)
