file(REMOVE_RECURSE
  "CMakeFiles/ct_asn1.dir/der.cpp.o"
  "CMakeFiles/ct_asn1.dir/der.cpp.o.d"
  "libct_asn1.a"
  "libct_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
