# Empty dependencies file for ct_asn1.
# This may be replaced when dependencies are built.
