file(REMOVE_RECURSE
  "libct_util.a"
)
