# Empty compiler generated dependencies file for ct_util.
# This may be replaced when dependencies are built.
