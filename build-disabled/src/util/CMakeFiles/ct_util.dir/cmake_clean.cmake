file(REMOVE_RECURSE
  "CMakeFiles/ct_util.dir/encoding.cpp.o"
  "CMakeFiles/ct_util.dir/encoding.cpp.o.d"
  "CMakeFiles/ct_util.dir/rng.cpp.o"
  "CMakeFiles/ct_util.dir/rng.cpp.o.d"
  "CMakeFiles/ct_util.dir/strings.cpp.o"
  "CMakeFiles/ct_util.dir/strings.cpp.o.d"
  "CMakeFiles/ct_util.dir/time.cpp.o"
  "CMakeFiles/ct_util.dir/time.cpp.o.d"
  "libct_util.a"
  "libct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
