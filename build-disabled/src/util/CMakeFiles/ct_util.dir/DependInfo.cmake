
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/encoding.cpp" "src/util/CMakeFiles/ct_util.dir/encoding.cpp.o" "gcc" "src/util/CMakeFiles/ct_util.dir/encoding.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/ct_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/ct_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/ct_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/ct_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/util/CMakeFiles/ct_util.dir/time.cpp.o" "gcc" "src/util/CMakeFiles/ct_util.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-disabled/src/obs/CMakeFiles/ct_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
