# CMake generated Testfile for 
# Source directory: /root/repo/src/enumeration
# Build directory: /root/repo/build-disabled/src/enumeration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
