# Empty dependencies file for ct_enum.
# This may be replaced when dependencies are built.
