file(REMOVE_RECURSE
  "libct_enum.a"
)
