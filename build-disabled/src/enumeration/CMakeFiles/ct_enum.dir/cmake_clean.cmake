file(REMOVE_RECURSE
  "CMakeFiles/ct_enum.dir/census.cpp.o"
  "CMakeFiles/ct_enum.dir/census.cpp.o.d"
  "CMakeFiles/ct_enum.dir/enumerator.cpp.o"
  "CMakeFiles/ct_enum.dir/enumerator.cpp.o.d"
  "libct_enum.a"
  "libct_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
