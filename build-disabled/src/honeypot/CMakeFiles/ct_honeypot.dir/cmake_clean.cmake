file(REMOVE_RECURSE
  "CMakeFiles/ct_honeypot.dir/analysis.cpp.o"
  "CMakeFiles/ct_honeypot.dir/analysis.cpp.o.d"
  "CMakeFiles/ct_honeypot.dir/attackers.cpp.o"
  "CMakeFiles/ct_honeypot.dir/attackers.cpp.o.d"
  "CMakeFiles/ct_honeypot.dir/honeypot.cpp.o"
  "CMakeFiles/ct_honeypot.dir/honeypot.cpp.o.d"
  "libct_honeypot.a"
  "libct_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
