file(REMOVE_RECURSE
  "libct_honeypot.a"
)
