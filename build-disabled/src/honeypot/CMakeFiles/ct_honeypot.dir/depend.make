# Empty dependencies file for ct_honeypot.
# This may be replaced when dependencies are built.
