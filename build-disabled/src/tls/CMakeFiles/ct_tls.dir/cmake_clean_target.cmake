file(REMOVE_RECURSE
  "libct_tls.a"
)
