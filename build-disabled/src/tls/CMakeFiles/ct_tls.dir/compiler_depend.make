# Empty compiler generated dependencies file for ct_tls.
# This may be replaced when dependencies are built.
