file(REMOVE_RECURSE
  "CMakeFiles/ct_tls.dir/connection.cpp.o"
  "CMakeFiles/ct_tls.dir/connection.cpp.o.d"
  "libct_tls.a"
  "libct_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
