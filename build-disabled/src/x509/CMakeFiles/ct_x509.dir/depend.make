# Empty dependencies file for ct_x509.
# This may be replaced when dependencies are built.
