file(REMOVE_RECURSE
  "libct_x509.a"
)
