file(REMOVE_RECURSE
  "CMakeFiles/ct_x509.dir/certificate.cpp.o"
  "CMakeFiles/ct_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/ct_x509.dir/oids.cpp.o"
  "CMakeFiles/ct_x509.dir/oids.cpp.o.d"
  "CMakeFiles/ct_x509.dir/redaction.cpp.o"
  "CMakeFiles/ct_x509.dir/redaction.cpp.o.d"
  "libct_x509.a"
  "libct_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
