file(REMOVE_RECURSE
  "CMakeFiles/ct_sim.dir/ca.cpp.o"
  "CMakeFiles/ct_sim.dir/ca.cpp.o.d"
  "CMakeFiles/ct_sim.dir/domains.cpp.o"
  "CMakeFiles/ct_sim.dir/domains.cpp.o.d"
  "CMakeFiles/ct_sim.dir/ecosystem.cpp.o"
  "CMakeFiles/ct_sim.dir/ecosystem.cpp.o.d"
  "CMakeFiles/ct_sim.dir/phishing_gen.cpp.o"
  "CMakeFiles/ct_sim.dir/phishing_gen.cpp.o.d"
  "CMakeFiles/ct_sim.dir/population.cpp.o"
  "CMakeFiles/ct_sim.dir/population.cpp.o.d"
  "CMakeFiles/ct_sim.dir/timeline.cpp.o"
  "CMakeFiles/ct_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/ct_sim.dir/traffic.cpp.o"
  "CMakeFiles/ct_sim.dir/traffic.cpp.o.d"
  "libct_sim.a"
  "libct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
