# CMake generated Testfile for 
# Source directory: /root/repo/src/phishing
# Build directory: /root/repo/build-disabled/src/phishing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
