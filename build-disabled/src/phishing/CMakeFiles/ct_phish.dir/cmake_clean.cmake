file(REMOVE_RECURSE
  "CMakeFiles/ct_phish.dir/detector.cpp.o"
  "CMakeFiles/ct_phish.dir/detector.cpp.o.d"
  "libct_phish.a"
  "libct_phish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_phish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
