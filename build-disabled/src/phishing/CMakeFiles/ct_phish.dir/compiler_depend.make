# Empty compiler generated dependencies file for ct_phish.
# This may be replaced when dependencies are built.
