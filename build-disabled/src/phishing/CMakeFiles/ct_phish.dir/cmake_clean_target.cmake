file(REMOVE_RECURSE
  "libct_phish.a"
)
