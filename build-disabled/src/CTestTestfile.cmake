# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-disabled/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("crypto")
subdirs("asn1")
subdirs("x509")
subdirs("dns")
subdirs("net")
subdirs("ct")
subdirs("tls")
subdirs("monitor")
subdirs("sim")
subdirs("enumeration")
subdirs("phishing")
subdirs("honeypot")
subdirs("core")
