file(REMOVE_RECURSE
  "libct_dns.a"
)
