
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/ct_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/ct_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/psl.cpp" "src/dns/CMakeFiles/ct_dns.dir/psl.cpp.o" "gcc" "src/dns/CMakeFiles/ct_dns.dir/psl.cpp.o.d"
  "/root/repo/src/dns/records.cpp" "src/dns/CMakeFiles/ct_dns.dir/records.cpp.o" "gcc" "src/dns/CMakeFiles/ct_dns.dir/records.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/ct_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/ct_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/dns/zone.cpp" "src/dns/CMakeFiles/ct_dns.dir/zone.cpp.o" "gcc" "src/dns/CMakeFiles/ct_dns.dir/zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-disabled/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/net/CMakeFiles/ct_net.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/obs/CMakeFiles/ct_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
