# Empty dependencies file for ct_dns.
# This may be replaced when dependencies are built.
