file(REMOVE_RECURSE
  "CMakeFiles/ct_dns.dir/name.cpp.o"
  "CMakeFiles/ct_dns.dir/name.cpp.o.d"
  "CMakeFiles/ct_dns.dir/psl.cpp.o"
  "CMakeFiles/ct_dns.dir/psl.cpp.o.d"
  "CMakeFiles/ct_dns.dir/records.cpp.o"
  "CMakeFiles/ct_dns.dir/records.cpp.o.d"
  "CMakeFiles/ct_dns.dir/resolver.cpp.o"
  "CMakeFiles/ct_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/ct_dns.dir/zone.cpp.o"
  "CMakeFiles/ct_dns.dir/zone.cpp.o.d"
  "libct_dns.a"
  "libct_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
