file(REMOVE_RECURSE
  "CMakeFiles/x509_test.dir/x509_test.cpp.o"
  "CMakeFiles/x509_test.dir/x509_test.cpp.o.d"
  "x509_test"
  "x509_test.pdb"
  "x509_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x509_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
