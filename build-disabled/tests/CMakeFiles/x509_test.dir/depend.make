# Empty dependencies file for x509_test.
# This may be replaced when dependencies are built.
