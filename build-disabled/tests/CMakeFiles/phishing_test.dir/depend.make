# Empty dependencies file for phishing_test.
# This may be replaced when dependencies are built.
