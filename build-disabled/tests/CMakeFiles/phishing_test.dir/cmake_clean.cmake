file(REMOVE_RECURSE
  "CMakeFiles/phishing_test.dir/phishing_test.cpp.o"
  "CMakeFiles/phishing_test.dir/phishing_test.cpp.o.d"
  "phishing_test"
  "phishing_test.pdb"
  "phishing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phishing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
