# Empty dependencies file for ct_log_test.
# This may be replaced when dependencies are built.
