file(REMOVE_RECURSE
  "CMakeFiles/ct_log_test.dir/ct_log_test.cpp.o"
  "CMakeFiles/ct_log_test.dir/ct_log_test.cpp.o.d"
  "ct_log_test"
  "ct_log_test.pdb"
  "ct_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
