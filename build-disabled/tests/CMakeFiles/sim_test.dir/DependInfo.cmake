
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-disabled/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/enumeration/CMakeFiles/ct_enum.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/phishing/CMakeFiles/ct_phish.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/honeypot/CMakeFiles/ct_honeypot.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/monitor/CMakeFiles/ct_monitor.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/tls/CMakeFiles/ct_tls.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/ct/CMakeFiles/ct_log.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/x509/CMakeFiles/ct_x509.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/asn1/CMakeFiles/ct_asn1.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/crypto/CMakeFiles/ct_crypto.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/dns/CMakeFiles/ct_dns.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/net/CMakeFiles/ct_net.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build-disabled/src/obs/CMakeFiles/ct_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
