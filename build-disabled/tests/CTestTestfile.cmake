# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-disabled/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-disabled/tests/obs_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/util_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/asn1_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/merkle_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/x509_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/dns_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/net_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/ct_log_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/monitor_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/sim_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/enumeration_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/phishing_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/honeypot_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/core_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/property_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/integration_test[1]_include.cmake")
include("/root/repo/build-disabled/tests/misc_test[1]_include.cmake")
