add_test([=[ObsDisabledTest.ApiIsCallableAndInert]=]  /root/repo/build-disabled/tests/obs_test [==[--gtest_filter=ObsDisabledTest.ApiIsCallableAndInert]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ObsDisabledTest.ApiIsCallableAndInert]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-disabled/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  obs_test_TESTS ObsDisabledTest.ApiIsCallableAndInert)
