// ctwatch::storage — the durable, crash-recoverable backing store:
// CRC32C vectors, WAL framing and torn-tail semantics, checksummed tile
// pages, the Env's deterministic crash model, LogStore commit /
// checkpoint / recovery (including every recovery edge the design calls
// out: empty WAL, unsealed entries, torn tails, crash before the first
// seal, crashes inside the checkpoint protocol, double reopen), and the
// LogService integration — adoption, verbatim STH republication, fail-stop
// storage_error completions, and orderly-stop durability.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/logsvc/service.hpp"
#include "ctwatch/storage/codec.hpp"
#include "ctwatch/storage/crc32c.hpp"
#include "ctwatch/storage/file.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/storage/tiles.hpp"
#include "ctwatch/storage/wal.hpp"

namespace ctwatch::storage {
namespace {

using namespace std::chrono_literals;

/// A throwaway directory under the build tree, removed on scope exit.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    std::string tmpl = "ctwatch_" + tag + ".XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

crypto::Digest digest_of(const std::string& s) { return crypto::Sha256::hash(to_bytes(s)); }

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(StorageCrc32cTest, KnownVectors) {
  // RFC 3720 B.4 test vectors for CRC32C (Castagnoli).
  const Bytes check = to_bytes("123456789");
  EXPECT_EQ(crc32c(check), 0xE3069283u);
  const Bytes zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const Bytes ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(StorageCrc32cTest, SeedChainingMatchesOneShot) {
  const Bytes data = to_bytes("hello, durable world");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = crc32c(BytesView{data.data(), split});
    const std::uint32_t chained = crc32c(BytesView{data.data() + split, data.size() - split}, first);
    EXPECT_EQ(chained, crc32c(data)) << "split at " << split;
  }
}

TEST(StorageCrc32cTest, MaskRoundTripsAndDiffers) {
  for (const std::uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(crc32c_unmask(crc32c_mask(crc)), crc);
    EXPECT_NE(crc32c_mask(crc), crc);  // the point of masking CRCs of CRCs
  }
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(StorageWalTest, RoundTripsRecordsInOrder) {
  Bytes image;
  wal_frame(image, RecordType::entry, to_bytes("alpha"));
  wal_frame(image, RecordType::seal, to_bytes("beta"));
  wal_frame(image, RecordType::checkpoint, Bytes{});

  const WalScan scan = wal_scan(image);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.valid_bytes, image.size());
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.records[0].type, RecordType::entry);
  EXPECT_EQ(ctwatch::to_string(scan.records[0].payload), "alpha");
  EXPECT_EQ(scan.records[1].type, RecordType::seal);
  EXPECT_EQ(ctwatch::to_string(scan.records[1].payload), "beta");
  EXPECT_EQ(scan.records[2].type, RecordType::checkpoint);
  EXPECT_TRUE(scan.records[2].payload.empty());
}

TEST(StorageWalTest, TornTailKeepsEveryByteCountOfPrefix) {
  Bytes image;
  wal_frame(image, RecordType::entry, to_bytes("kept"));
  const std::size_t first_frame = image.size();
  wal_frame(image, RecordType::entry, to_bytes("torn away"));

  // Every possible torn length of the second frame: scan keeps exactly
  // the first record and reports the rest as torn.
  for (std::size_t keep = 0; keep < image.size() - first_frame; ++keep) {
    const WalScan scan = wal_scan(BytesView{image.data(), first_frame + keep});
    ASSERT_EQ(scan.records.size(), 1u) << "torn length " << keep;
    EXPECT_EQ(scan.valid_bytes, first_frame);
    EXPECT_EQ(scan.torn_bytes, keep);
  }
}

TEST(StorageWalTest, CorruptionStopsTheTrustedPrefix) {
  Bytes image;
  wal_frame(image, RecordType::entry, to_bytes("one"));
  const std::size_t first_frame = image.size();
  wal_frame(image, RecordType::entry, to_bytes("two"));
  wal_frame(image, RecordType::entry, to_bytes("three"));

  Bytes corrupted = image;
  corrupted[first_frame + 9] ^= 0x01;  // flip a payload byte of record two
  const WalScan scan = wal_scan(corrupted);
  ASSERT_EQ(scan.records.size(), 1u);  // record three is unreachable by design
  EXPECT_EQ(scan.valid_bytes, first_frame);

  Bytes zero_len = image;
  zero_len.resize(first_frame);
  for (int i = 0; i < 9; ++i) zero_len.push_back(0x00);  // zero length header
  EXPECT_EQ(wal_scan(zero_len).records.size(), 1u);

  Bytes unknown_type = image;
  unknown_type[first_frame + 8] = 0x7F;  // valid length, unknown record type
  // CRC covers the type byte, so this also fails the CRC — but even a
  // recomputed CRC would stop at the unknown type.
  EXPECT_EQ(wal_scan(unknown_type).records.size(), 1u);
}

// ---------------------------------------------------------------------------
// Tile pages
// ---------------------------------------------------------------------------

TEST(StorageTileTest, PageRoundTripsFullAndPartial) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < 300; ++i) leaves.push_back(digest_of("leaf" + std::to_string(i)));

  Bytes full;
  encode_tile_page(full, 0, leaves.data(), kTileLeaves);
  ASSERT_EQ(full.size(), kTilePageBytes);
  const std::optional<TilePage> full_page = decode_tile_page(full);
  ASSERT_TRUE(full_page.has_value());
  EXPECT_EQ(full_page->tile_index, 0u);
  EXPECT_EQ(full_page->count, kTileLeaves);
  EXPECT_EQ(full_page->leaves[255], leaves[255]);

  Bytes partial;
  encode_tile_page(partial, 1, leaves.data() + kTileLeaves, 44);
  ASSERT_EQ(partial.size(), kTilePageBytes);  // fixed stride regardless of count
  const std::optional<TilePage> partial_page = decode_tile_page(partial);
  ASSERT_TRUE(partial_page.has_value());
  EXPECT_EQ(partial_page->tile_index, 1u);
  EXPECT_EQ(partial_page->count, 44u);
  EXPECT_EQ(partial_page->leaves[43], leaves[299]);

  Bytes corrupt = full;
  corrupt[100] ^= 0x01;
  EXPECT_FALSE(decode_tile_page(corrupt).has_value());
}

TEST(StorageTileTest, LastPageWinsAndGapsAreCorrupt) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < 400; ++i) leaves.push_back(digest_of("t" + std::to_string(i)));

  // The append-only segment: tile 0 full, then tile 1 written at 100
  // leaves, then again (superseding) at 144.
  Bytes segment;
  encode_tile_page(segment, 0, leaves.data(), kTileLeaves);
  encode_tile_page(segment, 1, leaves.data() + kTileLeaves, 100);
  encode_tile_page(segment, 1, leaves.data() + kTileLeaves, 144);

  const TileLoad load = load_tiles(segment, segment.size(), kTileLeaves + 144);
  EXPECT_EQ(load.error, IoError::none);
  ASSERT_EQ(load.leaves.size(), kTileLeaves + 144);
  EXPECT_EQ(load.leaves[kTileLeaves + 143], leaves[kTileLeaves + 143]);
  EXPECT_EQ(load.pages_read, 3u);

  // Asking beyond what the pages cover is a coverage failure.
  EXPECT_EQ(load_tiles(segment, segment.size(), kTileLeaves + 145).error, IoError::corrupt);
  // A limit that cuts the superseding page falls back to the older one.
  const TileLoad older = load_tiles(segment, 2 * kTilePageBytes, kTileLeaves + 100);
  EXPECT_EQ(older.error, IoError::none);
  ASSERT_EQ(older.leaves.size(), kTileLeaves + 100);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(StorageCodecTest, EntryRoundTripsWithAndWithoutBody) {
  DurableEntry entry;
  entry.index = 42;
  entry.timestamp_ms = 1522540800000ULL;
  entry.leaf_hash = digest_of("leaf");
  entry.fingerprint = digest_of("fp");
  entry.issuer_cn = "Example CA";
  entry.has_body = true;
  entry.entry.type = ct::EntryType::precert_entry;
  entry.entry.data = to_bytes("tbs-bytes");
  entry.entry.issuer_key_hash = digest_of("ikh");

  const Bytes encoded = encode_entry(entry);
  const std::optional<DurableEntry> decoded = decode_entry(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 42u);
  EXPECT_EQ(decoded->timestamp_ms, entry.timestamp_ms);
  EXPECT_EQ(decoded->leaf_hash, entry.leaf_hash);
  EXPECT_EQ(decoded->fingerprint, entry.fingerprint);
  EXPECT_EQ(decoded->issuer_cn, "Example CA");
  ASSERT_TRUE(decoded->has_body);
  EXPECT_EQ(decoded->entry.type, ct::EntryType::precert_entry);
  EXPECT_EQ(decoded->entry.data, entry.entry.data);
  EXPECT_EQ(decoded->entry.issuer_key_hash, entry.entry.issuer_key_hash);

  entry.has_body = false;
  const Bytes slim = encode_entry(entry);
  EXPECT_LT(slim.size(), encoded.size());
  const std::optional<DurableEntry> slim_decoded = decode_entry(slim);
  ASSERT_TRUE(slim_decoded.has_value());
  EXPECT_FALSE(slim_decoded->has_body);

  // Strictness: truncation and trailing garbage both refuse.
  EXPECT_FALSE(decode_entry(BytesView{encoded.data(), encoded.size() - 1}).has_value());
  Bytes padded = encoded;
  padded.push_back(0x00);
  EXPECT_FALSE(decode_entry(padded).has_value());
}

TEST(StorageCodecTest, SealAndCheckpointRoundTrip) {
  SealRecord seal;
  seal.first_index = 7;
  seal.seal_seq = 3;
  seal.sth.tree_size = 9;
  seal.sth.timestamp_ms = 1234;
  seal.sth.root_hash = digest_of("root");
  seal.sth.signature.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  seal.sth.signature.data = to_bytes("sig");
  const std::optional<SealRecord> seal2 = decode_seal(encode_seal(seal));
  ASSERT_TRUE(seal2.has_value());
  EXPECT_EQ(seal2->first_index, 7u);
  EXPECT_EQ(seal2->seal_seq, 3u);
  EXPECT_EQ(seal2->sth, seal.sth);

  // first_index beyond tree_size is structurally impossible.
  seal.first_index = 10;
  EXPECT_FALSE(decode_seal(encode_seal(seal)).has_value());

  CheckpointRecord cp;
  cp.sth = seal.sth;
  cp.frontier = {digest_of("f1"), digest_of("f2")};
  cp.seal_seq = 3;
  cp.last_timestamp_ms = 1234;
  cp.tile_bytes = 8208;
  cp.entry_bytes = 555;
  const std::optional<CheckpointRecord> cp2 = decode_checkpoint(encode_checkpoint(cp));
  ASSERT_TRUE(cp2.has_value());
  EXPECT_EQ(cp2->sth, cp.sth);
  EXPECT_EQ(cp2->frontier, cp.frontier);
  EXPECT_EQ(cp2->tile_bytes, 8208u);
  EXPECT_EQ(cp2->entry_bytes, 555u);
}

// ---------------------------------------------------------------------------
// Env crash model
// ---------------------------------------------------------------------------

TEST(StorageEnvTest, SyncMakesBytesDurableAcrossCrash) {
  TempDir dir("env");
  chaos::FaultInjector chaos(1);
  Env::Options options;
  options.dir = dir.path;
  options.chaos = &chaos;
  auto env = Env::open(options);
  ASSERT_NE(env, nullptr);

  auto file = env->open_append("a.log", 0);
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(file->append(to_bytes("durable")).ok());
  ASSERT_TRUE(file->sync().ok());
  ASSERT_TRUE(file->append(to_bytes("maybe-lost")).ok());
  EXPECT_EQ(file->durable_size(), 7u);
  EXPECT_EQ(file->size(), 17u);

  env->crash_now();
  EXPECT_TRUE(env->crashed());
  EXPECT_EQ(file->append(to_bytes("x")).error, IoError::crashed);
  EXPECT_EQ(file->sync().error, IoError::crashed);

  // What survived: the synced prefix, plus a deterministic prefix of the
  // unsynced tail (same seed -> same draw).
  const std::uint64_t on_disk = env->file_size("a.log");
  EXPECT_GE(on_disk, 7u);
  EXPECT_LE(on_disk, 17u);

  // Reopening through a fresh Env is what recovery sees.
  auto env2 = Env::open(options);
  ASSERT_NE(env2, nullptr);
  Bytes contents;
  ASSERT_TRUE(env2->read_file("a.log", contents).ok());
  EXPECT_EQ(contents.size(), on_disk);
  EXPECT_EQ(ctwatch::to_string(BytesView{contents.data(), 7}), "durable");
}

TEST(StorageEnvTest, CrashPointFiresAtExactWriteOrdinal) {
  TempDir dir("envord");
  chaos::FaultInjector chaos(7);
  chaos::FaultPlan plan;
  plan.outages = {{3, std::uint64_t(1) << 62}};  // crash at the 4th physical op
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.crash", plan);

  Env::Options options;
  options.dir = dir.path;
  options.chaos = &chaos;
  auto env = Env::open(options);
  ASSERT_NE(env, nullptr);
  auto file = env->open_append("b.log", 0);
  ASSERT_NE(file, nullptr);
  EXPECT_TRUE(file->append(to_bytes("0")).ok());  // op 0
  EXPECT_TRUE(file->append(to_bytes("1")).ok());  // op 1
  EXPECT_TRUE(file->sync().ok());                 // op 2
  EXPECT_FALSE(env->crashed());
  EXPECT_EQ(file->append(to_bytes("2")).error, IoError::crashed);  // op 3: kill
  EXPECT_TRUE(env->crashed());
  EXPECT_EQ(env->file_size("b.log"), 2u);  // the synced bytes survived
}

TEST(StorageEnvTest, InjectedWriteFaultFailsWithoutCrashing) {
  TempDir dir("envio");
  chaos::FaultInjector chaos(7);
  chaos::FaultPlan plan;
  plan.outages = {{1, 2}};  // exactly the second physical op fails
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.write", plan);

  Env::Options options;
  options.dir = dir.path;
  options.chaos = &chaos;
  auto env = Env::open(options);
  auto file = env->open_append("c.log", 0);
  ASSERT_NE(file, nullptr);
  EXPECT_TRUE(file->append(to_bytes("ok")).ok());
  EXPECT_EQ(file->append(to_bytes("fails")).error, IoError::io);
  EXPECT_FALSE(env->crashed());
  EXPECT_TRUE(file->append(to_bytes("ok-again")).ok());
  EXPECT_TRUE(file->sync().ok());
  EXPECT_EQ(env->file_size("c.log"), 10u);  // the faulted append left no bytes
}

// ---------------------------------------------------------------------------
// LogStore
// ---------------------------------------------------------------------------

ct::SignedTreeHead test_sth(const ct::RootAccumulator& acc, std::uint64_t ts) {
  // Tests that drive LogStore directly do not need a real signer: the
  // store treats the signature as opaque committed bytes.
  ct::SignedTreeHead sth;
  sth.tree_size = acc.size();
  sth.timestamp_ms = ts;
  sth.root_hash = acc.root();
  sth.signature.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  sth.signature.data = to_bytes("sth-sig-" + std::to_string(acc.size()));
  return sth;
}

DurableEntry test_entry(std::uint64_t index) {
  DurableEntry entry;
  entry.index = index;
  entry.timestamp_ms = 1000 + index;
  entry.leaf_hash = digest_of("leaf-" + std::to_string(index));
  entry.fingerprint = digest_of("fp-" + std::to_string(index));
  entry.issuer_cn = "CA " + std::to_string(index % 3);
  entry.has_body = false;
  return entry;
}

/// Commits `count` one-entry batches starting at the store's current size.
void commit_entries(LogStore& store, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchCommit batch;
    batch.entries = {test_entry(store.tree_size())};
    ct::RootAccumulator probe = store.accumulator();
    probe.add(batch.entries[0].leaf_hash);
    batch.sth = test_sth(probe, batch.entries[0].timestamp_ms);
    batch.seal_seq = store.seal_seq() + 1;
    ASSERT_TRUE(store.commit_batch(batch).ok()) << "batch " << i;
  }
}

TEST(StorageLogStoreTest, FreshOpenIsEmpty) {
  TempDir dir("fresh");
  LogStoreOptions options;
  options.dir = dir.path;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  EXPECT_TRUE(open.store->recovery().opened_fresh);
  EXPECT_EQ(open.store->tree_size(), 0u);
  EXPECT_FALSE(open.store->durable_sth().has_value());
  EXPECT_EQ(open.store->paged_entries(), 0u);
  EXPECT_TRUE(open.store->wal_tail().empty());

  // Close with nothing committed, reopen: still fresh-equivalent (an
  // empty WAL is not an error, and no checkpoint was manufactured).
  ASSERT_TRUE(open.store->close().ok());
  open.store.reset();
  LogStore::Open again = LogStore::open(options);
  ASSERT_NE(again.store, nullptr) << again.detail;
  EXPECT_EQ(again.store->tree_size(), 0u);
  EXPECT_FALSE(again.store->durable_sth().has_value());
}

TEST(StorageLogStoreTest, CrashRecoveryReplaysWalToLastSeal) {
  TempDir dir("replay");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;  // keep everything in the WAL
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  commit_entries(*open.store, 5);
  const ct::SignedTreeHead committed = *open.store->durable_sth();

  // SIGKILL, not close: no checkpoint happens.
  open.store->env().crash_now();
  open.store.reset();

  LogStore::Open reopened = LogStore::open(options);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 5u);
  EXPECT_EQ(reopened.store->recovery().checkpoint_tree_size, 0u);
  EXPECT_EQ(reopened.store->recovery().replayed_batches, 5u);
  EXPECT_EQ(reopened.store->recovery().replayed_entries, 5u);
  EXPECT_EQ(reopened.store->recovery().discarded_unsealed, 0u);
  ASSERT_TRUE(reopened.store->durable_sth().has_value());
  // The committed head comes back verbatim — signature bytes included.
  EXPECT_EQ(*reopened.store->durable_sth(), committed);
  // No checkpoint ever ran, so nothing is paged: every recovered entry
  // is WAL tail.
  EXPECT_EQ(reopened.store->paged_entries(), 0u);
  const std::vector<DurableEntry>& entries = reopened.store->wal_tail();
  ASSERT_EQ(entries.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[i].index, i);
    EXPECT_EQ(entries[i].leaf_hash, test_entry(i).leaf_hash);
  }
}

TEST(StorageLogStoreTest, CheckpointBoundsReplayAndSurvivesCrash) {
  TempDir dir("ckpt");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 2;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  commit_entries(*open.store, 5);  // checkpoints after batches 2 and 4
  const ct::SignedTreeHead committed = *open.store->durable_sth();
  open.store->env().crash_now();
  open.store.reset();

  LogStore::Open reopened = LogStore::open(options);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 5u);
  EXPECT_EQ(reopened.store->recovery().checkpoint_tree_size, 4u);
  EXPECT_EQ(reopened.store->recovery().replayed_batches, 1u);
  EXPECT_EQ(*reopened.store->durable_sth(), committed);
  // The checkpointed prefix is paged (entries.seg), only the post-
  // checkpoint batch is resident as WAL tail.
  EXPECT_EQ(reopened.store->paged_entries(), 4u);
  ASSERT_EQ(reopened.store->wal_tail().size(), 1u);
  EXPECT_EQ(reopened.store->wal_tail()[0].index, 4u);
  std::vector<DurableEntry> paged;
  ASSERT_EQ(reopened.store->read_entries(0, 4, paged), IoError::none);
  ASSERT_EQ(paged.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(paged[i].index, i);
    EXPECT_EQ(paged[i].leaf_hash, test_entry(i).leaf_hash);
  }
}

TEST(StorageLogStoreTest, UnsealedEntriesAreDiscardedAndCounted) {
  TempDir dir("unsealed");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    commit_entries(*open.store, 2);
    open.store->env().crash_now();
  }
  // Simulate the crash landing after entry frames hit disk but before
  // their seal: append two entry frames with NO seal record, fsync'd.
  {
    Env::Options env_options;
    env_options.dir = dir.path;
    auto env = Env::open(env_options);
    ASSERT_NE(env, nullptr);
    auto wal = env->open_append("wal.log", env->file_size("wal.log"));
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal_append(*wal, RecordType::entry, encode_entry(test_entry(2))).ok());
    ASSERT_TRUE(wal_append(*wal, RecordType::entry, encode_entry(test_entry(3))).ok());
    ASSERT_TRUE(wal->sync().ok());
  }
  LogStore::Open reopened = LogStore::open(options);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 2u);  // never serves unsealed entries
  EXPECT_EQ(reopened.store->recovery().discarded_unsealed, 2u);
  // The unsealed frames were truncated away: a further reopen replays a
  // clean WAL with nothing to discard.
  reopened.store->env().crash_now();
  reopened.store.reset();
  LogStore::Open again = LogStore::open(options);
  ASSERT_NE(again.store, nullptr) << again.detail;
  EXPECT_EQ(again.store->tree_size(), 2u);
  EXPECT_EQ(again.store->recovery().discarded_unsealed, 0u);
}

TEST(StorageLogStoreTest, TornWalTailIsTruncated) {
  TempDir dir("torn");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    commit_entries(*open.store, 3);
    open.store->env().crash_now();
  }
  {
    Env::Options env_options;
    env_options.dir = dir.path;
    auto env = Env::open(env_options);
    auto wal = env->open_append("wal.log", env->file_size("wal.log"));
    ASSERT_NE(wal, nullptr);
    // Length field 0xFFFFFFFF: framing garbage, instantly torn.
    const Bytes garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x12, 0x34, 0x56, 0x78, 0x9A};
    ASSERT_TRUE(wal->append(garbage).ok());
    ASSERT_TRUE(wal->sync().ok());
  }
  const std::uint64_t dirty_size = [&] {
    Env::Options env_options;
    env_options.dir = dir.path;
    return Env::open(env_options)->file_size("wal.log");
  }();
  LogStore::Open reopened = LogStore::open(options);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 3u);
  EXPECT_GT(reopened.store->recovery().wal_torn_bytes, 0u);
  // Truncated on disk, not just ignored.
  Env::Options env_options;
  env_options.dir = dir.path;
  EXPECT_LT(Env::open(env_options)->file_size("wal.log"), dirty_size);
}

TEST(StorageLogStoreTest, CrashBeforeFirstSealRecoversEmpty) {
  TempDir dir("firstseal");
  chaos::FaultInjector chaos(11);
  chaos::FaultPlan plan;
  plan.outages = {{0, std::uint64_t(1) << 62}};  // crash at the very first op
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.crash", plan);
  LogStoreOptions options;
  options.dir = dir.path;
  options.chaos = &chaos;
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    BatchCommit batch;
    batch.entries = {test_entry(0)};
    ct::RootAccumulator probe;
    probe.add(batch.entries[0].leaf_hash);
    batch.sth = test_sth(probe, 1000);
    batch.seal_seq = 1;
    EXPECT_EQ(open.store->commit_batch(batch).error, IoError::crashed);
    EXPECT_TRUE(open.store->failed());
  }
  LogStoreOptions clean;
  clean.dir = dir.path;
  LogStore::Open reopened = LogStore::open(clean);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 0u);
  EXPECT_FALSE(reopened.store->durable_sth().has_value());
}

TEST(StorageLogStoreTest, EveryCheckpointCrashWindowRecovers) {
  // Sweep the crash ordinal across the whole checkpoint protocol (tile
  // append, entry append, two segment fsyncs, manifest append + fsync,
  // WAL reset): whatever step the kill lands on, reopen must reproduce
  // the committed tree exactly — from the new checkpoint, or from the
  // old one plus WAL replay.
  for (std::uint64_t crash_at = 0; crash_at < 10; ++crash_at) {
    TempDir dir("ckptwin");
    ct::SignedTreeHead committed;
    {
      LogStoreOptions options;
      options.dir = dir.path;
      options.checkpoint_interval_batches = 0;
      LogStore::Open open = LogStore::open(options);
      ASSERT_NE(open.store, nullptr) << open.detail;
      commit_entries(*open.store, 3);
      committed = *open.store->durable_sth();
      open.store->env().crash_now();  // discard this instance, keep the dir
    }
    {
      // The op ordinal is Env-wide and this reopen is a fresh Env whose
      // recovery only reads, so checkpoint ops start at ordinal 0.
      chaos::FaultInjector chaos(13);
      chaos::FaultPlan plan;
      plan.outages = {{crash_at, std::uint64_t(1) << 62}};
      plan.outage_kind = chaos::FaultKind::error;
      chaos.plan("storage.crash", plan);
      LogStoreOptions options;
      options.dir = dir.path;
      options.checkpoint_interval_batches = 0;
      options.chaos = &chaos;
      LogStore::Open open = LogStore::open(options);
      ASSERT_NE(open.store, nullptr) << open.detail;
      ASSERT_EQ(open.store->tree_size(), 3u);
      const IoResult io = open.store->checkpoint();
      if (!io.ok()) { EXPECT_EQ(io.error, IoError::crashed); }
    }
    LogStoreOptions clean;
    clean.dir = dir.path;
    clean.checkpoint_interval_batches = 0;
    LogStore::Open reopened = LogStore::open(clean);
    ASSERT_NE(reopened.store, nullptr) << "crash_at=" << crash_at << ": " << reopened.detail;
    EXPECT_EQ(reopened.store->tree_size(), 3u) << "crash_at=" << crash_at;
    ASSERT_TRUE(reopened.store->durable_sth().has_value());
    EXPECT_EQ(*reopened.store->durable_sth(), committed) << "crash_at=" << crash_at;
    std::vector<DurableEntry> entries;
    ASSERT_EQ(reopened.store->read_entries(0, reopened.store->paged_entries(), entries),
              IoError::none);
    for (const DurableEntry& tail : reopened.store->wal_tail()) entries.push_back(tail);
    ASSERT_EQ(entries.size(), 3u) << "crash_at=" << crash_at;
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(entries[i].leaf_hash, test_entry(i).leaf_hash) << "crash_at=" << crash_at;
    }
  }
}

TEST(StorageLogStoreTest, DoubleReopenIsIdempotent) {
  TempDir dir("twice");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 2;
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    commit_entries(*open.store, 5);
    open.store->env().crash_now();
  }
  RecoveryReport first_report;
  ct::SignedTreeHead first_sth;
  {
    LogStore::Open first = LogStore::open(options);
    ASSERT_NE(first.store, nullptr) << first.detail;
    first_report = first.store->recovery();
    first_sth = *first.store->durable_sth();
    first.store->env().crash_now();  // destroy without writing anything
  }
  LogStore::Open second = LogStore::open(options);
  ASSERT_NE(second.store, nullptr) << second.detail;
  EXPECT_EQ(second.store->tree_size(), first_report.tree_size);
  EXPECT_EQ(second.store->recovery().checkpoint_tree_size, first_report.checkpoint_tree_size);
  EXPECT_EQ(second.store->recovery().replayed_batches, first_report.replayed_batches);
  EXPECT_EQ(second.store->recovery().discarded_unsealed, 0u);
  EXPECT_EQ(*second.store->durable_sth(), first_sth);
}

TEST(StorageLogStoreTest, CorruptTilePageRefusesToOpen) {
  TempDir dir("corrupt");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 1;  // checkpoint every batch
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    commit_entries(*open.store, 3);
    ASSERT_TRUE(open.store->close().ok());
  }
  // Flip one leaf byte inside the LIVE tile page (the last-written one —
  // earlier pages of tile 0 are superseded and may legally be skipped).
  {
    const std::string path = dir.path + "/tiles.seg";
    ASSERT_EQ(std::filesystem::file_size(path), 3 * kTilePageBytes);
    const long damage_at = static_cast<long>(2 * kTilePageBytes + 20);
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, damage_at, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, damage_at, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  LogStore::Open reopened = LogStore::open(options);
  EXPECT_EQ(reopened.store, nullptr);
  EXPECT_EQ(reopened.error, IoError::corrupt);
  EXPECT_FALSE(reopened.detail.empty());
}

TEST(StorageLogStoreTest, MismatchedBatchRefusedBeforeAnyWrite) {
  TempDir dir("refuse");
  LogStoreOptions options;
  options.dir = dir.path;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;

  BatchCommit batch;
  batch.entries = {test_entry(0)};
  ct::RootAccumulator probe;
  probe.add(batch.entries[0].leaf_hash);
  batch.sth = test_sth(probe, 1000);
  batch.sth.root_hash = digest_of("not-the-root");  // lie about the root
  batch.seal_seq = 1;
  EXPECT_EQ(open.store->commit_batch(batch).error, IoError::corrupt);
  EXPECT_FALSE(open.store->failed());  // a refused batch does not poison
  EXPECT_EQ(open.store->env().write_ops(), 0u);  // and wrote nothing

  batch.entries[0].index = 5;  // non-contiguous
  batch.sth = test_sth(probe, 1000);
  EXPECT_EQ(open.store->commit_batch(batch).error, IoError::corrupt);
  commit_entries(*open.store, 1);  // the store still works
  EXPECT_EQ(open.store->tree_size(), 1u);
}

TEST(StorageLogStoreTest, IoFaultPoisonsFailStop) {
  TempDir dir("poison");
  chaos::FaultInjector chaos(17);
  chaos::FaultPlan plan;
  plan.outages = {{2, 3}};  // the second batch's WAL append fails
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.write", plan);
  LogStoreOptions options;
  options.dir = dir.path;
  options.chaos = &chaos;
  options.checkpoint_interval_batches = 0;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  commit_entries(*open.store, 1);  // ops 0 (append) + 1 (fsync)

  BatchCommit batch;
  batch.entries = {test_entry(1)};
  ct::RootAccumulator probe = open.store->accumulator();
  probe.add(batch.entries[0].leaf_hash);
  batch.sth = test_sth(probe, 2000);
  batch.seal_seq = 2;
  EXPECT_EQ(open.store->commit_batch(batch).error, IoError::io);  // op 2 faulted
  EXPECT_TRUE(open.store->failed());
  EXPECT_EQ(open.store->last_error(), IoError::io);
  // Fail-stop: the same batch is refused with the sticky error, the
  // in-memory image still shows only the durable prefix.
  EXPECT_EQ(open.store->commit_batch(batch).error, IoError::io);
  EXPECT_EQ(open.store->tree_size(), 1u);
  EXPECT_EQ(open.store->checkpoint().error, IoError::io);
  open.store.reset();

  LogStoreOptions clean;
  clean.dir = dir.path;
  LogStore::Open reopened = LogStore::open(clean);
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 1u);  // batch 2 was never durable
}

// ---------------------------------------------------------------------------
// LogService integration
// ---------------------------------------------------------------------------

logsvc::Config service_config(const std::string& name, LogStore* store) {
  logsvc::Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 500us;
  config.storage = store;
  return config;
}

ct::SignedEntry entry_of(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("entry-" + std::to_string(n));
  return entry;
}

logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, std::uint64_t n) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      entry_of(n), digest_of("fp-" + std::to_string(n)), "Test CA",
      SimTime::parse("2018-04-01"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) return logsvc::SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

TEST(StorageServiceTest, OrderlyStopThenReopenLosesNoSealedEntry) {
  TempDir dir("svc");
  ct::SignedTreeHead committed;
  std::vector<crypto::Digest> leaf_hashes;
  {
    LogStoreOptions options;
    options.dir = dir.path;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(service_config("Durable Log", open.store.get()));
    for (std::uint64_t i = 0; i < 8; ++i) {
      const logsvc::SubmitOutcome outcome = submit_wait(service, i);
      ASSERT_EQ(outcome.status, logsvc::SubmitStatus::ok);
      leaf_hashes.push_back(service.leaf_hash_at(outcome.index));
    }
    committed = service.get_sth();
    service.stop();  // checkpoints the store
    ASSERT_TRUE(open.store->close().ok());
  }
  {
    LogStoreOptions options;
    options.dir = dir.path;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    // Orderly stop left a checkpoint: nothing replays from the WAL.
    EXPECT_EQ(open.store->recovery().replayed_batches, 0u);
    EXPECT_EQ(open.store->recovery().discarded_unsealed, 0u);
    logsvc::LogService service(service_config("Durable Log", open.store.get()));
    // The recovered head is the committed head, byte for byte — the
    // signature was NOT regenerated.
    EXPECT_EQ(service.get_sth(), committed);
    EXPECT_EQ(service.tree_size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(service.leaf_hash_at(i), leaf_hashes[i]);
      EXPECT_TRUE(ct::verify_inclusion(service.leaf_hash_at(i), i, 8,
                                       service.inclusion_proof(i, 8), committed.root_hash));
    }
    // Dedup state survived: resubmitting entry 3 re-issues index 3.
    const logsvc::SubmitOutcome dup = submit_wait(service, 3);
    ASSERT_EQ(dup.status, logsvc::SubmitStatus::ok);
    EXPECT_EQ(dup.index, 3u);
    EXPECT_EQ(service.tree_size(), 8u);  // the tree did not grow
  }
}

TEST(StorageServiceTest, KillRecoverServesOnlyDurableState) {
  TempDir dir("kill");
  std::vector<ct::SignedTreeHead> chain;
  {
    LogStoreOptions options;
    options.dir = dir.path;
    options.checkpoint_interval_batches = 0;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(service_config("Durable Log", open.store.get()));
    for (std::uint64_t i = 0; i < 6; ++i) {
      ASSERT_EQ(submit_wait(service, i).status, logsvc::SubmitStatus::ok);
      chain.push_back(service.get_sth());
    }
    open.store->env().crash_now();  // SIGKILL mid-flight
    // The poisoned store fail-stops new work while reads keep serving.
    const logsvc::SubmitOutcome refused = submit_wait(service, 99);
    EXPECT_EQ(refused.status, logsvc::SubmitStatus::storage_error);
    EXPECT_EQ(service.get_sth().tree_size, 6u);  // last durable head
    EXPECT_GE(service.storage_failures(), 1u);
  }
  {
    LogStoreOptions options;
    options.dir = dir.path;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(service_config("Durable Log", open.store.get()));
    const ct::SignedTreeHead recovered = service.get_sth();
    EXPECT_EQ(recovered, chain.back());
    // The recovered chain is consistent with every pre-crash head.
    for (const ct::SignedTreeHead& old : chain) {
      EXPECT_TRUE(ct::verify_consistency(
          old.tree_size, recovered.tree_size, old.root_hash, recovered.root_hash,
          service.consistency_proof(old.tree_size, recovered.tree_size)));
    }
  }
}

TEST(StorageServiceTest, WrongLogNameRefusesAdoption) {
  TempDir dir("wrongkey");
  {
    LogStoreOptions options;
    options.dir = dir.path;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(service_config("Log A", open.store.get()));
    ASSERT_EQ(submit_wait(service, 1).status, logsvc::SubmitStatus::ok);
    service.stop();
    ASSERT_TRUE(open.store->close().ok());
  }
  LogStoreOptions options;
  options.dir = dir.path;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  // A different name derives a different key: the recovered STH cannot
  // verify, and serving a head another key signed would be unprovable.
  EXPECT_THROW(logsvc::LogService(service_config("Log B", open.store.get())),
               std::runtime_error);
}

TEST(StorageServiceTest, StorageErrorCompletionsNeverLoseSubmitters) {
  TempDir dir("svcfail");
  chaos::FaultInjector chaos(19);
  chaos::FaultPlan plan;
  plan.outages = {{0, std::uint64_t(1) << 62}};  // every physical op fails
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.write", plan);
  LogStoreOptions options;
  options.dir = dir.path;
  options.chaos = &chaos;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  logsvc::LogService service(service_config("Durable Log", open.store.get()));
  for (std::uint64_t i = 0; i < 3; ++i) {
    const logsvc::SubmitOutcome outcome = submit_wait(service, i);
    EXPECT_EQ(outcome.status, logsvc::SubmitStatus::storage_error);
    EXPECT_FALSE(outcome.sct.has_value());
  }
  EXPECT_EQ(service.tree_size(), 0u);
  EXPECT_EQ(service.get_sth().tree_size, 0u);  // the signed empty tree
  EXPECT_EQ(service.storage_failures(), 3u);
}

}  // namespace
}  // namespace ctwatch::storage
