// ctwatch::chaos — the fault-injection framework and everything wired to
// it: determinism of the injector, outage windows, the circuit-breaker
// state machine, the K-of-N multi-log submitter (quorum, degradation,
// hedging, breaker routing, virtual-time determinism), the LogService
// chaos seams (ingress drops, signer failures, sequencer stalls), and the
// chaos-driven DNS statuses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/chaos/chaos.hpp"
#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch {
namespace {

using namespace std::chrono_literals;

// ---------- FaultInjector ----------

TEST(FaultInjectorTest, UnplannedPointsAreHealthy) {
  chaos::FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    const chaos::FaultDecision d = injector.evaluate("nothing.registered");
    EXPECT_FALSE(d.faulted());
    EXPECT_EQ(d.latency_us, 0u);
  }
  EXPECT_EQ(injector.evaluations("nothing.registered"), 100u);
  EXPECT_EQ(injector.faults("nothing.registered"), 0u);
}

TEST(FaultInjectorTest, SameSeedSamePlanSameSequence) {
  chaos::FaultPlan plan;
  plan.error_probability = 0.3;
  plan.timeout_fraction = 0.5;
  plan.latency_base_us = 100;
  plan.latency_jitter_us = 50;
  plan.latency_exp_mean_us = 200.0;

  chaos::FaultInjector a(0xfeedULL);
  chaos::FaultInjector b(0xfeedULL);
  a.plan("p", plan);
  b.plan("p", plan);
  for (int i = 0; i < 2000; ++i) {
    const chaos::FaultDecision da = a.evaluate("p");
    const chaos::FaultDecision db = b.evaluate("p");
    ASSERT_EQ(da.kind, db.kind) << "at evaluation " << i;
    ASSERT_EQ(da.latency_us, db.latency_us) << "at evaluation " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  chaos::FaultPlan plan;
  plan.error_probability = 0.5;
  chaos::FaultInjector a(1);
  chaos::FaultInjector b(2);
  a.plan("p", plan);
  b.plan("p", plan);
  int disagreements = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.evaluate("p").kind != b.evaluate("p").kind) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, PointsDrawFromIndependentStreams) {
  // The sequence at "p" must not change when another point is also being
  // evaluated (or even registered later) — streams are per-point.
  chaos::FaultPlan plan;
  plan.error_probability = 0.4;
  chaos::FaultInjector alone(7);
  alone.plan("p", plan);
  std::vector<chaos::FaultKind> expected;
  for (int i = 0; i < 300; ++i) expected.push_back(alone.evaluate("p").kind);

  chaos::FaultInjector busy(7);
  busy.plan("p", plan);
  busy.plan("q", plan);
  for (int i = 0; i < 300; ++i) {
    busy.evaluate("q");
    ASSERT_EQ(busy.evaluate("p").kind, expected[static_cast<std::size_t>(i)]) << i;
    busy.evaluate("q");
  }
}

TEST(FaultInjectorTest, ResetOrdinalsReplaysExactly) {
  chaos::FaultPlan plan;
  plan.error_probability = 0.25;
  plan.latency_exp_mean_us = 50.0;
  chaos::FaultInjector injector(42);
  injector.plan("p", plan);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 200; ++i) first.push_back(injector.evaluate("p").latency_us);
  injector.reset_ordinals();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(injector.evaluate("p").latency_us, first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(FaultInjectorTest, ErrorProbabilityAndTimeoutSplitAreCalibrated) {
  chaos::FaultPlan plan;
  plan.error_probability = 0.2;
  plan.timeout_fraction = 0.5;
  chaos::FaultInjector injector(3);
  injector.plan("p", plan);
  int errors = 0;
  int timeouts = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const chaos::FaultDecision d = injector.evaluate("p");
    if (d.kind == chaos::FaultKind::error) ++errors;
    if (d.kind == chaos::FaultKind::timeout) ++timeouts;
  }
  const double fault_rate = static_cast<double>(errors + timeouts) / n;
  EXPECT_NEAR(fault_rate, 0.2, 0.02);
  const double timeout_share =
      static_cast<double>(timeouts) / static_cast<double>(errors + timeouts);
  EXPECT_NEAR(timeout_share, 0.5, 0.05);
  EXPECT_EQ(injector.faults("p"), static_cast<std::uint64_t>(errors + timeouts));
}

TEST(FaultInjectorTest, LatencyCompositionRespectsBounds) {
  chaos::FaultPlan plan;
  plan.latency_base_us = 1000;
  plan.latency_jitter_us = 500;
  chaos::FaultInjector injector(9);
  injector.plan("p", plan);
  bool jitter_seen = false;
  for (int i = 0; i < 1000; ++i) {
    const chaos::FaultDecision d = injector.evaluate("p");
    EXPECT_GE(d.latency_us, 1000u);
    EXPECT_LE(d.latency_us, 1500u);
    if (d.latency_us > 1000u) jitter_seen = true;
  }
  EXPECT_TRUE(jitter_seen);
}

TEST(FaultInjectorTest, OutageWindowOverridesProbability) {
  chaos::FaultPlan plan;  // zero error probability...
  plan.outages.push_back(chaos::OutageWindow{1'000'000, 2'000'000});
  plan.outage_kind = chaos::FaultKind::timeout;
  chaos::FaultInjector injector(5);
  injector.plan("p", plan);
  EXPECT_FALSE(injector.evaluate("p", 999'999).faulted());
  EXPECT_EQ(injector.evaluate("p", 1'000'000).kind, chaos::FaultKind::timeout);
  EXPECT_EQ(injector.evaluate("p", 1'999'999).kind, chaos::FaultKind::timeout);
  EXPECT_FALSE(injector.evaluate("p", 2'000'000).faulted());  // half-open window
}

TEST(FaultInjectorTest, ReplacingPlanKeepsOrdinalStream) {
  chaos::FaultPlan noisy;
  noisy.error_probability = 1.0;
  chaos::FaultInjector injector(11);
  injector.plan("p", noisy);
  EXPECT_TRUE(injector.evaluate("p").faulted());
  injector.plan("p", chaos::FaultPlan{});  // heal the point
  EXPECT_FALSE(injector.evaluate("p").faulted());
  EXPECT_EQ(injector.evaluations("p"), 2u);
}

// ---------- CircuitBreaker ----------

TEST(CircuitBreakerTest, StateMachineFullCycle) {
  logsvc::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_cooldown_us = 1000;
  logsvc::CircuitBreaker breaker(options);

  // closed: failures below the threshold keep it closed.
  EXPECT_EQ(breaker.state(0), logsvc::CircuitBreaker::State::closed);
  breaker.record_failure(0);
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), logsvc::CircuitBreaker::State::closed);
  EXPECT_TRUE(breaker.allow(0));

  // third consecutive failure trips it.
  breaker.record_failure(10);
  EXPECT_EQ(breaker.state(10), logsvc::CircuitBreaker::State::open);
  EXPECT_FALSE(breaker.allow(10));
  EXPECT_EQ(breaker.trips(), 1u);

  // cooldown elapses: half-open admits exactly one probe.
  EXPECT_EQ(breaker.state(1010), logsvc::CircuitBreaker::State::half_open);
  EXPECT_TRUE(breaker.allow(1010));
  EXPECT_FALSE(breaker.allow(1010));  // probe already in flight

  // probe fails: straight back to open, cooldown restarts.
  breaker.record_failure(1020);
  EXPECT_EQ(breaker.state(1020), logsvc::CircuitBreaker::State::open);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(1500));

  // second probe succeeds: closed, failure count cleared.
  EXPECT_TRUE(breaker.allow(2020));
  breaker.record_success();
  EXPECT_EQ(breaker.state(2020), logsvc::CircuitBreaker::State::closed);
  breaker.record_failure(2030);
  breaker.record_failure(2030);
  EXPECT_EQ(breaker.state(2030), logsvc::CircuitBreaker::State::closed);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  logsvc::CircuitBreaker::Options options;
  options.failure_threshold = 2;
  logsvc::CircuitBreaker breaker(options);
  breaker.record_failure(0);
  breaker.record_success();
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), logsvc::CircuitBreaker::State::closed);
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), logsvc::CircuitBreaker::State::open);
}

// ---------- MultiLogSubmitter ----------

logsvc::MultiLogOptions fast_multilog() {
  logsvc::MultiLogOptions options;
  options.quorum = 2;
  options.degraded_floor = 1;
  options.deadline_us = 2'000'000;
  options.attempt_timeout_us = 250'000;
  options.hedge_after_us = 60'000;
  return options;
}

struct Fleet {
  explicit Fleet(chaos::FaultInjector& injector, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string name = "log" + std::to_string(i);
      logs.push_back(
          std::make_unique<logsvc::SimulatedLogTarget>(name, injector, "multilog." + name));
    }
    for (auto& log : logs) targets.push_back(log.get());
  }
  std::vector<std::unique_ptr<logsvc::SimulatedLogTarget>> logs;
  std::vector<logsvc::LogTarget*> targets;
};

chaos::FaultPlan healthy_latency() {
  chaos::FaultPlan plan;
  plan.latency_base_us = 10'000;
  plan.latency_jitter_us = 5'000;
  return plan;
}

TEST(MultiLogTest, HealthyFleetReachesQuorumWithoutRetries) {
  chaos::FaultInjector injector(21);
  Fleet fleet(injector, 3);
  for (int i = 0; i < 3; ++i) injector.plan("multilog.log" + std::to_string(i), healthy_latency());
  logsvc::MultiLogSubmitter submitter(fleet.targets, fast_multilog());
  for (std::uint64_t s = 0; s < 50; ++s) {
    const logsvc::SubmitReport report = submitter.submit(s, s * 3'000'000);
    EXPECT_EQ(report.outcome, logsvc::QuorumOutcome::quorum);
    EXPECT_EQ(report.scts, 2u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.hedges, 0u);
    EXPECT_LE(report.latency_us, 15'000u);
  }
  EXPECT_EQ(submitter.totals().quorum, 50u);
  EXPECT_DOUBLE_EQ(submitter.totals().goodput(), 1.0);
  EXPECT_EQ(submitter.breaker_trips(), 0u);
}

TEST(MultiLogTest, IdenticalSeedsGiveIdenticalTotals) {
  auto run = [] {
    chaos::FaultInjector injector(0xd15ea5eULL);
    Fleet fleet(injector, 4);
    for (int i = 0; i < 4; ++i) {
      chaos::FaultPlan plan = healthy_latency();
      plan.error_probability = 0.25;
      plan.timeout_fraction = 0.4;
      injector.plan("multilog.log" + std::to_string(i), plan);
    }
    logsvc::MultiLogSubmitter submitter(fleet.targets, fast_multilog());
    for (std::uint64_t s = 0; s < 400; ++s) submitter.submit(s, s * 3'000'000);
    return submitter.totals();
  };
  const logsvc::MultiLogTotals a = run();
  const logsvc::MultiLogTotals b = run();
  EXPECT_EQ(a.quorum, b.quorum);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.breaker_skips, b.breaker_skips);
}

TEST(MultiLogTest, EverySubmissionResolvesUnderHeavyChaos) {
  chaos::FaultInjector injector(99);
  Fleet fleet(injector, 4);
  for (int i = 0; i < 4; ++i) {
    chaos::FaultPlan plan = healthy_latency();
    plan.error_probability = 0.6;  // brutal
    plan.timeout_fraction = 0.5;
    injector.plan("multilog.log" + std::to_string(i), plan);
  }
  logsvc::MultiLogSubmitter submitter(fleet.targets, fast_multilog());
  for (std::uint64_t s = 0; s < 500; ++s) submitter.submit(s, s * 3'000'000);
  const logsvc::MultiLogTotals& totals = submitter.totals();
  EXPECT_EQ(totals.submissions, 500u);
  EXPECT_EQ(totals.resolved(), 500u);  // zero lost completions
  EXPECT_GT(totals.retries, 0u);
}

TEST(MultiLogTest, SingleSurvivorDegradesAtFloor) {
  chaos::FaultInjector injector(17);
  Fleet fleet(injector, 3);
  injector.plan("multilog.log0", healthy_latency());
  chaos::FaultPlan dead;
  dead.error_probability = 1.0;
  dead.timeout_fraction = 0.0;  // fast errors, not slow timeouts
  dead.latency_base_us = 5'000;
  injector.plan("multilog.log1", dead);
  injector.plan("multilog.log2", dead);
  logsvc::MultiLogSubmitter submitter(fleet.targets, fast_multilog());
  const logsvc::SubmitReport report = submitter.submit(0, 0);
  EXPECT_EQ(report.outcome, logsvc::QuorumOutcome::degraded);
  EXPECT_EQ(report.scts, 1u);  // the counted K-1 case
  EXPECT_EQ(report.latency_us, fast_multilog().deadline_us);
}

TEST(MultiLogTest, SlowLogTriggersHedgingAndTheHedgeWins) {
  chaos::FaultInjector injector(31);
  Fleet fleet(injector, 2);
  chaos::FaultPlan slow;
  slow.latency_base_us = 200'000;  // way past hedge_after_us (60ms)
  injector.plan("multilog.log0", slow);
  injector.plan("multilog.log1", healthy_latency());
  logsvc::MultiLogOptions options = fast_multilog();
  options.quorum = 1;  // log0 alone is asked first; the hedge races it
  logsvc::MultiLogSubmitter submitter(fleet.targets, options);
  const logsvc::SubmitReport report = submitter.submit(0, 0);
  EXPECT_EQ(report.outcome, logsvc::QuorumOutcome::quorum);
  EXPECT_EQ(report.hedges, 1u);
  // The hedge resolves at ~60ms + log1's 10-15ms, far before log0's 200ms.
  EXPECT_LT(report.latency_us, 100'000u);
  EXPECT_GE(report.latency_us, 60'000u);
}

TEST(MultiLogTest, OutageTripsBreakerAndRecovers) {
  chaos::FaultInjector injector(47);
  Fleet fleet(injector, 3);
  injector.plan("multilog.log0", healthy_latency());
  injector.plan("multilog.log1", healthy_latency());
  chaos::FaultPlan outage = healthy_latency();
  // log2 is down for the first 30 virtual seconds.
  outage.outages.push_back(chaos::OutageWindow{0, 30'000'000});
  outage.outage_kind = chaos::FaultKind::error;
  injector.plan("multilog.log2", outage);

  logsvc::MultiLogOptions options = fast_multilog();
  options.quorum = 3;  // force every submission to need log2
  logsvc::MultiLogSubmitter submitter(fleet.targets, options);
  for (std::uint64_t s = 0; s < 20; ++s) submitter.submit(s, s * 3'000'000);
  // During the outage the breaker must have tripped at least once, and
  // submissions degrade (2 of 3 SCTs) rather than fail or hang.
  EXPECT_GT(submitter.breaker(2).trips(), 0u);
  EXPECT_GT(submitter.totals().degraded, 0u);
  EXPECT_EQ(submitter.totals().resolved(), 20u);
  // Past the window (s >= 10 → start 30s), full quorum returns.
  const logsvc::SubmitReport after = submitter.submit(100, 60'000'000);
  EXPECT_EQ(after.outcome, logsvc::QuorumOutcome::quorum);
  EXPECT_EQ(after.scts, 3u);
}

TEST(MultiLogTest, AcceptancePlanMeetsGoodputFloor) {
  // The ISSUE acceptance scenario: 10% error rate everywhere plus one
  // full log outage, quorum 2 of 3 — goodput must stay >= 95% with zero
  // lost completions.
  chaos::FaultInjector injector(0xac5eULL);
  Fleet fleet(injector, 3);
  for (int i = 0; i < 3; ++i) {
    chaos::FaultPlan plan = healthy_latency();
    plan.error_probability = 0.10;
    plan.timeout_fraction = 0.5;
    if (i == 2) {
      plan.outages.push_back(chaos::OutageWindow{0, 600'000'000});  // 10 min down
      plan.outage_kind = chaos::FaultKind::timeout;
    }
    injector.plan("multilog.log" + std::to_string(i), plan);
  }
  logsvc::MultiLogSubmitter submitter(fleet.targets, fast_multilog());
  const std::uint64_t n = 400;
  for (std::uint64_t s = 0; s < n; ++s) submitter.submit(s, s * 3'000'000);
  const logsvc::MultiLogTotals& totals = submitter.totals();
  EXPECT_EQ(totals.resolved(), n);
  EXPECT_GE(totals.goodput(), 0.95);
}

// ---------- LogService chaos seams ----------

logsvc::Config chaos_service_config(const std::string& name, chaos::FaultInjector& injector) {
  logsvc::Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  config.merge_delay = std::chrono::microseconds(200);
  config.chaos = &injector;
  return config;
}

ct::SignedEntry chaos_entry(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("chaos-entry-" + std::to_string(n));
  return entry;
}

crypto::Digest chaos_fingerprint(std::uint64_t n) {
  return crypto::Sha256::hash(to_bytes("chaos-fp-" + std::to_string(n)));
}

TEST(LogServiceChaosTest, IngressFaultsDropSubmissions) {
  chaos::FaultInjector injector(61);
  chaos::FaultPlan drop_all;
  drop_all.error_probability = 1.0;
  injector.plan("logsvc.submit", drop_all);
  logsvc::LogService service(chaos_service_config("drop-all", injector));
  for (std::uint64_t n = 0; n < 10; ++n) {
    EXPECT_EQ(service.submit(chaos_entry(n), chaos_fingerprint(n), "ca", SimTime{1000}),
              logsvc::SubmitStatus::dropped);
  }
  service.stop();
  EXPECT_EQ(service.chaos_dropped(), 10u);
  EXPECT_EQ(service.tree_size(), 0u);
}

TEST(LogServiceChaosTest, SignerFailuresSurfaceThroughCompletions) {
  chaos::FaultInjector injector(67);
  chaos::FaultPlan fail_all;
  fail_all.error_probability = 1.0;
  injector.plan("logsvc.sign", fail_all);
  logsvc::LogService service(chaos_service_config("bad-signer", injector));

  std::mutex mu;
  std::vector<logsvc::SubmitStatus> outcomes;
  for (std::uint64_t n = 0; n < 8; ++n) {
    const logsvc::SubmitStatus status =
        service.submit(chaos_entry(n), chaos_fingerprint(n), "ca", SimTime{1000},
                       [&](const logsvc::SubmitOutcome& outcome) {
                         std::lock_guard<std::mutex> lock(mu);
                         outcomes.push_back(outcome.status);
                       });
    EXPECT_EQ(status, logsvc::SubmitStatus::ok);
  }
  service.stop();
  EXPECT_EQ(service.signer_failures(), 8u);
  EXPECT_EQ(service.tree_size(), 0u);  // nothing integrated
  ASSERT_EQ(outcomes.size(), 8u);     // ...but every completion fired
  for (const logsvc::SubmitStatus status : outcomes) {
    EXPECT_EQ(status, logsvc::SubmitStatus::internal_error);
  }
}

TEST(LogServiceChaosTest, SequencerStallDelaysButNeverLoses) {
  chaos::FaultInjector injector(71);
  chaos::FaultPlan stall;
  stall.latency_base_us = 2'000;  // 2ms injected before every seal
  injector.plan("logsvc.seal", stall);
  logsvc::LogService service(chaos_service_config("stalled", injector));

  std::mutex mu;
  std::condition_variable cv;
  std::size_t completed = 0;
  const std::uint64_t n = 20;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(service.submit(chaos_entry(i), chaos_fingerprint(i), "ca", SimTime{1000},
                             [&](const logsvc::SubmitOutcome& outcome) {
                               EXPECT_EQ(outcome.status, logsvc::SubmitStatus::ok);
                               std::lock_guard<std::mutex> lock(mu);
                               if (++completed == n) cv.notify_all();
                             }),
              logsvc::SubmitStatus::ok);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return completed == n; }));
  }
  service.stop();
  EXPECT_EQ(service.tree_size(), n);
  EXPECT_GT(injector.evaluations("logsvc.seal"), 0u);
}

// The TSAN scenario: concurrent submitters racing a lossy ingress and a
// failing signer. Conservation must hold exactly: every submission either
// was dropped at ingress (counted) or got exactly one completion.
TEST(LogServiceChaosTest, ConcurrentSubmittersUnderChaosConserveCompletions) {
  chaos::FaultInjector injector(83);
  chaos::FaultPlan flaky;
  flaky.error_probability = 0.2;
  injector.plan("logsvc.submit", flaky);
  injector.plan("logsvc.sign", flaky);
  logsvc::LogService service(chaos_service_config("flaky", injector));

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> completions_ok{0};
  std::atomic<std::uint64_t> completions_failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t n = static_cast<std::uint64_t>(t) * kPerThread + i;
        const logsvc::SubmitStatus status =
            service.submit(chaos_entry(n), chaos_fingerprint(n), "ca", SimTime{1000},
                           [&](const logsvc::SubmitOutcome& outcome) {
                             if (outcome.status == logsvc::SubmitStatus::ok) {
                               completions_ok.fetch_add(1, std::memory_order_relaxed);
                             } else {
                               completions_failed.fetch_add(1, std::memory_order_relaxed);
                             }
                           });
        if (status == logsvc::SubmitStatus::ok) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(status, logsvc::SubmitStatus::dropped);
          dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  service.stop();

  EXPECT_EQ(accepted.load() + dropped.load(), kThreads * kPerThread);
  EXPECT_EQ(dropped.load(), service.chaos_dropped());
  EXPECT_GT(dropped.load(), 0u);
  EXPECT_EQ(completions_ok.load() + completions_failed.load(), accepted.load());
  EXPECT_EQ(completions_failed.load(), service.signer_failures());
  EXPECT_EQ(service.tree_size(), completions_ok.load());
}

// ---------- chaos-driven DNS ----------

dns::QueryContext probe_context(SimTime when) {
  dns::QueryContext context;
  context.time = when;
  context.resolver_addr = net::IPv4(192, 0, 2, 53);
  context.resolver_asn = 64496;
  context.resolver_label = "test";
  return context;
}

TEST(DnsChaosTest, TimeoutsAreInvisibleToTheQueryLogButServfailsAreLogged) {
  dns::AuthoritativeServer server;
  auto& zone = server.add_zone(dns::DnsName::parse_or_throw("example.de"));
  zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("www.example.de"), dns::RrType::A,
                               300, net::IPv4(100, 64, 0, 1)});
  chaos::FaultInjector injector(101);
  chaos::FaultPlan plan;
  plan.error_probability = 1.0;
  plan.timeout_fraction = 1.0;  // all faults are timeouts
  injector.plan("dns.auth", plan);
  server.set_chaos(&injector);

  const dns::DnsQuestion question{dns::DnsName::parse_or_throw("www.example.de"), dns::RrType::A};
  dns::ServerStatus status = dns::ServerStatus::ok;
  EXPECT_TRUE(server.query(question, probe_context(SimTime{100}), status).empty());
  EXPECT_EQ(status, dns::ServerStatus::timed_out);
  EXPECT_TRUE(server.log().empty());  // the packet never arrived

  plan.timeout_fraction = 0.0;  // now all faults are SERVFAILs
  injector.plan("dns.auth", plan);
  EXPECT_TRUE(server.query(question, probe_context(SimTime{101}), status).empty());
  EXPECT_EQ(status, dns::ServerStatus::servfail);
  ASSERT_EQ(server.log().size(), 1u);  // the query reached the server
  EXPECT_FALSE(server.log()[0].answered);

  injector.plan("dns.auth", chaos::FaultPlan{});  // heal
  EXPECT_FALSE(server.query(question, probe_context(SimTime{102}), status).empty());
  EXPECT_EQ(status, dns::ServerStatus::ok);
  EXPECT_EQ(server.log().size(), 2u);
}

TEST(DnsChaosTest, ResolverSurfacesLossyStatuses) {
  dns::AuthoritativeServer server;
  auto& zone = server.add_zone(dns::DnsName::parse_or_throw("example.de"));
  zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("www.example.de"), dns::RrType::A,
                               300, net::IPv4(100, 64, 0, 1)});
  dns::DnsUniverse universe;
  universe.add_server(server);
  dns::RecursiveResolver resolver(
      universe, dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "t", false});

  chaos::FaultInjector injector(103);
  chaos::FaultPlan plan;
  // Outage on the resolver's own client leg for the first 10 seconds.
  plan.outages.push_back(chaos::OutageWindow{0, 10'000'000});
  plan.outage_kind = chaos::FaultKind::timeout;
  injector.plan("dns.resolver", plan);
  resolver.set_chaos(&injector);

  const auto name = dns::DnsName::parse_or_throw("www.example.de");
  EXPECT_EQ(resolver.resolve(name, dns::RrType::A, SimTime{5}).status,
            dns::ResolveStatus::timed_out);
  EXPECT_TRUE(dns::is_lossy(dns::ResolveStatus::timed_out));
  EXPECT_TRUE(dns::is_lossy(dns::ResolveStatus::servfail));
  EXPECT_FALSE(dns::is_lossy(dns::ResolveStatus::nxdomain));
  // Past the outage window the same resolver answers.
  EXPECT_EQ(resolver.resolve(name, dns::RrType::A, SimTime{11}).status, dns::ResolveStatus::ok);

  // Server-leg faults also surface through resolve().
  chaos::FaultPlan servfail;
  servfail.error_probability = 1.0;
  injector.plan("dns.auth", servfail);
  server.set_chaos(&injector);
  EXPECT_EQ(resolver.resolve(name, dns::RrType::A, SimTime{12}).status,
            dns::ResolveStatus::servfail);
}

TEST(DnsChaosTest, ClearLogReleasesMemory) {
  dns::AuthoritativeServer server;
  server.add_zone(dns::DnsName::parse_or_throw("example.de"));
  const dns::DnsQuestion question{dns::DnsName::parse_or_throw("www.example.de"), dns::RrType::A};
  for (int i = 0; i < 1000; ++i) server.query(question, probe_context(SimTime{i}));
  EXPECT_EQ(server.log().size(), 1000u);
  EXPECT_GE(server.log_bytes_approx(), 1000 * sizeof(dns::QueryLogEntry));
  server.clear_log();
  EXPECT_TRUE(server.log().empty());
  EXPECT_EQ(server.log_bytes_approx(), 0u);  // capacity actually released
}

}  // namespace
}  // namespace ctwatch
