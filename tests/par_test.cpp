// ctwatch::par unit tests: deque steal semantics, chunk-plan properties,
// fork/join execution (nesting, exceptions, reuse), and the sharded
// accumulator. The concurrency-heavy cases double as the TSAN surface for
// the pool (see the tsan CI job).
#include <algorithm>
#include <atomic>
#include <numeric>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/par/par.hpp"

namespace ctwatch::par {
namespace {

/// Restores the process-wide pool to its default resolution on scope
/// exit, so a test forcing a thread count cannot leak it.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { TaskPool::set_global_threads(0); }
};

// ---- WorkDeque ----

TEST(TaskPoolTest, DequeOwnerEndIsLifo) {
  detail::WorkDeque deque;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) deque.push([&order, i] { order.push_back(i); });
  Task task;
  while (deque.pop(task)) task();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(TaskPoolTest, DequeThiefEndIsFifo) {
  detail::WorkDeque deque;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) deque.push([&order, i] { order.push_back(i); });
  Task task;
  while (deque.take_front(task)) task();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskPoolTest, StealHalfTakesCeilHalfFromFrontInOrder) {
  detail::WorkDeque deque;
  std::vector<int> ran;
  for (int i = 0; i < 5; ++i) deque.push([&ran, i] { ran.push_back(i); });

  std::deque<Task> loot;
  EXPECT_EQ(deque.steal_half(loot), 3u);  // ceil(5/2)
  EXPECT_EQ(loot.size(), 3u);
  EXPECT_EQ(deque.size(), 2u);

  for (Task& task : loot) task();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));  // oldest first, stolen in order

  Task task;
  while (deque.pop(task)) task();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 4, 3}));  // owner keeps the newest
}

TEST(TaskPoolTest, StealHalfOnEmptyDequeTakesNothing) {
  detail::WorkDeque deque;
  std::deque<Task> loot;
  EXPECT_EQ(deque.steal_half(loot), 0u);
  EXPECT_TRUE(loot.empty());
}

// ---- ChunkPlan ----

TEST(ChunkPlanTest, ChunksPartitionTheRange) {
  for (const std::size_t n : {0u, 1u, 7u, 100u, 255u, 256u, 257u, 10000u}) {
    for (const std::size_t grain : {1u, 3u, 64u}) {
      const ChunkPlan plan = ChunkPlan::over(n, grain);
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < plan.chunks; ++c) {
        const IndexRange range = plan.chunk(c);
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_LE(range.begin, range.end);
        covered += range.size();
        expect_begin = range.end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
      if (plan.chunks > 0) {
        EXPECT_EQ(plan.chunk(plan.chunks - 1).end, n);
      }
    }
  }
}

TEST(ChunkPlanTest, ChunkSizesDifferByAtMostOne) {
  const ChunkPlan plan = ChunkPlan::over(1003, 1, 64);
  ASSERT_EQ(plan.chunks, 64u);
  std::size_t min_size = ~0u, max_size = 0;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const std::size_t s = plan.chunk(c).size();
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ChunkPlanTest, GrainBoundsChunkCount) {
  EXPECT_EQ(ChunkPlan::over(100, 10).chunks, 10u);
  EXPECT_EQ(ChunkPlan::over(95, 10).chunks, 10u);  // ceil(95/10)
  EXPECT_EQ(ChunkPlan::over(5, 10).chunks, 1u);
  EXPECT_EQ(ChunkPlan::over(0, 10).chunks, 0u);
  // The cap wins over the grain.
  EXPECT_EQ(ChunkPlan::over(100000, 1, 256).chunks, 256u);
  // Degenerate inputs are normalized, not UB.
  EXPECT_EQ(ChunkPlan::over(10, 0).chunks, 10u);
  EXPECT_EQ(ChunkPlan::over(10, 1, 0).chunks, 1u);
}

TEST(ChunkPlanTest, PlanIsPureFunctionOfInputs) {
  // The decomposition must not depend on the execution environment: two
  // calls with the same inputs agree exactly, whatever the pool looks like.
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(1);
  const ChunkPlan serial = ChunkPlan::over(1234, 7);
  TaskPool::set_global_threads(4);
  const ChunkPlan parallel = ChunkPlan::over(1234, 7);
  ASSERT_EQ(serial.chunks, parallel.chunks);
  for (std::size_t c = 0; c < serial.chunks; ++c) {
    EXPECT_EQ(serial.chunk(c).begin, parallel.chunk(c).begin);
    EXPECT_EQ(serial.chunk(c).end, parallel.chunk(c).end);
  }
}

// ---- TaskPool / TaskGroup execution ----

TEST(TaskPoolTest, EveryTaskRunsExactlyOnce) {
  TaskPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  TaskGroup group(&pool);
  for (int i = 1; i <= 1000; ++i) {
    group.run([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

#ifndef CTWATCH_OBS_DISABLED
TEST(TaskPoolTest, SubmitPropagatesTraceContextToWorkers) {
  // With the tracer on, a span open at submit() time becomes the parent
  // of spans the task opens on whatever worker thread runs it — the
  // hand-off is one causal tree, not a forest of per-thread roots.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    obs::Span root("par_test.submit_root");
    TaskPool pool(2);
    TaskGroup group(&pool);
    // The wait()ing caller helps run queued tasks, so tiny tasks can all
    // execute inline on the submitting thread. Hold each task at a
    // rendezvous until two distinct threads have entered one: with two
    // dedicated workers available this cannot deadlock, and it guarantees
    // at least one task runs off-thread.
    std::mutex mu;
    std::condition_variable cv;
    std::set<std::thread::id> entered;
    for (int i = 0; i < 8; ++i) {
      group.run([&mu, &cv, &entered] {
        obs::Span task_span("par_test.pool_task");
        std::unique_lock<std::mutex> lock(mu);
        entered.insert(std::this_thread::get_id());
        cv.notify_all();
        cv.wait(lock, [&entered] { return entered.size() >= 2; });
      });
    }
    group.wait();
  }
  tracer.set_enabled(false);

  const std::vector<obs::SpanRecord> spans = tracer.spans();
  const obs::SpanRecord* root = nullptr;
  std::size_t tasks = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "par_test.submit_root") root = &span;
  }
  ASSERT_NE(root, nullptr);
  bool crossed_thread = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.name != "par_test.pool_task") continue;
    ++tasks;
    EXPECT_EQ(span.trace_id, root->trace_id);
    EXPECT_EQ(span.parent_id, root->id);
    crossed_thread |= span.thread_id != root->thread_id;
  }
  EXPECT_EQ(tasks, 8u);
  EXPECT_TRUE(crossed_thread);
  // Each cross-thread task edge is a flow link for chrome://tracing.
  std::size_t cross = 0;
  for (const obs::FlowLink& link : obs::flow_links(spans)) {
    EXPECT_EQ(link.parent_id, root->id);
    ++cross;
  }
  EXPECT_GE(cross, 1u);
  tracer.clear();
}

TEST(TaskPoolTest, DisabledTracerAddsNoWrappingAndNoSpans) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());  // the default: parity mode
  obs::Span root("par_test.inert_root");  // inert while disabled
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_TRUE(tracer.spans().empty());
}
#endif  // CTWATCH_OBS_DISABLED

TEST(TaskPoolTest, GroupIsReusableAfterWait) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) group.run([&count] { ++count; });
    group.wait();
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(TaskPoolTest, GroupDestructionAfterWaitIsSafeUnderChurn) {
  // Regression: finish_one once decremented pending_ outside mu_, so a
  // wait()er could observe zero, return, and destroy the stack-local
  // group while a worker was still about to lock its mutex. Thousands of
  // tiny fork/join cycles keep workers in exactly that window; under TSAN
  // a regression shows up as a lock of a destroyed mutex.
  TaskPool pool(4);
  for (int cycle = 0; cycle < 2000; ++cycle) {
    std::atomic<int> ran{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 4; ++i) {
      group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    ASSERT_EQ(ran.load(), 4);
  }
}

TEST(TaskPoolTest, FirstExceptionIsRethrownAndLaterTasksStillRun) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 20; ++i) {
    group.run([&ran, i] {
      ++ran;
      if (i == 7) throw std::runtime_error("task failure");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);

  // The pool and the group both survive a failed wave.
  std::atomic<int> after{0};
  for (int i = 0; i < 10; ++i) group.run([&after] { ++after; });
  group.wait();
  EXPECT_EQ(after.load(), 10);
}

TEST(TaskPoolTest, SerialGroupHasSameExceptionSemantics) {
  TaskGroup group(nullptr);
  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    group.run([&ran, i] {
      ++ran;
      if (i == 1) throw std::runtime_error("inline failure");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran, 5);  // later tasks still ran inline
}

TEST(TaskPoolTest, GlobalPoolIsNullAtOneThread) {
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(1);
  EXPECT_EQ(TaskPool::global(), nullptr);
  EXPECT_EQ(TaskPool::effective_threads(), 1u);
  TaskPool::set_global_threads(3);
  ASSERT_NE(TaskPool::global(), nullptr);
  EXPECT_EQ(TaskPool::global()->worker_count(), 3u);
  EXPECT_EQ(TaskPool::effective_threads(), 3u);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  GlobalThreadsGuard guard;
  for (const unsigned threads : {1u, 2u, 4u}) {
    TaskPool::set_global_threads(threads);
    std::vector<std::atomic<int>> hits(997);
    parallel_for(hits.size(), 10,
                 [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelForTest, NestedParallelForCompletes) {
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(4);
  // Outer tasks wait() on inner groups while sitting on pool workers; the
  // caller-helps protocol must drain the inner work (no deadlock).
  std::atomic<std::uint64_t> total{0};
  parallel_for(8, 1, [&](std::size_t) {
    parallel_for(200, 10,
                 [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 8u * 200u);
}

TEST(ParallelForTest, LoggingAuthoritativeServerIsSafeUnderConcurrentResolves) {
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(4);
  // Logging stays ON — this is the funnel-reaches-a-logging-server path
  // (the honeypot's own server keeps logging enabled by design). Every
  // resolve appends to the query log from whichever worker runs the
  // chunk; the log must end up race-free and complete, though entry
  // order is completion order (order-sensitive consumers drive the
  // server serially).
  dns::AuthoritativeServer server;
  dns::Zone& zone = server.add_zone(dns::DnsName::parse_or_throw("example.org"));
  zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("www.example.org"), dns::RrType::A,
                               300, net::IPv4(192, 0, 2, 1)});
  dns::DnsUniverse universe;
  universe.add_server(server);
  dns::RecursiveResolver::Identity identity;
  identity.address = net::IPv4(8, 8, 8, 8);
  identity.asn = 15169;
  identity.label = "par-test-resolver";
  const dns::RecursiveResolver resolver(universe, identity);
  const SimTime when = SimTime::parse("2018-04-27");
  const auto qname = dns::DnsName::parse_or_throw("www.example.org");

  constexpr std::size_t kQueries = 512;
  std::atomic<std::size_t> answered{0};
  parallel_for(kQueries, 8, [&](std::size_t) {
    const auto result = resolver.resolve(qname, dns::RrType::A, when);
    if (result.status == dns::ResolveStatus::ok) {
      answered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(answered.load(), kQueries);
  EXPECT_EQ(server.log().size(), kQueries);
  for (const dns::QueryLogEntry& entry : server.log()) {
    EXPECT_TRUE(entry.answered);
    EXPECT_EQ(entry.context.resolver_label, "par-test-resolver");
  }
}

TEST(ParallelForTest, ExceptionPropagatesFromChunkBody) {
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(2);
  EXPECT_THROW(parallel_for(100, 1,
                            [](std::size_t i) {
                              if (i == 42) throw std::runtime_error("chunk failure");
                            }),
               std::runtime_error);
  // The global pool is reusable after the failure.
  std::atomic<int> count{0};
  parallel_for(100, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelReduceTest, MatchesSerialFoldForNonCommutativeMerge) {
  GlobalThreadsGuard guard;
  // String concatenation is associative but NOT commutative: any merge
  // that reorders chunks changes the bytes. The serial left fold is the
  // reference; every thread count must reproduce it exactly.
  const std::size_t n = 1003;
  std::string expected;
  for (std::size_t i = 0; i < n; ++i) expected += std::to_string(i) + ",";

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    TaskPool::set_global_threads(threads);
    const std::string got = parallel_reduce(
        n, 7, std::string{},
        [](std::size_t, IndexRange range) {
          std::string part;
          for (std::size_t i = range.begin; i < range.end; ++i) {
            part += std::to_string(i) + ",";
          }
          return part;
        },
        [](std::string a, std::string b) { return std::move(a) += b; });
    EXPECT_EQ(got, expected) << "at " << threads << " threads";
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  const int got = parallel_reduce(
      0, 1, 41, [](std::size_t, IndexRange) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 41);
}

// ---- ShardedAccumulator ----

TEST(ShardedAccumulatorTest, ShardOfIsStableAndInRange) {
  const ShardedAccumulator<int> shards(64);
  for (std::uint64_t h : {0ull, 1ull, 64ull, ~0ull, 0xdeadbeefull}) {
    const std::size_t s = shards.shard_of(h);
    EXPECT_LT(s, 64u);
    EXPECT_EQ(s, shards.shard_of(h));
  }
}

TEST(ShardedAccumulatorTest, TotalsInvariantUnderShardCount) {
  // Every key lands in exactly one shard whatever the shard count, so the
  // collapsed total is a constant of the data.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 5000; ++i) keys.push_back(i * 2654435761u);

  std::uint64_t reference = 0;
  for (const std::uint64_t key : keys) reference += key % 97;

  for (const std::size_t shard_count : {1u, 16u, 64u, 256u}) {
    ShardedAccumulator<std::uint64_t> shards(shard_count);
    for (const std::uint64_t key : keys) shards.shard(shards.shard_of(key)) += key % 97;
    std::uint64_t total = 0;
    shards.collapse_into(total, [](std::uint64_t& target, std::uint64_t v) { target += v; });
    EXPECT_EQ(total, reference) << shard_count << " shards";
  }
}

TEST(ShardedAccumulatorTest, ForEachOrderedWalksShardsInIndexOrder) {
  ShardedAccumulator<int> shards(8);
  for (std::size_t i = 0; i < 8; ++i) shards.shard(i) = static_cast<int>(i);
  std::vector<std::size_t> visited;
  shards.for_each_ordered([&](std::size_t index, int& value) {
    EXPECT_EQ(value, static_cast<int>(index));
    visited.push_back(index);
  });
  EXPECT_EQ(visited.size(), 8u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(ShardedAccumulatorTest, ImbalanceMilli) {
  ShardedAccumulator<std::uint64_t> balanced(4);
  for (std::size_t i = 0; i < 4; ++i) balanced.shard(i) = 10;
  EXPECT_EQ(balanced.imbalance_milli([](std::uint64_t v) { return v; }), 1000);

  ShardedAccumulator<std::uint64_t> skewed(4);
  skewed.shard(0) = 40;  // everything on one shard: max/mean = 4.0
  EXPECT_EQ(skewed.imbalance_milli([](std::uint64_t v) { return v; }), 4000);

  ShardedAccumulator<std::uint64_t> empty(4);
  EXPECT_EQ(empty.imbalance_milli([](std::uint64_t v) { return v; }), 0);
}

TEST(ShardedAccumulatorTest, ConcurrentShardMutationIsRaceFree) {
  // TSAN surface: tasks mutate disjoint shards concurrently while the
  // padding keeps them off each other's cache lines.
  GlobalThreadsGuard guard;
  TaskPool::set_global_threads(4);
  ShardedAccumulator<std::uint64_t> shards(64);
  parallel_for(64, 1, [&](std::size_t s) {
    for (int i = 0; i < 10000; ++i) ++shards.shard(s);
  });
  std::uint64_t total = 0;
  shards.collapse_into(total, [](std::uint64_t& target, std::uint64_t v) { target += v; });
  EXPECT_EQ(total, 64u * 10000u);
}

}  // namespace
}  // namespace ctwatch::par
