#include <gtest/gtest.h>

#include "ctwatch/phishing/detector.hpp"
#include "ctwatch/sim/phishing_gen.hpp"

namespace ctwatch::phishing {
namespace {

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest()
      : psl_(dns::PublicSuffixList::bundled()), detector_(psl_, standard_rules()) {}

  std::vector<Finding> scan_one(const std::string& name) {
    const std::vector<std::string> names{name};
    return detector_.scan(names);
  }

  dns::PublicSuffixList psl_;
  PhishingDetector detector_;
};

TEST_F(DetectorTest, FlagsPaperExampleShapes) {
  // The exact example shapes from Table 3.
  for (const auto& [name, brand] :
       std::vector<std::pair<std::string, std::string>>{
           {"appleid.apple.com-7etr6eti.gq", "Apple"},
           {"paypal.com-account-security.money", "PayPal"},
           {"www-hotmail-login.live", "Microsoft"},
           {"accounts.google.co.am", "Google"},
           {"www.ebay.co.uk.dll7.bid", "eBay"},
       }) {
    const auto findings = scan_one(name);
    ASSERT_EQ(findings.size(), 1u) << name;
    EXPECT_EQ(findings[0].brand, brand) << name;
  }
}

TEST_F(DetectorTest, FlagsTaxationOffices) {
  for (const char* name : {"ato.gov.au.eng-atorefund.com", "hmrc.gov.uk-refund.cf",
                           "refund.irs.gov.my-irs.com"}) {
    const auto findings = scan_one(name);
    ASSERT_EQ(findings.size(), 1u) << name;
    EXPECT_EQ(findings[0].brand, "Taxation") << name;
  }
}

TEST_F(DetectorTest, ExcludesLegitimateDomains) {
  for (const char* name : {"appleid.apple.com", "www.paypal.com", "login.live.com",
                           "accounts.google.com", "signin.ebay.com", "www.irs.gov",
                           "online.hmrc.gov.uk", "www.ato.gov.au"}) {
    EXPECT_TRUE(scan_one(name).empty()) << name;
  }
}

TEST_F(DetectorTest, IgnoresUnrelatedDomains) {
  for (const char* name : {"www.example.org", "shop.acme123.de", "mail.vertex9.tech"}) {
    EXPECT_TRUE(scan_one(name).empty()) << name;
  }
}

TEST_F(DetectorTest, SkipsInvalidNames) {
  const std::vector<std::string> names{"not..a..name", "apple phishing!.com",
                                       "appleid.apple.com-x.gq"};
  const auto findings = detector_.scan(names);
  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(detector_.names_skipped(), 2u);
  EXPECT_EQ(detector_.names_scanned(), 3u);
}

TEST_F(DetectorTest, FindingCarriesSuffixAndRegistrable) {
  const auto findings = scan_one("www.ebay.co.uk.dll7.bid");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].public_suffix, "bid");
  EXPECT_EQ(findings[0].registrable_domain, "dll7.bid");
}

TEST_F(DetectorTest, FirstMatchingBrandWins) {
  // Contains both "paypal" and "google": PayPal is listed first in the rules.
  const auto findings = scan_one("paypal-google-login.tk");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].brand, "PayPal");
}

TEST_F(DetectorTest, CaseInsensitiveMatching) {
  // DnsName normalizes case before matching.
  const auto findings = scan_one("AppleID.Apple.Com-X.GQ");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].brand, "Apple");
}

TEST(SummaryTest, AggregatesByBrandAndSuffix) {
  std::vector<Finding> findings = {
      {"Apple", "a1.gq", "gq", "a1.gq"},
      {"Apple", "a2.tk", "tk", "a2.tk"},
      {"eBay", "e1.bid", "bid", "e1.bid"},
  };
  const auto summary = PhishingDetector::summarize(findings);
  EXPECT_EQ(summary.at("Apple").count, 2u);
  EXPECT_EQ(summary.at("Apple").example, "a1.gq");
  EXPECT_EQ(summary.at("Apple").by_suffix.at("gq"), 1u);
  EXPECT_EQ(summary.at("eBay").count, 1u);
}

TEST(GeneratedCorpusTest, DetectorFindsEveryPlantedPhish) {
  const sim::PhishingCorpus corpus = sim::generate_phishing_corpus();
  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  PhishingDetector detector(psl, standard_rules());
  const auto findings = detector.scan(corpus.names);
  // Every planted phishing name is flagged; no legitimate name is.
  EXPECT_EQ(findings.size(), corpus.planted_phishing);
  for (const Finding& finding : findings) {
    for (const BrandRule& rule : standard_rules()) {
      EXPECT_FALSE(rule.legitimate_domains.contains(finding.registrable_domain))
          << finding.fqdn;
    }
  }
}

TEST(GeneratedCorpusTest, SuffixLinksMatchPaperDirection) {
  const sim::PhishingCorpus corpus = sim::generate_phishing_corpus();
  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  PhishingDetector detector(psl, standard_rules());
  const auto summary = PhishingDetector::summarize(detector.scan(corpus.names));
  // eBay leans on bid/review; Apple/PayPal dominate the totals.
  const auto& ebay = summary.at("eBay");
  const std::uint64_t bid_review = (ebay.by_suffix.count("bid") ? ebay.by_suffix.at("bid") : 0) +
                                   (ebay.by_suffix.count("review") ? ebay.by_suffix.at("review") : 0);
  EXPECT_GT(bid_review, 0u);
  EXPECT_GT(summary.at("Apple").count, summary.at("Microsoft").count);
  EXPECT_GT(summary.at("PayPal").count, summary.at("Google").count);
}

}  // namespace
}  // namespace ctwatch::phishing
