#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::obs {
namespace {

#ifndef CTWATCH_OBS_DISABLED

// ---------- counters / gauges ----------

TEST(ObsMetricsTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeSemantics) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.set(100);
  EXPECT_EQ(g.value(), 100);
}

TEST(ObsMetricsTest, RegistryReturnsStableHandles) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("obs_test.stable");
  Counter& b = registry.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetricsTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  Histogram h(exponential_bounds(1.0, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(8.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0 * kThreads * kPerThread);
}

// ---------- histograms ----------

TEST(ObsHistogramTest, BucketingAndMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket <=1
  h.observe(5.0);    // bucket <=10
  h.observe(50.0);   // bucket <=100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(ObsHistogramTest, QuantilesOnKnownDistribution) {
  // 1..100 uniformly with unit-wide buckets: pXX must land within one
  // bucket width of XX.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(1.00), 100.0, 1.0);
  // Empty histogram reports 0.
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, OverflowMassReportsLargestBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(ObsMetricsTest, RenderJsonShape) {
  Registry& registry = Registry::global();
  registry.counter("obs_test.json_counter").reset();
  registry.counter("obs_test.json_counter").inc(5);
  registry.histogram("obs_test.json_hist", {1.0, 2.0}).observe(1.5);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMetricsTest, PreregisterPipelineMetricsCreatesHeadlineKeys) {
  preregister_pipeline_metrics();
  const std::string json = Registry::global().render_json();
  for (const char* key :
       {"ct.log.submissions", "ct.log.overload_rejections", "monitor.sct.cert",
        "monitor.sct.tls", "monitor.sct.ocsp", "sim.timeline.issued"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos) << key;
  }
}

// ---------- spans ----------

TEST(ObsTraceTest, SpanNestingAndExportShape) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span outer("obs_test.outer");
    {
      Span inner("obs_test.inner");
    }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first; its parent must be the outer span's id.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "obs_test.inner");
  EXPECT_EQ(outer.name, "obs_test.outer");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_GE(inner.start_us, outer.start_us);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  const std::string table = tracer.aggregate_table();
  EXPECT_NE(table.find("obs_test.outer"), std::string::npos);
  tracer.clear();
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  {
    CTWATCH_SPAN("obs_test.should_not_appear");
  }
  EXPECT_TRUE(tracer.spans().empty());
}

// ---------- logger ----------

TEST(ObsLogTest, LevelFiltering) {
  Logger& logger = Logger::global();
  std::vector<std::string> lines;
  logger.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  logger.reset_counters();

  logger.set_level(LogLevel::warn);
  log_debug("obs_test", "hidden");
  log_info("obs_test", "hidden too");
  log_warn("obs_test", "visible", {{"k", "v"}, {"n", 42}});
  log_error("obs_test", "also visible");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(lines[0].find("component=obs_test"), std::string::npos);
  EXPECT_NE(lines[0].find("msg=\"visible\""), std::string::npos);
  EXPECT_NE(lines[0].find("k=\"v\""), std::string::npos);
  EXPECT_NE(lines[0].find("n=42"), std::string::npos);

  lines.clear();
  logger.set_level(LogLevel::off);
  log_error("obs_test", "silent");
  EXPECT_TRUE(lines.empty());

  logger.set_sink(nullptr);
}

TEST(ObsLogTest, RateLimitSuppressesRepeats) {
  Logger& logger = Logger::global();
  std::vector<std::string> lines;
  logger.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  logger.reset_counters();
  logger.set_level(LogLevel::info);
  logger.set_rate_limit(3);

  for (int i = 0; i < 10; ++i) log_info("obs_test", "repeated event");
  EXPECT_EQ(lines.size(), 3u);
  EXPECT_EQ(logger.emitted(), 3u);
  EXPECT_EQ(logger.suppressed(), 7u);

  logger.set_rate_limit(0);
  logger.set_level(LogLevel::off);
  logger.set_sink(nullptr);
}


// ---------- quantile edge cases (fixed-bucket) ----------

TEST(ObsHistogramTest, QuantileEdgeCasesClampToFiniteRange) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(3.0);
  // q is clamped into [0,1]; NaN reads as 0.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
  // q=0 targets the first observation's bucket, not a value below it.
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.0), 1.0);
  // q=1 stays within the largest finite bound.
  EXPECT_LE(h.quantile(1.0), 4.0);
  // Degenerate layout: no bounds at all -> everything is overflow, and
  // the reported quantile is the (empty) finite range's fallback, 0.
  Histogram unbounded(std::vector<double>{});
  unbounded.observe(123.0);
  EXPECT_DOUBLE_EQ(unbounded.quantile(0.5), 0.0);
}

// ---------- log-linear histogram ----------

TEST(ObsLogLinearTest, IndexAndBoundsInvariants) {
  using H = LogLinearHistogram;
  // Sub-unit, negative, and NaN all land in the underflow bucket.
  EXPECT_EQ(H::index_of(0.0), 0u);
  EXPECT_EQ(H::index_of(0.99), 0u);
  EXPECT_EQ(H::index_of(-5.0), 0u);
  EXPECT_EQ(H::index_of(std::nan("")), 0u);
  // Beyond the top octave clamps into the last bucket.
  EXPECT_EQ(H::index_of(1e30), H::kBucketCount - 1);
  // In range, every value sits inside its bucket's [lower, upper).
  for (double v : {1.0, 1.5, 2.0, 3.1, 64.0, 1000.5, 123456.0, 9.9e8}) {
    const std::size_t index = H::index_of(v);
    EXPECT_GE(v, H::bucket_lower(index)) << v;
    EXPECT_LT(v, H::bucket_upper(index)) << v;
  }
  // Bucket edges tile the range with no gaps.
  for (std::size_t i = 1; i + 1 < H::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(H::bucket_upper(i), H::bucket_lower(i + 1)) << i;
  }
}

TEST(ObsLogLinearTest, QuantileRelativeErrorBounded) {
  LogLinearHistogram h;
  std::vector<double> values;
  // Deterministic multiplicative walk covering ~6 decades.
  double v = 1.0;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(v);
    h.observe(v);
    v *= 1.0007;
    if (v > 1e6) v = 1.0 + static_cast<double>(i % 97) / 97.0;
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    const double truth =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    const double reported = h.quantile(q);
    // Midpoint reporting bounds the error at half a sub-bucket; rank
    // discretization can shift one bucket more. 2/kSubBuckets covers both.
    EXPECT_NEAR(reported, truth, truth * (2.0 / LogLinearHistogram::kSubBuckets) + 1e-9)
        << "q=" << q;
  }
  // Edges: q=0 reports the lowest occupied bucket, q=1 the highest, and
  // out-of-range q clamps.
  EXPECT_NEAR(h.quantile(0.0), values.front(), values.front() * 0.05 + 0.1);
  EXPECT_NEAR(h.quantile(1.0), values.back(), values.back() * 0.05);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
  LogLinearHistogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsLogLinearTest, MergeIsOrderIndependent) {
  // Integer-valued observations keep the double sums exact, so merge
  // order must reproduce identical state bit for bit.
  LogLinearHistogram a;
  LogLinearHistogram b;
  LogLinearHistogram c;
  for (int i = 1; i <= 500; ++i) a.observe(static_cast<double>(i));
  for (int i = 1; i <= 300; ++i) b.observe(static_cast<double>(i * 7));
  for (int i = 1; i <= 200; ++i) c.observe(static_cast<double>(i * 131));

  LogLinearHistogram abc;
  abc.merge_from(a);
  abc.merge_from(b);
  abc.merge_from(c);
  LogLinearHistogram cba;
  cba.merge_from(c);
  cba.merge_from(b);
  cba.merge_from(a);

  EXPECT_EQ(abc.count(), 1000u);
  EXPECT_EQ(abc.count(), cba.count());
  EXPECT_DOUBLE_EQ(abc.sum(), cba.sum());
  for (std::size_t i = 0; i < LogLinearHistogram::kBucketCount; ++i) {
    ASSERT_EQ(abc.bucket_count_at(i), cba.bucket_count_at(i)) << i;
  }
  EXPECT_DOUBLE_EQ(abc.quantile(0.5), cba.quantile(0.5));
  EXPECT_DOUBLE_EQ(abc.quantile(0.99), cba.quantile(0.99));
}

TEST(ObsLogLinearTest, PerThreadRecordersCollapseDeterministically) {
  // The sharded-use pattern: each thread records into its own histogram,
  // the shards merge afterwards. The collapse must not depend on how the
  // threads interleaved.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::unique_ptr<LogLinearHistogram>> shards;
  for (int t = 0; t < kThreads; ++t) shards.push_back(std::make_unique<LogLinearHistogram>());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shards] {
      for (int i = 0; i < kPerThread; ++i) {
        shards[static_cast<std::size_t>(t)]->observe(static_cast<double>(1 + (i * 37) % 100000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LogLinearHistogram merged;
  for (const auto& shard : shards) merged.merge_from(*shard);
  EXPECT_EQ(merged.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every thread recorded the same value multiset, so the merged p50 must
  // equal a single shard's p50 exactly.
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), shards[0]->quantile(0.5));
}

TEST(ObsLogLinearTest, ConcurrentObserveIsExact) {
  LogLinearHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(32.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.bucket_count_at(LogLinearHistogram::index_of(32.0)), kThreads * kPerThread);
  EXPECT_NEAR(h.quantile(0.5), 32.0, 32.0 / LogLinearHistogram::kSubBuckets);
}

// ---------- metric names / prometheus rendering ----------

TEST(ObsMetricsTest, MetricNameValidator) {
  EXPECT_TRUE(is_valid_metric_name("a"));
  EXPECT_TRUE(is_valid_metric_name("_private"));
  EXPECT_TRUE(is_valid_metric_name("par.tasks"));
  EXPECT_TRUE(is_valid_metric_name("logsvc.queue_wait_us"));
  EXPECT_TRUE(is_valid_metric_name("x9.y_2"));
  EXPECT_FALSE(is_valid_metric_name(""));
  EXPECT_FALSE(is_valid_metric_name("9x"));
  EXPECT_FALSE(is_valid_metric_name(".leading.dot"));
  EXPECT_FALSE(is_valid_metric_name("has-dash"));
  EXPECT_FALSE(is_valid_metric_name("has space"));
  EXPECT_FALSE(is_valid_metric_name("has/slash"));
}

TEST(ObsMetricsTest, RenderPrometheusShape) {
  Registry& registry = Registry::global();
  registry.counter("obs_test.prom.hits").reset();
  registry.counter("obs_test.prom.hits").inc(7);
  registry.gauge("obs_test.prom.depth").set(-3);
  LogLinearHistogram& lat = registry.latency("obs_test.prom.lat_us");
  lat.reset();
  for (int i = 0; i < 100; ++i) lat.observe(100.0);

  const std::string text = registry.render_prometheus();
  // Dots map to underscores under the ctwatch_ prefix, with TYPE lines.
  EXPECT_NE(text.find("# TYPE ctwatch_obs_test_prom_hits counter\n"
                      "ctwatch_obs_test_prom_hits 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ctwatch_obs_test_prom_depth gauge\n"
                      "ctwatch_obs_test_prom_depth -3\n"),
            std::string::npos);
  // Distributions render as summaries: quantile samples plus _sum/_count.
  EXPECT_NE(text.find("# TYPE ctwatch_obs_test_prom_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("ctwatch_obs_test_prom_lat_us{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("ctwatch_obs_test_prom_lat_us{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(text.find("ctwatch_obs_test_prom_lat_us_sum 10000\n"), std::string::npos);
  EXPECT_NE(text.find("ctwatch_obs_test_prom_lat_us_count 100\n"), std::string::npos);
}

TEST(ObsMetricsTest, LatencyHistogramsShareRenderedHistogramSection) {
  Registry& registry = Registry::global();
  registry.latency("obs_test.shared.lat_us").reset();
  registry.latency("obs_test.shared.lat_us").observe(42.0);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"obs_test.shared.lat_us\":{\"count\":1"), std::string::npos);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("obs_test.shared.lat_us count=1"), std::string::npos);
}

// ---------- causal tracing ----------

TEST(ObsTraceTest, ContextScopeLinksSpansAcrossThreeThreads) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span root("obs_test.ctx_root");
    const TraceContext root_ctx = root.context();
    EXPECT_TRUE(root_ctx.active());
    std::thread middle([root_ctx] {
      ContextScope link(root_ctx);
      Span mid("obs_test.ctx_mid");
      const TraceContext mid_ctx = mid.context();
      std::thread leaf_thread([mid_ctx] {
        ContextScope inner_link(mid_ctx);
        Span leaf("obs_test.ctx_leaf");
      });
      leaf_thread.join();
    });
    middle.join();
  }
  tracer.set_enabled(false);

  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* root = nullptr;
  const SpanRecord* mid = nullptr;
  const SpanRecord* leaf = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.name == "obs_test.ctx_root") root = &span;
    if (span.name == "obs_test.ctx_mid") mid = &span;
    if (span.name == "obs_test.ctx_leaf") leaf = &span;
  }
  ASSERT_TRUE(root != nullptr && mid != nullptr && leaf != nullptr);
  // One trace spanning three distinct threads, chained root -> mid -> leaf.
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(mid->trace_id, root->trace_id);
  EXPECT_EQ(leaf->trace_id, root->trace_id);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(mid->parent_id, root->id);
  EXPECT_EQ(leaf->parent_id, mid->id);
  EXPECT_NE(root->thread_id, mid->thread_id);
  EXPECT_NE(mid->thread_id, leaf->thread_id);

  // Both cross-thread edges surface as flow links, ordered by child id.
  const std::vector<FlowLink> links = flow_links(spans);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].parent_id, root->id);
  EXPECT_EQ(links[0].child_id, mid->id);
  EXPECT_EQ(links[1].parent_id, mid->id);
  EXPECT_EQ(links[1].child_id, leaf->id);
  EXPECT_EQ(links[0].trace_id, root->trace_id);

  // And as chrome flow events ("s" on the parent slice, "f" bp=e on the
  // child) so chrome://tracing draws the hand-off arrows.
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ctwatch.flow\""), std::string::npos);
  tracer.clear();
}

TEST(ObsTraceTest, SameThreadNestingProducesNoFlowLinks) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span outer("obs_test.noflow_outer");
    Span inner("obs_test.noflow_inner");
  }
  tracer.set_enabled(false);
  EXPECT_TRUE(flow_links(tracer.spans()).empty());
  tracer.clear();
}

TEST(ObsTraceTest, RootSpansMintDistinctTraces) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span first("obs_test.trace_a");
  }
  {
    Span second("obs_test.trace_b");
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].trace_id, 0u);
  EXPECT_NE(spans[1].trace_id, 0u);
  EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
  // recent_spans returns the newest suffix.
  const std::vector<SpanRecord> recent = tracer.recent_spans(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].name, "obs_test.trace_b");
  tracer.clear();
}

TEST(ObsTraceTest, InactiveContextLeavesThreadStateUntouched) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span outer("obs_test.inactive_outer");
    {
      // A default (inactive) context must not re-root the thread.
      ContextScope noop{TraceContext{}};
      Span inner("obs_test.inactive_inner");
    }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // inner still nests in outer
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  tracer.clear();
}

// ---------- flight recorder ----------

TEST(ObsFlightTest, RecordsAndSnapshotsInSequenceOrder) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  recorder.record("obs_test.first", 1, 2);
  recorder.record("obs_test.second", 3);
  flight_note("obs_test.third");
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "obs_test.first");
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_STREQ(events[1].name, "obs_test.second");
  EXPECT_EQ(events[1].a, 3u);
  EXPECT_STREQ(events[2].name, "obs_test.third");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_NE(events[0].thread_id, 0u);

  const std::string dump = recorder.dump_text();
  EXPECT_NE(dump.find("obs_test.first"), std::string::npos);
  EXPECT_NE(dump.find("a=1"), std::string::npos);
  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(ObsFlightTest, RingRetainsNewestEvents) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  constexpr std::size_t kTotal = FlightRecorder::kRingSize + 50;
  for (std::size_t i = 0; i < kTotal; ++i) recorder.record("obs_test.wrap", i);
  const std::vector<FlightEvent> all = recorder.snapshot();
  ASSERT_EQ(all.size(), FlightRecorder::kRingSize);
  // The oldest 50 were overwritten; the newest event is i == kTotal-1.
  EXPECT_EQ(all.back().a, kTotal - 1);
  EXPECT_EQ(all.front().a, kTotal - FlightRecorder::kRingSize);
  // last_n trims from the old end.
  const std::vector<FlightEvent> tail = recorder.snapshot(10);
  ASSERT_EQ(tail.size(), 10u);
  EXPECT_EQ(tail.back().a, kTotal - 1);
  recorder.clear();
}

TEST(ObsFlightTest, PerThreadRingsMergeAcrossThreads) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  constexpr int kThreads = 3;
  constexpr std::size_t kEach = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (std::size_t i = 0; i < kEach; ++i) recorder.record("obs_test.mt", i);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<FlightEvent> events = recorder.snapshot();
  // This thread's ring may hold leftovers=0; the three workers' rings hold
  // kEach each. Sequence order is total across threads.
  std::size_t ours = 0;
  for (const FlightEvent& event : events) {
    if (std::string_view(event.name) == "obs_test.mt") ++ours;
  }
  EXPECT_EQ(ours, kThreads * kEach);
  for (std::size_t i = 1; i < events.size(); ++i) EXPECT_LT(events[i - 1].seq, events[i].seq);
  recorder.clear();
}

TEST(ObsFlightTest, SnapshotRacingWritersSeesOnlyWholeEvents) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&recorder, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.record("obs_test.race", i, i * 2);
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const FlightEvent& event : recorder.snapshot()) {
      // A torn slot would violate the a/b invariant; the seqlock must
      // never let one through.
      ASSERT_EQ(event.b, event.a * 2);
      ASSERT_STREQ(event.name, "obs_test.race");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  recorder.clear();
}

TEST(ObsFlightTest, DisableDropsEventsWithoutClearing) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  recorder.record("obs_test.kept");
  recorder.set_enabled(false);
  recorder.record("obs_test.dropped");
  recorder.set_enabled(true);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "obs_test.kept");
  recorder.clear();
}

// ---------- logger under concurrency ----------

TEST(ObsLogTest, ConcurrentEmittersDropExactlyAndNeverInterleave) {
  Logger& logger = Logger::global();
  std::mutex lines_mu;
  std::vector<std::string> lines;
  logger.set_sink([&lines_mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  });
  logger.reset_counters();
  logger.set_level(LogLevel::info);
  constexpr std::uint64_t kLimit = 100;
  logger.set_rate_limit(kLimit);

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log_info("obs_test.storm", "hammered", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Exact accounting: every call either emitted or suppressed, the limit
  // is hit exactly, nothing double-counts under contention.
  EXPECT_EQ(logger.emitted(), kLimit);
  EXPECT_EQ(logger.suppressed(), kThreads * kPerThread - kLimit);
  ASSERT_EQ(lines.size(), kLimit);
  // Whole lines only: each carries exactly one msg= and its own fields —
  // interleaved writes would corrupt the logfmt shape.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("level=info"), std::string::npos);
    EXPECT_NE(line.find("component=obs_test.storm"), std::string::npos);
    EXPECT_EQ(line.find("msg=\"hammered\""), line.rfind("msg=\"hammered\""));
    EXPECT_NE(line.find("thread="), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }

  logger.set_rate_limit(0);
  logger.set_level(LogLevel::off);
  logger.set_sink(nullptr);
}

#else  // CTWATCH_OBS_DISABLED

// The disabled build keeps the API callable and inert.
TEST(ObsDisabledTest, ApiIsCallableAndInert) {
  Registry& registry = Registry::global();
  registry.counter("x").inc(5);
  EXPECT_EQ(registry.counter("x").value(), 0u);
  registry.histogram("h").observe(1.0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  {
    CTWATCH_SPAN("never recorded");
  }
  EXPECT_TRUE(Tracer::global().spans().empty());
  log_error("obs_test", "dropped", {{"k", "v"}});
  EXPECT_EQ(Logger::global().emitted(), 0u);
  EXPECT_EQ(registry.render_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

#endif  // CTWATCH_OBS_DISABLED

}  // namespace
}  // namespace ctwatch::obs
