#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::obs {
namespace {

#ifndef CTWATCH_OBS_DISABLED

// ---------- counters / gauges ----------

TEST(ObsMetricsTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeSemantics) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.set(100);
  EXPECT_EQ(g.value(), 100);
}

TEST(ObsMetricsTest, RegistryReturnsStableHandles) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("obs_test.stable");
  Counter& b = registry.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetricsTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  Histogram h(exponential_bounds(1.0, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(8.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0 * kThreads * kPerThread);
}

// ---------- histograms ----------

TEST(ObsHistogramTest, BucketingAndMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket <=1
  h.observe(5.0);    // bucket <=10
  h.observe(50.0);   // bucket <=100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(ObsHistogramTest, QuantilesOnKnownDistribution) {
  // 1..100 uniformly with unit-wide buckets: pXX must land within one
  // bucket width of XX.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(1.00), 100.0, 1.0);
  // Empty histogram reports 0.
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, OverflowMassReportsLargestBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(ObsMetricsTest, RenderJsonShape) {
  Registry& registry = Registry::global();
  registry.counter("obs_test.json_counter").reset();
  registry.counter("obs_test.json_counter").inc(5);
  registry.histogram("obs_test.json_hist", {1.0, 2.0}).observe(1.5);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMetricsTest, PreregisterPipelineMetricsCreatesHeadlineKeys) {
  preregister_pipeline_metrics();
  const std::string json = Registry::global().render_json();
  for (const char* key :
       {"ct.log.submissions", "ct.log.overload_rejections", "monitor.sct.cert",
        "monitor.sct.tls", "monitor.sct.ocsp", "sim.timeline.issued"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos) << key;
  }
}

// ---------- spans ----------

TEST(ObsTraceTest, SpanNestingAndExportShape) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    Span outer("obs_test.outer");
    {
      Span inner("obs_test.inner");
    }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first; its parent must be the outer span's id.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "obs_test.inner");
  EXPECT_EQ(outer.name, "obs_test.outer");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_GE(inner.start_us, outer.start_us);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  const std::string table = tracer.aggregate_table();
  EXPECT_NE(table.find("obs_test.outer"), std::string::npos);
  tracer.clear();
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  {
    CTWATCH_SPAN("obs_test.should_not_appear");
  }
  EXPECT_TRUE(tracer.spans().empty());
}

// ---------- logger ----------

TEST(ObsLogTest, LevelFiltering) {
  Logger& logger = Logger::global();
  std::vector<std::string> lines;
  logger.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  logger.reset_counters();

  logger.set_level(LogLevel::warn);
  log_debug("obs_test", "hidden");
  log_info("obs_test", "hidden too");
  log_warn("obs_test", "visible", {{"k", "v"}, {"n", 42}});
  log_error("obs_test", "also visible");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(lines[0].find("component=obs_test"), std::string::npos);
  EXPECT_NE(lines[0].find("msg=\"visible\""), std::string::npos);
  EXPECT_NE(lines[0].find("k=\"v\""), std::string::npos);
  EXPECT_NE(lines[0].find("n=42"), std::string::npos);

  lines.clear();
  logger.set_level(LogLevel::off);
  log_error("obs_test", "silent");
  EXPECT_TRUE(lines.empty());

  logger.set_sink(nullptr);
}

TEST(ObsLogTest, RateLimitSuppressesRepeats) {
  Logger& logger = Logger::global();
  std::vector<std::string> lines;
  logger.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  logger.reset_counters();
  logger.set_level(LogLevel::info);
  logger.set_rate_limit(3);

  for (int i = 0; i < 10; ++i) log_info("obs_test", "repeated event");
  EXPECT_EQ(lines.size(), 3u);
  EXPECT_EQ(logger.emitted(), 3u);
  EXPECT_EQ(logger.suppressed(), 7u);

  logger.set_rate_limit(0);
  logger.set_level(LogLevel::off);
  logger.set_sink(nullptr);
}

#else  // CTWATCH_OBS_DISABLED

// The disabled build keeps the API callable and inert.
TEST(ObsDisabledTest, ApiIsCallableAndInert) {
  Registry& registry = Registry::global();
  registry.counter("x").inc(5);
  EXPECT_EQ(registry.counter("x").value(), 0u);
  registry.histogram("h").observe(1.0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  {
    CTWATCH_SPAN("never recorded");
  }
  EXPECT_TRUE(Tracer::global().spans().empty());
  log_error("obs_test", "dropped", {{"k", "v"}});
  EXPECT_EQ(Logger::global().emitted(), 0u);
  EXPECT_EQ(registry.render_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

#endif  // CTWATCH_OBS_DISABLED

}  // namespace
}  // namespace ctwatch::obs
