// Edge cases for Merkle proof math and the log auditor: empty trees,
// single leaves, degenerate consistency, stale tree-head snapshots, and
// the RootAccumulator / bulk-append paths the logsvc sequencer relies on.
#include <gtest/gtest.h>

#include "ctwatch/ct/auditor.hpp"
#include "ctwatch/sim/ca.hpp"

namespace ctwatch::ct {
namespace {

Digest leaf_of(const std::string& data) { return leaf_hash(to_bytes(data)); }

// --- empty tree ---

TEST(ProofEdgeTest, EmptyTreeRootIsSha256OfEmptyString) {
  EXPECT_EQ(hex_encode(BytesView{empty_tree_root().data(), empty_tree_root().size()}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  MerkleTree tree;
  EXPECT_EQ(tree.root(), empty_tree_root());
  EXPECT_EQ(RootAccumulator{}.root(), empty_tree_root());
  EXPECT_EQ(tree.root_at(0), empty_tree_root());
}

TEST(ProofEdgeTest, NothingIsIncludedInTheEmptyTree) {
  EXPECT_FALSE(verify_inclusion(leaf_of("x"), 0, 0, {}, empty_tree_root()));
}

TEST(ProofEdgeTest, EverythingIsConsistentWithTheEmptyTree) {
  MerkleTree tree;
  for (int i = 0; i < 5; ++i) tree.append(leaf_of("l" + std::to_string(i)));
  EXPECT_TRUE(verify_consistency(0, 5, empty_tree_root(), tree.root(), tree.consistency_proof(0, 5)));
  EXPECT_TRUE(tree.consistency_proof(0, 5).empty());
  // ...but a non-empty proof from size 0 is malformed.
  EXPECT_FALSE(verify_consistency(0, 5, empty_tree_root(), tree.root(), {leaf_of("junk")}));
  // Empty-to-empty is the fully degenerate case.
  EXPECT_TRUE(verify_consistency(0, 0, empty_tree_root(), empty_tree_root(), {}));
}

TEST(ProofEdgeTest, OnlyTheRealEmptyRootIsConsistentWithEverything) {
  // Regression: a signed size-0 head with an arbitrary root used to pass
  // consistency with ANY tree (the old-size-0 branch ignored old_root).
  // An equivocating log could mint such heads freely and every gossip
  // challenge on them would succeed. Size 0 pins the one root the empty
  // tree actually has.
  MerkleTree tree;
  for (int i = 0; i < 5; ++i) tree.append(leaf_of("e" + std::to_string(i)));
  const Digest junk = leaf_of("junk-empty-root");
  EXPECT_FALSE(verify_consistency(0, 5, junk, tree.root(), {}));
  EXPECT_FALSE(verify_consistency(0, 1, junk, leaf_of("e0"), {}));
  EXPECT_FALSE(verify_consistency(0, 0, junk, empty_tree_root(), {}));
  // The real empty root still passes, proof-free, against any tree.
  EXPECT_TRUE(verify_consistency(0, 5, empty_tree_root(), tree.root(), {}));
}

// --- single leaf ---

TEST(ProofEdgeTest, SingleLeafTreeRootIsTheLeafHash) {
  MerkleTree tree;
  tree.append(leaf_of("only"));
  EXPECT_EQ(tree.root(), leaf_of("only"));
  // The inclusion proof for the only leaf is empty and verifies.
  const auto proof = tree.inclusion_proof(0, 1);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(verify_inclusion(leaf_of("only"), 0, 1, proof, tree.root()));
  EXPECT_FALSE(verify_inclusion(leaf_of("other"), 0, 1, proof, tree.root()));
  // Consistency 1 -> 1 is empty too.
  EXPECT_TRUE(verify_consistency(1, 1, tree.root(), tree.root(), tree.consistency_proof(1, 1)));
}

// --- consistency where old == new ---

TEST(ProofEdgeTest, ConsistencySameSizeRequiresIdenticalRoots) {
  MerkleTree tree;
  for (int i = 0; i < 9; ++i) tree.append(leaf_of("c" + std::to_string(i)));
  EXPECT_TRUE(tree.consistency_proof(9, 9).empty());
  EXPECT_TRUE(verify_consistency(9, 9, tree.root(), tree.root(), {}));
  EXPECT_FALSE(verify_consistency(9, 9, tree.root(), leaf_of("imposter"), {}));
  // A same-size claim with a non-empty proof is malformed.
  EXPECT_FALSE(verify_consistency(9, 9, tree.root(), tree.root(), {leaf_of("junk")}));
}

// --- stale snapshot proofs ---

TEST(ProofEdgeTest, ProofsVerifyAgainstStaleTreeHeadSnapshot) {
  // A client pins the STH of a 13-leaf tree; the log grows to 40. Proofs
  // requested *at the stale size* must still verify against the old root,
  // and must not verify against the new one.
  MerkleTree tree;
  for (int i = 0; i < 13; ++i) tree.append(leaf_of("s" + std::to_string(i)));
  const Digest stale_root = tree.root();
  for (int i = 13; i < 40; ++i) tree.append(leaf_of("s" + std::to_string(i)));

  for (std::uint64_t index : {0ULL, 7ULL, 12ULL}) {
    const auto proof = tree.inclusion_proof(index, 13);
    EXPECT_TRUE(verify_inclusion(leaf_of("s" + std::to_string(index)), index, 13, proof,
                                 stale_root));
    EXPECT_FALSE(verify_inclusion(leaf_of("s" + std::to_string(index)), index, 13, proof,
                                  tree.root()));
  }
  // And the stale head connects forward to the current one.
  EXPECT_TRUE(verify_consistency(13, 40, stale_root, tree.root(), tree.consistency_proof(13, 40)));
}

// --- RootAccumulator / bulk append (the sequencer's integration path) ---

TEST(ProofEdgeTest, RootAccumulatorMatchesRecursiveRootAtEverySize) {
  RootAccumulator accumulator;
  MerkleTree reference;
  EXPECT_EQ(accumulator.root(), reference.root());
  for (int i = 0; i < 70; ++i) {
    const Digest leaf = leaf_of("a" + std::to_string(i));
    accumulator.add(leaf);
    reference.append(leaf);
    ASSERT_EQ(accumulator.size(), reference.size());
    ASSERT_EQ(accumulator.root(), reference.root()) << "size " << reference.size();
  }
}

TEST(ProofEdgeTest, AppendBatchEquivalentToSequentialAppend) {
  std::vector<Digest> batch;
  for (int i = 0; i < 33; ++i) batch.push_back(leaf_of("b" + std::to_string(i)));

  MerkleTree sequential;
  for (const Digest& leaf : batch) sequential.append(leaf);

  MerkleTree bulk;
  bulk.append(batch[0]);
  EXPECT_EQ(bulk.append_batch(std::span<const Digest>(batch).subspan(1)), 1u);
  EXPECT_EQ(bulk.size(), sequential.size());
  EXPECT_EQ(bulk.root(), sequential.root());
  EXPECT_EQ(bulk.inclusion_proof(17, 33), sequential.inclusion_proof(17, 33));
  EXPECT_EQ(bulk.append_batch({}), 33u);  // empty batch: no-op, returns next index
}

// --- auditor edge cases ---

class AuditorEdgeTest : public ::testing::Test {
 protected:
  AuditorEdgeTest()
      : ca_("Edge CA", "Edge Issuing CA", crypto::SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-04-01")) {
    LogConfig config;
    config.name = "Edge Log";
    config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    log_ = std::make_unique<CtLog>(config);
  }

  void issue(const std::string& cn) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    request.not_before = now_;
    request.not_after = now_ + 90 * 86400;
    request.logs = {log_.get()};
    ca_.issue(request, now_);
  }

  sim::CertificateAuthority ca_;
  std::unique_ptr<CtLog> log_;
  SimTime now_;
};

TEST_F(AuditorEdgeTest, AuditOfEmptyLogSucceeds) {
  LogAuditor auditor;
  const auto outcome = auditor.audit(*log_, now_);
  EXPECT_TRUE(outcome.ok) << outcome.problem;
  EXPECT_EQ(outcome.sth.tree_size, 0u);
  EXPECT_EQ(outcome.sth.root_hash, empty_tree_root());
}

TEST_F(AuditorEdgeTest, RepeatAuditWithoutGrowthSucceeds) {
  issue("www.example.org");
  LogAuditor auditor;
  EXPECT_TRUE(auditor.audit(*log_, now_).ok);
  // Same tree, later time: consistency old == new.
  EXPECT_TRUE(auditor.audit(*log_, now_ + 3600).ok);
}

TEST_F(AuditorEdgeTest, AuditFromEmptyThroughGrowth) {
  LogAuditor auditor;
  EXPECT_TRUE(auditor.audit(*log_, now_).ok);  // records the size-0 head
  issue("www.example.org");
  issue("api.example.org");
  const auto outcome = auditor.audit(*log_, now_ + 3600);
  EXPECT_TRUE(outcome.ok) << outcome.problem;
  EXPECT_EQ(outcome.sth.tree_size, 2u);
}

TEST_F(AuditorEdgeTest, DetectsHistoryRewriteAfterStaleSnapshot) {
  for (int i = 0; i < 6; ++i) issue("host" + std::to_string(i) + ".example.org");
  LogAuditor auditor;
  EXPECT_TRUE(auditor.audit(*log_, now_).ok);  // pins the honest 6-leaf head
  issue("host6.example.org");
  log_->corrupt_leaf_for_test(2);  // rewrite below the pinned head
  const auto outcome = auditor.audit(*log_, now_ + 3600);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.problem.find("consistency"), std::string::npos);
}

TEST_F(AuditorEdgeTest, CheckInclusionAgainstStaleHead) {
  issue("a.example.org");
  issue("b.example.org");
  const SignedTreeHead stale = log_->get_sth(now_);  // size 2
  for (int i = 0; i < 4; ++i) issue("c" + std::to_string(i) + ".example.org");

  // Entries below the stale head still prove into it; later ones cannot.
  EXPECT_TRUE(LogAuditor::check_inclusion(*log_, 0, stale));
  EXPECT_TRUE(LogAuditor::check_inclusion(*log_, 1, stale));
  EXPECT_FALSE(LogAuditor::check_inclusion(*log_, 3, stale));
  // And out-of-range indexes are rejected outright.
  EXPECT_FALSE(LogAuditor::check_inclusion(*log_, 99, stale));
}

}  // namespace
}  // namespace ctwatch::ct
