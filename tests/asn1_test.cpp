#include <gtest/gtest.h>

#include "ctwatch/asn1/der.hpp"

namespace ctwatch::asn1 {
namespace {

// ---------- primitives ----------

TEST(DerTest, ShortLengthForm) {
  EXPECT_EQ(encode_length(0), Bytes{0x00});
  EXPECT_EQ(encode_length(127), Bytes{0x7f});
}

TEST(DerTest, LongLengthForm) {
  EXPECT_EQ(encode_length(128), (Bytes{0x81, 0x80}));
  EXPECT_EQ(encode_length(256), (Bytes{0x82, 0x01, 0x00}));
  EXPECT_EQ(encode_length(65536), (Bytes{0x83, 0x01, 0x00, 0x00}));
}

TEST(DerTest, BooleanEncoding) {
  EXPECT_EQ(encode_boolean(true), (Bytes{0x01, 0x01, 0xff}));
  EXPECT_EQ(encode_boolean(false), (Bytes{0x01, 0x01, 0x00}));
}

TEST(DerTest, IntegerMinimalEncoding) {
  EXPECT_EQ(encode_integer(0), (Bytes{0x02, 0x01, 0x00}));
  EXPECT_EQ(encode_integer(127), (Bytes{0x02, 0x01, 0x7f}));
  // 128 needs a leading zero byte in two's complement.
  EXPECT_EQ(encode_integer(128), (Bytes{0x02, 0x02, 0x00, 0x80}));
  EXPECT_EQ(encode_integer(256), (Bytes{0x02, 0x02, 0x01, 0x00}));
  EXPECT_EQ(encode_integer(-1), (Bytes{0x02, 0x01, 0xff}));
  EXPECT_EQ(encode_integer(-128), (Bytes{0x02, 0x01, 0x80}));
  EXPECT_EQ(encode_integer(-129), (Bytes{0x02, 0x02, 0xff, 0x7f}));
}

TEST(DerTest, IntegerRoundTripSweep) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{127},
        std::int64_t{128}, std::int64_t{-127}, std::int64_t{-128}, std::int64_t{-129},
        std::int64_t{65535}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        std::int64_t{0x7fffffffffffffff}}) {
    const Bytes der = encode_integer(v);
    Parser parser{BytesView{der}};
    EXPECT_EQ(decode_integer(parser.next()), v) << v;
  }
}

TEST(DerTest, UnsignedIntegerAddsLeadingZero) {
  const Bytes magnitude{0x80, 0x01};
  const Bytes der = encode_integer_unsigned(magnitude);
  EXPECT_EQ(der, (Bytes{0x02, 0x03, 0x00, 0x80, 0x01}));
  Parser parser(der);
  EXPECT_EQ(decode_integer_unsigned(parser.next()), magnitude);
}

TEST(DerTest, UnsignedIntegerStripsLeadingZeros) {
  const Bytes magnitude{0x00, 0x00, 0x01, 0x02};
  const Bytes der = encode_integer_unsigned(magnitude);
  Parser parser(der);
  EXPECT_EQ(decode_integer_unsigned(parser.next()), (Bytes{0x01, 0x02}));
}

TEST(DerTest, UnsignedIntegerZero) {
  const Bytes der = encode_integer_unsigned(Bytes{});
  EXPECT_EQ(der, (Bytes{0x02, 0x01, 0x00}));
}

TEST(DerTest, DecodeIntegerRejectsNegativeAsUnsigned) {
  const Bytes der = encode_integer(-5);
  Parser parser(der);
  EXPECT_THROW(decode_integer_unsigned(parser.next()), std::invalid_argument);
}

TEST(DerTest, OctetStringRoundTrip) {
  const Bytes payload{0xde, 0xad, 0xbe, 0xef};
  const Bytes der = encode_octet_string(payload);
  Parser parser(der);
  const Tlv tlv = parser.expect(kTagOctetString);
  EXPECT_EQ(Bytes(tlv.value.begin(), tlv.value.end()), payload);
}

TEST(DerTest, BitStringRoundTrip) {
  const Bytes payload{0x01, 0x02, 0x03};
  const Bytes der = encode_bit_string(payload);
  Parser parser(der);
  const BytesView decoded = decode_bit_string(parser.next());
  EXPECT_EQ(Bytes(decoded.begin(), decoded.end()), payload);
}

TEST(DerTest, NullEncoding) { EXPECT_EQ(encode_null(), (Bytes{0x05, 0x00})); }

// ---------- OIDs ----------

TEST(OidTest, ParseAndToString) {
  const Oid oid = Oid::parse("1.2.840.10045.4.3.2");
  EXPECT_EQ(oid.to_string(), "1.2.840.10045.4.3.2");
}

TEST(OidTest, ParseRejectsMalformed) {
  EXPECT_THROW(Oid::parse(""), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1..2"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1.a.2"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("3.1"), std::invalid_argument);   // first arc <= 2
  EXPECT_THROW(Oid::parse("1.40"), std::invalid_argument);  // second arc <= 39 for roots 0/1
}

TEST(OidTest, KnownEncoding) {
  // 1.2.840.113549 is the classic RSA arc with a known DER encoding.
  const Bytes der = encode_oid(Oid::parse("1.2.840.113549"));
  EXPECT_EQ(der, (Bytes{0x06, 0x06, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d}));
}

TEST(OidTest, EncodeDecodeRoundTripSweep) {
  for (const char* text : {"1.2.3", "2.5.29.17", "1.3.6.1.4.1.11129.2.4.2",
                           "2.5.4.3", "0.9.2342.19200300.100.1.25"}) {
    const Bytes der = encode_oid(Oid::parse(text));
    Parser parser(der);
    EXPECT_EQ(decode_oid(parser.next()).to_string(), text);
  }
}

// ---------- strings & time ----------

TEST(DerTest, StringTypesRoundTrip) {
  const Bytes utf8 = encode_utf8_string("Let's Encrypt");
  Parser p1(utf8);
  EXPECT_EQ(decode_string(p1.next()), "Let's Encrypt");
  const Bytes printable = encode_printable_string("US");
  Parser p2(printable);
  EXPECT_EQ(decode_string(p2.next()), "US");
  const Bytes ia5 = encode_ia5_string("www.example.org");
  Parser p3(ia5);
  EXPECT_EQ(decode_string(p3.next()), "www.example.org");
}

TEST(DerTest, UtcTimeRoundTrip) {
  const SimTime t = SimTime::parse("2018-04-18 10:30:00");
  const Bytes der = encode_utc_time(t);
  Parser parser(der);
  EXPECT_EQ(decode_time(parser.next()), t);
}

TEST(DerTest, UtcTimeCenturyWindow) {
  // 1999 encodes as "99...", 2001 as "01..."; both must decode correctly.
  for (const char* date : {"1999-12-31 23:59:59", "2001-01-01 00:00:00"}) {
    const SimTime t = SimTime::parse(date);
    const Bytes der = encode_utc_time(t);
    Parser parser(der);
    EXPECT_EQ(decode_time(parser.next()).datetime_string(), date);
  }
}

TEST(DerTest, UtcTimeRejectsOutOfRangeYear) {
  EXPECT_THROW(encode_utc_time(SimTime::parse("2051-01-01")), std::invalid_argument);
}

TEST(DerTest, GeneralizedTimeRoundTrip) {
  const SimTime t = SimTime::parse("2051-06-15 08:00:01");
  const Bytes der = encode_generalized_time(t);
  Parser parser(der);
  EXPECT_EQ(decode_time(parser.next()), t);
}

// ---------- composite ----------

TEST(DerTest, SequencePreservesOrder) {
  const Bytes der = encode_sequence({encode_integer(2), encode_integer(1)});
  Parser outer(der);
  Parser inner(outer.expect(kTagSequence).value);
  EXPECT_EQ(decode_integer(inner.next()), 2);
  EXPECT_EQ(decode_integer(inner.next()), 1);
  EXPECT_TRUE(inner.done());
}

TEST(DerTest, SetOfSortsElements) {
  // DER SET OF requires canonical (bytewise) element ordering.
  const Bytes der = encode_set_of({encode_integer(300), encode_integer(2)});
  Parser outer(der);
  Parser inner(outer.expect(kTagSet).value);
  EXPECT_EQ(decode_integer(inner.next()), 2);
  EXPECT_EQ(decode_integer(inner.next()), 300);
}

TEST(DerTest, ExplicitTagging) {
  const Bytes der = encode_explicit(3, encode_integer(7));
  Parser outer(der);
  const Tlv tlv = outer.expect(context_tag(3, true));
  Parser inner(tlv.value);
  EXPECT_EQ(decode_integer(inner.next()), 7);
}

// ---------- parser robustness ----------

TEST(DerParserTest, RejectsTruncatedValue) {
  Bytes der = encode_octet_string(Bytes(10, 0xaa));
  der.resize(der.size() - 1);
  Parser parser(der);
  EXPECT_THROW(parser.next(), std::invalid_argument);
}

TEST(DerParserTest, RejectsTruncatedLength) {
  const Bytes der{0x04, 0x82, 0x01};  // long form claiming 2 length bytes, 1 present
  Parser parser(der);
  EXPECT_THROW(parser.next(), std::invalid_argument);
}

TEST(DerParserTest, RejectsNonMinimalLength) {
  // Length 5 encoded in long form: invalid DER.
  const Bytes der{0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  Parser parser(der);
  EXPECT_THROW(parser.next(), std::invalid_argument);
}

TEST(DerParserTest, ExpectChecksTag) {
  const Bytes der = encode_integer(5);
  Parser parser(der);
  EXPECT_THROW(parser.expect(kTagOctetString), std::invalid_argument);
}

TEST(DerParserTest, ExhaustionThrows) {
  Parser parser(BytesView{});
  EXPECT_TRUE(parser.done());
  EXPECT_THROW(parser.next(), std::invalid_argument);
}

TEST(DerParserTest, PeekDoesNotConsume) {
  const Bytes der = encode_integer(5);
  Parser parser(der);
  EXPECT_EQ(parser.peek_tag(), kTagInteger);
  EXPECT_EQ(decode_integer(parser.next()), 5);
  EXPECT_EQ(parser.peek_tag(), 0);
}

TEST(DerParserTest, RawSpansWholeElement) {
  const Bytes der = encode_integer(300);
  Parser parser(der);
  const Tlv tlv = parser.next();
  EXPECT_EQ(Bytes(tlv.raw.begin(), tlv.raw.end()), der);
}

TEST(DerParserTest, LargePayloadRoundTrip) {
  const Bytes payload(100000, 0x5c);
  const Bytes der = encode_octet_string(payload);
  Parser parser(der);
  const Tlv tlv = parser.next();
  EXPECT_EQ(tlv.value.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), tlv.value.begin()));
}

}  // namespace
}  // namespace ctwatch::asn1
