#include <gtest/gtest.h>

#include <memory>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/dns/psl.hpp"
#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/dns/zone.hpp"

namespace ctwatch::dns {
namespace {

// ---------- names ----------

TEST(DnsNameTest, ParsesAndNormalizes) {
  const auto name = DnsName::parse("WWW.Example.COM");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->to_string(), "www.example.com");
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->first_label(), "www");
}

TEST(DnsNameTest, AcceptsTrailingDot) {
  const auto name = DnsName::parse("example.org.");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->to_string(), "example.org");
}

TEST(DnsNameTest, RejectsInvalidInputs) {
  EXPECT_FALSE(DnsName::parse(""));                      // empty
  EXPECT_FALSE(DnsName::parse("singlelabel"));           // one label
  EXPECT_FALSE(DnsName::parse("a..b.com"));              // empty label
  EXPECT_FALSE(DnsName::parse("-lead.example.com"));     // leading hyphen
  EXPECT_FALSE(DnsName::parse("trail-.example.com"));    // trailing hyphen
  EXPECT_FALSE(DnsName::parse("under_score.example.com"));  // underscore (default)
  EXPECT_FALSE(DnsName::parse("1.2.3.4"));               // numeric TLD (IP)
  EXPECT_FALSE(DnsName::parse("bad char.example.com"));  // space
  EXPECT_FALSE(DnsName::parse(std::string(64, 'a') + ".example.com"));  // label > 63
  EXPECT_FALSE(DnsName::parse(std::string(250, 'a') + ".example.com")); // name > 253
}

TEST(DnsNameTest, OptionsEnableWildcardAndUnderscore) {
  EXPECT_FALSE(DnsName::parse("*.example.com"));
  ParseOptions wildcard;
  wildcard.allow_wildcard = true;
  const auto w = DnsName::parse("*.example.com", wildcard);
  ASSERT_TRUE(w);
  EXPECT_EQ(w->first_label(), "*");
  // Wildcard only allowed leftmost.
  EXPECT_FALSE(DnsName::parse("foo.*.example.com", wildcard));

  ParseOptions underscore;
  underscore.allow_underscore = true;
  EXPECT_TRUE(DnsName::parse("_dmarc.example.com", underscore));
}

TEST(DnsNameTest, ParentAndSubdomainRelations) {
  const DnsName name = DnsName::parse_or_throw("a.b.example.co.uk");
  EXPECT_EQ(name.parent().to_string(), "b.example.co.uk");
  EXPECT_EQ(name.parent(2).to_string(), "example.co.uk");
  EXPECT_TRUE(name.is_subdomain_of(DnsName::parse_or_throw("example.co.uk")));
  EXPECT_TRUE(name.is_subdomain_of(name));
  EXPECT_FALSE(DnsName::parse_or_throw("example.co.uk").is_subdomain_of(name));
  EXPECT_FALSE(name.is_subdomain_of(DnsName::parse_or_throw("other.co.uk")));
  EXPECT_THROW((void)name.parent(6), std::out_of_range);
}

TEST(DnsNameTest, WithPrefixLabel) {
  const DnsName base = DnsName::parse_or_throw("example.org");
  EXPECT_EQ(base.with_prefix_label("www").to_string(), "www.example.org");
  EXPECT_THROW((void)base.with_prefix_label("bad label"), std::invalid_argument);
}

TEST(DnsNameTest, WithPrefixLabelAcceptsStringView) {
  const DnsName base = DnsName::parse_or_throw("example.org");
  const std::string_view prefix = "api";
  EXPECT_EQ(base.with_prefix_label(prefix).to_string(), "api.example.org");
  EXPECT_EQ(base.with_prefix_label("*").first_label(), "*");
}

// Regression: first_label() on the empty (root) name used to read
// labels_.front() of an empty vector — undefined behavior. It must return
// an empty view.
TEST(DnsNameTest, FirstLabelOnEmptyNameIsSafe) {
  const DnsName root;
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.first_label(), std::string_view{});
  EXPECT_TRUE(root.first_label().empty());
}

TEST(DnsNameTest, ParseIntoMatchesParse) {
  namepool::NamePool pool;
  const char* cases[] = {"WWW.Example.COM", "a.b.example.co.uk", "example.org.",
                         "xn--idn.example", "a-b.c-d.io"};
  for (const char* text : cases) {
    const auto parsed = DnsName::parse(text);
    const auto ref = DnsName::parse_into(pool, text);
    ASSERT_TRUE(parsed && ref) << text;
    EXPECT_EQ(pool.to_string(*ref), parsed->to_string());
    EXPECT_EQ(DnsName::materialize(pool, *ref), *parsed);
    EXPECT_EQ(parsed->intern_into(pool), *ref);  // canonical: same ref back
  }
  // Rejections agree too.
  const char* bad[] = {"", "nolabel", "a..b.com", "-x.example.com", "1.2.3.4"};
  for (const char* text : bad) {
    EXPECT_FALSE(DnsName::parse(text)) << text;
    EXPECT_FALSE(DnsName::parse_into(pool, text)) << text;
  }
}

TEST(DnsNameTest, ParseOrThrowThrows) {
  EXPECT_THROW(DnsName::parse_or_throw("no"), std::invalid_argument);
  EXPECT_NO_THROW(DnsName::parse_or_throw("ok.example"));
}

// ---------- PSL ----------

class PslTest : public ::testing::Test {
 protected:
  PublicSuffixList psl_ = PublicSuffixList::bundled();
};

TEST_F(PslTest, SimpleSuffixes) {
  EXPECT_EQ(psl_.public_suffix(DnsName::parse_or_throw("www.example.com")), "com");
  EXPECT_EQ(psl_.public_suffix(DnsName::parse_or_throw("www.example.co.uk")), "co.uk");
  EXPECT_EQ(psl_.public_suffix(DnsName::parse_or_throw("a.b.site.gov.uk")), "gov.uk");
}

TEST_F(PslTest, SplitComputesRegistrableAndSubdomain) {
  const auto split = psl_.split(DnsName::parse_or_throw("www.dev.example.co.uk"));
  ASSERT_TRUE(split);
  EXPECT_EQ(split->public_suffix, "co.uk");
  EXPECT_EQ(split->registrable_domain, "example.co.uk");
  ASSERT_EQ(split->subdomain_labels.size(), 2u);
  EXPECT_EQ(split->subdomain_labels[0], "www");
  EXPECT_EQ(split->subdomain_labels[1], "dev");
  EXPECT_EQ(split->subdomain(), "www.dev");
}

TEST_F(PslTest, NameThatIsItselfASuffixHasNoSplit) {
  EXPECT_FALSE(psl_.split(DnsName::parse_or_throw("co.uk")));
  EXPECT_FALSE(psl_.split(DnsName::parse_or_throw("gov.uk")));
}

TEST_F(PslTest, UnknownTldUsesPrevailingRule) {
  // "*" prevailing rule: one label of suffix.
  EXPECT_EQ(psl_.public_suffix(DnsName::parse_or_throw("foo.bar.unknowntld")), "unknowntld");
  const auto split = psl_.split(DnsName::parse_or_throw("foo.bar.unknowntld"));
  ASSERT_TRUE(split);
  EXPECT_EQ(split->registrable_domain, "bar.unknowntld");
}

TEST_F(PslTest, WildcardRule) {
  // "*.ck": every direct child of ck is a public suffix.
  EXPECT_EQ(psl_.public_suffix(DnsName::parse_or_throw("shop.foo.ck")), "foo.ck");
  const auto split = psl_.split(DnsName::parse_or_throw("www.shop.foo.ck"));
  ASSERT_TRUE(split);
  EXPECT_EQ(split->registrable_domain, "shop.foo.ck");
}

TEST_F(PslTest, ExceptionRule) {
  // "!www.ck" overrides the wildcard: www.ck is registrable.
  const auto split = psl_.split(DnsName::parse_or_throw("mail.www.ck"));
  ASSERT_TRUE(split);
  EXPECT_EQ(split->public_suffix, "ck");
  EXPECT_EQ(split->registrable_domain, "www.ck");
}

TEST_F(PslTest, StringOverloadFiltersInvalidNames) {
  EXPECT_FALSE(psl_.split("not_valid..name"));
  EXPECT_TRUE(psl_.split("www.example.de"));
}

// Regression: the pooled-split rule cache was keyed by the NamePool's
// address. A fresh pool reusing a destroyed pool's heap address hit the
// stale cache, whose compiled label ids mean nothing in the new pool, and
// every multi-label suffix silently degraded to its last label
// ("co.uk" -> "uk"). The cache is keyed by NamePool::generation() now;
// the create/destroy loop makes address reuse overwhelmingly likely.
TEST_F(PslTest, PooledSplitSurvivesPoolReincarnation) {
  for (int round = 0; round < 16; ++round) {
    auto pool = std::make_unique<namepool::NamePool>();
    // A different number of padding labels per round shifts every label id,
    // so stale cached rule ids can never line up by coincidence.
    for (int i = 0; i <= round; ++i) pool->labels().intern("pad" + std::to_string(i));
    const auto ref = DnsName::parse_into(*pool, "www.example.co.uk");
    ASSERT_TRUE(ref);
    const auto split = psl_.split(*pool, *ref);
    ASSERT_TRUE(split) << "round " << round;
    EXPECT_EQ(pool->to_string(split->public_suffix), "co.uk") << "round " << round;
    EXPECT_EQ(pool->to_string(split->registrable_domain), "example.co.uk");
    EXPECT_EQ(split->subdomain_label_count, 1u);
  }
}

TEST(PslRuleTest, AddRuleRejectsMalformed) {
  PublicSuffixList psl;
  EXPECT_THROW(psl.add_rule(""), std::invalid_argument);
  EXPECT_THROW(psl.add_rule("!"), std::invalid_argument);
  EXPECT_THROW(psl.add_rule("bad label"), std::invalid_argument);
}

TEST(PslRuleTest, RulesTextSkipsCommentsAndBlanks) {
  PublicSuffixList psl;
  psl.add_rules_text("// comment\n\ncom\n  \nco.uk\r\n");
  EXPECT_EQ(psl.rule_count(), 2u);
}

// ---------- zones ----------

class ZoneTest : public ::testing::Test {
 protected:
  ZoneTest() : zone_(DnsName::parse_or_throw("example.org")) {}
  Zone zone_;
};

TEST_F(ZoneTest, ExactMatchLookup) {
  zone_.add(ResourceRecord{DnsName::parse_or_throw("www.example.org"), RrType::A, 300,
                           net::IPv4(192, 0, 2, 1)});
  const auto answers = zone_.lookup(DnsName::parse_or_throw("www.example.org"), RrType::A);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].a(), net::IPv4(192, 0, 2, 1));
  EXPECT_TRUE(zone_.lookup(DnsName::parse_or_throw("other.example.org"), RrType::A).empty());
}

TEST_F(ZoneTest, TypeFiltering) {
  const DnsName name = DnsName::parse_or_throw("www.example.org");
  zone_.add(ResourceRecord{name, RrType::A, 300, net::IPv4(192, 0, 2, 1)});
  zone_.add(ResourceRecord{name, RrType::AAAA, 300, *net::IPv6::parse("2001:db8::1")});
  EXPECT_EQ(zone_.lookup(name, RrType::A).size(), 1u);
  EXPECT_EQ(zone_.lookup(name, RrType::AAAA).size(), 1u);
  EXPECT_TRUE(zone_.lookup(name, RrType::MX).empty());
}

TEST_F(ZoneTest, CnamePrecedesOtherTypes) {
  const DnsName name = DnsName::parse_or_throw("alias.example.org");
  zone_.add(ResourceRecord{name, RrType::CNAME, 300, DnsName::parse_or_throw("real.example.org")});
  const auto answers = zone_.lookup(name, RrType::A);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].type, RrType::CNAME);
}

TEST_F(ZoneTest, WildcardSynthesis) {
  zone_.add(ResourceRecord{DnsName::parse_or_throw("*.example.org", {true, false}), RrType::A,
                           300, net::IPv4(192, 0, 2, 9)});
  const auto answers = zone_.lookup(DnsName::parse_or_throw("anything.example.org"), RrType::A);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].name.to_string(), "anything.example.org");  // owner synthesized
}

TEST_F(ZoneTest, ExactBeatsWildcard) {
  zone_.add(ResourceRecord{DnsName::parse_or_throw("*.example.org", {true, false}), RrType::A,
                           300, net::IPv4(192, 0, 2, 9)});
  zone_.add(ResourceRecord{DnsName::parse_or_throw("www.example.org"), RrType::A, 300,
                           net::IPv4(192, 0, 2, 1)});
  const auto answers = zone_.lookup(DnsName::parse_or_throw("www.example.org"), RrType::A);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].a(), net::IPv4(192, 0, 2, 1));
}

TEST_F(ZoneTest, DefaultACatchAll) {
  zone_.set_default_a(net::IPv4(203, 0, 113, 5));
  const auto answers =
      zone_.lookup(DnsName::parse_or_throw("zz9placeholder.example.org"), RrType::A);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].a(), net::IPv4(203, 0, 113, 5));
  // Catch-all only answers A queries.
  EXPECT_TRUE(zone_.lookup(DnsName::parse_or_throw("zz9.example.org"), RrType::AAAA).empty());
}

TEST_F(ZoneTest, RejectsOutOfZoneRecords) {
  EXPECT_THROW(zone_.add(ResourceRecord{DnsName::parse_or_throw("www.other.org"), RrType::A, 300,
                                        net::IPv4(1, 2, 3, 4)}),
               std::invalid_argument);
}

// ---------- resolver ----------

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() {
    Zone& zone = server_.add_zone(DnsName::parse_or_throw("example.org"));
    zone.add(ResourceRecord{DnsName::parse_or_throw("www.example.org"), RrType::A, 300,
                            net::IPv4(192, 0, 2, 1)});
    zone.add(ResourceRecord{DnsName::parse_or_throw("mail.example.org"), RrType::MX, 300,
                            DnsName::parse_or_throw("mx.example.org")});
    // CNAME chain of depth 3.
    zone.add(ResourceRecord{DnsName::parse_or_throw("a.example.org"), RrType::CNAME, 300,
                            DnsName::parse_or_throw("b.example.org")});
    zone.add(ResourceRecord{DnsName::parse_or_throw("b.example.org"), RrType::CNAME, 300,
                            DnsName::parse_or_throw("c.example.org")});
    zone.add(ResourceRecord{DnsName::parse_or_throw("c.example.org"), RrType::A, 300,
                            net::IPv4(192, 0, 2, 3)});
    // CNAME loop.
    zone.add(ResourceRecord{DnsName::parse_or_throw("loop1.example.org"), RrType::CNAME, 300,
                            DnsName::parse_or_throw("loop2.example.org")});
    zone.add(ResourceRecord{DnsName::parse_or_throw("loop2.example.org"), RrType::CNAME, 300,
                            DnsName::parse_or_throw("loop1.example.org")});
    universe_.add_server(server_);
    identity_.address = net::IPv4(8, 8, 8, 8);
    identity_.asn = 15169;
    identity_.label = "test-resolver";
  }

  AuthoritativeServer server_;
  DnsUniverse universe_;
  RecursiveResolver::Identity identity_;
  SimTime now_ = SimTime::parse("2018-04-27");
};

TEST_F(ResolverTest, ResolvesARecord) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result = resolver.resolve(DnsName::parse_or_throw("www.example.org"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::ok);
  EXPECT_EQ(result.first_a(), net::IPv4(192, 0, 2, 1));
}

TEST_F(ResolverTest, NxdomainForMissingName) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result =
      resolver.resolve(DnsName::parse_or_throw("missing.example.org"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::nxdomain);
  EXPECT_FALSE(result.first_a());
}

TEST_F(ResolverTest, NxdomainForForeignZone) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result =
      resolver.resolve(DnsName::parse_or_throw("www.unknown-zone.net"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::nxdomain);
}

TEST_F(ResolverTest, NoDataWhenTypeMissing) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result =
      resolver.resolve(DnsName::parse_or_throw("mail.example.org"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::no_data);
}

TEST_F(ResolverTest, FollowsCnameChain) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result = resolver.resolve(DnsName::parse_or_throw("a.example.org"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::ok);
  EXPECT_EQ(result.cname_hops, 2);
  EXPECT_EQ(result.first_a(), net::IPv4(192, 0, 2, 3));
}

TEST_F(ResolverTest, CnameLoopHitsHopLimit) {
  const RecursiveResolver resolver(universe_, identity_);
  const auto result =
      resolver.resolve(DnsName::parse_or_throw("loop1.example.org"), RrType::A, now_);
  EXPECT_EQ(result.status, ResolveStatus::chain_too_long);
}

TEST_F(ResolverTest, HopBudgetIsConfigurable) {
  const RecursiveResolver resolver(universe_, identity_);
  // The a->b->c chain needs 2 hops; a budget of 1 is insufficient.
  const auto tight = resolver.resolve(DnsName::parse_or_throw("a.example.org"), RrType::A, now_,
                                      std::nullopt, 1);
  EXPECT_EQ(tight.status, ResolveStatus::chain_too_long);
}

TEST_F(ResolverTest, QueriesAreLoggedWithContext) {
  const RecursiveResolver resolver(universe_, identity_);
  (void)resolver.resolve(DnsName::parse_or_throw("www.example.org"), RrType::A, now_);
  ASSERT_FALSE(server_.log().empty());
  const QueryLogEntry& entry = server_.log().back();
  EXPECT_EQ(entry.question.qname.to_string(), "www.example.org");
  EXPECT_EQ(entry.context.resolver_asn, 15169u);
  EXPECT_EQ(entry.context.resolver_label, "test-resolver");
  EXPECT_TRUE(entry.answered);
  EXPECT_FALSE(entry.context.client_subnet);  // no ECS without sends_ecs
}

TEST_F(ResolverTest, EcsAttachedWhenEnabled) {
  RecursiveResolver::Identity ecs = identity_;
  ecs.sends_ecs = true;
  const RecursiveResolver resolver(universe_, ecs);
  (void)resolver.resolve(DnsName::parse_or_throw("www.example.org"), RrType::A, now_,
                         net::IPv4(88, 198, 7, 33));
  const QueryLogEntry& entry = server_.log().back();
  ASSERT_TRUE(entry.context.client_subnet);
  EXPECT_EQ(entry.context.client_subnet->to_string(), "88.198.7.0/24");
}

TEST_F(ResolverTest, LoggingCanBeDisabled) {
  server_.set_logging(false);
  const RecursiveResolver resolver(universe_, identity_);
  (void)resolver.resolve(DnsName::parse_or_throw("www.example.org"), RrType::A, now_);
  EXPECT_TRUE(server_.log().empty());
}

TEST(AuthoritativeServerTest, LongestOriginWins) {
  AuthoritativeServer server;
  server.add_zone(DnsName::parse_or_throw("example.org"));
  Zone& sub = server.add_zone(DnsName::parse_or_throw("sub.example.org"));
  sub.add(ResourceRecord{DnsName::parse_or_throw("www.sub.example.org"), RrType::A, 300,
                         net::IPv4(10, 0, 0, 1)});
  const Zone* found = server.find_zone(DnsName::parse_or_throw("www.sub.example.org"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->origin().to_string(), "sub.example.org");
}

}  // namespace
}  // namespace ctwatch::dns
