// The out-of-core read path: TileDirectory last-wins lookups, the
// sharded ref-counted TileCache (hit/miss/eviction accounting, pinned
// pages surviving eviction, stale-partial-page refresh, fail-closed
// corruption), SegmentReader sparse-indexed windows, LogStore recovery
// residency bounds (O(WAL tail), both verify modes), LogService paged
// read mode parity against the resident path (proofs straddling the
// paged/resident boundary byte-identically), and concurrent readers
// hammering a deliberately tiny cache while the writer checkpoints —
// the test TSAN gates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/tiled.hpp"
#include "ctwatch/logsvc/service.hpp"
#include "ctwatch/storage/codec.hpp"
#include "ctwatch/storage/file.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/storage/segment_reader.hpp"
#include "ctwatch/storage/tile_cache.hpp"
#include "ctwatch/storage/tiles.hpp"
#include "ctwatch/storage/wal.hpp"

namespace ctwatch::storage {
namespace {

using namespace std::chrono_literals;

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    std::string tmpl = "ctwatch_" + tag + ".XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

crypto::Digest digest_of(const std::string& s) { return crypto::Sha256::hash(to_bytes(s)); }

DurableEntry test_entry(std::uint64_t index) {
  DurableEntry entry;
  entry.index = index;
  entry.timestamp_ms = 1000 + index;
  entry.leaf_hash = digest_of("leaf-" + std::to_string(index));
  entry.fingerprint = digest_of("fp-" + std::to_string(index));
  entry.issuer_cn = "CA " + std::to_string(index % 3);
  entry.has_body = false;
  return entry;
}

ct::SignedTreeHead test_sth(const ct::RootAccumulator& acc, std::uint64_t ts) {
  ct::SignedTreeHead sth;
  sth.tree_size = acc.size();
  sth.timestamp_ms = ts;
  sth.root_hash = acc.root();
  sth.signature.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  sth.signature.data = to_bytes("sth-sig-" + std::to_string(acc.size()));
  return sth;
}

/// Commits one sealed batch of `count` entries extending the store.
void commit_batch_of(LogStore& store, std::uint64_t count) {
  BatchCommit batch;
  ct::RootAccumulator probe = store.accumulator();
  for (std::uint64_t i = 0; i < count; ++i) {
    DurableEntry entry = test_entry(store.tree_size() + i);
    probe.add(entry.leaf_hash);
    batch.entries.push_back(std::move(entry));
  }
  batch.sth = test_sth(probe, batch.entries.back().timestamp_ms);
  batch.seal_seq = store.seal_seq() + 1;
  ASSERT_TRUE(store.commit_batch(batch).ok());
}

/// A tiles.seg built by hand: `pages` are (level, tile, first_leaf_ordinal,
/// count) tuples encoded in order; returns the shared read handle.
struct TileFixture {
  std::unique_ptr<Env> env;
  std::shared_ptr<TileDirectory> directory = std::make_shared<TileDirectory>();
  std::shared_ptr<RandomReadFile> read;
  std::vector<crypto::Digest> leaves;

  explicit TileFixture(const std::string& dir, std::uint64_t leaf_count) {
    Env::Options options;
    options.dir = dir;
    env = Env::open(options);
    EXPECT_NE(env, nullptr);
    for (std::uint64_t i = 0; i < leaf_count; ++i) {
      leaves.push_back(digest_of("tile-leaf-" + std::to_string(i)));
    }
  }

  /// Appends one page, records it in the directory, returns its offset.
  std::uint64_t append_page(File& file, unsigned level, std::uint64_t tile,
                            const crypto::Digest* entries, std::uint32_t count,
                            bool record = true) {
    const std::uint64_t offset = file.size();
    Bytes page;
    encode_tile_page(page, tile, entries, count, level);
    EXPECT_TRUE(file.append(page).ok());
    if (record) directory->record(level, tile, offset, count);
    return offset;
  }
};

// ---------------------------------------------------------------------------
// TileDirectory + TileCache
// ---------------------------------------------------------------------------

TEST(StorageTileCacheTest, DirectoryLastWinsAndWatermark) {
  TileDirectory directory;
  EXPECT_FALSE(directory.lookup(0, 0).has_value());
  directory.record(0, 0, 0, 100);
  directory.record(0, 0, kTilePageBytes, 256);  // supersedes
  directory.record(1, 0, 2 * kTilePageBytes, 256);
  const auto loc = directory.lookup(0, 0);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->offset, kTilePageBytes);
  EXPECT_EQ(loc->count, 256u);
  EXPECT_TRUE(directory.lookup(1, 0).has_value());
  EXPECT_FALSE(directory.lookup(0, 1).has_value());
  EXPECT_FALSE(directory.lookup(2, 0).has_value());
  EXPECT_EQ(directory.levels(), 2u);
  EXPECT_EQ(directory.pages_at_level(0), 1u);

  EXPECT_EQ(directory.paged_leaves(), 0u);
  directory.set_paged_leaves(256);
  EXPECT_EQ(directory.paged_leaves(), 256u);
}

TEST(StorageTileCacheTest, HitMissEvictionAndPinnedPagesSurvive) {
  TempDir dir("cache");
  TileFixture fx(dir.path, 3 * kTileLeaves);
  auto tiles = fx.env->open_append("tiles.seg", 0);
  ASSERT_NE(tiles, nullptr);
  for (std::uint64_t t = 0; t < 3; ++t) {
    fx.append_page(*tiles, 0, t, fx.leaves.data() + t * kTileLeaves, kTileLeaves);
  }
  ASSERT_TRUE(tiles->sync().ok());  // preads only see synced bytes
  fx.read = fx.env->open_read("tiles.seg");
  ASSERT_NE(fx.read, nullptr);

  TileCacheOptions options;
  options.byte_budget = 3 * kTilePageBytes;  // ~2 pages once struct overhead counts
  options.shards = 1;
  TileCache cache(fx.read, fx.directory, options);

  TileCache::PagePtr p0 = cache.get(0, 0, kTileLeaves);
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(p0->leaves[5], fx.leaves[5]);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.pinned(), 1);

  ASSERT_NE(cache.get(0, 1, kTileLeaves), nullptr);
  ASSERT_NE(cache.get(0, 0, kTileLeaves), nullptr);  // hit, moves tile 0 to front
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Tile 2 overflows the budget: the LRU victim is tile 1.
  ASSERT_NE(cache.get(0, 2, kTileLeaves), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  const std::uint64_t misses_before = cache.misses();
  ASSERT_NE(cache.get(0, 1, kTileLeaves), nullptr);  // reload
  EXPECT_EQ(cache.misses(), misses_before + 1);

  // The pinned page survived every eviction above: its bytes are intact
  // no matter what the cache did, and releasing it drops the pin count.
  EXPECT_EQ(p0->leaves[255], fx.leaves[255]);
  p0.reset();
  EXPECT_EQ(cache.pinned(), 0);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(StorageTileCacheTest, StalePartialPageRefreshesThroughDirectory) {
  TempDir dir("stale");
  TileFixture fx(dir.path, kTileLeaves);
  auto tiles = fx.env->open_append("tiles.seg", 0);
  ASSERT_NE(tiles, nullptr);
  fx.append_page(*tiles, 0, 0, fx.leaves.data(), 100);
  ASSERT_TRUE(tiles->sync().ok());
  fx.read = fx.env->open_read("tiles.seg");
  TileCache cache(fx.read, fx.directory, TileCacheOptions{});

  ASSERT_NE(cache.get(0, 0, 100), nullptr);
  EXPECT_EQ(cache.get(0, 0, 101), nullptr);  // the directory has no such page

  // The writer supersedes the partial page (checkpoint grew the tile) and
  // publishes it: the cached 100-entry page is now stale for deeper asks.
  fx.append_page(*tiles, 0, 0, fx.leaves.data(), 200);
  ASSERT_TRUE(tiles->sync().ok());
  TileCache::PagePtr fuller = cache.get(0, 0, 150);
  ASSERT_NE(fuller, nullptr);
  EXPECT_EQ(fuller->count, 200u);
  EXPECT_EQ(fuller->leaves[199], fx.leaves[199]);
  // And a shallow ask now serves the refreshed page from cache.
  TileCache::PagePtr shallow = cache.get(0, 0, 50);
  ASSERT_NE(shallow, nullptr);
  EXPECT_EQ(shallow->count, 200u);
}

TEST(StorageTileCacheTest, CorruptOrMismatchedPagesFailClosed) {
  TempDir dir("corruptpage");
  TileFixture fx(dir.path, kTileLeaves);
  auto tiles = fx.env->open_append("tiles.seg", 0);
  ASSERT_NE(tiles, nullptr);
  const std::uint64_t good = fx.append_page(*tiles, 0, 0, fx.leaves.data(), kTileLeaves);
  // A well-framed page is at `good`; garbage follows it.
  const std::uint64_t garbage = tiles->size();
  ASSERT_TRUE(tiles->append(Bytes(kTilePageBytes, 0xAB)).ok());
  ASSERT_TRUE(tiles->sync().ok());
  fx.read = fx.env->open_read("tiles.seg");
  TileCache cache(fx.read, fx.directory, TileCacheOptions{});

  // Directory points a tile at garbage bytes: CRC fails, the get fails
  // closed instead of serving junk hashes.
  fx.directory->record(0, 1, garbage, 10);
  EXPECT_EQ(cache.get(0, 1, 1), nullptr);
  // Directory points tile 9 at tile 0's (valid) page: the page identity
  // check refuses — a wrong offset is corruption, not staleness.
  fx.directory->record(0, 9, good, 1);
  EXPECT_EQ(cache.get(0, 9, 1), nullptr);
  // The honestly-recorded page still serves.
  EXPECT_NE(cache.get(0, 0, kTileLeaves), nullptr);
}

// ---------------------------------------------------------------------------
// SegmentReader
// ---------------------------------------------------------------------------

TEST(StorageSegmentReaderTest, ReadsWindowsFromSparseMarks) {
  TempDir dir("segread");
  Env::Options eo;
  eo.dir = dir.path;
  auto env = Env::open(eo);
  auto seg = env->open_append("entries.seg", 0);
  ASSERT_NE(seg, nullptr);

  constexpr std::uint64_t kCount = 200;
  std::vector<std::uint64_t> offsets;
  Bytes image;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    offsets.push_back(image.size());
    wal_frame(image, RecordType::entry, encode_entry(test_entry(i)));
  }
  ASSERT_TRUE(seg->append(image).ok());
  ASSERT_TRUE(seg->sync().ok());

  SegmentReader reader(env->open_read("entries.seg"), 8);
  for (std::uint64_t i = 0; i < kCount; i += 8) reader.add_mark(i, offsets[i]);
  reader.set_coverage(kCount, image.size());
  EXPECT_EQ(reader.entries(), kCount);

  std::vector<DurableEntry> out;
  ASSERT_EQ(reader.read(0, 10, out), IoError::none);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[9].index, 9u);
  EXPECT_EQ(out[9].leaf_hash, test_entry(9).leaf_hash);

  // A window between marks: seek to mark 56, skip to 61.
  out.clear();
  ASSERT_EQ(reader.read(61, 5, out), IoError::none);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].index, 61 + i);

  out.clear();
  ASSERT_EQ(reader.read(kCount - 3, 3, out), IoError::none);
  EXPECT_EQ(out.size(), 3u);
  // Beyond coverage is the caller's bug, surfaced hard.
  EXPECT_EQ(reader.read(kCount - 3, 4, out), IoError::corrupt);
  EXPECT_EQ(reader.read(kCount, 1, out), IoError::corrupt);
  // Zero-count is a no-op, not an error.
  EXPECT_EQ(reader.read(kCount, 0, out), IoError::none);
}

TEST(StorageSegmentReaderTest, CorruptFrameSurfacesAsCorrupt) {
  TempDir dir("segcorrupt");
  Env::Options eo;
  eo.dir = dir.path;
  auto env = Env::open(eo);
  auto seg = env->open_append("entries.seg", 0);
  ASSERT_NE(seg, nullptr);
  Bytes image;
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = 0; i < 20; ++i) {
    offsets.push_back(image.size());
    wal_frame(image, RecordType::entry, encode_entry(test_entry(i)));
  }
  image[offsets[10] + 12] ^= 0x01;  // flip a byte inside frame 10's payload
  ASSERT_TRUE(seg->append(image).ok());
  ASSERT_TRUE(seg->sync().ok());

  SegmentReader reader(env->open_read("entries.seg"), 4);
  for (std::uint64_t i = 0; i < 20; i += 4) reader.add_mark(i, offsets[i]);
  reader.set_coverage(20, image.size());

  std::vector<DurableEntry> out;
  ASSERT_EQ(reader.read(0, 10, out), IoError::none);  // stops before the damage
  out.clear();
  EXPECT_EQ(reader.read(10, 1, out), IoError::corrupt);
  out.clear();
  // A scan that must pass THROUGH the corrupt frame also refuses, even
  // when the requested records are intact further on.
  EXPECT_EQ(reader.read(9, 3, out), IoError::corrupt);
  out.clear();
  // Windows entirely behind a later mark never touch the damage.
  EXPECT_EQ(reader.read(12, 4, out), IoError::none);
  EXPECT_EQ(out.size(), 4u);
}

// ---------------------------------------------------------------------------
// LogStore: out-of-core recovery + paged reads
// ---------------------------------------------------------------------------

TEST(StoragePagedStoreTest, RecoveryKeepsOnlyTheWalTailResident) {
  TempDir dir("tailbound");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;
  std::vector<crypto::Digest> leaves;
  for (std::uint64_t i = 0; i < 607; ++i) leaves.push_back(test_entry(i).leaf_hash);
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    for (int b = 0; b < 12; ++b) commit_batch_of(*open.store, 50);  // 600 leaves
    ASSERT_TRUE(open.store->checkpoint().ok());
    commit_batch_of(*open.store, 7);  // the WAL tail
    open.store->env().crash_now();
  }

  for (const auto verify : {LogStoreOptions::Verify::full, LogStoreOptions::Verify::structural}) {
    SCOPED_TRACE(verify == LogStoreOptions::Verify::full ? "full" : "structural");
    LogStoreOptions reopen = options;
    reopen.recovery_verify = verify;
    LogStore::Open recovered = LogStore::open(reopen);
    ASSERT_NE(recovered.store, nullptr) << recovered.detail;
    LogStore& store = *recovered.store;
    EXPECT_EQ(store.tree_size(), 607u);
    EXPECT_EQ(store.recovery().checkpoint_tree_size, 600u);
    EXPECT_EQ(store.paged_leaves(), 600u);
    EXPECT_EQ(store.paged_entries(), 600u);
    ASSERT_EQ(store.wal_tail().size(), 7u);
    EXPECT_EQ(store.wal_tail()[0].index, 600u);

    // THE out-of-core invariant: residency is the checkpoint's partial
    // tile plus the WAL tail — never the 600-leaf checkpointed prefix.
    EXPECT_EQ(store.tail_base(), 512u);  // 600 floored to the tile grid
    EXPECT_EQ(store.resident_leaves(), 95u);  // 607 - 512
    EXPECT_LT(store.resident_leaves(), store.recovery().checkpoint_tree_size);
    EXPECT_EQ(store.tail_leaf(606), leaves[606]);
    EXPECT_EQ(store.tail_leaf(512), leaves[512]);

    // stream_paged_leaves walks the durable prefix in page chunks.
    std::vector<crypto::Digest> streamed;
    ASSERT_EQ(store.stream_paged_leaves(
                  0, 600,
                  [&](std::uint64_t first, const crypto::Digest* hashes, std::uint64_t n) {
                    EXPECT_EQ(first, streamed.size());
                    streamed.insert(streamed.end(), hashes, hashes + n);
                    return true;
                  }),
              IoError::none);
    ASSERT_EQ(streamed.size(), 600u);
    for (std::uint64_t i = 0; i < 600; ++i) EXPECT_EQ(streamed[i], leaves[i]);
    // Early stop is a success, not an error.
    std::uint64_t chunks = 0;
    ASSERT_EQ(store.stream_paged_leaves(0, 600,
                                        [&](std::uint64_t, const crypto::Digest*, std::uint64_t) {
                                          return ++chunks < 2;
                                        }),
              IoError::none);
    EXPECT_EQ(chunks, 2u);

    // Tiled proofs through the store's own leaf source are byte-identical
    // to the resident recursion over the same leaves.
    const auto leaf_fn = [&](std::uint64_t i) -> const crypto::Digest& {
      return leaves[static_cast<std::size_t>(i)];
    };
    for (const std::uint64_t index : {0ull, 255ull, 511ull, 512ull, 599ull, 606ull}) {
      PagedLeafSource source = store.leaf_source();
      EXPECT_EQ(ct::tiled_inclusion_path(source, index, 607),
                ct::merkle_inclusion_path(leaf_fn, index, 607))
          << "index=" << index;
    }
    {
      PagedLeafSource source = store.leaf_source();
      EXPECT_EQ(ct::tiled_root(source, 607), store.accumulator().root());
    }

    // Crash instead of closing: no checkpoint runs, the next verify mode
    // (and the writable reopen below) sees the identical disk image.
    store.env().crash_now();
  }

  // The store keeps working after out-of-core recovery: the tile cascade
  // cursor was rebuilt, so further commits and checkpoints are sound.
  LogStore::Open writable = LogStore::open(options);
  ASSERT_NE(writable.store, nullptr) << writable.detail;
  commit_batch_of(*writable.store, 1);
  ASSERT_TRUE(writable.store->checkpoint().ok());
  EXPECT_EQ(writable.store->paged_leaves(), 608u);
  EXPECT_EQ(writable.store->tail_base(), 512u);
  EXPECT_EQ(writable.store->resident_leaves(), 96u);
  ASSERT_TRUE(writable.store->close().ok());
}

// ---------------------------------------------------------------------------
// LogService paged reads
// ---------------------------------------------------------------------------

logsvc::Config service_config(const std::string& name, LogStore* store) {
  logsvc::Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 200us;
  config.store_bodies = false;
  config.storage = store;
  return config;
}

ct::SignedEntry entry_of(const std::string& tag, std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes(tag + "-" + std::to_string(n));
  return entry;
}

logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, const std::string& tag,
                                  std::uint64_t n) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      entry_of(tag, n), digest_of(tag + "-fp-" + std::to_string(n)), "Paged CA",
      SimTime::parse("2018-04-01"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) return logsvc::SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

TEST(StoragePagedServiceTest, PagedReadsMatchResidentPathAcrossTheBoundary) {
  TempDir dir("pagedsvc");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;  // one checkpoint, at stop()
  std::vector<crypto::Digest> leaves;
  constexpr std::uint64_t kCheckpointed = 600;
  constexpr std::uint64_t kLive = 50;
  {
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(service_config("Paged Log", open.store.get()));
    for (std::uint64_t i = 0; i < kCheckpointed; ++i) {
      const logsvc::SubmitOutcome outcome = submit_wait(service, "gen1", i);
      ASSERT_EQ(outcome.status, logsvc::SubmitStatus::ok);
      ASSERT_EQ(outcome.index, i);
      leaves.push_back(service.leaf_hash_at(i));
    }
    service.stop();  // checkpoints: all 600 become paged
    ASSERT_TRUE(open.store->close().ok());
  }

  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  EXPECT_EQ(open.store->paged_entries(), kCheckpointed);
  EXPECT_TRUE(open.store->wal_tail().empty());

  logsvc::Config config = service_config("Paged Log", open.store.get());
  config.paged_reads = true;
  logsvc::LogService service(config);
  EXPECT_EQ(service.resident_base(), kCheckpointed);
  EXPECT_EQ(service.tree_size(), kCheckpointed);

  // Live submissions past the boundary: proofs now straddle paged pages
  // and the resident tail.
  for (std::uint64_t i = 0; i < kLive; ++i) {
    const logsvc::SubmitOutcome outcome = submit_wait(service, "gen2", i);
    ASSERT_EQ(outcome.status, logsvc::SubmitStatus::ok);
    ASSERT_EQ(outcome.index, kCheckpointed + i);
    leaves.push_back(service.leaf_hash_at(kCheckpointed + i));
  }
  const std::uint64_t size = kCheckpointed + kLive;
  ASSERT_EQ(service.tree_size(), size);

  // Ground truth: the resident recursion over the recorded leaf hashes.
  const auto leaf_fn = [&](std::uint64_t i) -> const crypto::Digest& {
    return leaves[static_cast<std::size_t>(i)];
  };
  const ct::SignedTreeHead sth = service.get_sth();
  EXPECT_EQ(sth.tree_size, size);
  EXPECT_EQ(sth.root_hash, ct::merkle_root_of(leaf_fn, size));

  for (const std::uint64_t index :
       {std::uint64_t{0}, std::uint64_t{300}, std::uint64_t{511}, std::uint64_t{512},
        kCheckpointed - 1, kCheckpointed, size - 1}) {
    const std::vector<crypto::Digest> proof = service.inclusion_proof(index, size);
    EXPECT_EQ(proof, ct::merkle_inclusion_path(leaf_fn, index, size)) << "index=" << index;
    EXPECT_TRUE(ct::verify_inclusion(leaves[static_cast<std::size_t>(index)], index, size, proof,
                                     sth.root_hash));
  }
  for (const std::uint64_t old_size :
       {std::uint64_t{1}, std::uint64_t{123}, std::uint64_t{512}, kCheckpointed, size}) {
    EXPECT_EQ(service.consistency_proof(old_size, size),
              ct::merkle_consistency_path(leaf_fn, old_size, size))
        << "old=" << old_size;
  }
  // Stale-size proofs (old snapshots) keep working below the boundary.
  EXPECT_EQ(service.inclusion_proof(42, 500), ct::merkle_inclusion_path(leaf_fn, 42, 500));

  // leaf_hash_at serves both sides of the boundary.
  EXPECT_EQ(service.leaf_hash_at(0), leaves[0]);
  EXPECT_EQ(service.leaf_hash_at(kCheckpointed - 1), leaves[kCheckpointed - 1]);
  EXPECT_EQ(service.leaf_hash_at(size - 1), leaves[size - 1]);
  EXPECT_THROW((void)service.leaf_hash_at(size), std::out_of_range);

  // get-entries: paged-only, straddling, resident-only, clamped.
  std::vector<logsvc::EntryRecord> records = service.get_entries(0, 5);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[4].index, 4u);
  records = service.get_entries(kCheckpointed - 10, 20);
  ASSERT_EQ(records.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(records[i].index, kCheckpointed - 10 + i);
  }
  EXPECT_EQ(records[9].fingerprint, digest_of("gen1-fp-" + std::to_string(kCheckpointed - 1)));
  EXPECT_EQ(records[10].fingerprint, digest_of("gen2-fp-0"));
  records = service.get_entries(size - 3, 100);
  EXPECT_EQ(records.size(), 3u);  // clamped at the published size
  EXPECT_TRUE(service.get_entries(size, 10).empty());

  // get-proof-by-hash: the resident map answers tail hashes immediately;
  // the first paged-hash lookup pays the lazy streaming rebuild.
  EXPECT_EQ(service.leaf_index_of(leaves[kCheckpointed + 3]), kCheckpointed + 3);
  EXPECT_EQ(service.leaf_index_of(leaves[42]), 42u);
  EXPECT_EQ(service.leaf_index_of(leaves[599]), 599u);
  EXPECT_EQ(service.leaf_index_of(digest_of("never-integrated")), std::nullopt);

  service.stop();
}

TEST(StoragePagedServiceTest, ConcurrentReadersSurviveEvictionChurn) {
  // TSAN target: readers resolve tiled proofs through a cache whose
  // budget holds ~one page (every get is an eviction fight) while the
  // writer keeps committing and checkpointing — directory records, index
  // marks, and the paged watermark all advance under the readers.
  TempDir dir("churn");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = 0;
  options.tile_cache_bytes = 2 * kTilePageBytes;
  options.tile_cache_shards = 1;
  LogStore::Open open = LogStore::open(options);
  ASSERT_NE(open.store, nullptr) << open.detail;
  LogStore& store = *open.store;

  constexpr std::uint64_t kBase = 1024;  // 4 full tiles
  for (int b = 0; b < 16; ++b) commit_batch_of(store, kBase / 16);
  ASSERT_TRUE(store.checkpoint().ok());
  ASSERT_EQ(store.paged_leaves(), kBase);
  std::vector<crypto::Digest> leaves;
  for (std::uint64_t i = 0; i < kBase; ++i) leaves.push_back(test_entry(i).leaf_hash);
  ct::RootAccumulator base_acc;
  for (const crypto::Digest& leaf : leaves) base_acc.add(leaf);
  const crypto::Digest base_root = base_acc.root();

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(0xCAFE + t);
      for (int iter = 0; iter < 150 && !failed.load(); ++iter) {
        const std::uint64_t index = rng() % kBase;
        // Proofs pinned at the pre-churn size touch only durable pages:
        // the tail fn must never fire.
        PagedLeafSource source(store.tile_cache(), kBase, [&](std::uint64_t) -> crypto::Digest {
          failed.store(true);
          return {};
        });
        const std::vector<crypto::Digest> proof =
            ct::tiled_inclusion_path(source, index, kBase);
        if (!ct::verify_inclusion(leaves[static_cast<std::size_t>(index)], index, kBase, proof,
                                  base_root)) {
          failed.store(true);
        }
        std::vector<DurableEntry> out;
        if (store.read_entries(index, 1, out) != IoError::none || out.size() != 1 ||
            out[0].index != index) {
          failed.store(true);
        }
      }
    });
  }
  // The writer: more batches, each followed by a checkpoint that appends
  // pages, republishes directory entries, and advances the watermark.
  for (int b = 0; b < 20; ++b) {
    commit_batch_of(store, 16);
    ASSERT_TRUE(store.checkpoint().ok());
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(store.failed());
  EXPECT_GT(store.tile_cache().evictions(), 0u);
  EXPECT_EQ(store.tile_cache().pinned(), 0);
  ASSERT_TRUE(store.close().ok());
}

}  // namespace
}  // namespace ctwatch::storage
