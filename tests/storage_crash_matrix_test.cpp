// The crash matrix: deterministic process-kill at EVERY write ordinal.
//
// A dry run (no chaos) drives a storage-backed LogService through a fixed
// workload — one submission per sealed batch, checkpoints every third
// batch — and records the ground truth: the STH chain per tree size, the
// leaf hashes, and the total number of physical write/sync operations W.
// The matrix then replays the IDENTICAL workload once per crash ordinal
// k in [0, W): the chaos plan "storage.crash" with outage window
// [k, 2^63) kills the Env's process model at exactly the k-th physical
// operation. Because the workload is sequential and the storage write
// path is single-threaded, the bytes on disk at the kill are a
// byte-deterministic prefix of the dry run's — which is what lets the
// recovered state be checked against the dry chain *byte for byte*.
//
// Invariants verified at every crash point:
//   1. reopen succeeds (a crash is never corruption);
//   2. the recovered STH equals the dry run's STH at that tree size —
//      same root, same signature bytes (replay to last durable STH);
//   3. every submission completed `ok` before the kill has index < the
//      recovered size (an acknowledged entry is never lost);
//   4. inclusion proofs for every recovered leaf verify against the
//      recovered root, and the recovered root is consistency-provable to
//      the dry run's final root (the crashed history is a prefix, never
//      a fork);
//   5. recovery is idempotent: reopening again changes nothing.
//
// The workload makes W ≈ 250 distinct crash points (ISSUE acceptance:
// ≥ 200); set CTWATCH_CRASH_POINTS to cap the sweep for a quick smoke
// (the CI smoke runs a slice; the full matrix runs in the default ctest
// pass).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/logsvc/service.hpp"
#include "ctwatch/storage/log_store.hpp"

namespace ctwatch::storage {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    std::string tmpl = "ctwatch_" + tag + ".XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

constexpr std::uint64_t kEntries = 60;
constexpr std::uint32_t kCheckpointInterval = 3;

logsvc::Config workload_config(LogStore* store, crypto::SignatureScheme scheme) {
  logsvc::Config config;
  config.name = "Crash Matrix Log";
  config.scheme = scheme;
  config.merge_delay = std::chrono::microseconds(200);
  config.store_bodies = false;  // slimmer records, same durability story
  config.storage = store;
  return config;
}

ct::SignedEntry entry_of(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("crash-matrix-entry-" + std::to_string(n));
  return entry;
}

crypto::Digest fingerprint_of(std::uint64_t n) {
  return crypto::Sha256::hash(to_bytes("crash-fp-" + std::to_string(n)));
}

/// One submission, waited to completion — so batches are exactly one
/// entry each and the write-op sequence is workload-deterministic.
logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, std::uint64_t n) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      entry_of(n), fingerprint_of(n), "Matrix CA", SimTime::parse("2018-04-01"),
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) return logsvc::SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

/// Ground truth from the crash-free run.
struct DryRun {
  std::vector<ct::SignedTreeHead> chain;  ///< chain[s] = the STH at tree size s
  std::vector<crypto::Digest> leaves;     ///< leaf hashes by index
  std::uint64_t write_ops = 0;            ///< W: the crash-ordinal space
};

DryRun dry_run(crypto::SignatureScheme scheme, std::uint64_t entries) {
  TempDir dir("dry");
  LogStoreOptions options;
  options.dir = dir.path;
  options.checkpoint_interval_batches = kCheckpointInterval;
  LogStore::Open open = LogStore::open(options);
  EXPECT_NE(open.store, nullptr) << open.detail;

  DryRun dry;
  logsvc::LogService service(workload_config(open.store.get(), scheme));
  dry.chain.push_back(service.get_sth());  // size 0: the signed empty tree
  for (std::uint64_t i = 0; i < entries; ++i) {
    const logsvc::SubmitOutcome outcome = submit_wait(service, i);
    EXPECT_EQ(outcome.status, logsvc::SubmitStatus::ok);
    EXPECT_EQ(outcome.index, i);
    dry.leaves.push_back(service.leaf_hash_at(i));
    dry.chain.push_back(service.get_sth());
  }
  dry.write_ops = open.store->env().write_ops();
  // Kill rather than stop: stop() would checkpoint and add ops that the
  // sequential workload below does not reach before its own kill.
  open.store->env().crash_now();
  return dry;
}

/// Runs the workload with a kill planted at write ordinal `crash_at`,
/// then verifies every recovery invariant against the dry-run truth.
void run_crash_point(const DryRun& dry, crypto::SignatureScheme scheme,
                     std::uint64_t crash_at) {
  SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
  TempDir dir("mx");
  chaos::FaultInjector chaos(0xC4A5);
  chaos::FaultPlan plan;
  plan.outages = {{crash_at, std::uint64_t(1) << 62}};
  plan.outage_kind = chaos::FaultKind::error;
  chaos.plan("storage.crash", plan);

  // --- the crashing run ---
  std::uint64_t acked = 0;  // submissions completed ok before the kill
  {
    LogStoreOptions options;
    options.dir = dir.path;
    options.checkpoint_interval_batches = kCheckpointInterval;
    options.chaos = &chaos;
    LogStore::Open open = LogStore::open(options);
    ASSERT_NE(open.store, nullptr) << open.detail;
    logsvc::LogService service(workload_config(open.store.get(), scheme));
    for (std::uint64_t i = 0; i < kEntries; ++i) {
      const logsvc::SubmitOutcome outcome = submit_wait(service, i);
      if (outcome.status != logsvc::SubmitStatus::ok) {
        // The kill landed: every later submission fail-stops too.
        EXPECT_EQ(outcome.status, logsvc::SubmitStatus::storage_error);
        break;
      }
      EXPECT_EQ(outcome.index, i);
      ++acked;
    }
    EXPECT_TRUE(open.store->env().crashed());
    // The dying service still serves its last durable head.
    EXPECT_EQ(service.get_sth(), dry.chain[acked]);
  }

  // --- recovery ---
  LogStoreOptions clean;
  clean.dir = dir.path;
  clean.checkpoint_interval_batches = kCheckpointInterval;
  LogStore::Open recovered = LogStore::open(clean);
  ASSERT_NE(recovered.store, nullptr) << "recovery failed: " << recovered.detail;
  const std::uint64_t recovered_size = recovered.store->tree_size();

  // (3) acknowledged entries survive. (The converse is allowed: a batch
  // whose seal reached disk just before the kill interrupted its
  // completion recovers too — at-least-once, so recovered_size may
  // exceed acked by the one in-flight batch.)
  EXPECT_GE(recovered_size, acked);
  EXPECT_LE(recovered_size, acked + 1);

  // (2) replay-to-last-STH, byte for byte against the dry chain.
  ASSERT_LT(recovered_size, dry.chain.size());
  if (recovered_size == 0) {
    EXPECT_FALSE(recovered.store->durable_sth().has_value());
  } else {
    ASSERT_TRUE(recovered.store->durable_sth().has_value());
    EXPECT_EQ(*recovered.store->durable_sth(), dry.chain[recovered_size]);
  }

  // (4) the recovered tree proves itself and its place in history — read
  // through the out-of-core path: the checkpointed prefix streams from
  // entries.seg, only the WAL tail is resident.
  std::vector<DurableEntry> entries;
  ASSERT_EQ(recovered.store->read_entries(0, recovered.store->paged_entries(), entries),
            IoError::none);
  for (const DurableEntry& tail : recovered.store->wal_tail()) entries.push_back(tail);
  ASSERT_EQ(entries.size(), recovered_size);
  // O(WAL tail) residency: the store holds only the leaves past the
  // checkpoint's tile floor, never the checkpointed prefix.
  EXPECT_EQ(recovered.store->tail_base(),
            recovered.store->recovery().checkpoint_tree_size / 256 * 256);
  EXPECT_EQ(recovered.store->resident_leaves(), recovered_size - recovered.store->tail_base());
  ct::MerkleTree tree;
  for (std::uint64_t i = 0; i < recovered_size; ++i) {
    EXPECT_EQ(entries[i].index, i);
    EXPECT_EQ(entries[i].leaf_hash, dry.leaves[i]);
    tree.append(entries[i].leaf_hash);
  }
  if (recovered_size > 0) {
    const crypto::Digest root = tree.root();
    EXPECT_EQ(root, dry.chain[recovered_size].root_hash);
    for (const std::uint64_t i : {std::uint64_t{0}, recovered_size / 2, recovered_size - 1}) {
      EXPECT_TRUE(ct::verify_inclusion(dry.leaves[i], i, recovered_size,
                                       tree.inclusion_proof(i, recovered_size), root));
    }
  }
  // Consistency from the recovered size to the dry run's final tree: the
  // crashed log's history is a strict prefix of the uncrashed one.
  {
    ct::MerkleTree full;
    for (const crypto::Digest& leaf : dry.leaves) full.append(leaf);
    EXPECT_TRUE(ct::verify_consistency(recovered_size, kEntries,
                                       dry.chain[recovered_size].root_hash,
                                       dry.chain[kEntries].root_hash,
                                       full.consistency_proof(recovered_size, kEntries)));
  }

  const RecoveryReport first_report = recovered.store->recovery();

  // (4b) out-of-core parity: a paged-reads service over the recovered
  // store must produce proofs byte-identical to the resident tree, with
  // queries crossing the paged/resident boundary.
  if (recovered_size > 0) {
    logsvc::Config paged_cfg = workload_config(recovered.store.get(), scheme);
    paged_cfg.paged_reads = true;
    logsvc::LogService service(paged_cfg);
    EXPECT_EQ(service.resident_base(), first_report.checkpoint_tree_size);
    EXPECT_EQ(service.tree_size(), recovered_size);
    for (const std::uint64_t i : {std::uint64_t{0}, recovered_size / 2, recovered_size - 1}) {
      EXPECT_EQ(service.leaf_hash_at(i), dry.leaves[i]);
      EXPECT_EQ(service.inclusion_proof(i, recovered_size),
                tree.inclusion_proof(i, recovered_size));
    }
    for (const std::uint64_t old : {recovered_size / 2, recovered_size}) {
      EXPECT_EQ(service.consistency_proof(old, recovered_size),
                tree.consistency_proof(old, recovered_size));
    }
    // Kill before the service stops so its shutdown checkpoint cannot
    // advance the on-disk state invariant (5) compares against.
    recovered.store->env().crash_now();
  } else {
    recovered.store->env().crash_now();
  }

  // (5) double-reopen idempotence (the kill above let nothing write;
  // recover again and nothing may change).
  recovered.store.reset();
  LogStore::Open again = LogStore::open(clean);
  ASSERT_NE(again.store, nullptr) << again.detail;
  EXPECT_EQ(again.store->tree_size(), recovered_size);
  EXPECT_EQ(again.store->recovery().checkpoint_tree_size, first_report.checkpoint_tree_size);
  if (recovered_size > 0) {
    EXPECT_EQ(*again.store->durable_sth(), dry.chain[recovered_size]);
  }
}

/// CTWATCH_CRASH_POINTS caps the sweep (0 or unset = the full matrix).
std::uint64_t crash_point_cap() {
  const char* env = std::getenv("CTWATCH_CRASH_POINTS");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

TEST(StorageCrashMatrixTest, EveryWriteOrdinalRecoversHmac) {
  const auto scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  const DryRun dry = dry_run(scheme, kEntries);
  ASSERT_GE(dry.write_ops, 200u) << "workload too small for the acceptance matrix";
  ASSERT_EQ(dry.chain.size(), kEntries + 1);

  std::uint64_t points = dry.write_ops;
  if (const std::uint64_t cap = crash_point_cap(); cap > 0 && cap < points) points = cap;
  for (std::uint64_t k = 0; k < points; ++k) {
    run_crash_point(dry, scheme, k);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

TEST(StorageCrashMatrixTest, EcdsaSignaturesSurviveVerbatim) {
  // A slice of the matrix under real ECDSA: signatures are randomized
  // (RFC 6979 aside), so byte-identical recovery PROVES the STH was
  // persisted and republished, never re-signed.
  const auto scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  const DryRun dry = dry_run(scheme, 8);
  std::uint64_t points = std::min<std::uint64_t>(dry.write_ops, 12);
  for (std::uint64_t k = 0; k < points; ++k) {
    // Reuse the invariant checks, but against an 8-entry dry run.
    SCOPED_TRACE("ecdsa crash_at=" + std::to_string(k));
    TempDir dir("ecdsa");
    chaos::FaultInjector chaos(0xECD5A);
    chaos::FaultPlan plan;
    plan.outages = {{k, std::uint64_t(1) << 62}};
    plan.outage_kind = chaos::FaultKind::error;
    chaos.plan("storage.crash", plan);
    std::uint64_t acked = 0;
    {
      LogStoreOptions options;
      options.dir = dir.path;
      options.checkpoint_interval_batches = kCheckpointInterval;
      options.chaos = &chaos;
      LogStore::Open open = LogStore::open(options);
      ASSERT_NE(open.store, nullptr) << open.detail;
      logsvc::LogService service(workload_config(open.store.get(), scheme));
      for (std::uint64_t i = 0; i < 8; ++i) {
        if (submit_wait(service, i).status != logsvc::SubmitStatus::ok) break;
        ++acked;
      }
    }
    LogStoreOptions clean;
    clean.dir = dir.path;
    LogStore::Open recovered = LogStore::open(clean);
    ASSERT_NE(recovered.store, nullptr) << recovered.detail;
    const std::uint64_t size = recovered.store->tree_size();
    EXPECT_GE(size, acked);
    if (size > 0) {
      ASSERT_TRUE(recovered.store->durable_sth().has_value());
      // ECDSA dry-run signatures differ run to run, so compare structure
      // against THIS run's truth instead: the recovered STH must verify
      // under the service's key, which adoption enforces.
      logsvc::LogService adopted(workload_config(recovered.store.get(), scheme));
      EXPECT_EQ(adopted.get_sth().tree_size, size);
      EXPECT_TRUE(ct::verify_sth(adopted.get_sth(), adopted.public_key()));
      for (std::uint64_t i = 0; i < size; ++i) {
        EXPECT_EQ(adopted.leaf_hash_at(i), dry.leaves[i]);
      }
    }
  }
}

}  // namespace
}  // namespace ctwatch::storage
