#include <gtest/gtest.h>

#include <algorithm>

#include "ctwatch/sim/domains.hpp"
#include "ctwatch/sim/ecosystem.hpp"
#include "ctwatch/sim/phishing_gen.hpp"
#include "ctwatch/sim/population.hpp"
#include "ctwatch/sim/timeline.hpp"
#include "ctwatch/sim/traffic.hpp"

namespace ctwatch::sim {
namespace {

using crypto::SignatureScheme;

// ---------- CA issuance flow ----------

class CaFlowTest : public ::testing::Test {
 protected:
  CaFlowTest()
      : ca_("Flow CA", "Flow Issuing CA", SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-03-20")) {
    ct::LogConfig config;
    config.name = "Flow Log";
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    log_ = std::make_unique<ct::CtLog>(config);
  }

  IssuanceRequest request(IssuanceBug bug = IssuanceBug::none) {
    IssuanceRequest req;
    req.subject_cn = "flow.example.org";
    req.sans = {x509::SanEntry::dns("flow.example.org"),
                x509::SanEntry::address(net::IPv4(192, 0, 2, 8)),
                x509::SanEntry::dns("alt.example.org")};
    req.not_before = now_;
    req.not_after = now_ + 365 * 86400;
    req.logs = {log_.get()};
    req.bug = bug;
    return req;
  }

  bool embedded_sct_valid(const x509::Certificate& final_cert) {
    const auto scts = tls::embedded_scts(final_cert);
    if (scts.empty()) return false;
    const ct::SignedEntry entry = ct::make_precert_entry(final_cert, ca_.public_key());
    for (const auto& sct : scts) {
      if (!ct::verify_sct(sct, entry, log_->public_key())) return false;
    }
    return true;
  }

  CertificateAuthority ca_;
  std::unique_ptr<ct::CtLog> log_;
  SimTime now_;
};

TEST_F(CaFlowTest, CleanIssuanceYieldsValidEmbeddedSct) {
  const IssuanceResult issued = ca_.issue(request(), now_);
  EXPECT_TRUE(issued.precertificate.is_precertificate());
  EXPECT_FALSE(issued.final_certificate.is_precertificate());
  EXPECT_TRUE(issued.final_certificate.sct_list_value());
  EXPECT_TRUE(embedded_sct_valid(issued.final_certificate));
  // Both certificates carry the CA's signature.
  EXPECT_TRUE(issued.precertificate.verify(ca_.public_key()));
  EXPECT_TRUE(issued.final_certificate.verify(ca_.public_key()));
}

TEST_F(CaFlowTest, PrecertAndFinalCoverSameBytes) {
  const IssuanceResult issued = ca_.issue(request(), now_);
  EXPECT_EQ(x509::precert_tbs_bytes(issued.precertificate.tbs),
            x509::precert_tbs_bytes(issued.final_certificate.tbs));
}

TEST_F(CaFlowTest, SanReorderBreaksSct) {
  const IssuanceResult issued = ca_.issue(request(IssuanceBug::san_reorder), now_);
  EXPECT_FALSE(embedded_sct_valid(issued.final_certificate));
  // The certificate itself is still properly CA-signed — only CT breaks.
  EXPECT_TRUE(issued.final_certificate.verify(ca_.public_key()));
  // The SAN *set* is unchanged, only the order.
  auto pre = issued.precertificate.tbs.san_entries();
  auto fin = issued.final_certificate.tbs.san_entries();
  EXPECT_NE(pre, fin);
  std::sort(pre.begin(), pre.end(), [](const auto& a, const auto& b) {
    return a.dns_name < b.dns_name;
  });
  std::sort(fin.begin(), fin.end(), [](const auto& a, const auto& b) {
    return a.dns_name < b.dns_name;
  });
  EXPECT_EQ(pre, fin);
}

TEST_F(CaFlowTest, ExtensionReorderBreaksSct) {
  const IssuanceResult issued = ca_.issue(request(IssuanceBug::extension_reorder), now_);
  EXPECT_FALSE(embedded_sct_valid(issued.final_certificate));
  EXPECT_TRUE(issued.final_certificate.verify(ca_.public_key()));
}

TEST_F(CaFlowTest, NameSwapBreaksSct) {
  const IssuanceResult issued = ca_.issue(request(IssuanceBug::name_swap), now_);
  EXPECT_FALSE(embedded_sct_valid(issued.final_certificate));
  EXPECT_NE(issued.final_certificate.tbs.issuer, issued.precertificate.tbs.issuer);
}

TEST_F(CaFlowTest, StaleSctReissueBreaksSct) {
  const IssuanceResult first = ca_.issue(request(), now_);
  ASSERT_TRUE(embedded_sct_valid(first.final_certificate));
  const x509::Certificate reissued = ca_.reissue_with_stale_scts(first, now_ + 7 * 86400);
  EXPECT_FALSE(embedded_sct_valid(reissued));
  EXPECT_NE(reissued.tbs.serial, first.final_certificate.tbs.serial);
  EXPECT_TRUE(reissued.verify(ca_.public_key()));
}

TEST_F(CaFlowTest, UnloggedIssuanceHasNoSctList) {
  const x509::Certificate cert = ca_.issue_unlogged(request(), now_);
  EXPECT_FALSE(cert.sct_list_value());
  EXPECT_FALSE(cert.is_precertificate());
  EXPECT_TRUE(cert.verify(ca_.public_key()));
}

TEST_F(CaFlowTest, SerialsIncrement) {
  const auto a = ca_.issue(request(), now_);
  const auto b = ca_.issue(request(), now_);
  EXPECT_NE(a.final_certificate.tbs.serial, b.final_certificate.tbs.serial);
  EXPECT_EQ(ca_.certificates_issued(), 2u);
}

// ---------- ecosystem ----------

TEST(EcosystemTest, StandardRosterLoads) {
  Ecosystem ecosystem;
  EXPECT_EQ(ecosystem.all_logs().size(), 15u);   // Table 1 roster
  EXPECT_EQ(ecosystem.all_cas().size(), 9u);     // big five + StartCom/TeliaSonera/D-TRUST/NetLock...
  EXPECT_NO_THROW((void)ecosystem.log("Google Pilot"));
  EXPECT_NO_THROW((void)ecosystem.ca("Let's Encrypt"));
  EXPECT_THROW((void)ecosystem.log("No Such Log"), std::invalid_argument);
  EXPECT_THROW((void)ecosystem.ca("No Such CA"), std::invalid_argument);
}

TEST(EcosystemTest, PublicationMatrixIsSparse) {
  Ecosystem ecosystem;
  // Every CA publishes to a strict subset of logs (Fig. 1c sparsity).
  for (const CaSpec& spec : Ecosystem::standard_cas()) {
    const auto logs = ecosystem.logs_of(spec.name);
    EXPECT_GE(logs.size(), 2u) << spec.name;
    EXPECT_LE(logs.size(), 4u) << spec.name;
  }
  // Let's Encrypt lands on Icarus + Nimbus, per the paper.
  const auto le_logs = ecosystem.logs_of("Let's Encrypt");
  std::vector<std::string> names;
  for (const auto* log : le_logs) names.push_back(log->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "Google Icarus"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Cloudflare Nimbus2018"), names.end());
}

TEST(EcosystemTest, LogListCoversAllLogs) {
  Ecosystem ecosystem;
  for (ct::CtLog* log : ecosystem.all_logs()) {
    EXPECT_NE(ecosystem.log_list().find(log->log_id()), nullptr) << log->name();
  }
}

// ---------- timeline ----------

TEST(TimelineTest, SmallScaleRunShapes) {
  EcosystemOptions options;
  options.verify_submissions = false;
  options.store_bodies = false;
  Ecosystem ecosystem(options);
  TimelineOptions timeline_options;
  timeline_options.scale = 1.0 / 20000.0;  // tiny but non-empty
  TimelineSimulator simulator(ecosystem, timeline_options);
  const TimelineStats stats = simulator.run();
  EXPECT_GT(stats.issued, 1000u);
  EXPECT_GT(stats.log_submissions, stats.issued);  // multiple logs per cert

  // Let's Encrypt must not appear before 2018-03 and must dominate after.
  const auto& icarus = ecosystem.log("Google Icarus");
  std::uint64_t le_before = 0, le_after = 0;
  const std::int64_t le_start = SimTime::parse("2018-03-08").unix_seconds() * 1000;
  for (const ct::LogEntry& entry : icarus.entries()) {
    if (entry.issuer_cn != "Let's Encrypt Authority X3") continue;
    (entry.timestamp_ms < static_cast<std::uint64_t>(le_start) ? le_before : le_after)++;
  }
  EXPECT_EQ(le_before, 0u);
  EXPECT_GT(le_after, 100u);
}

TEST(TimelineTest, DeterministicForSeed) {
  auto run = [] {
    EcosystemOptions options;
    options.verify_submissions = false;
    options.store_bodies = false;
    options.seed = 99;
    Ecosystem ecosystem(options);
    TimelineOptions timeline_options;
    timeline_options.scale = 1.0 / 50000.0;
    return TimelineSimulator(ecosystem, timeline_options).run().issued;
  };
  EXPECT_EQ(run(), run());
}

// ---------- population & traffic ----------

class PopulationTest : public ::testing::Test {
 protected:
  PopulationTest() : ecosystem_(make_options()) {}
  static EcosystemOptions make_options() {
    EcosystemOptions options;
    options.verify_submissions = false;
    options.store_bodies = false;
    options.seed = 5;
    return options;
  }
  static PopulationOptions small_population() {
    PopulationOptions options;
    options.site_count = 800;
    options.popular_tier = 100;
    return options;
  }
  Ecosystem ecosystem_;
};

TEST_F(PopulationTest, SitesHaveCertificates) {
  ServerPopulation population(ecosystem_, small_population());
  EXPECT_EQ(population.size(), 800u);
  for (std::size_t i = 0; i < population.size(); i += 97) {
    const SiteProfile& site = population.site(i);
    EXPECT_FALSE(site.fqdn.empty());
    ASSERT_TRUE(site.legacy_certificate);
    EXPECT_TRUE(site.issuer_public_key);
  }
}

TEST_F(PopulationTest, TailSitesGainCtCertsOverTime) {
  ServerPopulation population(ecosystem_, small_population());
  std::size_t replaced_before = 0, replaced_after = 0;
  const SimTime early = SimTime::parse("2018-01-01");
  const SimTime late = SimTime::parse("2018-06-01");
  for (std::size_t i = small_population().popular_tier; i < population.size(); ++i) {
    const SiteProfile& site = population.site(i);
    if (!site.ct_certificate) continue;
    if (site.certificate_at(early) == site.ct_certificate) ++replaced_before;
    if (site.certificate_at(late) == site.ct_certificate) ++replaced_after;
  }
  EXPECT_EQ(replaced_before, 0u);  // nothing logged before March 2018
  EXPECT_GT(replaced_after, 100u);
}

TEST_F(PopulationTest, ConnectReflectsSiteState) {
  ServerPopulation population(ecosystem_, small_population());
  const tls::ConnectionRecord record =
      population.connect(0, SimTime::parse("2018-01-15"), true);
  EXPECT_EQ(record.server_name, "graph.facebook.com");
  EXPECT_TRUE(record.certificate);
  EXPECT_TRUE(record.client_signals_sct);
}

TEST_F(PopulationTest, TrafficGeneratorIsDeterministic) {
  ServerPopulation population(ecosystem_, small_population());
  auto run = [&](std::uint64_t seed) {
    monitor::PassiveMonitor monitor(ecosystem_.log_list());
    TrafficOptions options;
    options.start = "2018-01-01";
    options.end = "2018-01-08";
    options.connections_per_day = 500;
    options.burst_days = 1;
    TrafficGenerator generator(population, options, Rng(seed));
    generator.run(monitor);
    return monitor.totals().with_any_sct;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_F(PopulationTest, ScanSeesMoreSctsThanTraffic) {
  // The §3.3 divergence must hold in-sample.
  ServerPopulation population(ecosystem_, small_population());
  monitor::PassiveMonitor passive(ecosystem_.log_list());
  TrafficOptions traffic_options;
  traffic_options.start = "2017-06-01";
  traffic_options.end = "2017-09-01";
  traffic_options.connections_per_day = 400;
  traffic_options.burst_days = 0;
  TrafficGenerator traffic(population, traffic_options, Rng(3));
  traffic.run(passive);

  monitor::PassiveMonitor scan_monitor(ecosystem_.log_list());
  ScanDriver scan(population, ScanOptions{});
  scan.run(scan_monitor);

  const double traffic_rate = static_cast<double>(passive.totals().sct_in_cert) /
                              static_cast<double>(passive.totals().connections);
  const double scan_rate =
      static_cast<double>(scan_monitor.totals().unique_certs_with_embedded_sct) /
      static_cast<double>(scan_monitor.totals().unique_certificates);
  EXPECT_GT(scan_rate, traffic_rate * 1.5);
}

// ---------- corpora ----------

TEST(DomainCorpusTest, RespectsConfiguredCounts) {
  DomainCorpusOptions options;
  options.registrable_count = 2000;
  DomainCorpus corpus(options);
  EXPECT_EQ(corpus.registrable_domains().size(), 2000u);
  EXPECT_GT(corpus.ct_names().size(), 2000u);   // domains + subdomains + junk
  EXPECT_GT(corpus.sonar_names().size(), 500u);
  EXPECT_GT(corpus.truth_size(), 500u);
}

TEST(DomainCorpusTest, TruthAgreesWithDns) {
  DomainCorpusOptions options;
  options.registrable_count = 1500;
  DomainCorpus corpus(options);
  const dns::RecursiveResolver resolver(
      corpus.universe(),
      dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "test", false});
  const SimTime when = SimTime::parse("2018-04-27");
  std::size_t checked = 0;
  for (const std::string& name : corpus.sonar_names()) {
    if (checked >= 200) break;
    const auto parsed = dns::DnsName::parse(name);
    if (!parsed) continue;
    if (!corpus.truly_exists(name)) continue;  // sonar also lists apexes
    ++checked;
    const auto result = resolver.resolve(*parsed, dns::RrType::A, when);
    EXPECT_EQ(result.status, dns::ResolveStatus::ok) << name;
  }
  EXPECT_GT(checked, 50u);
}

TEST(DomainCorpusTest, ContainsInvalidNamesForFiltering) {
  DomainCorpusOptions options;
  options.registrable_count = 1000;
  DomainCorpus corpus(options);
  std::size_t invalid = 0;
  for (const std::string& name : corpus.ct_names()) {
    if (!dns::DnsName::parse(name)) ++invalid;
  }
  EXPECT_GT(invalid, 0u);
}

TEST(PhishingGenTest, CorpusShapeAndDeterminism) {
  const PhishingCorpus a = generate_phishing_corpus();
  const PhishingCorpus b = generate_phishing_corpus();
  EXPECT_EQ(a.names, b.names);
  EXPECT_GT(a.planted_phishing, 1000u);
  EXPECT_EQ(a.planted_legitimate, 15u);
  EXPECT_EQ(a.names.size(), a.planted_phishing + a.planted_legitimate);
}

}  // namespace
}  // namespace ctwatch::sim
