// ctwatch::logsvc — service-level behaviour: asynchronous SCT delivery,
// batching under the merge delay, dedup semantics, backpressure, snapshot
// reads (including stale heads), streaming fanout loss accounting, graceful
// shutdown, and a multi-threaded smoke test that is the ThreadSanitizer
// target for the whole subsystem.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::logsvc {
namespace {

using namespace std::chrono_literals;

ct::SignedEntry entry_of(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("entry-" + std::to_string(n));
  return entry;
}

crypto::Digest fingerprint_of(std::uint64_t n) {
  return crypto::Sha256::hash(to_bytes("fp-" + std::to_string(n)));
}

Config fast_config(const std::string& name) {
  Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 500us;
  return config;
}

/// Raw submit + block for the outcome (the async path, synchronized).
SubmitOutcome submit_wait(LogService& service, std::uint64_t n, SimTime now) {
  std::promise<SubmitOutcome> promise;
  auto future = promise.get_future();
  const SubmitStatus status =
      service.submit(entry_of(n), fingerprint_of(n), "Test CA", now,
                     [&promise](const SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != SubmitStatus::ok) return SubmitOutcome{status, 0, std::nullopt};
  return future.get();
}

const SimTime kNow = SimTime::parse("2018-04-01");

TEST(LogServiceTest, SubmissionCompletesWithVerifiableSctAndProof) {
  LogService service(fast_config("Svc A"));
  const SubmitOutcome outcome = submit_wait(service, 1, kNow);
  ASSERT_EQ(outcome.status, SubmitStatus::ok);
  ASSERT_TRUE(outcome.sct.has_value());
  EXPECT_EQ(outcome.index, 0u);
  EXPECT_EQ(outcome.sct->timestamp_ms, static_cast<std::uint64_t>(kNow.unix_seconds()) * 1000);

  // The SCT verifies with the service's key over the submitted entry.
  EXPECT_TRUE(ct::verify_sct(*outcome.sct, entry_of(1), service.public_key()));

  // Completion fires after publication: the entry is provable immediately.
  const ct::SignedTreeHead sth = service.get_sth();
  EXPECT_TRUE(ct::verify_sth(sth, service.public_key()));
  ASSERT_EQ(sth.tree_size, 1u);
  EXPECT_TRUE(ct::verify_inclusion(service.leaf_hash_at(0), 0, 1,
                                   service.inclusion_proof(0, 1), sth.root_hash));
}

TEST(LogServiceTest, MergeDelayBatchesConcurrentSubmissionsIntoOneSth) {
  Config config = fast_config("Svc Batch");
  config.merge_delay = 20ms;
  LogService service(config);
  service.pause_sequencer_for_test();  // hold the window open deterministically

  std::vector<std::future<SubmitOutcome>> outcomes;
  std::vector<std::promise<SubmitOutcome>> promises(3);
  for (std::size_t i = 0; i < promises.size(); ++i) {
    outcomes.push_back(promises[i].get_future());
    auto* promise = &promises[i];
    ASSERT_EQ(service.submit(entry_of(i), fingerprint_of(i), "Test CA", kNow,
                             [promise](const SubmitOutcome& o) { promise->set_value(o); }),
              SubmitStatus::ok);
  }
  service.resume_sequencer_for_test();
  for (auto& future : outcomes) EXPECT_EQ(future.get().status, SubmitStatus::ok);

  // One seal integrated all three: a single batch, a single new head.
  EXPECT_EQ(service.sealed_batches(), 1u);
  EXPECT_EQ(service.tree_size(), 3u);
  EXPECT_EQ(service.snapshot()->seal_seq, 1u);
}

TEST(LogServiceTest, DedupReturnsOriginalIndexAndTimestamp) {
  LogService service(fast_config("Svc Dedup"));
  const SubmitOutcome first = submit_wait(service, 7, kNow);
  ASSERT_EQ(first.status, SubmitStatus::ok);

  // Resubmission an hour later: same index, the *original* timestamp, and
  // the tree does not grow (RFC 6962 resubmission semantics).
  const SubmitOutcome again = submit_wait(service, 7, kNow + 3600);
  ASSERT_EQ(again.status, SubmitStatus::ok);
  EXPECT_EQ(again.index, first.index);
  EXPECT_EQ(again.sct->timestamp_ms, first.sct->timestamp_ms);
  EXPECT_EQ(service.tree_size(), 1u);
  EXPECT_TRUE(ct::verify_sct(*again.sct, entry_of(7), service.public_key()));
}

TEST(LogServiceTest, QueueFullFailsFastWithOverloaded) {
  Config config = fast_config("Svc Overload");
  config.queue_capacity = 4;
  LogService service(config);
  service.pause_sequencer_for_test();  // freeze draining: the queue can fill

  std::atomic<int> completed{0};
  auto count = [&completed](const SubmitOutcome&) { completed.fetch_add(1); };
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(service.submit(entry_of(i), fingerprint_of(i), "Test CA", kNow, count),
              SubmitStatus::ok);
  }
  EXPECT_EQ(service.queue_depth(), 4u);
  // Beyond capacity: fail fast, nothing blocks, the rejection is counted.
  EXPECT_EQ(service.submit(entry_of(99), fingerprint_of(99), "Test CA", kNow, count),
            SubmitStatus::overloaded);
  EXPECT_EQ(service.overload_rejections(), 1u);

  service.resume_sequencer_for_test();
  service.stop();  // drains the four accepted submissions before exiting
  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(service.tree_size(), 4u);
}

TEST(LogServiceTest, StopCompletesEverythingQueued) {
  LogService service(fast_config("Svc Stop"));
  service.pause_sequencer_for_test();
  std::atomic<int> completed{0};
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(service.submit(entry_of(i), fingerprint_of(i), "Test CA", kNow,
                             [&completed](const SubmitOutcome& o) {
                               if (o.status == SubmitStatus::ok) completed.fetch_add(1);
                             }),
              SubmitStatus::ok);
  }
  service.resume_sequencer_for_test();
  service.stop();
  EXPECT_EQ(completed.load(), 16);
  EXPECT_EQ(service.tree_size(), 16u);
  // After stop, new submissions are refused.
  EXPECT_EQ(service.submit(entry_of(99), fingerprint_of(99), "Test CA", kNow),
            SubmitStatus::shutdown);
}

TEST(LogServiceTest, StaleSnapshotProofsKeepVerifying) {
  LogService service(fast_config("Svc Stale"));
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(submit_wait(service, i, kNow).status, SubmitStatus::ok);
  }
  const ct::SignedTreeHead stale = service.get_sth();
  ASSERT_EQ(stale.tree_size, 5u);
  for (std::uint64_t i = 5; i < 12; ++i) {
    ASSERT_EQ(submit_wait(service, i, kNow + 60).status, SubmitStatus::ok);
  }
  const ct::SignedTreeHead fresh = service.get_sth();
  ASSERT_EQ(fresh.tree_size, 12u);

  // Inclusion still proves into the stale head at its recorded size...
  EXPECT_TRUE(ct::verify_inclusion(service.leaf_hash_at(2), 2, stale.tree_size,
                                   service.inclusion_proof(2, stale.tree_size),
                                   stale.root_hash));
  // ...and the stale head connects forward to the fresh one.
  EXPECT_TRUE(ct::verify_consistency(stale.tree_size, fresh.tree_size, stale.root_hash,
                                     fresh.root_hash,
                                     service.consistency_proof(stale.tree_size, fresh.tree_size)));
  // Requests beyond the published size are rejected, not served garbage.
  EXPECT_THROW((void)service.inclusion_proof(0, 99), std::out_of_range);
  EXPECT_THROW((void)service.consistency_proof(5, 99), std::out_of_range);
  EXPECT_THROW((void)service.leaf_hash_at(12), std::out_of_range);
}

TEST(LogServiceTest, GetEntriesReturnsStoredRecordsAndClamps) {
  LogService service(fast_config("Svc Entries"));
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(submit_wait(service, i, kNow).status, SubmitStatus::ok);
  }
  const auto records = service.get_entries(1, 10);  // clamped to [1, 3)
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].index, 1u);
  EXPECT_EQ(records[1].index, 2u);
  EXPECT_EQ(records[0].fingerprint, fingerprint_of(1));
  EXPECT_EQ(records[0].signed_entry.data, entry_of(1).data);  // store_bodies on
  EXPECT_TRUE(service.get_entries(5, 2).empty());
}

TEST(LogServiceTest, GetEntriesRangeClampRegressions) {
  // Pinned behaviours for the range arithmetic the HTTP get-entries
  // endpoint leans on: every hostile (start, count) pair must come back
  // empty or clamped, never wrapped or thrown.
  Config config = fast_config("Svc Entries Clamp");
  config.max_get_entries = 4;  // small window cap to exercise the clamp
  LogService service(config);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_EQ(submit_wait(service, i, kNow).status, SubmitStatus::ok);
  }
  ASSERT_EQ(service.tree_size(), 6u);

  // start at/past the tree is empty, not an error.
  EXPECT_TRUE(service.get_entries(6, 1).empty());
  EXPECT_TRUE(service.get_entries(UINT64_MAX, 1).empty());
  // count == 0 is empty.
  EXPECT_TRUE(service.get_entries(0, 0).empty());

  // An oversized window is capped at max_get_entries...
  const auto capped = service.get_entries(0, 1000);
  ASSERT_EQ(capped.size(), 4u);
  EXPECT_EQ(capped.front().index, 0u);
  EXPECT_EQ(capped.back().index, 3u);
  // ...and the published size still clamps below the cap.
  const auto tail = service.get_entries(4, 1000);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().index, 4u);
  EXPECT_EQ(tail.back().index, 5u);

  // start + count overflowing u64 must not wrap into a bogus window.
  const auto overflow = service.get_entries(5, UINT64_MAX);
  ASSERT_EQ(overflow.size(), 1u);
  EXPECT_EQ(overflow.front().index, 5u);
  const auto overflow_full = service.get_entries(0, UINT64_MAX);
  ASSERT_EQ(overflow_full.size(), 4u);  // window cap applies first
}

TEST(LogServiceTest, RejectsInvalidChainsInTheCallerThread) {
  Config config = fast_config("Svc Validate");
  LogService service(config);  // verify_submissions defaults to true
  sim::CertificateAuthority ca("Svc CA", "Svc Issuing CA",
                               crypto::SignatureScheme::hmac_sha256_simulated);
  sim::CertificateAuthority other("Other CA", "Other Issuing CA",
                                  crypto::SignatureScheme::hmac_sha256_simulated);
  sim::IssuanceRequest request;
  request.subject_cn = "www.example.org";
  request.sans = {x509::SanEntry::dns("www.example.org")};
  request.not_before = kNow;
  request.not_after = kNow + 90 * 86400;
  const auto issued = ca.issue(request, kNow);

  // Wrong issuer key: synchronous rejection, no completion pending.
  EXPECT_EQ(service.submit_chain(issued.final_certificate, other.public_key(), kNow),
            SubmitStatus::rejected_invalid);
  // Entry-kind confusion is refused on both endpoints.
  EXPECT_EQ(service.submit_chain(issued.precertificate, ca.public_key(), kNow),
            SubmitStatus::rejected_invalid);
  EXPECT_EQ(service.submit_pre_chain(issued.final_certificate, ca.public_key(), kNow),
            SubmitStatus::rejected_invalid);
  EXPECT_EQ(service.tree_size(), 0u);

  // The valid flavors land: add-pre-chain then add-chain (distinct leaves).
  const SubmitOutcome pre = service.submit_and_wait(issued.precertificate, ca.public_key(), kNow);
  ASSERT_EQ(pre.status, SubmitStatus::ok);
  const ct::SignedEntry entry = ct::make_precert_entry(issued.precertificate, ca.public_key());
  EXPECT_TRUE(ct::verify_sct(*pre.sct, entry, service.public_key()));
  const SubmitOutcome fin =
      service.submit_and_wait(issued.final_certificate, ca.public_key(), kNow);
  ASSERT_EQ(fin.status, SubmitStatus::ok);
  EXPECT_EQ(service.tree_size(), 2u);
}

TEST(LogServiceTest, FanoutDropsForSlowConsumerWithoutStallingSeal) {
  Config config = fast_config("Svc Fanout");
  config.fanout_buffer = 2;  // tiny ring: a blocked consumer overflows fast
  LogService service(config);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<std::uint64_t> seen{0};
  service.subscribe("slow", [&](const StreamEvent&) {
    seen.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  constexpr std::uint64_t kEvents = 32;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ASSERT_EQ(submit_wait(service, i, kNow).status, SubmitStatus::ok);
  }
  // All 32 submissions completed (sealing never waited on the consumer)
  // even though the consumer has processed at most one event.
  EXPECT_EQ(service.tree_size(), kEvents);
  EXPECT_GT(service.fanout().dropped(), 0u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.stop();  // drains what the ring still holds, then joins
  EXPECT_EQ(service.fanout().delivered() + service.fanout().dropped(), kEvents);
  EXPECT_EQ(service.fanout().delivered(), seen.load());
}

// The ThreadSanitizer target: concurrent submitters racing the sequencer
// while readers serve proofs from snapshots and a streaming consumer
// drains the fanout. Any locking mistake in queue/store/snapshot/fanout
// shows up here as a TSAN race report.
TEST(LogServiceTest, ConcurrentSubmittersAndReadersSmoke) {
  Config config = fast_config("Svc Smoke");
  config.max_batch = 64;
  LogService service(config);

  std::atomic<std::uint64_t> streamed{0};
  service.subscribe("smoke", [&streamed](const StreamEvent&) { streamed.fetch_add(1); });

  constexpr int kSubmitters = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> writers_done{false};
  std::atomic<std::uint64_t> proof_failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t n = static_cast<std::uint64_t>(t) * kPerThread + i;
        const SubmitStatus status = service.submit(
            entry_of(n), fingerprint_of(n), "Smoke CA", kNow,
            [&completed](const SubmitOutcome& o) {
              if (o.status == SubmitStatus::ok) completed.fetch_add(1);
            });
        if (status == SubmitStatus::ok) {
          accepted.fetch_add(1);
        } else {
          std::this_thread::yield();  // overloaded: retry the next ordinal
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5111feedULL + static_cast<std::uint64_t>(t));
      const Bytes key = service.public_key();
      while (!writers_done.load(std::memory_order_acquire)) {
        const ct::SignedTreeHead sth = service.get_sth();
        if (!ct::verify_sth(sth, key)) proof_failures.fetch_add(1);
        if (sth.tree_size > 0) {
          const std::uint64_t index = rng() % sth.tree_size;
          if (!ct::verify_inclusion(service.leaf_hash_at(index), index, sth.tree_size,
                                    service.inclusion_proof(index, sth.tree_size),
                                    sth.root_hash)) {
            proof_failures.fetch_add(1);
          }
          const std::uint64_t old_size = index + 1;
          if (!ct::verify_consistency(old_size, sth.tree_size,
                                      ct::merkle_root_of(
                                          [&](std::uint64_t i) { return service.leaf_hash_at(i); },
                                          old_size),
                                      sth.root_hash,
                                      service.consistency_proof(old_size, sth.tree_size))) {
            proof_failures.fetch_add(1);
          }
        }
        std::this_thread::sleep_for(1ms);
      }
    });
  }

  for (int t = 0; t < kSubmitters; ++t) threads[static_cast<std::size_t>(t)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kSubmitters; t < threads.size(); ++t) threads[t].join();
  service.stop();

  EXPECT_EQ(completed.load(), accepted.load());
  EXPECT_EQ(service.tree_size(), accepted.load());
  EXPECT_EQ(proof_failures.load(), 0u);
  EXPECT_EQ(streamed.load() + service.fanout().dropped(), accepted.load());
}

// The queue primitive on its own: capacity, close semantics, bulk drain.
// try_push distinguishes backpressure (full) from teardown (closed) so the
// producer can attribute the refusal correctly.
TEST(BoundedQueueTest, CapacityCloseAndDrain) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::ok);
  EXPECT_EQ(queue.try_push(2), PushResult::ok);
  EXPECT_EQ(queue.try_push(3), PushResult::full);  // full: fail fast
  EXPECT_EQ(queue.depth(), 2u);

  std::vector<int> out;
  EXPECT_EQ(queue.drain(out, 1), 1u);
  EXPECT_EQ(out.back(), 1);
  EXPECT_EQ(queue.try_push(3), PushResult::ok);

  queue.close();
  EXPECT_EQ(queue.try_push(4), PushResult::closed);  // closed: no new work
  EXPECT_TRUE(queue.wait_nonempty());  // ...but queued items stay drainable
  EXPECT_EQ(queue.drain(out, 10), 2u);
  EXPECT_FALSE(queue.wait_nonempty());  // closed and empty: sequencer exits
}

// closed wins over full: a closed-at-capacity queue reports teardown, not
// backpressure — retrying "overloaded" against a dead queue would spin.
TEST(BoundedQueueTest, ClosedTakesPrecedenceOverFull) {
  BoundedQueue<int> queue(1);
  EXPECT_EQ(queue.try_push(1), PushResult::ok);
  queue.close();
  EXPECT_EQ(queue.try_push(2), PushResult::closed);
}

// A deadline already in the past: wait_nonempty_until must not block, and
// must still report queued items truthfully.
TEST(BoundedQueueTest, WaitUntilPastDeadline) {
  BoundedQueue<int> queue(4);
  const auto past = std::chrono::steady_clock::now() - 1s;
  EXPECT_FALSE(queue.wait_nonempty_until(past));  // empty, expired: no block
  EXPECT_EQ(queue.try_push(7), PushResult::ok);
  EXPECT_TRUE(queue.wait_nonempty_until(past));  // expired but nonempty
}

// close() racing a consumer parked in wait_nonempty_until: the consumer
// must wake well before the (distant) deadline and see "closed and empty".
TEST(BoundedQueueTest, CloseWakesWaitingConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> woke{false};
  std::atomic<bool> saw_nonempty{true};
  std::thread consumer([&] {
    const auto far = std::chrono::steady_clock::now() + 60s;
    saw_nonempty.store(queue.wait_nonempty_until(far));
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(10ms);  // let the consumer park
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
  EXPECT_FALSE(saw_nonempty.load());
}

// Drain-after-close completeness: items accepted before close() are all
// recoverable afterwards, in order — graceful shutdown loses nothing.
TEST(BoundedQueueTest, DrainAfterCloseIsComplete) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.try_push(std::move(i)), PushResult::ok);
  queue.close();
  std::vector<int> out;
  // Drain in small bites to exercise repeated post-close drains.
  while (queue.drain(out, 2) > 0) {
  }
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(queue.wait_nonempty());
  EXPECT_EQ(queue.depth(), 0u);
}

// The store primitive: readers only see published elements.
TEST(AppendOnlyStoreTest, PublishGatesVisibility) {
  AppendOnlyStore<std::uint64_t> store(/*chunk_bits=*/2, /*max_chunks=*/4);
  EXPECT_EQ(store.size(), 0u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(store.append(i * 10), PushResult::ok);  // spans chunks
  }
  EXPECT_EQ(store.size(), 0u);  // appended but not yet published
  EXPECT_EQ(store.write_pos(), 6u);
  store.publish();
  ASSERT_EQ(store.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(store.at(i), i * 10);
}

// Capacity exhaustion is a typed refusal (the same vocabulary as the
// queue's backpressure), not an exception, and it leaves the store fully
// usable: published elements keep serving reads, later appends keep
// failing the same way.
TEST(AppendOnlyStoreTest, CapacityExhaustionIsTypedAndNonDestructive) {
  AppendOnlyStore<std::uint64_t> store(/*chunk_bits=*/2, /*max_chunks=*/4);
  EXPECT_EQ(store.capacity(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(store.append(i), PushResult::ok);
  // The exact boundary: element 16 is one past the last chunk slot.
  EXPECT_EQ(store.append(99), PushResult::full);
  EXPECT_EQ(store.append(99), PushResult::full);  // stays full, no throw
  EXPECT_EQ(store.write_pos(), 16u);              // refused appends left no trace
  store.publish();
  ASSERT_EQ(store.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(store.at(i), i);
}


#ifndef CTWATCH_OBS_DISABLED

// One submission's causal span tree: the submit span (caller thread), the
// sequencer's per-entry span, and the fanout dispatch span (dispatcher
// thread) share one trace id and chain parent -> child across all three
// threads — visible as two cross-thread flow links.
TEST(LogServiceTest, SubmissionSpanTreeCrossesThreeThreads) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  {
    Config config = fast_config("Svc Trace");
    LogService service(config);
    std::promise<void> streamed;
    service.subscribe("trace-probe", [&streamed](const StreamEvent& event) {
      if (event.index == 0) streamed.set_value();
    });
    const SubmitOutcome outcome = submit_wait(service, 900, kNow);
    ASSERT_EQ(outcome.status, SubmitStatus::ok);
    streamed.get_future().wait();
    service.stop();
  }
  tracer.set_enabled(false);

  const std::vector<obs::SpanRecord> spans = tracer.spans();
  const obs::SpanRecord* submit = nullptr;
  const obs::SpanRecord* seal_entry = nullptr;
  const obs::SpanRecord* dispatch = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "logsvc.submit") submit = &span;
    if (span.name == "logsvc.seal_entry") seal_entry = &span;
    if (span.name == "logsvc.fanout.dispatch") dispatch = &span;
  }
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(seal_entry, nullptr);
  ASSERT_NE(dispatch, nullptr);

  // One trace, parent chain submit -> seal_entry -> dispatch.
  EXPECT_NE(submit->trace_id, 0u);
  EXPECT_EQ(seal_entry->trace_id, submit->trace_id);
  EXPECT_EQ(dispatch->trace_id, submit->trace_id);
  EXPECT_EQ(seal_entry->parent_id, submit->id);
  EXPECT_EQ(dispatch->parent_id, seal_entry->id);

  // Three distinct threads: submitter, sequencer, fanout dispatcher.
  EXPECT_NE(submit->thread_id, seal_entry->thread_id);
  EXPECT_NE(seal_entry->thread_id, dispatch->thread_id);
  EXPECT_NE(submit->thread_id, dispatch->thread_id);

  // Both hand-offs appear as flow links (and so as chrome flow events).
  const std::vector<obs::FlowLink> links = obs::flow_links(spans);
  bool submit_to_seal = false;
  bool seal_to_dispatch = false;
  for (const obs::FlowLink& link : links) {
    if (link.parent_id == submit->id && link.child_id == seal_entry->id) submit_to_seal = true;
    if (link.parent_id == seal_entry->id && link.child_id == dispatch->id) {
      seal_to_dispatch = true;
    }
  }
  EXPECT_TRUE(submit_to_seal);
  EXPECT_TRUE(seal_to_dispatch);
  tracer.clear();
}

#endif  // CTWATCH_OBS_DISABLED

// Per-stage latency histograms fill during normal operation: every stage
// of a submission's journey lands at least one observation.
TEST(LogServiceTest, StageLatencyHistogramsObserveTraffic) {
  obs::Registry& registry = obs::Registry::global();
  obs::LogLinearHistogram& queue_wait = registry.latency("logsvc.queue_wait_us");
  obs::LogLinearHistogram& merge_delay = registry.latency("logsvc.merge_delay_us");
  obs::LogLinearHistogram& sign = registry.latency("logsvc.sign_us");
  obs::LogLinearHistogram& dispatch = registry.latency("logsvc.fanout_dispatch_us");
  const std::uint64_t queue_wait_before = queue_wait.count();
  const std::uint64_t merge_delay_before = merge_delay.count();
  const std::uint64_t sign_before = sign.count();
  const std::uint64_t dispatch_before = dispatch.count();

  {
    LogService service(fast_config("Svc Stage Metrics"));
    std::promise<void> streamed;
    service.subscribe("stage-probe", [&streamed](const StreamEvent& event) {
      if (event.index == 2) streamed.set_value();
    });
    for (std::uint64_t n = 0; n < 3; ++n) {
      ASSERT_EQ(submit_wait(service, 1000 + n, kNow).status, SubmitStatus::ok);
    }
    streamed.get_future().wait();
    service.stop();
  }

#ifndef CTWATCH_OBS_DISABLED
  EXPECT_GE(queue_wait.count(), queue_wait_before + 3);
  EXPECT_GE(merge_delay.count(), merge_delay_before + 1);
  EXPECT_GE(sign.count(), sign_before + 3);
  EXPECT_GE(dispatch.count(), dispatch_before + 3);
#else
  EXPECT_EQ(queue_wait.count(), 0u);
  EXPECT_EQ(merge_delay.count(), 0u);
  EXPECT_EQ(sign.count(), 0u);
  EXPECT_EQ(dispatch.count(), 0u);
#endif
}

}  // namespace
}  // namespace ctwatch::logsvc
