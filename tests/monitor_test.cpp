#include <gtest/gtest.h>

#include "ctwatch/monitor/passive_monitor.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/x509/oids.hpp"

namespace ctwatch::monitor {
namespace {

using crypto::SignatureScheme;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : ca_("Mon CA", "Mon Issuing CA", SignatureScheme::hmac_sha256_simulated),
        log_(make_config("Mon Log")),
        other_log_(make_config("Mon Log 2")),
        now_(SimTime::parse("2018-04-01 12:00:00")) {
    log_list_.add_log(log_, SimTime::parse("2015-01-01"), true);
    log_list_.add_log(other_log_, SimTime::parse("2016-01-01"), false);
  }

  static ct::LogConfig make_config(const std::string& name) {
    ct::LogConfig config;
    config.name = name;
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    config.verify_submissions = false;
    return config;
  }

  sim::IssuanceResult issue_with_ct(const std::string& cn) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    request.not_before = now_;
    request.not_after = now_ + 90 * 86400;
    request.logs = {&log_};
    return ca_.issue(request, now_);
  }

  tls::ConnectionRecord connection(const x509::Certificate& cert, SimTime when,
                                   bool signals = true) {
    tls::ConnectionRecord record;
    record.time = when;
    record.server_name = cert.tbs.subject.common_name;
    record.client_signals_sct = signals;
    record.certificate = std::make_shared<const x509::Certificate>(cert);
    record.issuer_public_key = std::make_shared<const Bytes>(ca_.public_key());
    return record;
  }

  sim::CertificateAuthority ca_;
  ct::CtLog log_;
  ct::CtLog other_log_;
  ct::LogList log_list_;
  SimTime now_;
};

TEST_F(MonitorTest, CountsEmbeddedSctConnections) {
  PassiveMonitor monitor(log_list_);
  const auto issued = issue_with_ct("www.example.org");
  monitor.process(connection(issued.final_certificate, now_));
  const MonitorTotals& totals = monitor.totals();
  EXPECT_EQ(totals.connections, 1u);
  EXPECT_EQ(totals.with_any_sct, 1u);
  EXPECT_EQ(totals.sct_in_cert, 1u);
  EXPECT_EQ(totals.sct_in_tls, 0u);
  EXPECT_EQ(totals.valid_scts, 1u);
  EXPECT_EQ(totals.invalid_scts, 0u);
  EXPECT_EQ(monitor.log_usage().at("Mon Log").cert_scts, 1u);
}

TEST_F(MonitorTest, CountsTlsExtensionScts) {
  PassiveMonitor monitor(log_list_);
  // Unlogged certificate, SCT delivered via the TLS extension.
  sim::IssuanceRequest request;
  request.subject_cn = "tls.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now_;
  request.not_after = now_ + 90 * 86400;
  const x509::Certificate cert = ca_.issue_unlogged(request, now_);
  const auto submitted = other_log_.add_chain(cert, ca_.public_key(), now_);
  ASSERT_TRUE(submitted.sct);

  tls::ConnectionRecord record = connection(cert, now_);
  record.tls_extension_scts =
      std::make_shared<const tls::SctList>(tls::SctList{*submitted.sct});
  monitor.process(record);

  EXPECT_EQ(monitor.totals().sct_in_tls, 1u);
  EXPECT_EQ(monitor.totals().sct_in_cert, 0u);
  EXPECT_EQ(monitor.totals().valid_scts, 1u);
  EXPECT_EQ(monitor.log_usage().at("Mon Log 2").tls_scts, 1u);
}

TEST_F(MonitorTest, TracksChannelOverlaps) {
  PassiveMonitor monitor(log_list_);
  const auto issued = issue_with_ct("both.example.org");
  const auto extra = other_log_.add_chain(issued.final_certificate, ca_.public_key(), now_);
  ASSERT_TRUE(extra.sct);
  tls::ConnectionRecord record = connection(issued.final_certificate, now_);
  record.tls_extension_scts = std::make_shared<const tls::SctList>(tls::SctList{*extra.sct});
  record.ocsp_scts = record.tls_extension_scts;
  monitor.process(record);
  EXPECT_EQ(monitor.totals().cert_and_tls, 1u);
  EXPECT_EQ(monitor.totals().cert_and_ocsp, 1u);
  EXPECT_EQ(monitor.totals().tls_and_ocsp, 1u);
}

TEST_F(MonitorTest, NoSctConnectionCounted) {
  PassiveMonitor monitor(log_list_);
  sim::IssuanceRequest request;
  request.subject_cn = "plain.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now_;
  request.not_after = now_ + 90 * 86400;
  const x509::Certificate cert = ca_.issue_unlogged(request, now_);
  monitor.process(connection(cert, now_));
  EXPECT_EQ(monitor.totals().connections, 1u);
  EXPECT_EQ(monitor.totals().with_any_sct, 0u);
}

TEST_F(MonitorTest, ClientSignalCounting) {
  PassiveMonitor monitor(log_list_);
  const auto issued = issue_with_ct("sig.example.org");
  monitor.process(connection(issued.final_certificate, now_, true));
  monitor.process(connection(issued.final_certificate, now_, false));
  monitor.process(connection(issued.final_certificate, now_, true));
  EXPECT_EQ(monitor.totals().client_signaled, 2u);
}

TEST_F(MonitorTest, DailyAggregationSplitsByDay) {
  PassiveMonitor monitor(log_list_);
  const auto issued = issue_with_ct("daily.example.org");
  monitor.process(connection(issued.final_certificate, SimTime::parse("2018-04-01 09:00:00")));
  monitor.process(connection(issued.final_certificate, SimTime::parse("2018-04-01 23:59:59")));
  monitor.process(connection(issued.final_certificate, SimTime::parse("2018-04-02 00:00:01")));
  ASSERT_EQ(monitor.daily().size(), 2u);
  EXPECT_EQ(monitor.daily().begin()->second.connections, 2u);
  EXPECT_EQ(std::next(monitor.daily().begin())->second.connections, 1u);
}

TEST_F(MonitorTest, InvalidSctRecordedOncePerCertificate) {
  PassiveMonitor monitor(log_list_);
  // A GlobalSign-style SAN reorder invalidates the embedded SCT.
  sim::IssuanceRequest request;
  request.subject_cn = "broken.example.org";
  request.sans = {x509::SanEntry::dns("broken.example.org"),
                  x509::SanEntry::dns("alt.example.org")};
  request.not_before = now_;
  request.not_after = now_ + 90 * 86400;
  request.logs = {&log_};
  request.bug = sim::IssuanceBug::san_reorder;
  const auto issued = ca_.issue(request, now_);

  const auto record = connection(issued.final_certificate, now_);
  monitor.process(record);
  monitor.process(record);  // same cert twice: analysis is cached
  EXPECT_EQ(monitor.totals().invalid_scts, 2u);        // per connection
  EXPECT_EQ(monitor.invalid_observations().size(), 1u);  // per certificate
  EXPECT_EQ(monitor.invalid_observations()[0].issuer_cn, "Mon Issuing CA");
  EXPECT_EQ(monitor.totals().unique_certificates, 1u);
}

TEST_F(MonitorTest, UnknownLogSctIsInvalid) {
  PassiveMonitor monitor(log_list_);
  ct::CtLog rogue(make_config("Rogue Log"));  // not in the log list
  sim::IssuanceRequest request;
  request.subject_cn = "rogue.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now_;
  request.not_after = now_ + 90 * 86400;
  request.logs = {&rogue};
  const auto issued = ca_.issue(request, now_);
  monitor.process(connection(issued.final_certificate, now_));
  EXPECT_EQ(monitor.totals().invalid_scts, 1u);
  EXPECT_EQ(monitor.log_usage().count("<unknown>"), 1u);
}

TEST_F(MonitorTest, CacheMakesRepeatProcessingCheap) {
  PassiveMonitor monitor(log_list_);
  const auto issued = issue_with_ct("cached.example.org");
  const auto record = connection(issued.final_certificate, now_);
  for (int i = 0; i < 1000; ++i) monitor.process(record);
  EXPECT_EQ(monitor.totals().connections, 1000u);
  EXPECT_EQ(monitor.totals().unique_certificates, 1u);
  EXPECT_EQ(monitor.totals().sct_in_cert, 1000u);
}

TEST_F(MonitorTest, ThrowsOnMissingCertificate) {
  PassiveMonitor monitor(log_list_);
  tls::ConnectionRecord record;
  record.time = now_;
  EXPECT_THROW(monitor.process(record), std::invalid_argument);
}

TEST(EmbeddedSctsTest, MalformedListYieldsEmpty) {
  x509::Certificate cert;
  cert.tbs.add_extension(
      x509::Extension{x509::oids::ct_sct_list(), false, Bytes{0xff, 0xff, 0x00}});
  EXPECT_TRUE(tls::embedded_scts(cert).empty());
}

}  // namespace
}  // namespace ctwatch::monitor
