// Randomized property sweeps across module boundaries: encode/decode
// round trips, signature soundness, Merkle proofs under random workloads.
// Each property runs over a set of seeds via TEST_P so failures name the
// offending seed.
#include <gtest/gtest.h>

#include "ctwatch/ct/auditor.hpp"
#include "ctwatch/dns/psl.hpp"
#include "ctwatch/gossip/gossip.hpp"
#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/par/par.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/util/rng.hpp"
#include "ctwatch/x509/redaction.hpp"

namespace ctwatch {
namespace {

using crypto::SignatureScheme;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

// ---------- encodings ----------

TEST_P(SeededProperty, HexRoundTripsRandomBuffers) {
  for (int i = 0; i < 50; ++i) {
    Bytes data(rng_.below(200));
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng_.below(256));
    EXPECT_EQ(hex_decode(hex_encode(data)), data);
  }
}

TEST_P(SeededProperty, Base64RoundTripsRandomBuffers) {
  for (int i = 0; i < 50; ++i) {
    Bytes data(rng_.below(200));
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng_.below(256));
    EXPECT_EQ(base64_decode(base64_encode(data)), data);
  }
}

TEST_P(SeededProperty, DerOctetStringsRoundTripAnyLength) {
  for (const std::size_t length : {0ul, 1ul, 127ul, 128ul, 255ul, 256ul, 65535ul, 65536ul}) {
    Bytes data(length);
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng_.below(256));
    const Bytes der = asn1::encode_octet_string(data);
    asn1::Parser parser(der);
    const asn1::Tlv tlv = parser.expect(asn1::kTagOctetString);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), tlv.value.begin()));
    EXPECT_TRUE(parser.done());
  }
}

// ---------- crypto ----------

TEST_P(SeededProperty, Sha256IncrementalAgreesOnRandomChunking) {
  Bytes data(1 + rng_.below(5000));
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng_.below(256));
  const auto expected = crypto::Sha256::hash(data);
  crypto::Sha256 h;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take = std::min<std::size_t>(1 + rng_.below(257), data.size() - offset);
    h.update(BytesView{data.data() + offset, take});
    offset += take;
  }
  EXPECT_EQ(hex_encode(crypto::digest_bytes(h.finish())),
            hex_encode(crypto::digest_bytes(expected)));
}

TEST_P(SeededProperty, EcdsaRejectsEveryBitFlipInSignature) {
  const auto key = crypto::EcdsaKeyPair::derive("prop-" + std::to_string(GetParam()));
  const Bytes message = to_bytes("property message " + std::to_string(GetParam()));
  const crypto::EcdsaSignature sig = key.sign(message);
  ASSERT_TRUE(crypto::ecdsa_verify(key.public_point(), message, sig));
  Bytes raw = sig.to_bytes();
  for (int i = 0; i < 8; ++i) {
    Bytes mangled = raw;
    const std::size_t byte = rng_.below(mangled.size());
    mangled[byte] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
    const auto bad = crypto::EcdsaSignature::from_bytes(mangled);
    EXPECT_FALSE(crypto::ecdsa_verify(key.public_point(), message, bad));
  }
}

TEST_P(SeededProperty, FieldArithmeticRingAxioms) {
  using namespace crypto;
  const U256& p = p256::prime();
  auto random_element = [&] {
    return modmath::reduce(U256(rng_(), rng_(), rng_(), rng_()), p);
  };
  for (int i = 0; i < 20; ++i) {
    const U256 a = random_element();
    const U256 b = random_element();
    const U256 c = random_element();
    // Commutativity and distributivity of the fast field multiply.
    EXPECT_EQ(p256::field_mul(a, b), p256::field_mul(b, a));
    const U256 left = p256::field_mul(a, modmath::add(b, c, p));
    const U256 right = modmath::add(p256::field_mul(a, b), p256::field_mul(a, c), p);
    EXPECT_EQ(left, right);
  }
}

// ---------- x509 ----------

TEST_P(SeededProperty, RandomCertificatesRoundTripThroughDer) {
  const auto ca = crypto::make_signer("prop-ca", SignatureScheme::hmac_sha256_simulated);
  const auto subject =
      crypto::make_signer("prop-subject", SignatureScheme::hmac_sha256_simulated);
  for (int i = 0; i < 20; ++i) {
    x509::CertificateBuilder builder;
    x509::DistinguishedName issuer;
    issuer.common_name = "CA " + rng_.alnum_label(6);
    if (rng_.chance(0.5)) issuer.organization = "Org " + rng_.alnum_label(4);
    if (rng_.chance(0.5)) issuer.country = "DE";
    builder.serial(rng_()).issuer(issuer).subject_cn(rng_.alnum_label(8) + ".example.org");
    const SimTime nb = SimTime::parse("2016-01-01") +
                       static_cast<std::int64_t>(rng_.below(700)) * 86400;
    builder.validity(nb, nb + static_cast<std::int64_t>(30 + rng_.below(700)) * 86400);
    builder.subject_key(*subject);
    const std::size_t san_count = rng_.below(5);
    for (std::size_t s = 0; s < san_count; ++s) {
      if (rng_.chance(0.8)) {
        builder.add_dns_san(rng_.alnum_label(6) + ".example.org");
      } else {
        builder.add_ip_san(net::IPv4(static_cast<std::uint32_t>(rng_())));
      }
    }
    if (rng_.chance(0.3)) builder.poison();
    const x509::Certificate cert = builder.sign(*ca);
    const x509::Certificate decoded = x509::Certificate::decode(cert.encode());
    EXPECT_EQ(decoded, cert);
    EXPECT_TRUE(decoded.verify(ca->public_key()));
  }
}

TEST_P(SeededProperty, RedactionNeverLeaksSubdomainLabels) {
  for (int i = 0; i < 30; ++i) {
    const std::string label = rng_.alnum_label(1 + rng_.below(12));
    const std::string name = label + "." + rng_.alnum_label(5) + ".org";
    const std::string redacted = x509::redact_dns_name(name);
    EXPECT_EQ(redacted.find(label + "."), std::string::npos) << name;
    EXPECT_TRUE(x509::is_redacted_name(redacted)) << redacted;
  }
}

// ---------- Merkle under random workloads ----------

TEST_P(SeededProperty, RandomTreeProofsAllVerify) {
  ct::MerkleTree tree;
  const std::uint64_t size = 1 + rng_.below(200);
  for (std::uint64_t i = 0; i < size; ++i) {
    tree.append(crypto::Sha256::hash(to_bytes("leaf" + std::to_string(rng_()))));
  }
  // Random (index, tree_size) inclusion checks.
  for (int i = 0; i < 30; ++i) {
    const std::uint64_t at = 1 + rng_.below(size);
    const std::uint64_t index = rng_.below(at);
    const auto proof = tree.inclusion_proof(index, at);
    EXPECT_TRUE(ct::verify_inclusion(tree.leaf(index), index, at, proof, tree.root_at(at)));
  }
  // Random consistency checks.
  for (int i = 0; i < 30; ++i) {
    const std::uint64_t newer = 1 + rng_.below(size);
    const std::uint64_t older = rng_.below(newer + 1);
    const auto proof = tree.consistency_proof(older, newer);
    EXPECT_TRUE(ct::verify_consistency(older, newer, tree.root_at(older), tree.root_at(newer),
                                       proof));
  }
}

// ---------- full issuance under random inputs ----------

TEST_P(SeededProperty, RandomIssuanceAlwaysProducesVerifiableScts) {
  ct::LogConfig config;
  config.name = "Prop Log " + std::to_string(GetParam());
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  ct::CtLog log(config);
  sim::CertificateAuthority ca("Prop CA", "Prop Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime base = SimTime::parse("2018-04-01");
  for (int i = 0; i < 15; ++i) {
    sim::IssuanceRequest request;
    request.subject_cn = rng_.alnum_label(8) + ".example.net";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    const std::size_t extra = rng_.below(3);
    for (std::size_t s = 0; s < extra; ++s) {
      request.sans.push_back(x509::SanEntry::dns(rng_.alnum_label(6) + ".example.net"));
    }
    request.not_before = base;
    request.not_after = base + static_cast<std::int64_t>(30 + rng_.below(400)) * 86400;
    request.logs = {&log};
    request.redact_subdomains = rng_.chance(0.3);
    const sim::IssuanceResult issued = ca.issue(request, base + i * 60);
    ASSERT_EQ(issued.scts.size(), 1u);
    const ct::SignedEntry entry =
        ct::make_precert_entry(issued.final_certificate, ca.public_key());
    EXPECT_TRUE(ct::verify_sct(issued.scts[0], entry, log.public_key()))
        << "iteration " << i << " redacted=" << request.redact_subdomains;
  }
  // The log's final STH covers everything and every entry proves inclusion.
  const ct::SignedTreeHead sth = log.get_sth(base + 86400);
  EXPECT_TRUE(ct::verify_sth(sth, log.public_key()));
  for (std::uint64_t i = 0; i < sth.tree_size; ++i) {
    EXPECT_TRUE(ct::LogAuditor::check_inclusion(log, i, sth));
  }
}

// ---------- PSL vs DnsName coherence ----------

TEST_P(SeededProperty, PslSplitReassemblesToOriginalName) {
  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  const std::vector<std::string> suffixes = {"com", "co.uk", "de", "tech", "gov.uk", "ck",
                                             "unknowntld"};
  for (int i = 0; i < 60; ++i) {
    std::string name = rng_.alnum_label(1 + rng_.below(8));
    const std::size_t depth = rng_.below(3);
    for (std::size_t d = 0; d < depth; ++d) name += "." + rng_.alnum_label(1 + rng_.below(8));
    name += "." + suffixes[rng_.below(suffixes.size())];
    const auto parsed = dns::DnsName::parse(name);
    if (!parsed) continue;
    const auto split = psl.split(*parsed);
    if (!split) continue;  // the name is itself a suffix
    const std::string rebuilt = split->subdomain_labels.empty()
                                    ? split->registrable_domain
                                    : split->subdomain() + "." + split->registrable_domain;
    EXPECT_EQ(rebuilt, parsed->to_string());
    // The registrable domain is the suffix plus exactly one more label.
    const auto registrable = dns::DnsName::parse(split->registrable_domain);
    ASSERT_TRUE(registrable);
    const auto suffix = dns::DnsName::parse(split->public_suffix);
    if (suffix) {
      EXPECT_EQ(registrable->label_count(), suffix->label_count() + 1);
      EXPECT_TRUE(registrable->is_subdomain_of(*suffix));
    }
  }
}

// ---------- parallel primitives ----------

TEST_P(SeededProperty, ParallelReduceMatchesSerialFoldAtRandomShapes) {
  struct Guard {
    ~Guard() { par::TaskPool::set_global_threads(0); }
  } guard;
  // String concatenation is associative but not commutative: the tree
  // merge must equal the serial left fold for every (n, grain, threads).
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = rng_.below(1200);
    const std::size_t grain = 1 + rng_.below(100);
    const unsigned threads = 1 + static_cast<unsigned>(rng_.below(8));
    par::TaskPool::set_global_threads(threads);

    std::string expected;
    for (std::size_t i = 0; i < n; ++i) expected += std::to_string(i) + ";";
    const std::string got = par::parallel_reduce(
        n, grain, std::string{},
        [](std::size_t, par::IndexRange range) {
          std::string part;
          for (std::size_t i = range.begin; i < range.end; ++i) {
            part += std::to_string(i) + ";";
          }
          return part;
        },
        [](std::string a, std::string b) { return std::move(a) + b; });
    EXPECT_EQ(got, expected) << "n=" << n << " grain=" << grain << " threads=" << threads;
  }
}

TEST_P(SeededProperty, ShardedTotalsAreInvariantUnderShardCount) {
  // Whatever the shard count, every key lands in exactly one shard: the
  // collapsed total is a constant of the data.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  const std::size_t count = 500 + rng_.below(3000);
  std::uint64_t reference = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t key = rng_();
    const std::uint64_t value = rng_.below(1000);
    entries.emplace_back(key, value);
    reference += value;
  }
  for (const std::size_t shard_count : {1u, 3u, 64u, 257u}) {
    par::ShardedAccumulator<std::uint64_t> shards(shard_count);
    for (const auto& [key, value] : entries) {
      shards.shard(shards.shard_of(key)) += value;
    }
    std::uint64_t total = 0;
    shards.collapse_into(total, [](std::uint64_t& target, std::uint64_t v) { target += v; });
    EXPECT_EQ(total, reference) << shard_count << " shards";
  }
}

// ---------- pooled name parsing vs the string path ----------

TEST_P(SeededProperty, PooledParseAndPslSplitAgreeWithStringPath) {
  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  namepool::NamePool pool;
  const std::vector<std::string> suffixes = {"com", "co.uk", "de", "tech", "gov.uk",
                                             "unknowntld"};
  for (int i = 0; i < 80; ++i) {
    // Random names, occasionally mangled into invalid shapes; parse()
    // and parse_into() must agree on validity and on every byte.
    std::string name = rng_.alnum_label(1 + rng_.below(10));
    const std::size_t depth = rng_.below(3);
    for (std::size_t d = 0; d < depth; ++d) name += "." + rng_.alnum_label(1 + rng_.below(10));
    name += "." + suffixes[rng_.below(suffixes.size())];
    if (rng_.chance(0.15)) name += ".";                       // trailing dot
    if (rng_.chance(0.15)) name[rng_.below(name.size())] = 'A';  // case folding
    if (rng_.chance(0.1)) name.insert(rng_.below(name.size()), ".");  // maybe ".."

    const auto parsed = dns::DnsName::parse(name);
    const auto ref = dns::DnsName::parse_into(pool, name);
    ASSERT_EQ(parsed.has_value(), ref.has_value()) << name;
    if (!parsed) continue;

    // Round trip through the pool reproduces the parsed name exactly.
    EXPECT_EQ(dns::DnsName::materialize(pool, *ref), *parsed) << name;
    EXPECT_EQ(pool.to_string(*ref), parsed->to_string()) << name;

    // The pooled PSL split agrees with the string split on every part.
    const auto split = psl.split(*parsed);
    const auto ref_split = psl.split(pool, *ref);
    ASSERT_EQ(split.has_value(), ref_split.has_value()) << name;
    if (!split) continue;
    EXPECT_EQ(pool.to_string(ref_split->public_suffix), split->public_suffix) << name;
    EXPECT_EQ(pool.to_string(ref_split->registrable_domain), split->registrable_domain)
        << name;
    EXPECT_EQ(ref_split->subdomain_label_count, split->subdomain_labels.size()) << name;
    if (ref_split->subdomain_label_count > 0) {
      EXPECT_EQ(pool.label(*ref, 0), split->subdomain_labels[0]) << name;
    }
  }
}

// ---------- gossip ----------

/// A random gossip topology over an equivocating log: every peer polls
/// one face; edges may be chaos-dead (a permanent link outage — the
/// edge exists but never delivers).
struct GossipTopology {
  std::size_t peers = 0;
  std::vector<bool> polls_right;                         // side per peer
  std::vector<std::pair<std::size_t, std::size_t>> alive;
  std::vector<std::pair<std::size_t, std::size_t>> dead;

  [[nodiscard]] std::string describe() const {
    std::string out = "peers=" + std::to_string(peers) + " sides=";
    for (const bool r : polls_right) out += r ? 'R' : 'L';
    out += " alive={";
    for (const auto& [a, b] : alive) out += std::to_string(a) + "-" + std::to_string(b) + " ";
    out += "} dead={";
    for (const auto& [a, b] : dead) out += std::to_string(a) + "-" + std::to_string(b) + " ";
    return out + "}";
  }
};

/// The oracle: detection must occur iff some connected component of the
/// ALIVE gossip graph contains peers polling both faces (only then can
/// any actor ever hold signed heads from both sides of the fork).
bool gossip_partitions_connected(const GossipTopology& topology) {
  std::vector<std::size_t> parent(topology.peers);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& [a, b] : topology.alive) parent[find(a)] = find(b);
  std::vector<std::uint8_t> has_left(topology.peers, 0), has_right(topology.peers, 0);
  for (std::size_t i = 0; i < topology.peers; ++i) {
    (topology.polls_right[i] ? has_right : has_left)[find(i)] = 1;
  }
  for (std::size_t i = 0; i < topology.peers; ++i) {
    if (has_left[i] && has_right[i]) return true;
  }
  return false;
}

/// Runs the real machinery (two LogService faces, chaos-killed links,
/// flood-fanout gossip) and reports whether a verdict fired.
bool gossip_trial_detects(const GossipTopology& topology, std::uint64_t seed) {
  gossip::EquivocationPlan plan;
  plan.base.name = "Property Equivocator";
  plan.base.scheme = SignatureScheme::hmac_sha256_simulated;
  plan.base.merge_delay = std::chrono::microseconds(500);
  plan.fork_index = 1;
  gossip::EquivocatingLog log(plan);
  const SimTime start = SimTime::parse("2018-04-01");
  log.grow(3, start);

  chaos::FaultInjector injector(seed);
  chaos::FaultPlan dead_plan;
  dead_plan.outages.push_back(chaos::OutageWindow{0, ~std::uint64_t{0}});
  dead_plan.outage_kind = chaos::FaultKind::error;
  for (const auto& [a, b] : topology.dead) {
    injector.plan("gossip.link." + std::to_string(std::min(a, b)) + "-" +
                      std::to_string(std::max(a, b)),
                  dead_plan);
  }

  gossip::NetConfig config;
  config.fanout = topology.peers;  // flood: fanout covers every neighbour
  config.seed = seed;
  config.chaos = &injector;
  gossip::GossipNet net(config, log.public_key());
  for (std::size_t i = 0; i < topology.peers; ++i) {
    net.add_peer(log.view(topology.polls_right[i] ? gossip::Side::right : gossip::Side::left));
  }
  for (const auto& [a, b] : topology.alive) net.connect(a, b);
  for (const auto& [a, b] : topology.dead) net.connect(a, b);  // present but chaos-dead

  const std::uint64_t rounds = topology.peers + 4;  // >= graph diameter + slack
  for (std::uint64_t round = 1; round <= rounds && !net.detected(); ++round) {
    net.step(SimTime{start.unix_seconds() + static_cast<std::int64_t>(round) * 60});
  }
  return net.detected();
}

TEST_P(SeededProperty, GossipDetectsIffPartitionsAreGossipConnected) {
  for (int iteration = 0; iteration < 3; ++iteration) {
    GossipTopology topology;
    topology.peers = 4 + rng_.below(5);
    topology.polls_right.resize(topology.peers, false);
    for (std::size_t i = 0; i < topology.peers; ++i) topology.polls_right[i] = rng_.chance(0.5);
    topology.polls_right[0] = false;  // at least one peer per side
    topology.polls_right[1] = true;
    for (std::size_t a = 0; a < topology.peers; ++a) {
      for (std::size_t b = a + 1; b < topology.peers; ++b) {
        if (!rng_.chance(0.3)) continue;
        (rng_.chance(0.3) ? topology.dead : topology.alive).emplace_back(a, b);
      }
    }
    const std::uint64_t seed = GetParam() * 1000 + static_cast<std::uint64_t>(iteration);

    const bool expected = gossip_partitions_connected(topology);
    const bool detected = gossip_trial_detects(topology, seed);
    if (detected == expected) continue;

    // Shrink: drop edges one at a time while the disagreement persists,
    // then report the minimal failing topology for replay.
    GossipTopology minimal = topology;
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (auto* edges : {&minimal.alive, &minimal.dead}) {
        for (std::size_t e = 0; e < edges->size(); ++e) {
          GossipTopology candidate = minimal;
          auto& candidate_edges = edges == &minimal.alive ? candidate.alive : candidate.dead;
          candidate_edges.erase(candidate_edges.begin() + static_cast<std::ptrdiff_t>(e));
          if (gossip_trial_detects(candidate, seed) != gossip_partitions_connected(candidate)) {
            minimal = std::move(candidate);
            shrunk = true;
            break;
          }
        }
        if (shrunk) break;
      }
    }
    ADD_FAILURE() << "gossip detection disagreed with the connectivity oracle\n"
                  << "  seed " << seed << ": detected=" << detected << " expected=" << expected
                  << "\n  original: " << topology.describe()
                  << "\n  minimal:  " << minimal.describe();
    return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 0xdeadbeefull, 0x5eedull));

}  // namespace
}  // namespace ctwatch
