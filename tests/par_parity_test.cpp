// Differential parity harness for ctwatch::par: every parallelized
// pipeline stage must produce byte-identical output at 1, 2 and 8
// threads — including under an active chaos FaultPlan. Each test runs
// the same workload once per thread count via
// TaskPool::set_global_threads and compares complete result structures
// (or rendered artifact strings) against the single-thread baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ctwatch/chaos/chaos.hpp"
#include "ctwatch/core/leakage.hpp"
#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/enumeration/enumerator.hpp"
#include "ctwatch/monitor/passive_monitor.hpp"
#include "ctwatch/par/par.hpp"
#include "ctwatch/phishing/detector.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/sim/domains.hpp"

namespace ctwatch {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/// Restores the auto-resolved global pool when a test body exits,
/// however it exits.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { par::TaskPool::set_global_threads(0); }
};

// ---------- census ----------

/// Everything the census exposes, captured as owning strings so two
/// fingerprints from different censuses (different pools) compare by
/// content.
struct CensusFingerprint {
  enumeration::ExtractionStats stats;
  std::map<std::string, std::uint64_t> label_counts;
  std::map<std::string, std::map<std::string, std::uint64_t>> label_suffix_counts;
  std::map<std::string, std::set<std::string>> domains_by_suffix;
  std::vector<std::pair<std::string, std::uint64_t>> top_labels;
  std::map<std::string, std::string> top_label_per_suffix;
  std::uint64_t total_label_occurrences = 0;
};

CensusFingerprint fingerprint(const enumeration::SubdomainCensus& census) {
  CensusFingerprint fp;
  fp.stats = census.stats();
  fp.label_counts = census.label_counts();
  fp.label_suffix_counts = census.label_suffix_counts();
  fp.domains_by_suffix = census.domains_by_suffix();
  fp.top_labels = census.top_labels(25);
  fp.top_label_per_suffix = census.top_label_per_suffix();
  fp.total_label_occurrences = census.total_label_occurrences();
  return fp;
}

void expect_equal(const CensusFingerprint& got, const CensusFingerprint& want,
                  unsigned threads) {
  EXPECT_EQ(got.stats.valid_fqdns, want.stats.valid_fqdns) << "threads=" << threads;
  EXPECT_EQ(got.stats.invalid_rejected, want.stats.invalid_rejected) << "threads=" << threads;
  EXPECT_EQ(got.stats.duplicates, want.stats.duplicates) << "threads=" << threads;
  EXPECT_EQ(got.stats.redacted, want.stats.redacted) << "threads=" << threads;
  EXPECT_EQ(got.stats.names_in, want.stats.names_in) << "threads=" << threads;
  EXPECT_EQ(got.label_counts, want.label_counts) << "threads=" << threads;
  EXPECT_EQ(got.label_suffix_counts, want.label_suffix_counts) << "threads=" << threads;
  EXPECT_EQ(got.domains_by_suffix, want.domains_by_suffix) << "threads=" << threads;
  EXPECT_EQ(got.top_labels, want.top_labels) << "threads=" << threads;
  EXPECT_EQ(got.top_label_per_suffix, want.top_label_per_suffix) << "threads=" << threads;
  EXPECT_EQ(got.total_label_occurrences, want.total_label_occurrences)
      << "threads=" << threads;
}

/// A mixed CT-extract: enough names to spread over many chunks and all 64
/// shards, with duplicates, case aliases, redaction and junk sprinkled in.
std::vector<std::string> census_workload() {
  std::vector<std::string> names;
  const char* labels[] = {"www", "mail", "api", "dev", "shop", "cdn", "vpn", "db"};
  const char* suffixes[] = {"de", "fr", "tech", "co.uk"};
  for (int i = 0; i < 3000; ++i) {
    const std::string domain = "host" + std::to_string(i % 700);
    names.push_back(std::string(labels[i % 8]) + "." + domain + "." + suffixes[i % 4]);
    if (i % 11 == 0) names.push_back("WWW." + domain + ".DE.");  // case/dot alias
    if (i % 17 == 0) names.push_back("?." + domain + ".de");     // redacted
    if (i % 23 == 0) names.push_back("bad..name" + std::to_string(i) + ".com");
    if (i % 29 == 0) names.push_back(domain + ".de");            // apex, no subdomain
  }
  return names;
}

TEST(ParParityTest, CensusIsByteIdenticalAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  const std::vector<std::string> names = census_workload();
  // Split into two batches so cross-call dedup state is exercised too.
  const std::size_t half = names.size() / 2;
  const std::vector<std::string> first(names.begin(), names.begin() + half);
  const std::vector<std::string> second(names.begin() + half, names.end());

  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  CensusFingerprint baseline;
  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    enumeration::SubdomainCensus census(psl);
    census.add_names(first);
    census.add_names(second);
    const CensusFingerprint fp = fingerprint(census);
    if (threads == 1) {
      baseline = fp;
      EXPECT_GT(baseline.stats.valid_fqdns, 0u);
      EXPECT_GT(baseline.stats.duplicates, 0u);
      EXPECT_GT(baseline.stats.redacted, 0u);
    } else {
      expect_equal(fp, baseline, threads);
    }
  }
}

// ---------- the DNS-verification funnel ----------

void expect_equal(const enumeration::FunnelResult& got,
                  const enumeration::FunnelResult& want, unsigned threads) {
  EXPECT_EQ(got.labels_selected, want.labels_selected) << "threads=" << threads;
  EXPECT_EQ(got.label_suffix_pairs, want.label_suffix_pairs) << "threads=" << threads;
  EXPECT_EQ(got.candidates, want.candidates) << "threads=" << threads;
  EXPECT_EQ(got.unique_candidates, want.unique_candidates) << "threads=" << threads;
  EXPECT_EQ(got.test_replies, want.test_replies) << "threads=" << threads;
  EXPECT_EQ(got.test_unanswered, want.test_unanswered) << "threads=" << threads;
  EXPECT_EQ(got.control_replies, want.control_replies) << "threads=" << threads;
  EXPECT_EQ(got.unroutable_dropped, want.unroutable_dropped) << "threads=" << threads;
  EXPECT_EQ(got.chain_too_long, want.chain_too_long) << "threads=" << threads;
  EXPECT_EQ(got.control_rejected, want.control_rejected) << "threads=" << threads;
  EXPECT_EQ(got.confirmed, want.confirmed) << "threads=" << threads;
  EXPECT_EQ(got.known_in_sonar, want.known_in_sonar) << "threads=" << threads;
  EXPECT_EQ(got.novel, want.novel) << "threads=" << threads;
  EXPECT_EQ(got.lost_test_queries, want.lost_test_queries) << "threads=" << threads;
  EXPECT_EQ(got.lost_control_queries, want.lost_control_queries) << "threads=" << threads;
  EXPECT_EQ(got.dns_timeouts, want.dns_timeouts) << "threads=" << threads;
  EXPECT_EQ(got.dns_servfails, want.dns_servfails) << "threads=" << threads;
  EXPECT_EQ(got.dns_retries, want.dns_retries) << "threads=" << threads;
  EXPECT_EQ(got.discoveries, want.discoveries) << "threads=" << threads;
}

/// The enumeration_test mini-world, scaled up with bulk zones so the
/// chunked funnel actually fans out: target1 has the name, target2 is
/// empty, target3 catch-alls, target4 answers unroutably; every even
/// bulk zone really has api.<zone>.
class ParityFunnelFixture {
 public:
  ParityFunnelFixture() : psl_(dns::PublicSuffixList::bundled()), census_(psl_) {
    census_.add_names(std::vector<std::string>{"api.seen1.de", "api.seen2.de",
                                               "api.seen3.de", "www.seen1.de",
                                               "www.seen2.de", "rare.seen1.de"});
    server_.set_logging(false);
    auto& z1 = server_.add_zone(dns::DnsName::parse_or_throw("target1.de"));
    z1.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api.target1.de"),
                               dns::RrType::A, 300, net::IPv4(100, 64, 0, 1)});
    server_.add_zone(dns::DnsName::parse_or_throw("target2.de"));
    auto& z3 = server_.add_zone(dns::DnsName::parse_or_throw("target3.de"));
    z3.set_default_a(net::IPv4(100, 64, 0, 3));
    auto& z4 = server_.add_zone(dns::DnsName::parse_or_throw("target4.de"));
    z4.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api.target4.de"),
                               dns::RrType::A, 300, net::IPv4(203, 0, 113, 9)});
    for (int i = 0; i < 40; ++i) {
      const std::string domain = "bulk" + std::to_string(i) + ".de";
      auto& zone = server_.add_zone(dns::DnsName::parse_or_throw(domain));
      if (i % 2 == 0) {
        zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api." + domain),
                                     dns::RrType::A, 300,
                                     net::IPv4(100, 64, 1, static_cast<std::uint8_t>(i))});
      }
      domains_.push_back(domain);
    }
    universe_.add_server(server_);
    routing_.add_route(*net::Prefix4::parse("100.64.0.0/10"));
    sonar_.insert("api.bulk0.de");
  }

  enumeration::FunnelResult run(const enumeration::EnumerationOptions& opts) {
    const dns::RecursiveResolver resolver(
        universe_,
        dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "t", false});
    enumeration::SubdomainEnumerator enumerator(census_, psl_, opts);
    Rng rng(1);
    return enumerator.run(domains_, sonar_, resolver, routing_, rng,
                          SimTime::parse("2018-04-27"));
  }

  dns::PublicSuffixList psl_;
  enumeration::SubdomainCensus census_;
  dns::AuthoritativeServer server_;
  dns::DnsUniverse universe_;
  net::RoutingTable routing_;
  std::vector<std::string> domains_ = {"target1.de", "target2.de", "target3.de",
                                       "target4.de"};
  std::set<std::string> sonar_;
};

TEST(ParParityTest, FunnelIsByteIdenticalAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  enumeration::EnumerationOptions opts;
  opts.min_label_count = 2;

  enumeration::FunnelResult baseline;
  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    // A fresh world per thread count: candidate composition interns into
    // the census pool, so unique_candidates is only meaningful on a
    // first run.
    ParityFunnelFixture world;
    const enumeration::FunnelResult result = world.run(opts);
    if (threads == 1) {
      baseline = result;
      EXPECT_GT(baseline.candidates, 0u);
      EXPECT_GT(baseline.confirmed, 0u);
      EXPECT_GT(baseline.known_in_sonar, 0u);
      EXPECT_TRUE(baseline.conserves());
    } else {
      expect_equal(result, baseline, threads);
    }
  }
}

TEST(ParParityTest, FunnelUnderActiveChaosIsByteIdenticalAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  enumeration::EnumerationOptions opts;
  opts.min_label_count = 2;
  opts.dns_max_retries = 1;

  chaos::FaultPlan flaky;
  flaky.error_probability = 0.4;
  flaky.timeout_fraction = 0.5;

  enumeration::FunnelResult baseline;
  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    // Fresh world and injector per run: fault draws are keyed by
    // per-chunk streams and per-name ordinals, so identical wiring must
    // yield identical loss at any thread count.
    ParityFunnelFixture world;
    chaos::FaultInjector injector(1234);
    injector.plan("dns.auth", flaky);
    world.server_.set_chaos(&injector);
    const enumeration::FunnelResult result = world.run(opts);
    world.server_.set_chaos(nullptr);
    if (threads == 1) {
      baseline = result;
      EXPECT_GT(baseline.lost_test_queries + baseline.dns_retries, 0u);
      EXPECT_TRUE(baseline.conserves());
    } else {
      expect_equal(result, baseline, threads);
    }
  }
}

// ---------- Table 2 / funnel renders via the full LeakageStudy ----------

TEST(ParParityTest, LeakageStudyArtifactsRenderIdenticallyAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  sim::DomainCorpusOptions corpus_options;
  corpus_options.registrable_count = 4000;
  corpus_options.label_scale = 1.0 / 1000.0;
  enumeration::EnumerationOptions options;
  options.min_label_count = 10;

  std::string baseline_table2;
  std::string baseline_funnel;
  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    // A fresh corpus per thread count: the study's census interns into
    // the corpus pool, so reuse would conflate runs.
    sim::DomainCorpus corpus(corpus_options);
    core::LeakageStudy study(corpus);
    const core::LeakageReport report = study.run(options);
    const std::string table2 = core::LeakageStudy::render_table2(report);
    const std::string funnel = core::LeakageStudy::render_funnel(report);
    if (threads == 1) {
      baseline_table2 = table2;
      baseline_funnel = funnel;
      EXPECT_GT(report.funnel.candidates, 0u);
      EXPECT_GT(report.funnel.confirmed, 0u);
      ASSERT_FALSE(report.top_labels.empty());
      EXPECT_EQ(report.top_labels[0].first, "www");
    } else {
      EXPECT_EQ(table2, baseline_table2) << "threads=" << threads;
      EXPECT_EQ(funnel, baseline_funnel) << "threads=" << threads;
    }
  }
}

// ---------- phishing scan ----------

TEST(ParParityTest, PhishingScanIsByteIdenticalAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  // Enough names for several 256-grain chunks, with hits, misses,
  // invalid junk and legitimate-brand exclusions interleaved.
  std::vector<std::string> names;
  for (int i = 0; i < 2000; ++i) {
    names.push_back("shop" + std::to_string(i) + ".site" + std::to_string(i % 97) + ".de");
    if (i % 31 == 0) names.push_back("appleid.apple.com-" + std::to_string(i) + ".gq");
    if (i % 47 == 0) names.push_back("paypal.com-account" + std::to_string(i) + ".money");
    if (i % 53 == 0) names.push_back("accounts.google.com");  // legitimate
    if (i % 61 == 0) names.push_back("bad..name" + std::to_string(i) + ".com");
  }

  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  std::vector<phishing::Finding> baseline;
  std::uint64_t baseline_scanned = 0, baseline_skipped = 0, baseline_regex = 0;
  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    phishing::PhishingDetector detector(psl, phishing::standard_rules());
    const std::vector<phishing::Finding> findings = detector.scan(names);
    if (threads == 1) {
      baseline = findings;
      baseline_scanned = detector.names_scanned();
      baseline_skipped = detector.names_skipped();
      baseline_regex = detector.regex_evaluations();
      EXPECT_GT(baseline.size(), 0u);
      EXPECT_GT(baseline_skipped, 0u);
    } else {
      ASSERT_EQ(findings.size(), baseline.size()) << "threads=" << threads;
      for (std::size_t i = 0; i < findings.size(); ++i) {
        EXPECT_EQ(findings[i].brand, baseline[i].brand) << "threads=" << threads;
        EXPECT_EQ(findings[i].fqdn, baseline[i].fqdn) << "threads=" << threads;
        EXPECT_EQ(findings[i].public_suffix, baseline[i].public_suffix)
            << "threads=" << threads;
        EXPECT_EQ(findings[i].registrable_domain, baseline[i].registrable_domain)
            << "threads=" << threads;
      }
      EXPECT_EQ(detector.names_scanned(), baseline_scanned) << "threads=" << threads;
      EXPECT_EQ(detector.names_skipped(), baseline_skipped) << "threads=" << threads;
      EXPECT_EQ(detector.regex_evaluations(), baseline_regex) << "threads=" << threads;
    }
  }
}

// ---------- passive monitor batch replay ----------

class ParityMonitorWorld {
 public:
  ParityMonitorWorld()
      : ca_("Par CA", "Par Issuing CA", crypto::SignatureScheme::hmac_sha256_simulated),
        log_(make_config("Par Log")),
        now_(SimTime::parse("2018-04-01 12:00:00")) {
    log_list_.add_log(log_, SimTime::parse("2015-01-01"), true);
  }

  static ct::LogConfig make_config(const std::string& name) {
    ct::LogConfig config;
    config.name = name;
    config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    config.verify_submissions = false;
    return config;
  }

  /// A batch mixing logged certs (repeated: cache hits), an unlogged
  /// cert, a broken-SCT cert, and a second day.
  std::vector<tls::ConnectionRecord> build_batch() {
    std::vector<tls::ConnectionRecord> records;
    std::vector<x509::Certificate> certs;
    for (int i = 0; i < 6; ++i) {
      sim::IssuanceRequest request;
      request.subject_cn = "host" + std::to_string(i) + ".example.org";
      request.sans = {x509::SanEntry::dns(request.subject_cn)};
      request.not_before = now_;
      request.not_after = now_ + 90 * 86400;
      if (i != 4) request.logs = {&log_};
      if (i == 5) {
        request.sans.push_back(x509::SanEntry::dns("alt" + std::to_string(i) + ".org"));
        request.bug = sim::IssuanceBug::san_reorder;  // invalid embedded SCT
      }
      certs.push_back(i == 4 ? ca_.issue_unlogged(request, now_)
                             : ca_.issue(request, now_).final_certificate);
    }
    // One shared_ptr per certificate: the monitor's analysis cache is
    // keyed by certificate identity (pointer), matching a real capture
    // where repeated connections present the same parsed object.
    std::vector<std::shared_ptr<const x509::Certificate>> shared;
    for (const x509::Certificate& cert : certs) {
      shared.push_back(std::make_shared<const x509::Certificate>(cert));
    }
    const auto issuer_key = std::make_shared<const Bytes>(ca_.public_key());
    for (int r = 0; r < 30; ++r) {
      const auto& cert = shared[static_cast<std::size_t>(r) % shared.size()];
      tls::ConnectionRecord record;
      record.time = now_ + (r >= 20 ? 86400 : 0) + r;  // two days, in order
      record.server_name = cert->tbs.subject.common_name;
      record.client_signals_sct = (r % 3 != 0);
      record.certificate = cert;
      record.issuer_public_key = issuer_key;
      records.push_back(std::move(record));
    }
    return records;
  }

  sim::CertificateAuthority ca_;
  ct::CtLog log_;
  ct::LogList log_list_;
  SimTime now_;
};

void expect_equal(const monitor::PassiveMonitor& got, const monitor::PassiveMonitor& want,
                  unsigned threads) {
  const monitor::MonitorTotals& g = got.totals();
  const monitor::MonitorTotals& w = want.totals();
  EXPECT_EQ(g.connections, w.connections) << "threads=" << threads;
  EXPECT_EQ(g.with_any_sct, w.with_any_sct) << "threads=" << threads;
  EXPECT_EQ(g.sct_in_cert, w.sct_in_cert) << "threads=" << threads;
  EXPECT_EQ(g.sct_in_tls, w.sct_in_tls) << "threads=" << threads;
  EXPECT_EQ(g.sct_in_ocsp, w.sct_in_ocsp) << "threads=" << threads;
  EXPECT_EQ(g.client_signaled, w.client_signaled) << "threads=" << threads;
  EXPECT_EQ(g.valid_scts, w.valid_scts) << "threads=" << threads;
  EXPECT_EQ(g.invalid_scts, w.invalid_scts) << "threads=" << threads;
  EXPECT_EQ(g.unique_certificates, w.unique_certificates) << "threads=" << threads;
  EXPECT_EQ(g.unique_certs_with_embedded_sct, w.unique_certs_with_embedded_sct)
      << "threads=" << threads;

  ASSERT_EQ(got.daily().size(), want.daily().size()) << "threads=" << threads;
  auto it = want.daily().begin();
  for (const auto& [day, counters] : got.daily()) {
    EXPECT_EQ(day, it->first) << "threads=" << threads;
    EXPECT_EQ(counters.connections, it->second.connections) << "threads=" << threads;
    EXPECT_EQ(counters.with_any_sct, it->second.with_any_sct) << "threads=" << threads;
    EXPECT_EQ(counters.sct_in_cert, it->second.sct_in_cert) << "threads=" << threads;
    ++it;
  }

  ASSERT_EQ(got.log_usage().size(), want.log_usage().size()) << "threads=" << threads;
  for (const auto& [name, usage] : got.log_usage()) {
    const auto found = want.log_usage().find(name);
    ASSERT_NE(found, want.log_usage().end()) << name << " threads=" << threads;
    EXPECT_EQ(usage.cert_scts, found->second.cert_scts) << "threads=" << threads;
    EXPECT_EQ(usage.tls_scts, found->second.tls_scts) << "threads=" << threads;
    EXPECT_EQ(usage.ocsp_scts, found->second.ocsp_scts) << "threads=" << threads;
  }

  ASSERT_EQ(got.invalid_observations().size(), want.invalid_observations().size())
      << "threads=" << threads;
  for (std::size_t i = 0; i < got.invalid_observations().size(); ++i) {
    EXPECT_EQ(got.invalid_observations()[i].server_name,
              want.invalid_observations()[i].server_name)
        << "threads=" << threads;
    EXPECT_EQ(got.invalid_observations()[i].issuer_cn,
              want.invalid_observations()[i].issuer_cn)
        << "threads=" << threads;
    EXPECT_EQ(got.invalid_observations()[i].certificate_fingerprint,
              want.invalid_observations()[i].certificate_fingerprint)
        << "threads=" << threads;
  }

  EXPECT_EQ(got.daily_top_sct_server(), want.daily_top_sct_server())
      << "threads=" << threads;
}

TEST(ParParityTest, MonitorBatchReplayMatchesSerialProcessAtEveryThreadCount) {
  GlobalThreadsGuard guard;
  ParityMonitorWorld world;
  const std::vector<tls::ConnectionRecord> records = world.build_batch();

  // The reference monitor consumes the stream strictly serially.
  par::TaskPool::set_global_threads(1);
  monitor::PassiveMonitor reference(world.log_list_);
  for (const auto& record : records) reference.process(record);
  EXPECT_GT(reference.totals().invalid_scts, 0u);
  EXPECT_EQ(reference.totals().unique_certificates, 6u);

  for (unsigned threads : kThreadCounts) {
    par::TaskPool::set_global_threads(threads);
    monitor::PassiveMonitor batched(world.log_list_);
    batched.process_batch(records);
    expect_equal(batched, reference, threads);
  }
}

}  // namespace
}  // namespace ctwatch
