// Tests for the extension features: label redaction, the crt.sh-like
// index, the domain-watch notification service, overload-driven
// disqualification and Fig. 2 peak attribution.
#include <gtest/gtest.h>

#include "ctwatch/core/adoption.hpp"
#include "ctwatch/ct/index.hpp"
#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/sim/domains.hpp"
#include "ctwatch/sim/traffic.hpp"
#include "ctwatch/sim/ecosystem.hpp"
#include "ctwatch/x509/redaction.hpp"

namespace ctwatch {
namespace {

using crypto::SignatureScheme;

// ---------- redaction primitives ----------

TEST(RedactionTest, RedactsSubdomainLabelsOnly) {
  EXPECT_EQ(x509::redact_dns_name("www.example.com"), "?.example.com");
  EXPECT_EQ(x509::redact_dns_name("a.b.c.example.com"), "?.example.com");
  EXPECT_EQ(x509::redact_dns_name("example.com"), "example.com");  // nothing to hide
  EXPECT_EQ(x509::redact_dns_name("www.example.co.uk", 3), "?.example.co.uk");
}

TEST(RedactionTest, RecognizesRedactedNames) {
  EXPECT_TRUE(x509::is_redacted_name("?.example.com"));
  EXPECT_FALSE(x509::is_redacted_name("www.example.com"));
  EXPECT_FALSE(x509::is_redacted_name("x?.example.com"));
}

TEST(RedactionTest, RedactedTbsIsIdempotent) {
  const auto key = crypto::make_signer("redact-key", SignatureScheme::hmac_sha256_simulated);
  x509::CertificateBuilder builder;
  builder.serial(1)
      .subject_cn("www.example.org")
      .validity(SimTime::parse("2018-01-01"), SimTime::parse("2018-06-01"))
      .subject_key(*key)
      .add_dns_san("www.example.org")
      .add_dns_san("api.dev.example.org")
      .add_ip_san(net::IPv4(192, 0, 2, 1));
  const x509::TbsCertificate tbs = builder.build_tbs();
  const x509::TbsCertificate once = x509::redacted_tbs(tbs);
  const x509::TbsCertificate twice = x509::redacted_tbs(once);
  EXPECT_EQ(once.encode(), twice.encode());
  // DNS SANs redacted, IP SANs untouched.
  const auto sans = once.san_entries();
  ASSERT_EQ(sans.size(), 3u);
  EXPECT_EQ(sans[0].dns_name, "?.example.org");
  EXPECT_EQ(sans[1].dns_name, "?.example.org");
  EXPECT_EQ(sans[2].kind, x509::SanEntry::Kind::ip);  // IP SANs survive untouched
  EXPECT_EQ(once.subject.common_name, "?.example.org");
}

// ---------- redacted issuance end to end ----------

class RedactedIssuanceTest : public ::testing::Test {
 protected:
  RedactedIssuanceTest()
      : ca_("Redacting CA", "Redacting Issuing CA", SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-04-01")) {
    ct::LogConfig config;
    config.name = "Redaction Log";
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    log_ = std::make_unique<ct::CtLog>(config);
  }

  sim::IssuanceResult issue_redacted() {
    sim::IssuanceRequest request;
    request.subject_cn = "secret-project.internal.example.org";
    request.sans = {x509::SanEntry::dns("secret-project.internal.example.org")};
    request.not_before = now_;
    request.not_after = now_ + 90 * 86400;
    request.logs = {log_.get()};
    request.redact_subdomains = true;
    return ca_.issue(request, now_);
  }

  sim::CertificateAuthority ca_;
  std::unique_ptr<ct::CtLog> log_;
  SimTime now_;
};

TEST_F(RedactedIssuanceTest, LogNeverSeesTheSecretLabel) {
  issue_redacted();
  ASSERT_EQ(log_->entries().size(), 1u);
  const auto names = log_->entries()[0].certificate.tbs.dns_names();
  for (const std::string& name : names) {
    EXPECT_EQ(name.find("secret-project"), std::string::npos) << name;
  }
  // But the redacted form is there (the existence of *a* name still leaks).
  const auto sans = log_->entries()[0].certificate.tbs.san_entries();
  ASSERT_FALSE(sans.empty());
  EXPECT_EQ(sans[0].dns_name, "?.example.org");
}

TEST_F(RedactedIssuanceTest, FinalCertKeepsRealNamesAndSctVerifies) {
  const sim::IssuanceResult issued = issue_redacted();
  const auto sans = issued.final_certificate.tbs.san_entries();
  ASSERT_FALSE(sans.empty());
  EXPECT_EQ(sans[0].dns_name, "secret-project.internal.example.org");
  EXPECT_TRUE(x509::uses_redaction(issued.final_certificate.tbs));

  // The embedded SCT verifies: make_precert_entry re-applies the redaction.
  ASSERT_EQ(issued.scts.size(), 1u);
  const ct::SignedEntry entry =
      ct::make_precert_entry(issued.final_certificate, ca_.public_key());
  EXPECT_TRUE(ct::verify_sct(issued.scts[0], entry, log_->public_key()));
}

TEST_F(RedactedIssuanceTest, StrippingTheMarkerBreaksValidation) {
  // A certificate that was redacted but lies about it cannot validate: the
  // reconstruction would use the unredacted names.
  sim::IssuanceResult issued = issue_redacted();
  x509::Certificate stripped = issued.final_certificate;
  stripped.tbs.remove_extension(x509::redaction_marker_oid());
  const ct::SignedEntry entry = ct::make_precert_entry(stripped, ca_.public_key());
  EXPECT_FALSE(ct::verify_sct(issued.scts[0], entry, log_->public_key()));
}

TEST(RedactionCorpusTest, RedactionSuppressesLabelLearning) {
  auto census_for = [](double fraction) {
    sim::DomainCorpusOptions options;
    options.registrable_count = 3000;
    options.redaction_fraction = fraction;
    options.seed = 9;
    sim::DomainCorpus corpus(options);
    enumeration::SubdomainCensus census(corpus.psl());
    census.add_names(corpus.ct_names());
    return census.stats();
  };
  const auto open_world = census_for(0.0);
  const auto defended = census_for(0.8);
  EXPECT_EQ(open_world.redacted, 0u);
  EXPECT_GT(defended.redacted, 500u);
  EXPECT_LT(defended.valid_fqdns, open_world.valid_fqdns);
}

// ---------- LogIndex / DomainWatcher ----------

class IndexTest : public ::testing::Test {
 protected:
  IndexTest()
      : psl_(dns::PublicSuffixList::bundled()),
        ca_("Index CA", "Index Issuing CA", SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-04-01")) {
    ct::LogConfig config;
    config.name = "Indexed Log";
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    log_ = std::make_unique<ct::CtLog>(config);
  }

  void issue(const std::string& cn, std::vector<std::string> extra_sans = {}) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    for (auto& san : extra_sans) request.sans.push_back(x509::SanEntry::dns(san));
    request.not_before = now_;
    request.not_after = now_ + 90 * 86400;
    request.logs = {log_.get()};
    ca_.issue(request, now_);
  }

  dns::PublicSuffixList psl_;
  sim::CertificateAuthority ca_;
  std::unique_ptr<ct::CtLog> log_;
  SimTime now_;
};

TEST_F(IndexTest, ByNameAndByRegistrableDomain) {
  issue("www.example.org", {"api.example.org"});
  issue("mail.example.org");
  issue("www.other.net");

  ct::LogIndex index(psl_);
  index.index_log(*log_);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.by_name("www.example.org").size(), 1u);
  EXPECT_EQ(index.by_name("api.example.org").size(), 1u);
  EXPECT_TRUE(index.by_name("missing.example.org").empty());
  // The crt.sh "%.example.org" query.
  EXPECT_EQ(index.by_registrable_domain("example.org").size(), 2u);
  EXPECT_EQ(index.by_registrable_domain("other.net").size(), 1u);
}

TEST_F(IndexTest, ByIssuer) {
  issue("a.example.org");
  ct::LogIndex index(psl_);
  index.index_log(*log_);
  EXPECT_EQ(index.by_issuer("Index Issuing CA").size(), 1u);
  EXPECT_TRUE(index.by_issuer("Someone Else").empty());
}

TEST_F(IndexTest, AttachIndexesLiveEntries) {
  ct::LogIndex index(psl_);
  index.attach(*log_);
  EXPECT_EQ(index.size(), 0u);
  issue("live.example.org");
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.by_name("live.example.org").size(), 1u);
}

TEST_F(IndexTest, DomainWatcherNotifiesOwners) {
  ct::DomainWatcher watcher(psl_);
  watcher.attach(*log_);
  std::vector<std::string> alerts;
  watcher.watch("example.org", [&](const std::string& domain, const ct::IndexedEntry& entry) {
    alerts.push_back(domain + ":" + entry.subject_cn);
  });

  issue("www.example.org");
  issue("www.unrelated.net");
  issue("evil.example.org");
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0], "example.org:www.example.org");
  EXPECT_EQ(alerts[1], "example.org:evil.example.org");
  EXPECT_EQ(watcher.notifications_sent(), 2u);
}

// ---------- overload disqualification ----------

TEST(DisqualificationTest, OverloadedLogGetsDisqualified) {
  ct::LogConfig config;
  config.name = "Struggling Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  config.capacity_per_hour = 2;
  ct::CtLog log(config);
  ct::LogList list;
  list.add_log(log, SimTime::parse("2017-01-01"), false);

  sim::CertificateAuthority ca("Over CA", "Over Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime base = SimTime::parse("2018-05-01 10:00:00");
  for (int i = 0; i < 10; ++i) {
    sim::IssuanceRequest request;
    request.subject_cn = "o" + std::to_string(i) + ".example.org";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = base;
    request.not_after = base + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, base + i);
  }
  EXPECT_EQ(log.overload_rejections(), 8u);

  // Below threshold: nothing happens.
  EXPECT_TRUE(ct::disqualify_overloaded_logs(list, {&log}, 100, base + 3600).empty());
  EXPECT_TRUE(list.find(log.log_id())->qualified_at(base + 7200));
  // At threshold: disqualified, once.
  const auto hit = ct::disqualify_overloaded_logs(list, {&log}, 5, base + 3600);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], "Struggling Log");
  EXPECT_FALSE(list.find(log.log_id())->qualified_at(base + 7200));
  EXPECT_TRUE(list.find(log.log_id())->qualified_at(base));  // history intact
  EXPECT_TRUE(ct::disqualify_overloaded_logs(list, {&log}, 5, base + 9999).empty());
}

// ---------- peak attribution ----------

TEST(PeakDetectionTest, AttributesBurstDayToDominantServer) {
  sim::EcosystemOptions eco_options;
  eco_options.scheme = SignatureScheme::hmac_sha256_simulated;
  eco_options.verify_submissions = false;
  eco_options.store_bodies = false;
  eco_options.seed = 21;
  sim::Ecosystem ecosystem(eco_options);
  sim::PopulationOptions pop_options;
  pop_options.site_count = 600;
  pop_options.popular_tier = 80;
  sim::ServerPopulation population(ecosystem, pop_options);

  monitor::PassiveMonitor monitor(ecosystem.log_list());
  sim::TrafficOptions traffic_options;
  traffic_options.start = "2018-01-01";
  traffic_options.end = "2018-02-01";
  traffic_options.connections_per_day = 800;
  traffic_options.burst_days = 2;
  traffic_options.burst_factor = 3.0;
  sim::TrafficGenerator traffic(population, traffic_options, Rng(8));
  traffic.run(monitor);

  const auto peaks = core::detect_peaks(monitor, 2.5);
  ASSERT_FALSE(peaks.empty());
  for (const auto& peak : peaks) {
    EXPECT_EQ(peak.top_server, "graph.facebook.com");
    EXPECT_GT(peak.sct_share, peak.baseline_share);
  }
  EXPECT_FALSE(core::render_peaks(peaks).empty());
}

TEST(PeakDetectionTest, QuietSeriesHasNoPeaks) {
  sim::EcosystemOptions eco_options;
  eco_options.scheme = SignatureScheme::hmac_sha256_simulated;
  eco_options.verify_submissions = false;
  eco_options.store_bodies = false;
  eco_options.seed = 22;
  sim::Ecosystem ecosystem(eco_options);
  sim::PopulationOptions pop_options;
  pop_options.site_count = 600;
  pop_options.popular_tier = 80;
  sim::ServerPopulation population(ecosystem, pop_options);

  monitor::PassiveMonitor monitor(ecosystem.log_list());
  sim::TrafficOptions traffic_options;
  traffic_options.start = "2018-01-01";
  traffic_options.end = "2018-02-01";
  traffic_options.connections_per_day = 800;
  traffic_options.burst_days = 0;
  sim::TrafficGenerator traffic(population, traffic_options, Rng(8));
  traffic.run(monitor);
  EXPECT_TRUE(core::detect_peaks(monitor, 4.0).empty());
}

}  // namespace
}  // namespace ctwatch
