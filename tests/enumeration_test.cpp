#include <gtest/gtest.h>

#include "ctwatch/chaos/chaos.hpp"
#include "ctwatch/core/leakage.hpp"
#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/enumeration/enumerator.hpp"
#include "ctwatch/sim/domains.hpp"

namespace ctwatch::enumeration {
namespace {

class CensusTest : public ::testing::Test {
 protected:
  CensusTest() : psl_(dns::PublicSuffixList::bundled()), census_(psl_) {}
  dns::PublicSuffixList psl_;
  SubdomainCensus census_;
};

TEST_F(CensusTest, CountsLeadingLabels) {
  const std::vector<std::string> names = {"www.example.de", "www.other.de",
                                          "mail.example.de", "example.de"};
  census_.add_names(names);
  EXPECT_EQ(census_.label_counts().at("www"), 2u);
  EXPECT_EQ(census_.label_counts().at("mail"), 1u);
  EXPECT_EQ(census_.stats().valid_fqdns, 4u);
  EXPECT_EQ(census_.total_label_occurrences(), 3u);  // the apex has no subdomain
}

TEST_F(CensusTest, RejectsInvalidNames) {
  const std::vector<std::string> names = {"*.wild.example.com", "bad..name.com",
                                          "-x.example.com", "10.0.0.1", "www.ok.de"};
  census_.add_names(names);
  EXPECT_EQ(census_.stats().invalid_rejected, 4u);
  EXPECT_EQ(census_.stats().valid_fqdns, 1u);
}

TEST_F(CensusTest, DeduplicatesAcrossCalls) {
  const std::vector<std::string> names = {"www.example.de", "WWW.EXAMPLE.DE",
                                          "www.example.de."};
  census_.add_names(names);
  EXPECT_EQ(census_.stats().duplicates, 2u);
  EXPECT_EQ(census_.label_counts().at("www"), 1u);
}

TEST_F(CensusTest, PublicSuffixNamesRejected) {
  const std::vector<std::string> names = {"co.uk", "gov.uk"};
  census_.add_names(names);
  EXPECT_EQ(census_.stats().valid_fqdns, 0u);
}

TEST_F(CensusTest, TopLabelsSortedByCount) {
  std::vector<std::string> names;
  for (int i = 0; i < 5; ++i) names.push_back("www.site" + std::to_string(i) + ".de");
  for (int i = 0; i < 3; ++i) names.push_back("mail.site" + std::to_string(i) + ".de");
  names.push_back("api.site0.de");
  census_.add_names(names);
  const auto top = census_.top_labels(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "www");
  EXPECT_EQ(top[0].second, 5u);
  EXPECT_EQ(top[1].first, "mail");
}

TEST_F(CensusTest, PerSuffixAttribution) {
  const std::vector<std::string> names = {"git.dev1.tech", "git.dev2.tech", "www.shop.de"};
  census_.add_names(names);
  EXPECT_EQ(census_.label_suffix_counts().at("git").at("tech"), 2u);
  EXPECT_EQ(census_.top_label_per_suffix().at("tech"), "git");
  EXPECT_EQ(census_.top_label_per_suffix().at("de"), "www");
}

TEST_F(CensusTest, DomainsGroupedBySuffix) {
  const std::vector<std::string> names = {"www.a.de", "www.b.de", "www.c.fr"};
  census_.add_names(names);
  EXPECT_EQ(census_.domains_by_suffix().at("de").size(), 2u);
  EXPECT_EQ(census_.domains_by_suffix().at("fr").size(), 1u);
}

TEST(WordlistTest, ComparisonCountsHits) {
  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  SubdomainCensus census(psl);
  census.add_names(std::vector<std::string>{"www.a.de", "mail.b.de", "api.c.de"});
  const std::vector<std::string> wordlist = {"www", "api", "nonexistent-guess"};
  const auto result = compare_wordlist(wordlist, census);
  EXPECT_EQ(result.wordlist_size, 3u);
  EXPECT_EQ(result.present_in_ct, 2u);
}

TEST(WordlistTest, SyntheticListsHaveCalibratedHitCounts) {
  const auto subbrute = subbrute_like_wordlist(2000);
  const auto dnsrecon = dnsrecon_like_wordlist(400);
  EXPECT_EQ(subbrute.size(), 2000u);
  EXPECT_EQ(dnsrecon.size(), 400u);
  // The synthetic lists lead with at most 16 / 12 realistic labels.
  dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  SubdomainCensus census(psl);
  std::vector<std::string> everything;
  for (const char* label : {"www", "mail", "smtp", "ftp", "webmail", "api", "dev", "test",
                            "admin", "blog", "shop", "cloud", "secure", "mobile", "cpanel",
                            "remote"}) {
    everything.push_back(std::string(label) + ".site.de");
  }
  census.add_names(everything);
  EXPECT_EQ(compare_wordlist(subbrute, census).present_in_ct, 16u);
  EXPECT_EQ(compare_wordlist(dnsrecon, census).present_in_ct, 12u);
}

// ---------- enumerator over a hand-built mini-world ----------

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest() : psl_(dns::PublicSuffixList::bundled()), census_(psl_) {
    // CT corpus: "api" occurs 3 times under .de (passes min_label_count=2);
    // "rare" occurs once (filtered out).
    census_.add_names(std::vector<std::string>{
        "api.seen1.de", "api.seen2.de", "api.seen3.de", "rare.seen1.de"});

    // DNS ground truth for the candidate domains.
    server_.set_logging(false);
    // target1.de has api (discoverable); target2.de does not; target3.de is
    // a catch-all zone; target4.de answers from outside the routing table.
    auto& z1 = server_.add_zone(dns::DnsName::parse_or_throw("target1.de"));
    z1.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api.target1.de"), dns::RrType::A,
                               300, net::IPv4(100, 64, 0, 1)});
    server_.add_zone(dns::DnsName::parse_or_throw("target2.de"));
    auto& z3 = server_.add_zone(dns::DnsName::parse_or_throw("target3.de"));
    z3.set_default_a(net::IPv4(100, 64, 0, 3));
    auto& z4 = server_.add_zone(dns::DnsName::parse_or_throw("target4.de"));
    z4.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api.target4.de"), dns::RrType::A,
                               300, net::IPv4(203, 0, 113, 9)});  // unroutable
    universe_.add_server(server_);
    routing_.add_route(*net::Prefix4::parse("100.64.0.0/10"));
  }

  EnumerationOptions options() {
    EnumerationOptions opts;
    opts.min_label_count = 2;
    return opts;
  }

  FunnelResult run(const EnumerationOptions& opts) {
    const dns::RecursiveResolver resolver(
        universe_, dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "t", false});
    SubdomainEnumerator enumerator(census_, psl_, opts);
    Rng rng(1);
    return enumerator.run(domains_, sonar_, resolver, routing_, rng,
                          SimTime::parse("2018-04-27"));
  }

  dns::PublicSuffixList psl_;
  SubdomainCensus census_;
  dns::AuthoritativeServer server_;
  dns::DnsUniverse universe_;
  net::RoutingTable routing_;
  std::vector<std::string> domains_ = {"target1.de", "target2.de", "target3.de", "target4.de"};
  std::set<std::string> sonar_;
};

TEST_F(EnumeratorTest, PlanSelectsFrequentLabelsOnly) {
  SubdomainEnumerator enumerator(census_, psl_, options());
  const auto plan = enumerator.build_plan();
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].first, "api");
  EXPECT_EQ(plan[0].second, "de");
}

TEST_F(EnumeratorTest, ExcludedSuffixesSkipped) {
  census_.add_names(std::vector<std::string>{"api.x1.com", "api.x2.com", "api.x3.com"});
  SubdomainEnumerator enumerator(census_, psl_, options());
  for (const auto& [label, suffix] : enumerator.build_plan()) {
    EXPECT_NE(suffix, "com");
  }
}

TEST_F(EnumeratorTest, FullFunnelConfirmsOnlyRealDiscoveries) {
  const FunnelResult result = run(options());
  EXPECT_EQ(result.candidates, 4u);  // api x 4 target domains
  // Replies: target1 (real), target3 (catch-all); target4 replies but is
  // unroutable; target2 is NXDOMAIN.
  EXPECT_EQ(result.test_replies, 3u);
  EXPECT_EQ(result.control_replies, 1u);   // only the catch-all answers controls
  EXPECT_EQ(result.unroutable_dropped, 1u);
  EXPECT_EQ(result.confirmed, 1u);
  ASSERT_EQ(result.discoveries.size(), 1u);
  EXPECT_EQ(result.discoveries[0], "api.target1.de");
  EXPECT_EQ(result.novel, 1u);
}

TEST_F(EnumeratorTest, SonarDiffSplitsKnownAndNovel) {
  sonar_.insert("api.target1.de");
  const FunnelResult result = run(options());
  EXPECT_EQ(result.confirmed, 1u);
  EXPECT_EQ(result.known_in_sonar, 1u);
  EXPECT_EQ(result.novel, 0u);
}

TEST_F(EnumeratorTest, WithoutControlsCatchAllPollutes) {
  EnumerationOptions opts = options();
  opts.use_controls = false;
  const FunnelResult result = run(opts);
  EXPECT_EQ(result.confirmed, 2u);  // the catch-all zone sneaks in
}

TEST_F(EnumeratorTest, WithoutRoutingFilterUnroutableCounts) {
  EnumerationOptions opts = options();
  opts.use_routing_filter = false;
  const FunnelResult result = run(opts);
  EXPECT_EQ(result.confirmed, 2u);  // target4's bogus answer counts
  EXPECT_EQ(result.unroutable_dropped, 0u);
}

// ---------- the funnel under a lossy DNS (chaos) ----------

TEST_F(EnumeratorTest, ConservationHoldsWithoutChaos) {
  const FunnelResult result = run(options());
  EXPECT_TRUE(result.conserves());
  EXPECT_EQ(result.lost_test_queries, 0u);
  EXPECT_EQ(result.lost_control_queries, 0u);
  EXPECT_EQ(result.dns_retries, 0u);
  EXPECT_EQ(result.test_unanswered, 1u);  // target2 is NXDOMAIN
  EXPECT_EQ(result.control_rejected, 1u);  // the catch-all zone
}

TEST_F(EnumeratorTest, TotalLossIsCountedNotSilent) {
  chaos::FaultInjector injector(7);
  chaos::FaultPlan dead;
  dead.error_probability = 1.0;
  dead.timeout_fraction = 1.0;
  injector.plan("dns.auth", dead);
  server_.set_chaos(&injector);

  EnumerationOptions opts = options();
  opts.dns_max_retries = 1;
  const FunnelResult result = run(opts);
  EXPECT_EQ(result.candidates, 4u);
  EXPECT_EQ(result.lost_test_queries, 4u);  // every candidate explicitly lost
  EXPECT_EQ(result.test_replies, 0u);
  EXPECT_EQ(result.confirmed, 0u);
  EXPECT_GT(result.dns_retries, 0u);
  EXPECT_GT(result.dns_timeouts, 0u);
  EXPECT_TRUE(result.conserves());
}

TEST_F(EnumeratorTest, RetriesWithBackoffRideOutAnOutageWindow) {
  chaos::FaultInjector injector(7);
  chaos::FaultPlan outage;
  const std::uint64_t start_us =
      static_cast<std::uint64_t>(SimTime::parse("2018-04-27").unix_seconds()) * 1'000'000ULL;
  // Down for the first 1.5 simulated seconds of the run; the funnel's
  // backoff (1s, then 2s) advances virtual time past the window.
  outage.outages.push_back(chaos::OutageWindow{start_us, start_us + 1'500'000});
  outage.outage_kind = chaos::FaultKind::timeout;
  injector.plan("dns.auth", outage);
  server_.set_chaos(&injector);

  const FunnelResult baseline_free = [&] {
    server_.set_chaos(nullptr);
    const FunnelResult r = run(options());
    server_.set_chaos(&injector);
    return r;
  }();

  const FunnelResult result = run(options());
  // Every probe recovered on retry: the funnel's verdicts match the
  // chaos-free baseline, only the retry accounting differs.
  EXPECT_EQ(result.confirmed, baseline_free.confirmed);
  EXPECT_EQ(result.test_replies, baseline_free.test_replies);
  EXPECT_EQ(result.lost_test_queries, 0u);
  EXPECT_EQ(result.lost_control_queries, 0u);
  EXPECT_GT(result.dns_retries, 0u);
  EXPECT_GT(result.dns_timeouts, 0u);
  EXPECT_TRUE(result.conserves());
}

TEST_F(EnumeratorTest, PartialLossConservesEveryCandidate) {
  chaos::FaultInjector injector(1234);
  chaos::FaultPlan flaky;
  flaky.error_probability = 0.4;
  flaky.timeout_fraction = 0.5;
  injector.plan("dns.auth", flaky);
  server_.set_chaos(&injector);

  // Scale the world up so the probabilistic loss actually bites.
  for (int i = 0; i < 60; ++i) {
    const std::string domain = "bulk" + std::to_string(i) + ".de";
    auto& zone = server_.add_zone(dns::DnsName::parse_or_throw(domain));
    if (i % 2 == 0) {
      zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw("api." + domain), dns::RrType::A,
                                   300, net::IPv4(100, 64, 1, static_cast<std::uint8_t>(i))});
    }
    domains_.push_back(domain);
  }

  EnumerationOptions opts = options();
  opts.dns_max_retries = 0;  // no second chances: maximize residual loss
  const FunnelResult result = run(opts);
  EXPECT_EQ(result.candidates, 64u);
  EXPECT_GT(result.lost_test_queries, 0u);
  EXPECT_GT(result.dns_timeouts + result.dns_servfails, 0u);
  EXPECT_TRUE(result.conserves())
      << "candidates=" << result.candidates << " test_replies=" << result.test_replies
      << " unanswered=" << result.test_unanswered << " lost_test=" << result.lost_test_queries
      << " unroutable=" << result.unroutable_dropped
      << " lost_control=" << result.lost_control_queries
      << " control_rejected=" << result.control_rejected << " confirmed=" << result.confirmed;
}

TEST_F(EnumeratorTest, DiscoveryCapRespected) {
  EnumerationOptions opts = options();
  opts.keep_discoveries = 0;
  const FunnelResult result = run(opts);
  EXPECT_EQ(result.confirmed, 1u);       // counting is exact
  EXPECT_TRUE(result.discoveries.empty());  // retention capped
}

// ---------- the full LeakageStudy over a small corpus ----------

TEST(LeakageStudyTest, SmallCorpusEndToEnd) {
  sim::DomainCorpusOptions corpus_options;
  corpus_options.registrable_count = 4000;
  corpus_options.label_scale = 1.0 / 1000.0;
  sim::DomainCorpus corpus(corpus_options);
  core::LeakageStudy study(corpus);
  enumeration::EnumerationOptions options;
  options.min_label_count = 10;
  const core::LeakageReport report = study.run(options);

  // Table 2 head must be led by www.
  ASSERT_FALSE(report.top_labels.empty());
  EXPECT_EQ(report.top_labels[0].first, "www");
  // Invalid junk names were filtered.
  EXPECT_GT(report.extraction.invalid_rejected, 0u);
  // The funnel found something, and the control filter did real work.
  EXPECT_GT(report.funnel.candidates, 0u);
  EXPECT_GT(report.funnel.confirmed, 0u);
  EXPECT_GT(report.funnel.control_replies, 0u);
  EXPECT_LT(report.funnel.confirmed, report.funnel.test_replies);
  // Everything confirmed is ground-truth true.
  for (const std::string& fqdn : report.funnel.discoveries) {
    EXPECT_TRUE(corpus.truly_exists(fqdn)) << fqdn;
  }
}

}  // namespace
}  // namespace ctwatch::enumeration
