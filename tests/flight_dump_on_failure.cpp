// Compiled into every ctwatch test binary (see tests/CMakeLists.txt).
//
// Registers a gtest listener that dumps the flight recorder's recent
// events to stderr when a test fails, so the post-mortem shows what the
// code under test was doing right before the assertion fired — without
// any per-test plumbing.

#include <gtest/gtest.h>

#include "ctwatch/obs/flight.hpp"

namespace {

class FlightDumpOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed()) return;
    ctwatch::obs::FlightRecorder& recorder = ctwatch::obs::FlightRecorder::global();
    if (recorder.recorded() == 0) return;
    recorder.dump_to_stderr("gtest failure");
  }
};

// gtest's listener list exists before RUN_ALL_TESTS; appending from a
// static initializer keeps test sources untouched.
const bool registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new FlightDumpOnFailure);
  return true;
}();

}  // namespace
