#include <gtest/gtest.h>

#include "ctwatch/crypto/ec_p256.hpp"
#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::crypto {
namespace {

std::string digest_hex(const Digest& d) { return hex_encode(BytesView{d.data(), d.size()}); }

// ---------- SHA-256 (FIPS 180-4 vectors) ----------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash(BytesView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(to_bytes(chunk));
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  // Split points around the 64-byte block boundary are the classic bug nest.
  const std::string message(200, 'x');
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    Sha256 h;
    h.update(to_bytes(message.substr(0, split)));
    h.update(to_bytes(message.substr(split)));
    EXPECT_EQ(digest_hex(h.finish()), digest_hex(Sha256::hash(to_bytes(message))))
        << "split=" << split;
  }
}

TEST(Sha256Test, UseAfterFinishThrows) {
  Sha256 h;
  h.update(to_bytes("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(to_bytes("y")), std::logic_error);
  EXPECT_THROW((void)h.finish(), std::logic_error);
  h.reset();
  EXPECT_EQ(digest_hex(h.finish()), digest_hex(Sha256::hash(BytesView{})));
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Digest mac = hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest mac =
      hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, ExpandsDeterministically) {
  const Digest prk = hmac_sha256(to_bytes("salt"), to_bytes("ikm"));
  const Bytes a = hkdf_expand(BytesView{prk.data(), prk.size()}, to_bytes("info"), 42);
  const Bytes b = hkdf_expand(BytesView{prk.data(), prk.size()}, to_bytes("info"), 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 42u);
  const Bytes c = hkdf_expand(BytesView{prk.data(), prk.size()}, to_bytes("other"), 42);
  EXPECT_NE(a, c);
}

// ---------- U256 / modular arithmetic ----------

TEST(U256Test, HexRoundTrip) {
  const U256 v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff0102030405060708090a0b0c");
  EXPECT_EQ(v.to_hex(), "deadbeef00112233445566778899aabbccddeeff0102030405060708090a0b0c");
}

TEST(U256Test, BytesRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const U256 v(rng(), rng(), rng(), rng());
    EXPECT_EQ(U256::from_bytes(v.to_bytes()), v);
  }
}

TEST(U256Test, AddSubInverse) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const U256 a(rng(), rng(), rng(), rng());
    const U256 b(rng(), rng(), rng(), rng());
    U256 sum, back;
    const bool carry = U256::add(a, b, sum);
    const bool borrow = U256::sub(sum, b, back);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // wrap-around symmetry
  }
}

TEST(U256Test, CompareAndBitLength) {
  EXPECT_LT(U256{1}, U256{2});
  EXPECT_EQ(U256{}.bit_length(), 0);
  EXPECT_EQ(U256{1}.bit_length(), 1);
  EXPECT_EQ(U256(0, 0, 0, 1).bit_length(), 193);
}

TEST(ModMathTest, MulMatchesSchoolbookSmall) {
  // Verify against 64-bit arithmetic for small operands.
  const U256 m{1000003};
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.below(1000003);
    const std::uint64_t b = rng.below(1000003);
    const U256 r = modmath::mul(U256{a}, U256{b}, m);
    EXPECT_EQ(r.limb[0], static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) %
                                                    1000003));
  }
}

TEST(ModMathTest, InverseTimesSelfIsOne) {
  const U256& n = p256::order();
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    const U256 a(rng(), rng(), rng(), 0);
    if (a.is_zero()) continue;
    const U256 inv = modmath::inverse(a, n);
    EXPECT_EQ(modmath::mul(modmath::reduce(a, n), inv, n), U256{1});
  }
}

TEST(ModMathTest, FermatMatchesEuclid) {
  // a^(p-2) == a^-1 mod p for prime p.
  const U256& p = p256::prime();
  U256 p_minus_2;
  U256::sub(p, U256{2}, p_minus_2);
  const U256 a = U256::from_hex("123456789abcdef0fedcba9876543210aabbccddeeff00112233445566778899");
  EXPECT_EQ(modmath::pow(a, p_minus_2, p), modmath::inverse(a, p));
}

TEST(ModMathTest, FastP256ReductionMatchesGeneric) {
  // The Solinas reduction must agree with binary long division.
  Rng rng(10);
  const U256& p = p256::prime();
  for (int i = 0; i < 300; ++i) {
    const U256 a = modmath::reduce(U256(rng(), rng(), rng(), rng()), p);
    const U256 b = modmath::reduce(U256(rng(), rng(), rng(), rng()), p);
    EXPECT_EQ(p256::field_mul(a, b), modmath::mul(a, b, p)) << "iteration " << i;
  }
}

// ---------- P-256 / ECDSA ----------

TEST(P256Test, GeneratorOnCurve) { EXPECT_TRUE(p256_generator().on_curve()); }

TEST(P256Test, GeneratorTimesOrderIsInfinity) {
  const AffinePoint r = p256_multiply(p256::order(), p256_generator());
  EXPECT_TRUE(r.infinity);
}

TEST(P256Test, KnownScalarMultiple) {
  // 2G, from published P-256 test data.
  const AffinePoint two_g = p256_multiply(U256{2}, p256_generator());
  EXPECT_EQ(two_g.x.to_hex(), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(two_g.y.to_hex(), "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(P256Test, AdditionCommutesWithScalars) {
  const AffinePoint g = p256_generator();
  const AffinePoint g3a = p256_add(g, p256_multiply(U256{2}, g));
  const AffinePoint g3b = p256_multiply(U256{3}, g);
  EXPECT_EQ(g3a, g3b);
}

TEST(P256Test, PointEncodeDecodeRoundTrip) {
  const AffinePoint p = p256_multiply(U256{12345}, p256_generator());
  const AffinePoint q = AffinePoint::decode(p.encode());
  EXPECT_EQ(p, q);
}

TEST(P256Test, DecodeRejectsOffCurvePoint) {
  Bytes bad = p256_generator().encode();
  bad[40] ^= 0x01;  // poke a coordinate byte
  EXPECT_THROW(AffinePoint::decode(bad), std::invalid_argument);
}

TEST(EcdsaTest, Rfc6979SampleVector) {
  // RFC 6979 A.2.5, P-256 + SHA-256, message "sample".
  const auto key = EcdsaKeyPair::from_private(
      U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721"));
  EXPECT_EQ(key.public_point().x.to_hex(),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
  const EcdsaSignature sig = key.sign(to_bytes("sample"));
  EXPECT_EQ(sig.r.to_hex(), "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  EXPECT_EQ(sig.s.to_hex(), "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
}

TEST(EcdsaTest, Rfc6979TestVector) {
  // RFC 6979 A.2.5, message "test".
  const auto key = EcdsaKeyPair::from_private(
      U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721"));
  const EcdsaSignature sig = key.sign(to_bytes("test"));
  EXPECT_EQ(sig.r.to_hex(), "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367");
  EXPECT_EQ(sig.s.to_hex(), "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083");
}

TEST(EcdsaTest, SignVerifyRoundTrip) {
  const auto key = EcdsaKeyPair::derive("round-trip");
  const EcdsaSignature sig = key.sign(to_bytes("hello"));
  EXPECT_TRUE(ecdsa_verify(key.public_point(), to_bytes("hello"), sig));
  EXPECT_FALSE(ecdsa_verify(key.public_point(), to_bytes("hellp"), sig));
}

TEST(EcdsaTest, TamperedSignatureRejected) {
  const auto key = EcdsaKeyPair::derive("tamper");
  EcdsaSignature sig = key.sign(to_bytes("msg"));
  sig.r = modmath::add(sig.r, U256{1}, p256::order());
  EXPECT_FALSE(ecdsa_verify(key.public_point(), to_bytes("msg"), sig));
}

TEST(EcdsaTest, WrongKeyRejected) {
  const auto key1 = EcdsaKeyPair::derive("key-one");
  const auto key2 = EcdsaKeyPair::derive("key-two");
  const EcdsaSignature sig = key1.sign(to_bytes("msg"));
  EXPECT_FALSE(ecdsa_verify(key2.public_point(), to_bytes("msg"), sig));
}

TEST(EcdsaTest, RejectsOutOfRangeSignatureParts) {
  const auto key = EcdsaKeyPair::derive("range");
  EcdsaSignature sig = key.sign(to_bytes("msg"));
  EcdsaSignature zero_r = sig;
  zero_r.r = U256{0};
  EXPECT_FALSE(ecdsa_verify(key.public_point(), to_bytes("msg"), zero_r));
  EcdsaSignature big_s = sig;
  big_s.s = p256::order();
  EXPECT_FALSE(ecdsa_verify(key.public_point(), to_bytes("msg"), big_s));
}

TEST(EcdsaTest, DerivedKeysAreReproducibleAndDistinct) {
  const auto a1 = EcdsaKeyPair::derive("log-a");
  const auto a2 = EcdsaKeyPair::derive("log-a");
  const auto b = EcdsaKeyPair::derive("log-b");
  EXPECT_EQ(a1.public_point(), a2.public_point());
  EXPECT_FALSE(a1.public_point() == b.public_point());
}

TEST(EcdsaTest, SignatureBytesRoundTrip) {
  const auto key = EcdsaKeyPair::derive("bytes");
  const EcdsaSignature sig = key.sign(to_bytes("m"));
  EXPECT_EQ(EcdsaSignature::from_bytes(sig.to_bytes()), sig);
  EXPECT_THROW(EcdsaSignature::from_bytes(Bytes(63, 0)), std::invalid_argument);
}

// ---------- Signer abstraction ----------

class SignerSchemeTest : public ::testing::TestWithParam<SignatureScheme> {};

TEST_P(SignerSchemeTest, SignVerifyAndRejectTamper) {
  const auto signer = make_signer("scheme-test", GetParam());
  EXPECT_EQ(signer->scheme(), GetParam());
  const SignatureBlob sig = signer->sign(to_bytes("payload"));
  EXPECT_TRUE(verify_signature(signer->public_key(), to_bytes("payload"), sig));
  EXPECT_FALSE(verify_signature(signer->public_key(), to_bytes("payloae"), sig));

  SignatureBlob mangled = sig;
  mangled.data[0] ^= 0x80;
  EXPECT_FALSE(verify_signature(signer->public_key(), to_bytes("payload"), mangled));
}

TEST_P(SignerSchemeTest, KeyIdIsStablePerLabel) {
  const auto a = make_signer("same-label", GetParam());
  const auto b = make_signer("same-label", GetParam());
  EXPECT_EQ(a->key_id(), b->key_id());
  const auto c = make_signer("other-label", GetParam());
  EXPECT_NE(hex_encode(BytesView{a->key_id().data(), 32}),
            hex_encode(BytesView{c->key_id().data(), 32}));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SignerSchemeTest,
                         ::testing::Values(SignatureScheme::ecdsa_p256_sha256,
                                           SignatureScheme::hmac_sha256_simulated));

TEST(SignerTest, SchemesDoNotCrossVerify) {
  const auto ecdsa = make_signer("cross", SignatureScheme::ecdsa_p256_sha256);
  const auto sim = make_signer("cross", SignatureScheme::hmac_sha256_simulated);
  const SignatureBlob sig = sim->sign(to_bytes("m"));
  EXPECT_FALSE(verify_signature(ecdsa->public_key(), to_bytes("m"), sig));
}

TEST(SignerTest, MalformedPublicKeyVerifiesFalseNotThrow) {
  const auto signer = make_signer("malformed", SignatureScheme::ecdsa_p256_sha256);
  const SignatureBlob sig = signer->sign(to_bytes("m"));
  EXPECT_FALSE(verify_signature(Bytes{0x01, 0x02}, to_bytes("m"), sig));
}

}  // namespace
}  // namespace ctwatch::crypto
