#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::namepool {
namespace {

// ---------- LabelTable ----------

TEST(LabelTableTest, InternDeduplicates) {
  LabelTable table;
  const LabelId www = table.intern("www");
  const LabelId mail = table.intern("mail");
  EXPECT_NE(www, mail);
  EXPECT_EQ(table.intern("www"), www);
  EXPECT_EQ(table.intern("mail"), mail);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.text(www), "www");
  EXPECT_EQ(table.text(mail), "mail");
}

TEST(LabelTableTest, FindDoesNotIntern) {
  LabelTable table;
  EXPECT_FALSE(table.find("absent"));
  EXPECT_EQ(table.size(), 0u);
  const LabelId id = table.intern("present");
  const auto found = table.find("present");
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(LabelTableTest, IdsAreDenseFromZero) {
  LabelTable table;
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.intern("label-" + std::to_string(i)), i);
  }
}

TEST(LabelTableTest, SurvivesIndexGrowth) {
  LabelTable table;
  std::vector<std::string_view> views;
  // Enough strings to force several rehashes and multiple arena chunks.
  for (int i = 0; i < 20000; ++i) {
    views.push_back(table.text(table.intern("the-" + std::to_string(i) + "-label")));
  }
  // Earlier views must still be valid (arena addresses never move).
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)], "the-" + std::to_string(i) + "-label");
  }
  EXPECT_EQ(table.size(), 20000u);
  EXPECT_GT(table.bytes_used(), 0u);
}

TEST(LabelTableTest, InternsEmptyAndLongStrings) {
  LabelTable table;
  const LabelId empty = table.intern("");
  EXPECT_EQ(table.text(empty), "");
  const std::string big(100000, 'x');  // larger than the minimum arena chunk
  const LabelId big_id = table.intern(big);
  EXPECT_EQ(table.text(big_id), big);
  EXPECT_EQ(table.intern(big), big_id);
}

// ---------- NamePool: interning semantics ----------

TEST(NamePoolTest, InternTextDeduplicates) {
  NamePool pool;
  const auto first = pool.intern_text("www.example.com");
  EXPECT_TRUE(first.fresh);
  const auto again = pool.intern_text("www.example.com");
  EXPECT_FALSE(again.fresh);
  EXPECT_EQ(first.ref, again.ref);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.to_string(first.ref), "www.example.com");
}

TEST(NamePoolTest, DistinctNamesGetDistinctRefs) {
  NamePool pool;
  const auto a = pool.intern_text("www.example.com");
  const auto b = pool.intern_text("mail.example.com");
  const auto c = pool.intern_text("example.com");
  EXPECT_NE(a.ref, b.ref);
  EXPECT_NE(a.ref, c.ref);
  EXPECT_NE(b.ref, c.ref);
  EXPECT_EQ(pool.size(), 3u);
  // Shared labels are stored once.
  EXPECT_EQ(pool.labels().size(), 4u);  // www, mail, example, com
}

TEST(NamePoolTest, EmptyNameIsTheNullRef) {
  NamePool pool;
  const auto empty = pool.intern_ids({});
  EXPECT_TRUE(empty.ref.empty());
  EXPECT_EQ(empty.ref, NameRef{});
  EXPECT_FALSE(empty.fresh);
  EXPECT_EQ(pool.to_string(empty.ref), "");
  EXPECT_EQ(pool.size(), 0u);
}

TEST(NamePoolTest, FindIdsDoesNotIntern) {
  NamePool pool;
  const LabelId a = pool.labels().intern("a");
  const LabelId b = pool.labels().intern("b");
  const LabelId ids[] = {a, b};
  EXPECT_FALSE(pool.find_ids(ids));
  EXPECT_EQ(pool.size(), 0u);
  const auto ref = pool.intern_ids(ids).ref;
  const auto found = pool.find_ids(ids);
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, ref);
}

TEST(NamePoolTest, IdsSpanAndLabelAccessors) {
  NamePool pool;
  const auto ref = pool.intern_text("a.b.c.example.org").ref;
  const auto ids = pool.ids(ref);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(pool.label(ref, 0), "a");
  EXPECT_EQ(pool.label(ref, 4), "org");
  std::string out = "prefix:";
  pool.append_to(out, ref);
  EXPECT_EQ(out, "prefix:a.b.c.example.org");
}

// ---------- NameRef hash/equality vs DnsName equality ----------

TEST(NamePoolTest, RefEqualityMatchesDnsNameEquality) {
  NamePool pool;
  const std::vector<std::string> corpus = {
      "www.example.com", "www.example.com.", "WWW.EXAMPLE.COM", "mail.example.com",
      "example.com",     "www.example.org",  "a.b.example.com",
  };
  for (const std::string& left : corpus) {
    for (const std::string& right : corpus) {
      const auto left_name = dns::DnsName::parse(left);
      const auto right_name = dns::DnsName::parse(right);
      ASSERT_TRUE(left_name && right_name);
      const auto left_ref = dns::DnsName::parse_into(pool, left);
      const auto right_ref = dns::DnsName::parse_into(pool, right);
      ASSERT_TRUE(left_ref && right_ref);
      EXPECT_EQ(*left_name == *right_name, *left_ref == *right_ref)
          << left << " vs " << right;
      if (*left_ref == *right_ref) {
        EXPECT_EQ(NameRefHash{}(*left_ref), NameRefHash{}(*right_ref));
      }
    }
  }
}

// ---------- parent / with_prefix / is_subdomain_of parity ----------

TEST(NamePoolTest, ParentParityWithDnsName) {
  NamePool pool;
  const dns::DnsName name = dns::DnsName::parse_or_throw("a.b.example.co.uk");
  const NameRef ref = name.intern_into(pool);
  for (std::size_t n = 0; n <= name.label_count(); ++n) {
    EXPECT_EQ(pool.to_string(pool.parent(ref, n)), name.parent(n).to_string()) << n;
  }
  // Dropping everything yields the empty ref.
  EXPECT_TRUE(pool.parent(ref, name.label_count()).empty());
}

TEST(NamePoolTest, WithPrefixParityWithDnsName) {
  NamePool pool;
  const dns::DnsName base = dns::DnsName::parse_or_throw("example.org");
  const NameRef base_ref = base.intern_into(pool);
  const LabelId www = pool.labels().intern("www");
  const auto composed = pool.with_prefix(base_ref, www);
  EXPECT_EQ(pool.to_string(composed.ref), base.with_prefix_label("www").to_string());
  // Composing again is a pure dedup hit.
  const auto again = pool.with_prefix(base_ref, www);
  EXPECT_FALSE(again.fresh);
  EXPECT_EQ(again.ref, composed.ref);
  // Matches interning the textual form.
  EXPECT_EQ(pool.intern_text("www.example.org").ref, composed.ref);
}

TEST(NamePoolTest, SubdomainParityWithDnsName) {
  NamePool pool;
  const std::vector<std::string> corpus = {
      "a.b.example.co.uk", "b.example.co.uk", "example.co.uk",
      "other.co.uk",       "co.uk",           "a.b.example.com",
  };
  for (const std::string& child : corpus) {
    for (const std::string& ancestor : corpus) {
      const dns::DnsName child_name = dns::DnsName::parse_or_throw(child);
      const dns::DnsName anc_name = dns::DnsName::parse_or_throw(ancestor);
      const NameRef child_ref = child_name.intern_into(pool);
      const NameRef anc_ref = anc_name.intern_into(pool);
      EXPECT_EQ(pool.is_subdomain_of(child_ref, anc_ref),
                child_name.is_subdomain_of(anc_name))
          << child << " under " << ancestor;
    }
  }
}

// ---------- property: parse -> ref -> to_string round trip ----------

TEST(NamePoolPropertyTest, RandomNamesRoundTrip) {
  NamePool pool;
  Rng rng(0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 5000; ++i) {
    // Compose names from a small label alphabet so duplicates are common.
    std::string text;
    const int labels = 2 + static_cast<int>(rng.below(4));
    for (int l = 0; l < labels; ++l) {
      if (l > 0) text.push_back('.');
      switch (rng.below(3)) {
        case 0: text += "www"; break;
        case 1: text += rng.alnum_label(1 + rng.below(12)); break;
        default: text += "example"; break;
      }
    }
    text += ".com";
    const auto parsed = dns::DnsName::parse(text);
    const auto ref = dns::DnsName::parse_into(pool, text);
    ASSERT_EQ(parsed.has_value(), ref.has_value()) << text;
    if (!parsed) continue;
    EXPECT_EQ(pool.to_string(*ref), parsed->to_string());
    EXPECT_EQ(dns::DnsName::materialize(pool, *ref), *parsed);
    // Re-interning canonicalizes to the same ref.
    EXPECT_EQ(parsed->intern_into(pool), *ref);
  }
  // Dedup means far fewer stored names than inputs.
  EXPECT_LT(pool.size(), 5000u);
}

// ---------- growth & accounting ----------

TEST(NamePoolTest, BytesUsedGrowsAndIsReported) {
  NamePool pool;
  EXPECT_EQ(pool.bytes_used(), 0u);
  std::size_t last = 0;
  for (int i = 0; i < 10000; ++i) {
    pool.intern_text("host-" + std::to_string(i) + ".tier-" + std::to_string(i % 7) +
                     ".example.net");
    EXPECT_GE(pool.bytes_used(), last);
    last = pool.bytes_used();
  }
  EXPECT_EQ(pool.size(), 10000u);
  EXPECT_GT(pool.bytes_used(), 0u);
  // Interning duplicates must not grow the footprint.
  const std::size_t before = pool.bytes_used();
  for (int i = 0; i < 10000; ++i) {
    pool.intern_text("host-" + std::to_string(i) + ".tier-" + std::to_string(i % 7) +
                     ".example.net");
  }
  EXPECT_EQ(pool.bytes_used(), before);
  EXPECT_EQ(pool.size(), 10000u);
}

TEST(NamePoolTest, ObsGaugesTrackPoolLifetime) {
  auto& registry = obs::Registry::global();
  const std::int64_t bytes_before = registry.gauge("namepool.bytes").value();
  const std::int64_t names_before = registry.gauge("namepool.names").value();
  {
    NamePool pool;
    for (int i = 0; i < 1000; ++i) {
      pool.intern_text("gauge-" + std::to_string(i) + ".example.org");
    }
#ifndef CTWATCH_OBS_DISABLED
    EXPECT_GE(registry.gauge("namepool.bytes").value(),
              bytes_before + static_cast<std::int64_t>(pool.bytes_used()));
    EXPECT_EQ(registry.gauge("namepool.names").value(), names_before + 1000);
#endif
  }
  // Destruction returns the gauges to their prior level.
  EXPECT_EQ(registry.gauge("namepool.bytes").value(), bytes_before);
  EXPECT_EQ(registry.gauge("namepool.names").value(), names_before);
}

// ---------- concurrency (the TSAN target) ----------

// One writer keeps interning; readers consume published refs concurrently
// through the wait-free paths (ids/text/to_string/is_subdomain_of) and the
// mutex-guarded find_ids.
TEST(NamePoolConcurrencyTest, ReadMostlyLookupWhileInterning) {
  NamePool pool;
  constexpr int kNames = 20000;
  std::vector<NameRef> published(kNames);
  std::atomic<int> published_count{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < kNames; ++i) {
      const auto interned =
          pool.intern_text("w" + std::to_string(i % 512) + ".host-" + std::to_string(i) +
                           ".example.com");
      published[static_cast<std::size_t>(i)] = interned.ref;
      published_count.store(i + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> checks{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const int count = published_count.load(std::memory_order_acquire);
        for (int i = 0; i < count; i += 97) {
          const NameRef ref = published[static_cast<std::size_t>(i)];
          const auto ids = pool.ids(ref);
          if (ids.empty()) continue;
          local += pool.labels().text(ids[0]).size();
          local += pool.to_string(ref).size();
          local += pool.is_subdomain_of(ref, pool.find_ids(ids.subspan(1)).value_or(NameRef{}))
                       ? 1
                       : 0;
        }
        if (count == kNames) break;
      }
      checks.fetch_add(local, std::memory_order_relaxed);
    });
  }

  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(pool.size(), static_cast<std::uint64_t>(kNames));
  EXPECT_GT(checks.load(), 0u);
}

}  // namespace
}  // namespace ctwatch::namepool
