#include <gtest/gtest.h>

#include <set>

#include "ctwatch/util/encoding.hpp"
#include "ctwatch/util/rng.hpp"
#include "ctwatch/util/strings.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch {
namespace {

// ---------- time ----------

TEST(TimeTest, CivilRoundTripEpoch) {
  const SimTime t{0};
  const CivilTime c = t.civil();
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(SimTime::from_civil(c).unix_seconds(), 0);
}

TEST(TimeTest, ParsesDateAndDateTime) {
  EXPECT_EQ(SimTime::parse("2018-04-12 14:16:59").datetime_string(), "2018-04-12 14:16:59");
  EXPECT_EQ(SimTime::parse("2018-04-12").date_string(), "2018-04-12");
}

TEST(TimeTest, RejectsMalformedInput) {
  EXPECT_THROW(SimTime::parse("not a date"), std::invalid_argument);
  EXPECT_THROW(SimTime::parse("2018-13-01"), std::invalid_argument);
  EXPECT_THROW(SimTime::parse("2018-02-30"), std::invalid_argument);
  EXPECT_THROW(SimTime::parse("2018-04-12 25:00:00"), std::invalid_argument);
}

TEST(TimeTest, LeapYearHandling) {
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2018, 2), 28);
  EXPECT_EQ(days_in_month(2000, 2), 29);
  EXPECT_EQ(days_in_month(1900, 2), 28);
  EXPECT_NO_THROW(SimTime::parse("2016-02-29"));
  EXPECT_THROW(SimTime::parse("2018-02-29"), std::invalid_argument);
}

TEST(TimeTest, CivilRoundTripPropertySweep) {
  // Every 97th day across 1970..2038 must round-trip exactly.
  for (std::int64_t day = 0; day < 25000; day += 97) {
    int y, m, d;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day);
  }
}

TEST(TimeTest, DayIndexAndStartOfDay) {
  const SimTime t = SimTime::parse("2018-04-12 14:16:59");
  EXPECT_EQ(t.start_of_day().datetime_string(), "2018-04-12 00:00:00");
  EXPECT_EQ(t.day_index(), t.start_of_day().unix_seconds() / 86400);
}

TEST(TimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::parse("2018-04-12 14:00:00");
  const SimTime b = a + 73;
  EXPECT_EQ(b - a, 73);
  EXPECT_LT(a, b);
  EXPECT_EQ((a + 86400).date_string(), "2018-04-13");
}

TEST(TimeTest, FormatDeltaMatchesPaperStyle) {
  EXPECT_EQ(format_delta(73), "73s");
  EXPECT_EQ(format_delta(120), "120s");
  EXPECT_EQ(format_delta(11 * 60), "11m");
  EXPECT_EQ(format_delta(2 * 3600 + 100), "121m");  // Table 4 keeps minutes to ~2h
  EXPECT_EQ(format_delta(5 * 3600), "5h");
  EXPECT_EQ(format_delta(19 * 86400), "19d");
}

TEST(TimeTest, ShortStringFormat) {
  EXPECT_EQ(SimTime::parse("2018-04-12 14:16:59").short_string(), "04-12 14:16:59");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(SimTime::parse("2018-01-01"));
  clock.advance_by(60);
  EXPECT_EQ(clock.now().datetime_string(), "2018-01-01 00:01:00");
  EXPECT_THROW(clock.advance_to(SimTime::parse("2017-12-31")), std::logic_error);
}

// ---------- rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW(rng.between(2, 1), std::invalid_argument);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 40000; ++i) ++hits[rng.weighted(weights)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.3);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted(negative), std::invalid_argument);
}

TEST(RngTest, AlnumLabelShapeAndCharset) {
  Rng rng(17);
  const std::string label = rng.alnum_label(12);
  EXPECT_EQ(label.size(), 12u);
  for (char c : label) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  // The child stream must not replay the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 50000, 4.0, 0.2);
  EXPECT_THROW(rng.exponential(0), std::invalid_argument);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler zipf(1000, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(100));
}

TEST(ZipfTest, SamplesFollowSkew) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf.sample(rng)];
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[0], 10000);  // rank 0 dominates
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 0.8);
  double sum = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ---------- encoding ----------

TEST(EncodingTest, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);
}

TEST(EncodingTest, HexRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(EncodingTest, Base64KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(EncodingTest, Base64RoundTripAllByteValues) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(base64_decode(base64_encode(data)), data);
}

TEST(EncodingTest, Base64RejectsMalformed) {
  EXPECT_THROW(base64_decode("Zg="), std::invalid_argument);    // bad length
  EXPECT_THROW(base64_decode("Z!=="), std::invalid_argument);   // bad char
  EXPECT_THROW(base64_decode("=AAA"), std::invalid_argument);   // misplaced pad
  EXPECT_THROW(base64_decode("Zg=a"), std::invalid_argument);   // data after pad
}

TEST(EncodingTest, TryBase64DecodeMatchesThrowingVariantOnGoodInput) {
  for (const char* text : {"", "f", "fo", "foo", "foob", "fooba", "foobar"}) {
    const std::string encoded = base64_encode(to_bytes(text));
    const auto decoded = try_base64_decode(encoded);
    ASSERT_TRUE(decoded.has_value()) << encoded;
    EXPECT_EQ(*decoded, to_bytes(text));
  }
}

TEST(EncodingTest, TryBase64DecodeRejectsWithoutThrowing) {
  // Structural errors.
  EXPECT_FALSE(try_base64_decode("Zg=").has_value());    // length % 4 != 0
  EXPECT_FALSE(try_base64_decode("Z").has_value());
  EXPECT_FALSE(try_base64_decode("Z!==").has_value());   // outside alphabet
  EXPECT_FALSE(try_base64_decode("Zm9\nv").has_value()); // whitespace is not ignored
  EXPECT_FALSE(try_base64_decode("Zm9 v").has_value());
  EXPECT_FALSE(try_base64_decode("=AAA").has_value());   // misplaced padding
  EXPECT_FALSE(try_base64_decode("A=AA").has_value());
  EXPECT_FALSE(try_base64_decode("Zg=a").has_value());   // data after padding
  EXPECT_FALSE(try_base64_decode("Zg==Zg==").has_value());  // pad mid-stream
  EXPECT_FALSE(try_base64_decode("====").has_value());
  // URL-safe alphabet is a different encoding, not an alias.
  EXPECT_FALSE(try_base64_decode("-A==").has_value());
  EXPECT_FALSE(try_base64_decode("_A==").has_value());
}

TEST(EncodingTest, TryBase64DecodeRejectsNonCanonicalTrailingBits) {
  // "QQ==" is the canonical encoding of {0x41}; "QR==" decodes to the
  // same byte but leaves nonzero discarded bits — RFC 4648 strict
  // decoders must reject it (CVE-class for signature malleability).
  EXPECT_TRUE(try_base64_decode("QQ==").has_value());
  EXPECT_FALSE(try_base64_decode("QR==").has_value());
  EXPECT_TRUE(try_base64_decode("QUE=").has_value());
  EXPECT_FALSE(try_base64_decode("QUF=").has_value());
  // The throwing variant enforces the same strictness.
  EXPECT_THROW(base64_decode("QR=="), std::invalid_argument);
}

TEST(EncodingTest, TryHexDecode) {
  EXPECT_EQ(try_hex_decode("0001abff"), (Bytes{0x00, 0x01, 0xab, 0xff}));
  EXPECT_EQ(try_hex_decode(""), Bytes{});
  EXPECT_FALSE(try_hex_decode("abc").has_value());
  EXPECT_FALSE(try_hex_decode("zz").has_value());
  EXPECT_FALSE(try_hex_decode("0x41").has_value());
}

// ---------- strings ----------

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinInverseOfSplit) {
  const std::vector<std::string> parts{"www", "example", "co", "uk"};
  EXPECT_EQ(join(parts, "."), "www.example.co.uk");
  EXPECT_EQ(split("www.example.co.uk", '.'), parts);
}

TEST(StringsTest, HumanCountMatchesPaperStyle) {
  EXPECT_EQ(human_count(61.1e6), "61.1M");
  EXPECT_EQ(human_count(303e3, 0), "303k");
  EXPECT_EQ(human_count(8.6e9), "8.6G");
  EXPECT_EQ(human_count(42), "42");
}

TEST(StringsTest, PercentFormatting) {
  EXPECT_EQ(percent(3261, 10000), "32.61%");
  EXPECT_EQ(percent(1, 0), "0.00%");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyz", 2), "xyz");  // never truncates
}

TEST(StringsTest, ToLowerAndContains) {
  EXPECT_EQ(to_lower("WwW.ExAmPle.COM"), "www.example.com");
  EXPECT_TRUE(contains("appleid.apple.com-x.gq", "appleid"));
  EXPECT_FALSE(contains("example.org", "apple"));
}

}  // namespace
}  // namespace ctwatch
