#include <gtest/gtest.h>

#include "ctwatch/net/autonomous_system.hpp"
#include "ctwatch/net/capture.hpp"
#include "ctwatch/net/ip.hpp"

namespace ctwatch::net {
namespace {

// ---------- IPv4 ----------

TEST(IPv4Test, ParseAndFormat) {
  const auto a = IPv4::parse("192.0.2.17");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.0.2.17");
  EXPECT_EQ(*a, IPv4(192, 0, 2, 17));
}

TEST(IPv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4::parse(""));
  EXPECT_FALSE(IPv4::parse("1.2.3"));
  EXPECT_FALSE(IPv4::parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4::parse("256.1.1.1"));
  EXPECT_FALSE(IPv4::parse("1.2.3.4 "));
  EXPECT_FALSE(IPv4::parse("a.b.c.d"));
}

TEST(IPv4Test, Ordering) {
  EXPECT_LT(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2));
  EXPECT_LT(IPv4(9, 255, 255, 255), IPv4(10, 0, 0, 0));
}

// ---------- IPv6 ----------

TEST(IPv6Test, ParseFullForm) {
  const auto a = IPv6::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IPv6Test, ParseCompressedForms) {
  EXPECT_EQ(IPv6::parse("::")->to_string(), "::");
  EXPECT_EQ(IPv6::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IPv6::parse("2001:db8::")->to_string(), "2001:db8::");
  EXPECT_EQ(IPv6::parse("2001:db8::5:0:1")->to_string(), "2001:db8::5:0:1");
}

TEST(IPv6Test, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv6::parse("2001:db8"));               // too few groups
  EXPECT_FALSE(IPv6::parse("1:2:3:4:5:6:7:8:9"));      // too many
  EXPECT_FALSE(IPv6::parse("2001::db8::1"));           // two "::"
  EXPECT_FALSE(IPv6::parse("2001:db8::zzzz"));         // bad hex
  EXPECT_FALSE(IPv6::parse("12345::1"));               // hextet too long
}

TEST(IPv6Test, RoundTripThroughHextets) {
  const IPv6 addr = IPv6::from_hextets({0x2001, 0xdb8, 1, 0, 0, 0, 0, 42});
  EXPECT_EQ(addr.to_string(), "2001:db8:1::2a");
  EXPECT_EQ(*IPv6::parse(addr.to_string()), addr);
}

TEST(IPv6Test, LongestZeroRunCompressed) {
  // Two zero runs: the longer one gets "::".
  const IPv6 addr = IPv6::from_hextets({1, 0, 0, 2, 0, 0, 0, 3});
  EXPECT_EQ(addr.to_string(), "1:0:0:2::3");
}

// ---------- prefixes ----------

TEST(Prefix4Test, ContainsAndMasking) {
  const Prefix4 p(IPv4(192, 0, 2, 77), 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");  // base is masked
  EXPECT_TRUE(p.contains(IPv4(192, 0, 2, 1)));
  EXPECT_TRUE(p.contains(IPv4(192, 0, 2, 255)));
  EXPECT_FALSE(p.contains(IPv4(192, 0, 3, 1)));
}

TEST(Prefix4Test, ZeroLengthMatchesEverything) {
  const Prefix4 all(IPv4(0, 0, 0, 0), 0);
  EXPECT_TRUE(all.contains(IPv4(255, 255, 255, 255)));
}

TEST(Prefix4Test, CoversNestedPrefixes) {
  const Prefix4 big(IPv4(10, 0, 0, 0), 8);
  const Prefix4 small(IPv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
}

TEST(Prefix4Test, ParseAndValidation) {
  const auto p = Prefix4::parse("100.64.0.0/10");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 10);
  EXPECT_FALSE(Prefix4::parse("100.64.0.0"));
  EXPECT_FALSE(Prefix4::parse("100.64.0.0/33"));
  EXPECT_FALSE(Prefix4::parse("100.64.0.0/x"));
  EXPECT_THROW(Prefix4(IPv4(1, 2, 3, 4), 40), std::invalid_argument);
}

TEST(Prefix4Test, Slash24Helper) {
  EXPECT_EQ(slash24(IPv4(88, 198, 7, 33)).to_string(), "88.198.7.0/24");
}

// ---------- AS registry & routing ----------

TEST(AsRegistryTest, OriginLongestPrefixMatch) {
  AsRegistry registry;
  registry.add(AsInfo{15169, "Google", true});
  registry.add(AsInfo{29073, "Quasi Networks", false});
  registry.announce(15169, Prefix4(IPv4(8, 0, 0, 0), 8));
  registry.announce(29073, Prefix4(IPv4(8, 8, 8, 0), 24));  // more specific
  EXPECT_EQ(registry.origin(IPv4(8, 8, 8, 8)), 29073u);
  EXPECT_EQ(registry.origin(IPv4(8, 1, 1, 1)), 15169u);
  EXPECT_FALSE(registry.origin(IPv4(9, 9, 9, 9)));
}

TEST(AsRegistryTest, AnnounceRequiresKnownAs) {
  AsRegistry registry;
  EXPECT_THROW(registry.announce(64512, Prefix4(IPv4(10, 0, 0, 0), 8)), std::invalid_argument);
}

TEST(AsRegistryTest, NameLookup) {
  AsRegistry registry;
  registry.add(AsInfo{54054, "Deteque", true});
  EXPECT_EQ(registry.name_of(54054), "Deteque");
  EXPECT_EQ(registry.name_of(99999), "AS99999");
  EXPECT_FALSE(registry.lookup(12345));
  ASSERT_TRUE(registry.lookup(54054));
  EXPECT_TRUE(registry.lookup(54054)->honors_abuse);
}

TEST(RoutingTableTest, RoutableAndLongestMatch) {
  RoutingTable table;
  table.add_route(*Prefix4::parse("100.64.0.0/10"));
  table.add_route(*Prefix4::parse("100.64.5.0/24"));
  EXPECT_TRUE(table.routable(IPv4(100, 64, 5, 9)));
  EXPECT_EQ(table.match(IPv4(100, 64, 5, 9))->length(), 24);
  EXPECT_EQ(table.match(IPv4(100, 65, 0, 1))->length(), 10);
  EXPECT_FALSE(table.routable(IPv4(203, 0, 113, 1)));
}

TEST(RoutingTableTest, AddAllFromRegistry) {
  AsRegistry registry;
  registry.add(AsInfo{64500, "Test", true});
  registry.announce(64500, Prefix4(IPv4(198, 18, 0, 0), 15));
  RoutingTable table;
  table.add_all(registry);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.routable(IPv4(198, 19, 0, 1)));
}

// ---------- capture ----------

class CaptureTest : public ::testing::Test {
 protected:
  CaptureTest() {
    auto add = [this](std::int64_t t, IPv4 src, std::uint16_t port, const char* sni) {
      ConnectionEvent event;
      event.time = SimTime{t};
      event.src = src;
      event.dst4 = IPv4(100, 64, 0, 1);
      event.dst_port = port;
      event.sni = sni;
      capture_.record(event);
    };
    add(100, IPv4(1, 1, 1, 1), 443, "a.example");
    add(200, IPv4(1, 1, 1, 1), 80, "a.example");
    add(300, IPv4(2, 2, 2, 2), 443, "b.example");
    ConnectionEvent v6;
    v6.time = SimTime{400};
    v6.src = IPv4(3, 3, 3, 3);
    v6.dst6 = *IPv6::parse("2001:db8:1::2a");
    v6.dst_port = 443;
    capture_.record(v6);
  }
  PacketCapture capture_;
};

TEST_F(CaptureTest, TimeWindowFilter) {
  EXPECT_EQ(capture_.between(SimTime{100}, SimTime{300}).size(), 2u);
  EXPECT_EQ(capture_.between(SimTime{0}, SimTime{1000}).size(), 4u);
  EXPECT_TRUE(capture_.between(SimTime{500}, SimTime{600}).empty());
}

TEST_F(CaptureTest, NameFilter) {
  EXPECT_EQ(capture_.with_name("a.example").size(), 2u);
  EXPECT_TRUE(capture_.with_name("c.example").empty());
}

TEST_F(CaptureTest, AddressFilters) {
  EXPECT_EQ(capture_.to_address(IPv4(100, 64, 0, 1)).size(), 3u);
  EXPECT_EQ(capture_.to_address(*IPv6::parse("2001:db8:1::2a")).size(), 1u);
  EXPECT_TRUE(capture_.to_address(*IPv6::parse("2001:db8:1::2b")).empty());
}

TEST_F(CaptureTest, PortsProbedBySource) {
  const auto ports = capture_.ports_probed_by(IPv4(1, 1, 1, 1));
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], 80);   // sorted, distinct
  EXPECT_EQ(ports[1], 443);
  EXPECT_TRUE(capture_.ports_probed_by(IPv4(9, 9, 9, 9)).empty());
}

}  // namespace
}  // namespace ctwatch::net
