#include <gtest/gtest.h>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::ct {
namespace {

std::string hex(const Digest& d) { return hex_encode(BytesView{d.data(), d.size()}); }

Digest leaf_of(const std::string& data) { return leaf_hash(to_bytes(data)); }

// The RFC 6962 test vectors (from the certificate-transparency reference
// implementation): leaves are the byte strings below, roots are known.
const std::vector<Bytes>& rfc_leaves() {
  static const std::vector<Bytes> leaves = {
      hex_decode(""),
      hex_decode("00"),
      hex_decode("10"),
      hex_decode("2021"),
      hex_decode("3031"),
      hex_decode("40414243"),
      hex_decode("5051525354555657"),
      hex_decode("606162636465666768696a6b6c6d6e6f"),
  };
  return leaves;
}

TEST(MerkleTest, EmptyTreeRootIsSha256OfEmpty) {
  MerkleTree tree;
  EXPECT_EQ(hex(tree.root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(MerkleTest, Rfc6962KnownRoots) {
  // Expected roots from the CT reference test data for 1, 2, 3, 8 leaves.
  MerkleTree tree;
  const auto& leaves = rfc_leaves();
  tree.append_data(leaves[0]);
  EXPECT_EQ(hex(tree.root()),
            "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d");
  tree.append_data(leaves[1]);
  EXPECT_EQ(hex(tree.root()),
            "fac54203e7cc696cf0dfcb42c92a1d9dbaf70ad9e621f4bd8d98662f00e3c125");
  tree.append_data(leaves[2]);
  EXPECT_EQ(hex(tree.root()),
            "aeb6bcfe274b70a14fb067a5e5578264db0fa9b51af5e0ba159158f329e06e77");
  for (std::size_t i = 3; i < 8; ++i) tree.append_data(leaves[i]);
  EXPECT_EQ(hex(tree.root()),
            "5dc9da79a70659a9ad559cb701ded9a2ab9d823aad2f4960cfe370eff4604328");
}

TEST(MerkleTest, Rfc6962KnownInclusionProof) {
  MerkleTree tree;
  for (const Bytes& leaf : rfc_leaves()) tree.append_data(leaf);
  // PATH(0, 8 leaves) from the reference test data.
  const auto proof = tree.inclusion_proof(0, 8);
  ASSERT_EQ(proof.size(), 3u);
  EXPECT_EQ(hex(proof[0]), "96a296d224f285c67bee93c30f8a309157f0daa35dc5b87e410b78630a09cfc7");
  EXPECT_EQ(hex(proof[1]), "5f083f0a1a33ca076a95279832580db3e0ef4584bdff1f54c8a360f50de3031e");
  EXPECT_EQ(hex(proof[2]), "6b47aaf29ee3c2af9af889bc1fb9254dabd31177f16232dd6aab035ca39bf6e4");
}

TEST(MerkleTest, Rfc6962KnownConsistencyProof) {
  MerkleTree tree;
  for (const Bytes& leaf : rfc_leaves()) tree.append_data(leaf);
  // PROOF(6, D[8]) from the reference test data.
  const auto proof = tree.consistency_proof(6, 8);
  ASSERT_EQ(proof.size(), 3u);
  EXPECT_EQ(hex(proof[0]), "0ebc5d3437fbe2db158b9f126a1d118e308181031d0a949f8dededebc558ef6a");
  EXPECT_EQ(hex(proof[1]), "ca854ea128ed050b41b35ffc1b87b8eb2bde461e9e3b5596ece6b9d5975a0ae0");
  EXPECT_EQ(hex(proof[2]), "d37ee418976dd95753c1c73862b9398fa2a2cf9b4ff0fdfe8b30cd95209614b7");
  EXPECT_TRUE(verify_consistency(6, 8, tree.root_at(6), tree.root(), proof));
}

TEST(MerkleTest, IncrementalRootMatchesRecursive) {
  MerkleTree tree;
  for (int i = 0; i < 100; ++i) {
    tree.append(leaf_of("leaf-" + std::to_string(i)));
    EXPECT_EQ(tree.root(), tree.root_at(tree.size())) << "size " << tree.size();
  }
}

TEST(MerkleTest, RootAtBeyondSizeThrows) {
  MerkleTree tree;
  tree.append(leaf_of("x"));
  EXPECT_THROW((void)tree.root_at(2), std::out_of_range);
}

TEST(MerkleTest, InclusionProofBadArgsThrow) {
  MerkleTree tree;
  tree.append(leaf_of("x"));
  EXPECT_THROW((void)tree.inclusion_proof(0, 2), std::out_of_range);
  EXPECT_THROW((void)tree.inclusion_proof(1, 1), std::out_of_range);
}

TEST(MerkleTest, VerifyRejectsWrongLeaf) {
  MerkleTree tree;
  for (int i = 0; i < 10; ++i) tree.append(leaf_of("leaf-" + std::to_string(i)));
  const auto proof = tree.inclusion_proof(4, 10);
  EXPECT_TRUE(verify_inclusion(leaf_of("leaf-4"), 4, 10, proof, tree.root()));
  EXPECT_FALSE(verify_inclusion(leaf_of("leaf-5"), 4, 10, proof, tree.root()));
  EXPECT_FALSE(verify_inclusion(leaf_of("leaf-4"), 5, 10, proof, tree.root()));
  EXPECT_FALSE(verify_inclusion(leaf_of("leaf-4"), 4, 10, proof, tree.root_at(9)));
}

TEST(MerkleTest, VerifyRejectsTamperedProof) {
  MerkleTree tree;
  for (int i = 0; i < 31; ++i) tree.append(leaf_of("leaf-" + std::to_string(i)));
  auto proof = tree.inclusion_proof(17, 31);
  ASSERT_FALSE(proof.empty());
  proof[0][0] ^= 0x01;
  EXPECT_FALSE(verify_inclusion(leaf_of("leaf-17"), 17, 31, proof, tree.root()));
}

TEST(MerkleTest, ConsistencySameSizeIsEmptyProof) {
  MerkleTree tree;
  for (int i = 0; i < 5; ++i) tree.append(leaf_of("l" + std::to_string(i)));
  EXPECT_TRUE(tree.consistency_proof(5, 5).empty());
  EXPECT_TRUE(verify_consistency(5, 5, tree.root(), tree.root(), {}));
  EXPECT_FALSE(verify_consistency(5, 5, tree.root(), leaf_of("other"), {}));
}

TEST(MerkleTest, ConsistencyDetectsRewrittenHistory) {
  MerkleTree honest;
  for (int i = 0; i < 12; ++i) honest.append(leaf_of("l" + std::to_string(i)));
  const Digest old_root = honest.root_at(7);

  MerkleTree dishonest;
  for (int i = 0; i < 12; ++i) {
    dishonest.append(leaf_of(i == 3 ? "evil" : "l" + std::to_string(i)));
  }
  // The dishonest tree cannot produce a proof connecting the honest old
  // root to its new root.
  const auto proof = dishonest.consistency_proof(7, 12);
  EXPECT_FALSE(verify_consistency(7, 12, old_root, dishonest.root(), proof));
  // The honest proof of course verifies.
  EXPECT_TRUE(verify_consistency(7, 12, old_root, honest.root(), honest.consistency_proof(7, 12)));
}

// Property sweep: every (index, size) pair for trees up to 64 leaves has a
// verifying inclusion proof, and every (old, new) pair a verifying
// consistency proof.
class MerklePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MerklePropertyTest, AllInclusionProofsVerify) {
  const std::uint64_t size = GetParam();
  MerkleTree tree;
  for (std::uint64_t i = 0; i < size; ++i) tree.append(leaf_of("p" + std::to_string(i)));
  const Digest root = tree.root();
  for (std::uint64_t index = 0; index < size; ++index) {
    const auto proof = tree.inclusion_proof(index, size);
    EXPECT_TRUE(verify_inclusion(leaf_of("p" + std::to_string(index)), index, size, proof, root))
        << "index " << index << " size " << size;
  }
}

TEST_P(MerklePropertyTest, AllConsistencyProofsVerify) {
  const std::uint64_t size = GetParam();
  MerkleTree tree;
  std::vector<Digest> roots{crypto::Sha256::hash(BytesView{})};
  for (std::uint64_t i = 0; i < size; ++i) {
    tree.append(leaf_of("p" + std::to_string(i)));
    roots.push_back(tree.root());
  }
  for (std::uint64_t old_size = 0; old_size <= size; ++old_size) {
    const auto proof = tree.consistency_proof(old_size, size);
    EXPECT_TRUE(verify_consistency(old_size, size, roots[old_size], roots[size], proof))
        << "old " << old_size << " new " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerklePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33,
                                           47, 64));

TEST(MerkleTest, HistoricInclusionProofs) {
  // A proof against an older tree size must verify against that size's root.
  MerkleTree tree;
  for (int i = 0; i < 40; ++i) tree.append(leaf_of("h" + std::to_string(i)));
  for (const std::uint64_t at : {13ull, 21ull, 33ull}) {
    const Digest root = tree.root_at(at);
    for (std::uint64_t index = 0; index < at; index += 5) {
      EXPECT_TRUE(verify_inclusion(leaf_of("h" + std::to_string(index)), index, at,
                                   tree.inclusion_proof(index, at), root));
    }
  }
}

TEST(MerkleTest, LeafHashDomainSeparation) {
  // leaf_hash(x) must differ from node_hash over the same bytes (0x00 vs
  // 0x01 prefixes prevent second-preimage attacks between levels).
  const Digest a = crypto::Sha256::hash(to_bytes("ab"));
  EXPECT_NE(hex(leaf_hash(to_bytes("ab"))), hex(crypto::Sha256::hash(to_bytes("ab"))));
  EXPECT_NE(hex(node_hash(a, a)), hex(leaf_hash(to_bytes(std::string(64, 'x')))));
}

}  // namespace
}  // namespace ctwatch::ct
