// Coverage for the smaller utilities and the late-added helpers: DER
// signature form, SCT inclusion auditing, the Bro-style ssl.log writer,
// rDNS, scan ethics, and assorted distribution helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "ctwatch/ct/auditor.hpp"
#include "ctwatch/monitor/ssl_log.hpp"
#include "ctwatch/dns/records.hpp"
#include "ctwatch/net/reverse_dns.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/util/rng.hpp"
#include "ctwatch/x509/certificate.hpp"

namespace ctwatch {
namespace {

using crypto::SignatureScheme;

// ---------- DER ECDSA signatures ----------

TEST(DerSignatureTest, RoundTrip) {
  const auto key = crypto::EcdsaKeyPair::derive("der-sig");
  const crypto::EcdsaSignature sig = key.sign(to_bytes("message"));
  const Bytes der = x509::ecdsa_signature_to_der(sig);
  EXPECT_EQ(x509::ecdsa_signature_from_der(der), sig);
}

TEST(DerSignatureTest, DerIsMinimal) {
  // High-bit r values gain a 0x00 pad; small values shrink — the DER form
  // is variable length, unlike the raw 64-byte form.
  const crypto::EcdsaSignature small{crypto::U256{5}, crypto::U256{7}};
  const Bytes der = x509::ecdsa_signature_to_der(small);
  EXPECT_LT(der.size(), 16u);
  EXPECT_EQ(x509::ecdsa_signature_from_der(der), small);
}

TEST(DerSignatureTest, RejectsMalformed) {
  EXPECT_THROW(x509::ecdsa_signature_from_der(to_bytes("junk")), std::invalid_argument);
  const crypto::EcdsaSignature sig{crypto::U256{1}, crypto::U256{2}};
  Bytes der = x509::ecdsa_signature_to_der(sig);
  der.push_back(0x00);
  EXPECT_THROW(x509::ecdsa_signature_from_der(der), std::invalid_argument);
}

// ---------- SCT inclusion audit ----------

class SctAuditTest : public ::testing::Test {
 protected:
  SctAuditTest()
      : ca_("Audit2 CA", "Audit2 Issuing CA", SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-04-10")) {
    ct::LogConfig config;
    config.name = "Audit2 Log";
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    log_ = std::make_unique<ct::CtLog>(config);
  }

  sim::IssuanceResult issue(const std::string& cn) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    request.not_before = now_;
    request.not_after = now_ + 90 * 86400;
    request.logs = {log_.get()};
    return ca_.issue(request, now_);
  }

  sim::CertificateAuthority ca_;
  std::unique_ptr<ct::CtLog> log_;
  SimTime now_;
};

TEST_F(SctAuditTest, HonoredPromiseAuditsClean) {
  const auto issued = issue("audit.example.org");
  issue("noise1.example.org");
  issue("noise2.example.org");
  const ct::SignedEntry entry =
      ct::make_precert_entry(issued.final_certificate, ca_.public_key());
  const auto index = ct::find_promised_entry(*log_, issued.scts[0], entry);
  ASSERT_TRUE(index);
  EXPECT_EQ(*index, 0u);
  EXPECT_TRUE(ct::audit_sct_inclusion(*log_, issued.scts[0], entry, now_ + 86400));
}

TEST_F(SctAuditTest, ForeignSctFailsAudit) {
  const auto issued = issue("audit.example.org");
  ct::LogConfig other_config;
  other_config.name = "Audit2 Other Log";
  other_config.scheme = SignatureScheme::hmac_sha256_simulated;
  ct::CtLog other(other_config);
  const ct::SignedEntry entry =
      ct::make_precert_entry(issued.final_certificate, ca_.public_key());
  // The SCT was issued by log_, so auditing it against `other` fails on
  // the signature already.
  EXPECT_FALSE(ct::audit_sct_inclusion(other, issued.scts[0], entry, now_ + 86400));
}

TEST_F(SctAuditTest, BrokenPromiseDetected) {
  // Forge a plausible SCT that the log never integrated: sign with the
  // log's own key derivation (same seed label) over an entry the log never
  // saw. The signature verifies but the promised entry is absent.
  const auto issued = issue("audit.example.org");
  sim::IssuanceRequest request;
  request.subject_cn = "never-logged.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now_;
  request.not_after = now_ + 90 * 86400;
  const x509::Certificate ghost = ca_.issue_unlogged(request, now_);
  ct::SignedEntry ghost_entry = ct::make_precert_entry(ghost, ca_.public_key());

  ct::SignedCertificateTimestamp forged;
  forged.log_id = log_->log_id();
  forged.timestamp_ms = issued.scts[0].timestamp_ms;
  const auto signer =
      crypto::make_signer("ct-log/Audit2 Log", SignatureScheme::hmac_sha256_simulated);
  forged.signature = signer->sign(ct::sct_signing_input(forged, ghost_entry));
  ASSERT_TRUE(ct::verify_sct(forged, ghost_entry, log_->public_key()));
  EXPECT_FALSE(ct::find_promised_entry(*log_, forged, ghost_entry));
  EXPECT_FALSE(ct::audit_sct_inclusion(*log_, forged, ghost_entry, now_ + 86400));
}

// ---------- ssl.log writer ----------

TEST(SslLogTest, WritesHeaderAndRows) {
  sim::CertificateAuthority ca("Ssl CA", "Ssl Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  ct::LogConfig config;
  config.name = "Ssl Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  ct::CtLog log(config);
  ct::LogList list;
  list.add_log(log, SimTime::parse("2016-01-01"), true);

  sim::IssuanceRequest request;
  request.subject_cn = "bro.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2018-07-01");
  request.logs = {&log};
  const auto issued = ca.issue(request, SimTime::parse("2018-04-01"));

  tls::ConnectionRecord record;
  record.time = SimTime::parse("2018-04-02 10:00:00");
  record.server_name = "bro.example.org";
  record.client_signals_sct = true;
  record.certificate = std::make_shared<const x509::Certificate>(issued.final_certificate);
  record.issuer_public_key = std::make_shared<const Bytes>(ca.public_key());

  std::ostringstream out;
  monitor::SslLogWriter writer(out, list);
  writer.process(record);
  writer.process(record);
  EXPECT_EQ(writer.lines_written(), 2u);

  const std::string text = out.str();
  EXPECT_NE(text.find("#fields\tts\tserver_name"), std::string::npos);
  EXPECT_NE(text.find("bro.example.org\tT\t1\t0\t0\t1\t0\tSsl Issuing CA"), std::string::npos);
  // Header + 2 data lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(SslLogTest, FlagsInvalidSctInValidationColumn) {
  sim::CertificateAuthority ca("Ssl CA 2", "Ssl Issuing CA 2",
                               SignatureScheme::hmac_sha256_simulated);
  ct::LogConfig config;
  config.name = "Ssl Log 2";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  ct::CtLog log(config);
  ct::LogList list;
  list.add_log(log, SimTime::parse("2016-01-01"), true);

  sim::IssuanceRequest request;
  request.subject_cn = "bad.example.org";
  request.sans = {x509::SanEntry::dns("bad.example.org"),
                  x509::SanEntry::dns("alt.example.org")};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2018-07-01");
  request.logs = {&log};
  request.bug = sim::IssuanceBug::san_reorder;
  const auto issued = ca.issue(request, SimTime::parse("2018-04-01"));

  tls::ConnectionRecord record;
  record.time = SimTime::parse("2018-04-02");
  record.server_name = "bad.example.org";
  record.certificate = std::make_shared<const x509::Certificate>(issued.final_certificate);
  record.issuer_public_key = std::make_shared<const Bytes>(ca.public_key());

  std::ostringstream out;
  monitor::SslLogWriter writer(out, list);
  writer.process(record);
  EXPECT_NE(out.str().find("\t0\t1\t"), std::string::npos);  // valid=0, invalid=1
}

// ---------- rDNS ----------

TEST(ReverseDnsTest, LookupAndWalk) {
  net::ReverseDns rdns;
  rdns.register_v4(net::IPv4(192, 0, 2, 1), "scanner.example.org");
  rdns.register_v6(*net::IPv6::parse("2001:db8:42::1"), "host1.example.org");
  rdns.register_v6(*net::IPv6::parse("2001:db8:42::2"), "host2.example.org");
  rdns.register_v6(*net::IPv6::parse("2001:db8:77::1"), "other.example.org");

  EXPECT_EQ(*rdns.lookup(net::IPv4(192, 0, 2, 1)), "scanner.example.org");
  EXPECT_FALSE(rdns.lookup(net::IPv4(192, 0, 2, 2)));
  EXPECT_EQ(*rdns.lookup(*net::IPv6::parse("2001:db8:42::1")), "host1.example.org");
  EXPECT_FALSE(rdns.lookup(*net::IPv6::parse("2001:db8:42::9")));

  const Bytes prefix42 = {0x20, 0x01, 0x0d, 0xb8, 0x00, 0x42};
  EXPECT_EQ(rdns.walk_v6(prefix42).size(), 2u);
  const Bytes prefix_empty = {0x20, 0x01, 0x0d, 0xb8, 0x00, 0x99};
  EXPECT_TRUE(rdns.walk_v6(prefix_empty).empty());
  EXPECT_EQ(rdns.size(), 4u);
}

// ---------- distribution helpers ----------

TEST(RngDistributionTest, ParetoIsHeavyTailedAndBounded) {
  Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
  EXPECT_THROW(rng.pareto(0, 1), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1, 0), std::invalid_argument);
}

TEST(RngDistributionTest, NormalHasZeroishMean) {
  Rng rng(56);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.normal();
  EXPECT_NEAR(sum / 20000, 0.0, 0.05);
}

TEST(RngDistributionTest, PickFromVector) {
  Rng rng(57);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

// ---------- misc string conversions ----------

TEST(ToStringTest, EnumsHaveNames) {
  EXPECT_EQ(tls::to_string(tls::SctDelivery::certificate), "cert");
  EXPECT_EQ(tls::to_string(tls::SctDelivery::tls_extension), "tls");
  EXPECT_EQ(tls::to_string(tls::SctDelivery::ocsp_staple), "ocsp");
  EXPECT_EQ(dns::to_string(dns::RrType::AAAA), "AAAA");
  EXPECT_EQ(dns::to_string(dns::RrType::SOA), "SOA");
  EXPECT_EQ(crypto::to_string(SignatureScheme::ecdsa_p256_sha256), "ecdsa-p256-sha256");
  EXPECT_EQ(sim::to_string(sim::IssuanceBug::san_reorder), "san-reorder");
}

TEST(HkdfTest, RejectsOversizedOutput) {
  const Bytes prk(32, 0x42);
  EXPECT_THROW(crypto::hkdf_expand(prk, to_bytes("info"), 255 * 32 + 1), std::invalid_argument);
}

}  // namespace
}  // namespace ctwatch
