// End-to-end integration: runs each of the paper's studies at reduced
// scale and asserts the qualitative findings (the same shapes the bench
// binaries print, as machine-checked invariants). These tests are the
// repository's regression net for the calibration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "ctwatch/core/ctwatch.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch {
namespace {

using crypto::SignatureScheme;

sim::EcosystemOptions bulk(std::uint64_t seed) {
  sim::EcosystemOptions options;
  options.scheme = SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = false;
  options.seed = seed;
  return options;
}

// ---------- §2: the full evolution pipeline ----------

TEST(EndToEnd, Section2LogEvolution) {
  sim::Ecosystem ecosystem(bulk(101));
  sim::TimelineOptions options;
  options.scale = 1.0 / 10000.0;
  const sim::TimelineStats stats = sim::TimelineSimulator(ecosystem, options).run();
  ASSERT_GT(stats.issued, 10000u);

  const core::LogEvolutionReport report = core::LogEvolutionStudy(ecosystem).run();
  // The paper's §2 findings.
  EXPECT_GT(report.top5_share, 0.95);
  EXPECT_GT(report.matrix_sparsity, 0.6);
  // Let's Encrypt from zero to dominant within two months.
  const auto& le = report.cumulative_by_ca.at("Let's Encrypt");
  const auto& months = report.months;
  std::uint64_t le_feb = 0, le_apr = 0, total_apr = 0;
  for (std::size_t i = 0; i < months.size(); ++i) {
    if (months[i] == "2018-02") le_feb = le[i];
    if (months[i] == "2018-04") {
      le_apr = le[i];
      for (const auto& [ca, series] : report.cumulative_by_ca) total_apr += series[i];
    }
  }
  EXPECT_EQ(le_feb, 0u);
  EXPECT_GT(le_apr, total_apr / 3);  // the largest single CA by far
  // Note: Nimbus overload rejections only manifest at the default 1/2000
  // timeline scale (the capacity is calibrated there); the fig1c bench and
  // CtLogCapacityTest cover that behaviour.
  EXPECT_EQ(report.overload_rejections.count("Cloudflare Nimbus2018"), 1u);
}

// ---------- §3: passive vs scan on one world ----------

class Section3Fixture : public ::testing::Test {
 protected:
  Section3Fixture() : ecosystem_(bulk(202)), population_(ecosystem_, population_options()) {}

  static sim::PopulationOptions population_options() {
    sim::PopulationOptions options;
    options.site_count = 4000;
    options.popular_tier = 400;
    return options;
  }

  sim::Ecosystem ecosystem_;
  sim::ServerPopulation population_;
};

TEST_F(Section3Fixture, PassiveTotalsLandNearPaperValues) {
  monitor::PassiveMonitor monitor(ecosystem_.log_list());
  sim::TrafficOptions options;
  options.connections_per_day = 1200;
  sim::TrafficGenerator traffic(population_, options, Rng(1));
  traffic.run(monitor);

  const auto& totals = monitor.totals();
  const double conns = static_cast<double>(totals.connections);
  EXPECT_NEAR(static_cast<double>(totals.with_any_sct) / conns, 0.33, 0.06);
  EXPECT_NEAR(static_cast<double>(totals.sct_in_cert) / conns, 0.214, 0.05);
  EXPECT_NEAR(static_cast<double>(totals.sct_in_tls) / conns, 0.112, 0.04);
  EXPECT_NEAR(static_cast<double>(totals.client_signaled) / conns, 0.668, 0.01);
  EXPECT_EQ(totals.invalid_scts, 0u);  // no buggy CAs in this population

  // Table 1 ordering: Pilot leads the cert channel, Symantec the TLS one.
  const auto& usage = monitor.log_usage();
  EXPECT_GT(usage.at("Google Pilot").cert_scts, usage.at("Symantec log").cert_scts);
  EXPECT_GT(usage.at("Symantec log").cert_scts, usage.at("DigiCert Log Server").cert_scts);
  EXPECT_GT(usage.at("Symantec log").tls_scts, usage.at("Google Pilot").tls_scts);
  // LE logs nearly invisible in traffic.
  const std::uint64_t nimbus_cert = usage.count("Cloudflare Nimbus2018")
                                        ? usage.at("Cloudflare Nimbus2018").cert_scts
                                        : 0;
  EXPECT_LT(nimbus_cert * 5, usage.at("Google Pilot").cert_scts);
}

TEST_F(Section3Fixture, ScanViewInvertsTheLogRanking) {
  monitor::PassiveMonitor monitor(ecosystem_.log_list());
  sim::ScanDriver scan(population_, sim::ScanOptions{});
  scan.run(monitor);
  const auto& totals = monitor.totals();
  const double share = static_cast<double>(totals.unique_certs_with_embedded_sct) /
                       static_cast<double>(totals.unique_certificates);
  EXPECT_NEAR(share, 0.687, 0.08);
  const auto& usage = monitor.log_usage();
  // In the scan view the Let's Encrypt logs dominate everything.
  EXPECT_GT(usage.at("Cloudflare Nimbus2018").cert_scts, usage.at("Google Pilot").cert_scts * 5);
  EXPECT_GT(usage.at("Google Icarus").cert_scts, usage.at("Symantec log").cert_scts * 5);
}

TEST_F(Section3Fixture, ScanHonorsBlacklist) {
  monitor::PassiveMonitor monitor(ecosystem_.log_list());
  sim::ScanOptions options;
  options.blacklist.insert(population_.site(3).fqdn);
  options.blacklist.insert(population_.site(7).fqdn);
  sim::ScanDriver scan(population_, options);
  const sim::ScanStats stats = scan.run(monitor);
  EXPECT_EQ(stats.blacklist_skipped, 2u);
  EXPECT_EQ(stats.servers_scanned, population_.size() - 2);
}

// ---------- §4 + §5 + §6 glued on one corpus/world ----------

TEST(EndToEnd, Section4LeakagePipeline) {
  sim::DomainCorpusOptions corpus_options;
  corpus_options.registrable_count = 6000;
  sim::DomainCorpus corpus(corpus_options);
  core::LeakageStudy study(corpus);
  enumeration::EnumerationOptions options;
  options.min_label_count = 30;
  const core::LeakageReport report = study.run(options);

  // Table 2 head order.
  ASSERT_GE(report.top_labels.size(), 6u);
  EXPECT_EQ(report.top_labels[0].first, "www");
  EXPECT_EQ(report.top_labels[1].first, "mail");
  // The funnel discovers, the controls filter, Sonar knows only a bit.
  EXPECT_GT(report.funnel.novel, 100u);
  EXPECT_GT(report.funnel.control_replies, report.funnel.confirmed);
  EXPECT_LT(report.funnel.known_in_sonar, report.funnel.confirmed / 2);
  // Wordlists would have missed nearly everything.
  EXPECT_LE(report.subbrute.present_in_ct, 16u);
  EXPECT_LE(report.dnsrecon.present_in_ct, 12u);
}

TEST(EndToEnd, Section5PhishingOverSharedCorpus) {
  const sim::PhishingCorpus phishing_corpus = sim::generate_phishing_corpus();
  sim::DomainCorpusOptions bg;
  bg.registrable_count = 5000;
  sim::DomainCorpus background(bg);
  std::vector<std::string> names = background.ct_names();
  const std::size_t benign = names.size();
  names.insert(names.end(), phishing_corpus.names.begin(), phishing_corpus.names.end());

  const dns::PublicSuffixList psl = dns::PublicSuffixList::bundled();
  phishing::PhishingDetector detector(psl, phishing::standard_rules());
  const auto findings = detector.scan(names);
  // Exactly the planted phishing names are flagged: zero false positives
  // over thousands of benign names, zero false negatives.
  EXPECT_EQ(findings.size(), phishing_corpus.planted_phishing);
  EXPECT_GT(benign, 5000u);

  const auto summary = phishing::PhishingDetector::summarize(findings);
  EXPECT_GT(summary.at("Apple").count, summary.at("Microsoft").count);
  EXPECT_GT(summary.at("PayPal").count, summary.at("eBay").count);
}

TEST(EndToEnd, Section6HoneypotFullRun) {
  sim::EcosystemOptions options = bulk(303);
  options.store_bodies = true;
  sim::Ecosystem ecosystem(options);
  honeypot::CtHoneypot pot(ecosystem);
  for (int i = 0; i < 11; ++i) {
    pot.create_subdomain(SimTime::parse("2018-04-30 13:00:00") + i * 600);
  }
  honeypot::AttackerFleet fleet(pot, honeypot::standard_fleet(), Rng(6));
  fleet.run();
  const honeypot::HoneypotReport report = honeypot::analyze(pot);

  ASSERT_EQ(report.rows.size(), 11u);
  for (const auto& row : report.rows) {
    ASSERT_TRUE(row.first_dns);
    EXPECT_LT(row.dns_delta, 200);  // minutes, not hours
  }
  EXPECT_EQ(report.ipv6_contacts, 0u);
  EXPECT_EQ(report.port_scanners.size(), 1u);
  EXPECT_GE(report.ecs_subnets.size(), 5u);
  // No inbound scanner follows best practices (the standard fleet has no
  // informative rDNS).
  EXPECT_GT(report.sources_total, 0u);
  EXPECT_EQ(report.sources_with_best_practices, 0u);

  // rDNS walking the honeypot prefix finds nothing: the AAAA records were
  // never registered.
  const Bytes prefix = {0x20, 0x01, 0x0d, 0xb8, 0x00, 0x01};
  EXPECT_TRUE(pot.reverse_dns().walk_v6(prefix).empty());
}

TEST(EndToEnd, Section6BenevolentScannerWouldBeIdentifiable) {
  sim::EcosystemOptions options = bulk(304);
  options.store_bodies = true;
  sim::Ecosystem ecosystem(options);
  honeypot::CtHoneypot pot(ecosystem);
  pot.create_subdomain(SimTime::parse("2018-05-01 09:00:00"));

  auto fleet_spec = honeypot::standard_fleet();
  honeypot::MonitorActorSpec researcher;
  researcher.name = "university-scanner";
  researcher.asn = 64496;
  researcher.address = net::IPv4(198, 18, 5, 5);
  researcher.delay_min = 400;
  researcher.delay_max = 900;
  researcher.connects_http = true;
  researcher.informative_rdns = true;  // follows best practices
  fleet_spec.push_back(researcher);

  honeypot::AttackerFleet fleet(pot, fleet_spec, Rng(6));
  fleet.run();
  const honeypot::HoneypotReport report = honeypot::analyze(pot);
  EXPECT_EQ(report.sources_with_best_practices, 1u);
  EXPECT_EQ(*pot.reverse_dns().lookup(net::IPv4(198, 18, 5, 5)),
            "research-scanner.university-scanner.example");
}

// ---------- the §3.4 disclosure loop ----------

TEST(EndToEnd, Section34MonitorFlagsWhatTheStudyExplains) {
  // The passive monitor flags a certificate; the study's classifier
  // explains it — the full disclosure loop of §3.4.
  sim::EcosystemOptions options = bulk(305);
  options.store_bodies = true;
  options.verify_submissions = true;
  sim::Ecosystem ecosystem(options);

  sim::CertificateAuthority& globalsign = ecosystem.ca("GlobalSign");
  sim::IssuanceRequest request;
  request.subject_cn = "victim.example.net";
  request.sans = {x509::SanEntry::dns("victim.example.net"),
                  x509::SanEntry::address(net::IPv4(192, 0, 2, 4)),
                  x509::SanEntry::dns("alt.victim.example.net")};
  request.not_before = SimTime::parse("2018-03-20");
  request.not_after = SimTime::parse("2019-03-20");
  request.logs = ecosystem.logs_of("GlobalSign");
  request.bug = sim::IssuanceBug::san_reorder;
  const auto issued = globalsign.issue(request, SimTime::parse("2018-03-20"));

  monitor::PassiveMonitor monitor(ecosystem.log_list());
  tls::ConnectionRecord record;
  record.time = SimTime::parse("2018-03-21");
  record.server_name = request.subject_cn;
  record.certificate = std::make_shared<const x509::Certificate>(issued.final_certificate);
  record.issuer_public_key = std::make_shared<const Bytes>(globalsign.public_key());
  monitor.process(record);
  ASSERT_EQ(monitor.invalid_observations().size(), request.logs.size());
  EXPECT_EQ(monitor.invalid_observations()[0].issuer_cn,
            "GlobalSign Organization Validation CA");

  core::InvalidSctStudy study(ecosystem);
  const core::InvalidSctReport report = study.run();
  EXPECT_EQ(report.by_cause.count("san-reorder (GlobalSign class)"), 1u);
}

// ---------- the metrics snapshot producer ----------

#ifndef CTWATCH_OBS_DISABLED
TEST(EndToEnd, MetricsSnapshotHonorsEnvAndCarriesPreregisteredKeys) {
  const std::string path = ::testing::TempDir() + "/ctwatch_metrics_snapshot.json";
  ::setenv("CTWATCH_METRICS_JSON", path.c_str(), 1);
  EXPECT_EQ(obs::metrics_snapshot_path("some_bench"), path);
  ASSERT_TRUE(obs::dump_metrics_snapshot(obs::metrics_snapshot_path("some_bench")));
  ::unsetenv("CTWATCH_METRICS_JSON");
  // Without the env override, the path derives from the binary name.
  EXPECT_EQ(obs::metrics_snapshot_path("/x/y/some_bench"), "some_bench.metrics.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Structural sanity: one top-level object with the three sections,
  // balanced braces and quotes all through.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  std::int64_t depth = 0;
  std::int64_t quotes = 0;
  for (const char c : json) {
    if (c == '"') ++quotes;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  // The preregistered key set: namepool and par instrumentation must be
  // present even when the corresponding code path never ran.
  for (const char* key : {"\"namepool.bytes\"", "\"namepool.labels\"", "\"par.workers\"",
                          "\"par.tasks\"", "\"par.steals\"", "\"par.idle_ns\"",
                          "\"par.imbalance.census\"", "\"par.imbalance.funnel\"",
                          "\"enum.funnel.candidates\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}
#endif  // CTWATCH_OBS_DISABLED

}  // namespace
}  // namespace ctwatch
