// ctwatch::httpd — the epoll front end under adversarial and concurrent
// load.
//
// Three layers of coverage: (1) the incremental HTTP parser against torn
// reads, pipelined bursts, oversized heads/bodies, and malformed request
// lines — pure state-machine tests, no sockets; (2) the JSON layer's
// strict parse/dump; (3) the live server over real TCP — keep-alive
// churn, in-order pipelined responses, the full RFC 6962 round trip
// (add-chain → SCT → get-proof-by-hash → verify), abrupt disconnects,
// idle eviction, chaos at the accept seam, and the TSAN target: many
// concurrent clients submitting and reading at once across multiple
// worker loops.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/ct/log.hpp"
#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/wire.hpp"
#include "ctwatch/gossip/gossip.hpp"
#include "ctwatch/httpd/ct_handlers.hpp"
#include "ctwatch/httpd/http.hpp"
#include "ctwatch/httpd/json.hpp"
#include "ctwatch/httpd/router.hpp"
#include "ctwatch/httpd/server.hpp"
#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/util/encoding.hpp"
#include "ctwatch/x509/certificate.hpp"

namespace ctwatch::httpd {
namespace {

using namespace std::chrono_literals;

// ===========================================================================
// 1. RequestParser: adversarial byte streams
// ===========================================================================

TEST(HttpdParserTest, SimpleRequestParses) {
  RequestParser parser;
  parser.feed("GET /ct/v1/get-sth HTTP/1.1\r\nHost: log.example\r\n\r\n");
  Request request;
  ASSERT_EQ(parser.next(request), ParseResult::request);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/ct/v1/get-sth");
  EXPECT_TRUE(request.http11);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_TRUE(request.header("host").has_value());
  EXPECT_EQ(*request.header("HOST"), "log.example");
  EXPECT_EQ(parser.next(request), ParseResult::need_more);
}

TEST(HttpdParserTest, ByteAtATimeTornReads) {
  const std::string wire =
      "POST /ct/v1/add-chain HTTP/1.1\r\n"
      "Host: log\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 17\r\n"
      "\r\n"
      "{\"chain\":[\"AA==\"]}"
      ;
  // Body is 18 bytes; declare exactly 17 and append one more request to
  // prove the parser cuts the body at Content-Length, not at the buffer.
  const std::string body = "{\"chain\":[\"AA=\"]}";
  ASSERT_EQ(body.size(), 17u);
  const std::string stream =
      "POST /ct/v1/add-chain HTTP/1.1\r\nContent-Length: 17\r\n\r\n" + body +
      "GET /ct/v1/get-sth HTTP/1.1\r\n\r\n";
  (void)wire;
  RequestParser parser;
  Request request;
  std::vector<Request> seen;
  for (const char c : stream) {
    parser.feed(&c, 1);
    while (parser.next(request) == ParseResult::request) seen.push_back(request);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].method, "POST");
  EXPECT_EQ(seen[0].body, body);
  EXPECT_EQ(seen[1].method, "GET");
  EXPECT_EQ(seen[1].path, "/ct/v1/get-sth");
  EXPECT_TRUE(seen[1].body.empty());
}

TEST(HttpdParserTest, PipelinedBurstComesOutInOrder) {
  RequestParser parser;
  std::string burst;
  for (int i = 0; i < 32; ++i) {
    burst += "GET /r" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  parser.feed(burst);
  Request request;
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(parser.next(request), ParseResult::request) << i;
    EXPECT_EQ(request.path, "/r" + std::to_string(i));
  }
  EXPECT_EQ(parser.next(request), ParseResult::need_more);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpdParserTest, OversizedHeadIsTypedAndSticky) {
  Limits limits;
  limits.max_head_bytes = 256;
  RequestParser parser(limits);
  parser.feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(512, 'a') + "\r\n\r\n");
  Request request;
  EXPECT_EQ(parser.next(request), ParseResult::head_too_large);
  // Sticky: the buffer is poisoned until reset().
  EXPECT_EQ(parser.next(request), ParseResult::head_too_large);
  parser.reset();
  parser.feed("GET /ok HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.next(request), ParseResult::request);
  EXPECT_EQ(request.path, "/ok");
}

TEST(HttpdParserTest, OversizedDeclaredBodyIs413BeforeTheBodyArrives) {
  Limits limits;
  limits.max_body_bytes = 64;
  RequestParser parser(limits);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  Request request;
  // The verdict lands from the declaration alone — no need to stream 65
  // bytes at a server that will refuse them.
  EXPECT_EQ(parser.next(request), ParseResult::body_too_large);
}

TEST(HttpdParserTest, MalformedRequestLines) {
  const char* bad[] = {
      "GET\r\n\r\n",                          // no target
      "GET /\r\n\r\n",                        // no version
      "GET / HTTP/1.1 extra\r\n\r\n",         // three spaces
      "GET noslash HTTP/1.1\r\n\r\n",         // target must start with /
      " / HTTP/1.1\r\n\r\n",                  // empty method
      "G@T / HTTP/1.1\r\n\r\n",               // non-token method
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",  // header without colon
      "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",  // space in header name
      "GET / HTTP/1.1\r\nContent-Length: 4x\r\n\r\n",  // non-numeric length
      "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",  // negative length
  };
  for (const char* wire : bad) {
    RequestParser parser;
    parser.feed(wire);
    Request request;
    EXPECT_EQ(parser.next(request), ParseResult::bad_request) << wire;
  }
}

TEST(HttpdParserTest, UnsupportedVersionAndTransferEncoding) {
  {
    RequestParser parser;
    parser.feed("GET / HTTP/2.0\r\n\r\n");
    Request request;
    EXPECT_EQ(parser.next(request), ParseResult::unsupported);
  }
  {
    RequestParser parser;
    parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    Request request;
    EXPECT_EQ(parser.next(request), ParseResult::unsupported);
  }
}

TEST(HttpdParserTest, KeepAliveDefaultsAndOverrides) {
  struct Case {
    const char* wire;
    bool expect_keep_alive;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},  // token is case-insensitive
  };
  for (const Case& c : cases) {
    RequestParser parser;
    parser.feed(c.wire);
    Request request;
    ASSERT_EQ(parser.next(request), ParseResult::request) << c.wire;
    EXPECT_EQ(request.keep_alive, c.expect_keep_alive) << c.wire;
  }
}

TEST(HttpdParserTest, QueryStringSplitAndDecode) {
  RequestParser parser;
  parser.feed("GET /ct/v1/get-proof-by-hash?hash=qt%2B%2Fx%3D%3D&tree_size=42 HTTP/1.1\r\n\r\n");
  Request request;
  ASSERT_EQ(parser.next(request), ParseResult::request);
  EXPECT_EQ(request.path, "/ct/v1/get-proof-by-hash");
  ASSERT_TRUE(request.query_param("hash").has_value());
  EXPECT_EQ(*request.query_param("hash"), "qt+/x==");
  EXPECT_EQ(*request.query_param("tree_size"), "42");
  EXPECT_FALSE(request.query_param("absent").has_value());
}

TEST(HttpdParserTest, UrlDecodeEdgeCases) {
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("%2F%2f"), "//");
  EXPECT_FALSE(url_decode("%").has_value());
  EXPECT_FALSE(url_decode("%2").has_value());
  EXPECT_FALSE(url_decode("%zz").has_value());
}

TEST(HttpdParserTest, ResponseParserRoundTrip) {
  Response response = json_response(200, "{\"ok\":true}");
  ResponseParser parser;
  const std::string wire = response.serialize();
  // Torn in half to exercise the incremental path.
  parser.feed(wire.substr(0, wire.size() / 2));
  ParsedResponse parsed;
  EXPECT_EQ(parser.next(parsed), ParseResult::need_more);
  parser.feed(wire.substr(wire.size() / 2));
  ASSERT_EQ(parser.next(parsed), ParseResult::request);
  EXPECT_EQ(parsed.status, 200);
  EXPECT_EQ(parsed.body, "{\"ok\":true}");
  ASSERT_TRUE(parsed.header("content-type").has_value());
  EXPECT_EQ(*parsed.header("Content-Type"), "application/json");
}

// ===========================================================================
// 2. JSON layer
// ===========================================================================

TEST(HttpdJsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"chain":["QUJD"],"n":42,"nested":{"a":[1,2,3],"b":true,"c":null},"s":"x\"y"})";
  const auto value = json::parse(text);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->get_u64("n"), 42u);
  ASSERT_NE(value->get("chain"), nullptr);
  ASSERT_TRUE(value->get("chain")->is_array());
  EXPECT_EQ(value->get("chain")->as_array()[0].as_string(), "QUJD");
  const auto round = json::parse(value->dump());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->dump(), value->dump());
}

TEST(HttpdJsonTest, RejectsMalformedAndHostileInputs) {
  const char* bad[] = {
      "",        "{",         "[1,]",       "{\"a\":}",  "{\"a\":1,}",
      "tru",     "01",        "1 2",        "\"unterminated",
      "{\"a\":1}x",  // trailing garbage
      "\"\\ud800\"",  // surrogate escape
  };
  for (const char* text : bad) {
    EXPECT_FALSE(json::parse(text).has_value()) << text;
  }
  // Depth bomb: far past the cap, must fail cleanly (no stack overflow).
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
}

TEST(HttpdJsonTest, EscapesControlCharactersInDump) {
  json::Object obj;
  obj.emplace("k", json::Value(std::string("a\nb\x01" "c\"d")));
  const std::string dumped = json::Value(std::move(obj)).dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_EQ(json::parse(dumped)->get_string("k"), "a\nb\x01" "c\"d");
}

// ===========================================================================
// 3. Live server over real TCP
// ===========================================================================

/// Minimal blocking client speaking to the server under test.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_all(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads exactly one response; fails the optional when the peer closes
  /// first.
  std::optional<ParsedResponse> read_response() {
    ParsedResponse parsed;
    for (;;) {
      const ParseResult r = parser_.next(parsed);
      if (r == ParseResult::request) return parsed;
      if (r != ParseResult::need_more) return std::nullopt;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      parser_.feed(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer has closed (recv sees EOF).
  bool peer_closed() {
    char chunk[256];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  ResponseParser parser_;
};

std::optional<ParsedResponse> wire_get(std::uint16_t port, const std::string& path) {
  WireClient client(port);
  if (!client.connected()) return std::nullopt;
  if (!client.send_all("GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")) {
    return std::nullopt;
  }
  return client.read_response();
}

std::optional<ParsedResponse> wire_post(std::uint16_t port, const std::string& path,
                                        const std::string& body) {
  WireClient client(port);
  if (!client.connected()) return std::nullopt;
  if (!client.send_all("POST " + path + " HTTP/1.1\r\nHost: t\r\n"
                       "Content-Type: application/json\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body)) {
    return std::nullopt;
  }
  return client.read_response();
}

Router echo_routes() {
  Router router;
  router.get("/ping", [](const Request&, Completion done) { done(text_response(200, "pong")); });
  router.get("/echo-query", [](const Request& request, Completion done) {
    done(text_response(200, request.query_param("q").value_or("")));
  });
  router.post("/echo-body", [](const Request& request, Completion done) {
    done(text_response(200, request.body));
  });
  return router;
}

TEST(HttpdServerTest, StartsStopsAndServes) {
  Server server(ServerOptions{}, echo_routes());
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // idempotent

  const auto pong = wire_get(server.port(), "/ping");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, 200);
  EXPECT_EQ(pong->body, "pong");

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // safe when stopped
}

TEST(HttpdServerTest, RoutesMisses404AndWrongMethod405) {
  Server server(ServerOptions{}, echo_routes());
  ASSERT_TRUE(server.start());
  const auto missing = wire_get(server.port(), "/no-such");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
  EXPECT_NE(missing->body.find("\"error\":\"not_found\""), std::string::npos);
  const auto wrong = wire_post(server.port(), "/ping", "x");
  ASSERT_TRUE(wrong.has_value());
  EXPECT_EQ(wrong->status, 405);
  server.stop();
}

TEST(HttpdServerTest, KeepAliveChurnOnOneConnection) {
  Server server(ServerOptions{}, echo_routes());
  ASSERT_TRUE(server.start());
  WireClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.send_all("GET /echo-query?q=n" + std::to_string(i) +
                                " HTTP/1.1\r\nHost: t\r\n\r\n"));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->body, "n" + std::to_string(i));
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.requests_served(), 50u);
  server.stop();
}

TEST(HttpdServerTest, PipelinedRequestsAnswerInOrder) {
  Server server(ServerOptions{}, echo_routes());
  ASSERT_TRUE(server.start());
  WireClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 0; i < 16; ++i) {
    burst += "GET /echo-query?q=p" + std::to_string(i) + " HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  for (int i = 0; i < 16; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->body, "p" + std::to_string(i)) << i;
  }
  server.stop();
}

TEST(HttpdServerTest, ParseRejectsAnswerTypedStatusAndClose) {
  ServerOptions options;
  options.limits.max_head_bytes = 256;
  options.limits.max_body_bytes = 128;
  Server server(options, echo_routes());
  ASSERT_TRUE(server.start());

  {  // malformed request line -> 400, connection closes after the reply
    WireClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all("BAD@METHOD / HTTP/1.1\r\n\r\n"));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_TRUE(client.peer_closed());
  }
  {  // oversized headers -> 431
    WireClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all("GET / HTTP/1.1\r\nX-Pad: " + std::string(512, 'a') +
                                "\r\n\r\n"));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 431);
  }
  {  // oversized declared body -> 413
    WireClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all("POST /echo-body HTTP/1.1\r\nContent-Length: 4096\r\n\r\n"));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 413);
  }
  {  // chunked transfer encoding -> 501
    WireClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all(
        "POST /echo-body HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 501);
  }
  EXPECT_EQ(server.parse_rejects(), 4u);
  // The server is still healthy afterwards.
  const auto pong = wire_get(server.port(), "/ping");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->body, "pong");
  server.stop();
}

TEST(HttpdServerTest, AbruptDisconnectsMidRequestDoNotWedgeTheLoop) {
  Server server(ServerOptions{}, echo_routes());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 8; ++i) {
    WireClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Half a request line, then the destructor slams the connection.
    ASSERT_TRUE(client.send_all("GET /pi"));
  }
  // New work still flows.
  const auto pong = wire_get(server.port(), "/ping");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->body, "pong");
  server.stop();
}

TEST(HttpdServerTest, IdleConnectionsAreEvicted) {
  ServerOptions options;
  options.idle_timeout = 100ms;
  Server server(options, echo_routes());
  ASSERT_TRUE(server.start());
  WireClient client(server.port());
  ASSERT_TRUE(client.connected());
  // recv() returning 0 proves the server closed us, not the reverse.
  EXPECT_TRUE(client.peer_closed());
  EXPECT_GE(server.evicted_idle(), 1u);
  server.stop();
}

TEST(HttpdServerTest, AsyncCompletionFromAnotherThread) {
  std::atomic<int> fired{0};
  Router router;
  router.get("/deferred", [&fired](const Request&, Completion done) {
    // Complete from a detached thread after the handler returned: the
    // response must route through the worker's inbox.
    std::thread([done = std::move(done), &fired] {
      std::this_thread::sleep_for(10ms);
      fired.fetch_add(1);
      done(text_response(200, "late"));
    }).detach();
  });
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());
  const auto response = wire_get(server.port(), "/deferred");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "late");
  EXPECT_EQ(fired.load(), 1);
  server.stop();
}

TEST(HttpdServerTest, ChaosAcceptDropsSeverConnections) {
  chaos::FaultPlan plan;
  plan.error_probability = 1.0;  // every accept faulted
  chaos::FaultInjector injector(7);
  injector.plan("httpd.accept", plan);
  ServerOptions options;
  options.chaos = &injector;
  Server server(options, echo_routes());
  ASSERT_TRUE(server.start());
  int refused = 0;
  for (int i = 0; i < 4; ++i) {
    WireClient client(server.port());
    // connect() itself succeeds (the backlog accepts), but the server
    // drops the fd: the first read sees EOF.
    if (!client.connected() || client.peer_closed()) ++refused;
  }
  EXPECT_EQ(refused, 4);
  EXPECT_EQ(server.chaos_accept_drops(), 4u);
  server.stop();
}

TEST(HttpdServerTest, MultiWorkerConcurrentClientsAreRaceFree) {
  // The TSAN target: 4 worker loops, concurrent keep-alive clients.
  ServerOptions options;
  options.workers = 4;
  Server server(options, echo_routes());
  ASSERT_TRUE(server.start());
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&server, &ok, t] {
      WireClient client(server.port());
      if (!client.connected()) return;
      for (int i = 0; i < 25; ++i) {
        const std::string tag = std::to_string(t) + "." + std::to_string(i);
        if (!client.send_all("GET /echo-query?q=" + tag + " HTTP/1.1\r\nHost: t\r\n\r\n")) {
          return;
        }
        const auto response = client.read_response();
        if (response && response->body == tag) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok.load(), 200);
  EXPECT_EQ(server.requests_served(), 200u);
  server.stop();
}

// ===========================================================================
// 4. RFC 6962 API over the wire
// ===========================================================================

struct TestCa {
  std::unique_ptr<crypto::Signer> signer =
      crypto::make_signer("httpd-test-ca", crypto::SignatureScheme::ecdsa_p256_sha256);
  x509::Certificate issuer_cert = make_issuer(*signer);

  static x509::Certificate make_issuer(const crypto::Signer& signer) {
    x509::CertificateBuilder builder;
    x509::DistinguishedName dn;
    dn.common_name = "Httpd Test CA";
    builder.serial(1)
        .issuer(dn)
        .subject_cn("Httpd Test CA")
        .validity(SimTime::parse("2018-01-01"), SimTime::parse("2020-01-01"))
        .subject_key(signer);
    return builder.sign(signer);
  }

  [[nodiscard]] x509::Certificate leaf(const std::string& cn, std::uint64_t serial) const {
    x509::CertificateBuilder builder;
    x509::DistinguishedName dn;
    dn.common_name = "Httpd Test CA";
    builder.serial(serial)
        .issuer(dn)
        .subject_cn(cn)
        .validity(SimTime::parse("2018-04-01"), SimTime::parse("2018-07-01"))
        .subject_key(*signer)  // key reuse is fine for transport tests
        .add_dns_san(cn);
    return builder.sign(*signer);
  }

  [[nodiscard]] std::string chain_body(const x509::Certificate& leaf_cert) const {
    json::Array chain;
    chain.emplace_back(base64_encode(leaf_cert.encode()));
    chain.emplace_back(base64_encode(issuer_cert.encode()));
    json::Object body;
    body.emplace("chain", json::Value(std::move(chain)));
    return json::Value(std::move(body)).dump();
  }
};

logsvc::Config fast_log(const std::string& name) {
  logsvc::Config config;
  config.name = name;
  config.merge_delay = 500us;
  return config;
}

/// Percent-encodes base64 for use in a query string.
std::string url_encode_b64(const std::string& b64) {
  std::string out;
  for (const char c : b64) {
    if (c == '+') out += "%2B";
    else if (c == '/') out += "%2F";
    else if (c == '=') out += "%3D";
    else out.push_back(c);
  }
  return out;
}

TEST(HttpdCtApiTest, AddChainToProofRoundTrip) {
  logsvc::LogService service(fast_log("Httpd API Log"));
  Router router;
  register_ct_api(router, service);
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());
  TestCa ca;

  // add-chain: the SCT comes back through the async completion path
  // (handler -> sequencer seal -> inbox -> in-order flush).
  const x509::Certificate leaf = ca.leaf("rt.example.org", 100);
  const auto added = wire_post(server.port(), "/ct/v1/add-chain", ca.chain_body(leaf));
  ASSERT_TRUE(added.has_value());
  ASSERT_EQ(added->status, 200) << added->body;
  const auto sct_doc = json::parse(added->body);
  ASSERT_TRUE(sct_doc.has_value());
  EXPECT_EQ(sct_doc->get_u64("sct_version"), 0u);
  ASSERT_TRUE(sct_doc->get_u64("timestamp").has_value());
  ASSERT_TRUE(sct_doc->get_string("signature").has_value());
  const crypto::Digest log_id = service.log_id();
  EXPECT_EQ(base64_decode(std::string(*sct_doc->get_string("id"))),
            Bytes(log_id.begin(), log_id.end()));

  // Reassemble the SCT and verify it cryptographically.
  ct::SignedCertificateTimestamp sct;
  sct.version = 0;
  const Bytes id = base64_decode(std::string(*sct_doc->get_string("id")));
  std::copy(id.begin(), id.end(), sct.log_id.begin());
  sct.timestamp_ms = *sct_doc->get_u64("timestamp");
  sct.extensions = base64_decode(std::string(*sct_doc->get_string("extensions")));
  const Bytes sig = base64_decode(std::string(*sct_doc->get_string("signature")));
  ct::wire::Reader sig_reader(sig);
  sct.signature.scheme = static_cast<crypto::SignatureScheme>(sig_reader.u8());
  const BytesView sig_bytes = sig_reader.opaque16();
  sct.signature.data.assign(sig_bytes.begin(), sig_bytes.end());
  const ct::SignedEntry entry = ct::make_x509_entry(leaf);
  EXPECT_TRUE(ct::verify_sct(sct, entry, service.public_key()));

  // get-sth reflects the integration.
  const auto sth_response = wire_get(server.port(), "/ct/v1/get-sth");
  ASSERT_TRUE(sth_response.has_value());
  ASSERT_EQ(sth_response->status, 200);
  const auto sth_doc = json::parse(sth_response->body);
  ASSERT_TRUE(sth_doc.has_value());
  ASSERT_EQ(sth_doc->get_u64("tree_size"), 1u);

  // get-proof-by-hash: look the leaf up by its Merkle hash and verify
  // the audit path against the served root.
  const crypto::Digest leaf_hash =
      ct::leaf_hash(ct::merkle_leaf_bytes(sct.timestamp_ms, entry));
  const auto proof_response = wire_get(
      server.port(), "/ct/v1/get-proof-by-hash?hash=" +
                         url_encode_b64(base64_encode(leaf_hash)) + "&tree_size=1");
  ASSERT_TRUE(proof_response.has_value());
  ASSERT_EQ(proof_response->status, 200) << proof_response->body;
  const auto proof_doc = json::parse(proof_response->body);
  ASSERT_TRUE(proof_doc.has_value());
  EXPECT_EQ(proof_doc->get_u64("leaf_index"), 0u);
  std::vector<crypto::Digest> path;
  for (const json::Value& node : proof_doc->get("audit_path")->as_array()) {
    const Bytes raw = base64_decode(node.as_string());
    crypto::Digest digest{};
    std::copy(raw.begin(), raw.end(), digest.begin());
    path.push_back(digest);
  }
  const Bytes root = base64_decode(std::string(*sth_doc->get_string("sha256_root_hash")));
  crypto::Digest root_digest{};
  std::copy(root.begin(), root.end(), root_digest.begin());
  EXPECT_TRUE(ct::verify_inclusion(leaf_hash, 0, 1, path, root_digest));

  // get-entries round-trips the leaf_input bytes.
  const auto entries_response = wire_get(server.port(), "/ct/v1/get-entries?start=0&end=0");
  ASSERT_TRUE(entries_response.has_value());
  ASSERT_EQ(entries_response->status, 200);
  const auto entries_doc = json::parse(entries_response->body);
  const auto& entries = entries_doc->get("entries")->as_array();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(base64_decode(std::string(*entries[0].get_string("leaf_input"))),
            ct::merkle_leaf_bytes(sct.timestamp_ms, entry));

  service.stop();
  server.stop();
}

TEST(HttpdCtApiTest, ConsistencyAcrossGrowth) {
  logsvc::LogService service(fast_log("Httpd Consistency Log"));
  Router router;
  register_ct_api(router, service);
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());
  TestCa ca;

  for (int i = 0; i < 4; ++i) {
    const auto added =
        wire_post(server.port(), "/ct/v1/add-chain",
                  ca.chain_body(ca.leaf("c" + std::to_string(i) + ".example", 200 + i)));
    ASSERT_TRUE(added.has_value());
    ASSERT_EQ(added->status, 200) << added->body;
  }
  const auto proof = wire_get(server.port(), "/ct/v1/get-sth-consistency?first=2&second=4");
  ASSERT_TRUE(proof.has_value());
  ASSERT_EQ(proof->status, 200) << proof->body;
  const auto doc = json::parse(proof->body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->get("consistency")->as_array().empty());

  service.stop();
  server.stop();
}

// ===========================================================================
// 5. Graceful shutdown
// ===========================================================================

TEST(HttpdServerTest, ShutdownDrainsInFlightAndRefusesNew) {
  // A handler that parks its completion so one request stays in flight
  // until the test decides to answer it.
  struct Held {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Completion> done;
  };
  auto held = std::make_shared<Held>();
  Router router;
  router.get("/held", [held](const Request&, Completion done) {
    std::lock_guard<std::mutex> lock(held->mu);
    held->done = std::move(done);
    held->cv.notify_all();
  });
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());

  WireClient in_flight(server.port());
  ASSERT_TRUE(in_flight.connected());
  ASSERT_TRUE(in_flight.send_all("GET /held HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  {
    std::unique_lock<std::mutex> lock(held->mu);
    ASSERT_TRUE(held->cv.wait_for(lock, 5s, [&] { return held->done.has_value(); }));
  }

  // Drain in the background: it must wait out the parked response.
  std::atomic<bool> drained{false};
  std::thread drainer([&] { drained.store(server.shutdown(std::chrono::seconds(5))); });
  while (!server.draining()) std::this_thread::sleep_for(1ms);

  // New connections are refused while draining...
  WireClient late(server.port());
  EXPECT_TRUE(!late.connected() || late.peer_closed());

  // ...but the in-flight request still completes and its response flushes.
  {
    std::lock_guard<std::mutex> lock(held->mu);
    (*held->done)(text_response(200, "drained"));
  }
  const auto response = in_flight.read_response();
  drainer.join();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "drained");
  EXPECT_TRUE(drained.load());
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.draining());
  EXPECT_TRUE(server.shutdown(std::chrono::milliseconds(10)));  // safe when stopped
}

TEST(HttpdCtApiTest, GracefulShutdownLosesNoSealedEntry) {
  // A throwaway store directory under the build tree.
  struct TempDir {
    std::string path;
    TempDir() {
      std::string tmpl = "ctwatch_httpd_shutdown.XXXXXX";
      path = ::mkdtemp(tmpl.data());
      EXPECT_FALSE(path.empty());
    }
    ~TempDir() { std::filesystem::remove_all(path); }
  } dir;

  auto opened = storage::LogStore::open({.dir = dir.path});
  ASSERT_NE(opened.store, nullptr) << opened.detail;
  logsvc::Config config = fast_log("Httpd Durable Log");
  config.storage = opened.store.get();

  ct::SignedTreeHead before;
  {
    logsvc::LogService service(config);
    Router router;
    register_ct_api(router, service);
    Server server(ServerOptions{}, std::move(router));
    ASSERT_TRUE(server.start());
    TestCa ca;
    for (int i = 0; i < 5; ++i) {
      const auto added = wire_post(
          server.port(), "/ct/v1/add-chain",
          ca.chain_body(ca.leaf("d" + std::to_string(i) + ".example", 300 + i)));
      ASSERT_TRUE(added.has_value());
      // A 200 means the SCT was released, which means the sealed batch
      // is already on disk (commit-before-publish).
      ASSERT_EQ(added->status, 200) << added->body;
    }
    before = service.get_sth();
    ASSERT_EQ(before.tree_size, 5u);
    EXPECT_TRUE(server.shutdown(std::chrono::seconds(5)));
    EXPECT_FALSE(server.running());
    service.stop();
  }
  opened.store->close();
  opened.store.reset();

  // The process model restarts: recovery replays the WAL and the adopted
  // service republishes the exact pre-shutdown STH — no sealed entry lost.
  auto reopened = storage::LogStore::open({.dir = dir.path});
  ASSERT_NE(reopened.store, nullptr) << reopened.detail;
  EXPECT_EQ(reopened.store->tree_size(), 5u);
  config.storage = reopened.store.get();
  logsvc::LogService restarted(config);
  EXPECT_TRUE(restarted.get_sth() == before);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto proof = restarted.inclusion_proof(i, 5);
    EXPECT_TRUE(ct::verify_inclusion(restarted.leaf_hash_at(i), i, 5, proof, before.root_hash));
  }
  restarted.stop();
}

TEST(HttpdCtApiTest, PartitionAwareSelectorServesCoherentSplitViews) {
  // The ViewSelector overload is the split-view serving seam: one front
  // end, two divergent faces behind it, routed on a client attribute.
  // Each partition must see a coherent log (repeat reads agree, proofs
  // come from its own tree) while the two partitions diverge — the
  // precondition for the gossip tests' detection scenarios.
  gossip::EquivocationPlan plan;
  plan.base = fast_log("Httpd Split Log");
  plan.base.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  plan.fork_index = 1;
  gossip::EquivocatingLog log(plan);
  log.grow(3, SimTime::parse("2018-04-01"));

  Router router;
  register_ct_api(router, [&log](const Request& request) -> logsvc::LogService* {
    const auto partition = request.header("x-partition");
    if (!partition || *partition == "left") return &log.service(gossip::Side::left);
    if (*partition == "right") return &log.service(gossip::Side::right);
    return nullptr;  // unknown partition: fail closed, don't pick a face
  });
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());

  const auto get = [&server](const std::string& path, const std::string& partition) {
    WireClient client(server.port());
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.send_all("GET " + path + " HTTP/1.1\r\nHost: t\r\nX-Partition: " +
                                partition + "\r\nConnection: close\r\n\r\n"));
    return client.read_response();
  };

  // Each partition sees a stable head across repeat reads...
  const auto left_a = get("/ct/v1/get-sth", "left");
  const auto left_b = get("/ct/v1/get-sth", "left");
  const auto right = get("/ct/v1/get-sth", "right");
  ASSERT_TRUE(left_a && left_b && right);
  EXPECT_EQ(left_a->status, 200);
  EXPECT_EQ(right->status, 200);
  EXPECT_EQ(left_a->body, left_b->body);
  // ...but the two partitions are handed divergent signed heads.
  EXPECT_NE(left_a->body, right->body);

  // Consistency is answered from the partition's own tree, so a client
  // that only ever talks to one face sees a log consistent with itself.
  const auto left_proof = get("/ct/v1/get-sth-consistency?first=1&second=3", "left");
  const auto right_proof = get("/ct/v1/get-sth-consistency?first=1&second=3", "right");
  ASSERT_TRUE(left_proof && right_proof);
  EXPECT_EQ(left_proof->status, 200);
  EXPECT_EQ(right_proof->status, 200);
  EXPECT_NE(left_proof->body, right_proof->body);  // fork at 1: paths differ

  // No partition header: routed to the default (left) face.
  const auto naked = wire_get(server.port(), "/ct/v1/get-sth");
  ASSERT_TRUE(naked);
  EXPECT_EQ(naked->body, left_a->body);

  // Unknown partition: the selector declines and the API fails closed.
  const auto unknown = get("/ct/v1/get-sth", "mars");
  ASSERT_TRUE(unknown);
  EXPECT_EQ(unknown->status, 503);
  EXPECT_NE(unknown->body.find("no_backend"), std::string::npos);
}

TEST(HttpdCtApiTest, ErrorShapes) {
  logsvc::LogService service(fast_log("Httpd Error Log"));
  Router router;
  register_ct_api(router, service);
  Server server(ServerOptions{}, std::move(router));
  ASSERT_TRUE(server.start());

  struct Case {
    const char* path;
    int status;
    const char* code;
  } gets[] = {
      {"/ct/v1/get-sth-consistency?first=abc&second=2", 400, "bad_parameter"},
      {"/ct/v1/get-sth-consistency?first=3&second=2", 400, "bad_range"},
      {"/ct/v1/get-proof-by-hash?hash=!!&tree_size=1", 400, "bad_hash"},
      {"/ct/v1/get-proof-by-hash?hash=QQ%3D%3D&tree_size=1", 400, "bad_hash"},  // wrong length
      {"/ct/v1/get-entries?start=5&end=2", 400, "bad_parameter"},
      {"/ct/v1/get-entries?start=0&end=0", 400, "bad_range"},  // empty tree
      {"/ct/v1/get-entries?start=18446744073709551615&end=18446744073709551615", 400,
       "bad_range"},
  };
  for (const Case& c : gets) {
    const auto response = wire_get(server.port(), c.path);
    ASSERT_TRUE(response.has_value()) << c.path;
    EXPECT_EQ(response->status, c.status) << c.path;
    EXPECT_NE(response->body.find(std::string("\"error\":\"") + c.code + "\""),
              std::string::npos)
        << c.path << " -> " << response->body;
  }

  // add-chain rejects garbage bodies with typed errors.
  const auto bad_json = wire_post(server.port(), "/ct/v1/add-chain", "not json");
  ASSERT_TRUE(bad_json.has_value());
  EXPECT_EQ(bad_json->status, 400);
  const auto no_chain = wire_post(server.port(), "/ct/v1/add-chain", "{\"chain\":[]}");
  ASSERT_TRUE(no_chain.has_value());
  EXPECT_EQ(no_chain->status, 400);
  const auto bad_cert =
      wire_post(server.port(), "/ct/v1/add-chain", "{\"chain\":[\"QUJD\"]}");
  ASSERT_TRUE(bad_cert.has_value());
  EXPECT_EQ(bad_cert->status, 400);

  // A precertificate on add-chain is rejected (wrong entry kind).
  TestCa ca;
  x509::CertificateBuilder builder;
  x509::DistinguishedName dn;
  dn.common_name = "Httpd Test CA";
  builder.serial(999)
      .issuer(dn)
      .subject_cn("pre.example")
      .validity(SimTime::parse("2018-04-01"), SimTime::parse("2018-07-01"))
      .subject_key(*ca.signer)
      .poison();
  const x509::Certificate precert = builder.sign(*ca.signer);
  const auto wrong_kind =
      wire_post(server.port(), "/ct/v1/add-chain", ca.chain_body(precert));
  ASSERT_TRUE(wrong_kind.has_value());
  EXPECT_EQ(wrong_kind->status, 400);
  EXPECT_NE(wrong_kind->body.find("rejected_invalid"), std::string::npos);

  service.stop();
  server.stop();
}

TEST(HttpdCtApiTest, ConcurrentSubmittersAndReadersAreRaceFree) {
  // The API-level TSAN target: writers push add-chain (async SCT
  // completions crossing sequencer -> worker threads) while readers
  // hammer every read endpoint.
  logsvc::LogService service(fast_log("Httpd Race Log"));
  Router router;
  register_ct_api(router, service);
  ServerOptions options;
  options.workers = 2;
  Server server(options, std::move(router));
  ASSERT_TRUE(server.start());
  TestCa ca;

  std::atomic<int> submitted{0};
  std::atomic<int> read_ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        const auto added = wire_post(
            server.port(), "/ct/v1/add-chain",
            ca.chain_body(ca.leaf("w" + std::to_string(t) + "-" + std::to_string(i) + ".ex",
                                  1000 + t * 100 + i)));
        if (added && added->status == 200) submitted.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      const char* paths[] = {"/ct/v1/get-sth", "/ct/v1/get-entries?start=0&end=31",
                             "/ct/v1/get-sth-consistency?first=0&second=0"};
      for (int i = 0; i < 15; ++i) {
        const auto response = wire_get(server.port(), paths[(t + i) % 3]);
        // Reads against an initially-empty tree can 400 (bad_range);
        // both statuses prove the loop answered coherently.
        if (response && (response->status == 200 || response->status == 400)) {
          read_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : workers) thread.join();
  EXPECT_EQ(submitted.load(), 20);
  EXPECT_EQ(read_ok.load(), 45);
  EXPECT_EQ(service.tree_size(), 20u);

  service.stop();
  server.stop();
}

}  // namespace
}  // namespace ctwatch::httpd
