#include <gtest/gtest.h>

#include "ctwatch/x509/certificate.hpp"
#include "ctwatch/x509/oids.hpp"

namespace ctwatch::x509 {
namespace {

using crypto::SignatureScheme;

std::unique_ptr<crypto::Signer> test_signer(const std::string& label) {
  return crypto::make_signer(label, SignatureScheme::ecdsa_p256_sha256);
}

CertificateBuilder base_builder(const crypto::Signer& subject) {
  CertificateBuilder builder;
  DistinguishedName issuer;
  issuer.common_name = "Test Issuing CA";
  issuer.organization = "Test CA Org";
  issuer.country = "DE";
  builder.serial(42)
      .issuer(issuer)
      .subject_cn("www.example.org")
      .validity(SimTime::parse("2018-01-01"), SimTime::parse("2019-01-01"))
      .subject_key(subject);
  return builder;
}

// ---------- distinguished names ----------

TEST(DnTest, EncodeDecodeRoundTrip) {
  DistinguishedName dn;
  dn.common_name = "Let's Encrypt Authority X3";
  dn.organization = "Let's Encrypt";
  dn.country = "US";
  EXPECT_EQ(DistinguishedName::decode(dn.encode()), dn);
}

TEST(DnTest, PartialFieldsRoundTrip) {
  DistinguishedName dn;
  dn.common_name = "only-cn.example";
  EXPECT_EQ(DistinguishedName::decode(dn.encode()), dn);
}

TEST(DnTest, EmptyNameIsEmptySequence) {
  const DistinguishedName dn;
  EXPECT_EQ(DistinguishedName::decode(dn.encode()), dn);
}

// ---------- SANs ----------

TEST(SanTest, DnsAndIpRoundTripPreservingOrder) {
  const std::vector<SanEntry> entries = {
      SanEntry::dns("a.example.org"),
      SanEntry::address(net::IPv4(192, 0, 2, 7)),
      SanEntry::dns("b.example.org"),
  };
  const std::vector<SanEntry> decoded = decode_san_value(encode_san_value(entries));
  EXPECT_EQ(decoded, entries);
}

TEST(SanTest, OrderChangesChangeEncoding) {
  // Load-bearing for the GlobalSign reproduction: SAN order is significant
  // at the DER level.
  const std::vector<SanEntry> a = {SanEntry::dns("a.example"), SanEntry::dns("b.example")};
  const std::vector<SanEntry> b = {SanEntry::dns("b.example"), SanEntry::dns("a.example")};
  EXPECT_NE(encode_san_value(a), encode_san_value(b));
}

// ---------- certificates ----------

TEST(CertificateTest, BuildSignVerify) {
  const auto ca = test_signer("x509-ca");
  const auto subject = test_signer("x509-subject");
  const Certificate cert = base_builder(*subject).add_dns_san("www.example.org").sign(*ca);
  EXPECT_TRUE(cert.verify(ca->public_key()));
  const auto other = test_signer("x509-other");
  EXPECT_FALSE(cert.verify(other->public_key()));
}

TEST(CertificateTest, EncodeDecodeRoundTrip) {
  const auto ca = test_signer("rt-ca");
  const auto subject = test_signer("rt-subject");
  const Certificate cert = base_builder(*subject)
                               .add_dns_san("www.example.org")
                               .add_dns_san("example.org")
                               .add_ip_san(net::IPv4(198, 51, 100, 1))
                               .sign(*ca);
  const Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded, cert);
  EXPECT_TRUE(decoded.verify(ca->public_key()));
}

TEST(CertificateTest, DecodedFieldsMatch) {
  const auto ca = test_signer("fields-ca");
  const auto subject = test_signer("fields-subject");
  const Certificate cert = base_builder(*subject).add_dns_san("www.example.org").sign(*ca);
  const Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded.tbs.subject.common_name, "www.example.org");
  EXPECT_EQ(decoded.tbs.issuer.common_name, "Test Issuing CA");
  EXPECT_EQ(decoded.tbs.not_before, SimTime::parse("2018-01-01"));
  EXPECT_EQ(decoded.tbs.not_after, SimTime::parse("2019-01-01"));
  EXPECT_EQ(decoded.tbs.serial, Bytes{42});
}

TEST(CertificateTest, TamperedTbsFailsVerification) {
  const auto ca = test_signer("tamper-ca");
  const auto subject = test_signer("tamper-subject");
  Certificate cert = base_builder(*subject).add_dns_san("www.example.org").sign(*ca);
  cert.tbs.subject.common_name = "evil.example.org";
  EXPECT_FALSE(cert.verify(ca->public_key()));
}

TEST(CertificateTest, FingerprintChangesWithContent) {
  const auto ca = test_signer("fp-ca");
  const auto subject = test_signer("fp-subject");
  const Certificate a = base_builder(*subject).add_dns_san("a.example").sign(*ca);
  const Certificate b = base_builder(*subject).add_dns_san("b.example").sign(*ca);
  EXPECT_NE(hex_encode(crypto::digest_bytes(a.fingerprint())),
            hex_encode(crypto::digest_bytes(b.fingerprint())));
}

TEST(CertificateTest, DnsNamesMergesCnAndSans) {
  const auto ca = test_signer("names-ca");
  const auto subject = test_signer("names-subject");
  const Certificate cert = base_builder(*subject)
                               .add_dns_san("www.example.org")  // same as CN: deduplicated
                               .add_dns_san("api.example.org")
                               .sign(*ca);
  const auto names = cert.tbs.dns_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "www.example.org");
  EXPECT_EQ(names[1], "api.example.org");
}

TEST(CertificateTest, NonDnsCommonNameIgnored) {
  const auto ca = test_signer("cn-ca");
  const auto subject = test_signer("cn-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.subject_cn("ACME Web Server");  // not a DNS name
  builder.add_dns_san("real.example.org");
  const Certificate cert = builder.sign(*ca);
  const auto names = cert.tbs.dns_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "real.example.org");
}

TEST(CertificateTest, BuilderRequiresSubjectKey) {
  CertificateBuilder builder;
  builder.serial(1).subject_cn("x.example");
  EXPECT_THROW((void)builder.build_tbs(), std::logic_error);
}

// ---------- precertificates & the SCT machinery ----------

TEST(PrecertTest, PoisonMarksPrecertificate) {
  const auto ca = test_signer("poison-ca");
  const auto subject = test_signer("poison-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.add_dns_san("www.example.org").poison();
  const Certificate precert = builder.sign(*ca);
  EXPECT_TRUE(precert.is_precertificate());
  const Certificate decoded = Certificate::decode(precert.encode());
  EXPECT_TRUE(decoded.is_precertificate());
  // The poison must be critical per RFC 6962.
  const Extension* poison = decoded.tbs.find_extension(oids::ct_poison());
  ASSERT_NE(poison, nullptr);
  EXPECT_TRUE(poison->critical);
}

TEST(PrecertTest, PrecertTbsStripsPoisonAndSctList) {
  const auto ca = test_signer("strip-ca");
  const auto subject = test_signer("strip-subject");

  CertificateBuilder builder = base_builder(*subject);
  builder.add_dns_san("www.example.org");
  const TbsCertificate plain_tbs = builder.build_tbs();

  CertificateBuilder poisoned = base_builder(*subject);
  poisoned.add_dns_san("www.example.org").poison();
  TbsCertificate precert_tbs = poisoned.build_tbs();

  // What the log signs over the precert equals the plain TBS encoding.
  EXPECT_EQ(precert_tbs_bytes(precert_tbs), plain_tbs.encode());

  // Adding an SCT list to the final cert does not change the covered bytes.
  TbsCertificate final_tbs = plain_tbs;
  final_tbs.add_extension(Extension{oids::ct_sct_list(), false, Bytes{0x00, 0x00}});
  EXPECT_EQ(precert_tbs_bytes(final_tbs), plain_tbs.encode());
}

TEST(PrecertTest, SanReorderChangesCoveredBytes) {
  const auto subject = test_signer("reorder-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.add_dns_san("a.example").add_dns_san("b.example");
  TbsCertificate tbs = builder.build_tbs();
  const Bytes before = precert_tbs_bytes(tbs);

  auto sans = tbs.san_entries();
  std::swap(sans[0], sans[1]);
  for (auto& ext : tbs.extensions) {
    if (ext.oid == oids::subject_alt_name()) ext.value = encode_san_value(sans);
  }
  EXPECT_NE(precert_tbs_bytes(tbs), before);
}

TEST(PrecertTest, ExtensionReorderChangesCoveredBytes) {
  const auto subject = test_signer("extreorder-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.extension(Extension{oids::basic_constraints(), true, asn1::encode_sequence({})});
  builder.add_dns_san("a.example");
  TbsCertificate tbs = builder.build_tbs();
  ASSERT_GE(tbs.extensions.size(), 2u);
  const Bytes before = precert_tbs_bytes(tbs);
  std::swap(tbs.extensions[0], tbs.extensions[1]);
  EXPECT_NE(precert_tbs_bytes(tbs), before);
}

TEST(ExtensionTest, FindAndRemove) {
  const auto subject = test_signer("ext-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.extension(Extension{oids::key_usage(), true, Bytes{0x03, 0x02, 0x05, 0xa0}});
  builder.add_dns_san("x.example");
  TbsCertificate tbs = builder.build_tbs();
  EXPECT_TRUE(tbs.has_extension(oids::key_usage()));
  EXPECT_TRUE(tbs.has_extension(oids::subject_alt_name()));
  EXPECT_EQ(tbs.remove_extension(oids::key_usage()), 1u);
  EXPECT_FALSE(tbs.has_extension(oids::key_usage()));
  EXPECT_EQ(tbs.remove_extension(oids::key_usage()), 0u);
}

TEST(ExtensionTest, CriticalityRoundTrips) {
  const auto ca = test_signer("crit-ca");
  const auto subject = test_signer("crit-subject");
  CertificateBuilder builder = base_builder(*subject);
  builder.extension(Extension{oids::basic_constraints(), true, asn1::encode_sequence({})});
  builder.extension(Extension{oids::key_usage(), false, Bytes{0x01}});
  builder.add_dns_san("x.example");
  const Certificate decoded = Certificate::decode(builder.sign(*ca).encode());
  EXPECT_TRUE(decoded.tbs.find_extension(oids::basic_constraints())->critical);
  EXPECT_FALSE(decoded.tbs.find_extension(oids::key_usage())->critical);
}

TEST(CertificateTest, MixedSchemeCertificate) {
  // Simulated-scheme subject key inside an ECDSA-signed certificate.
  const auto ca = test_signer("mixed-ca");
  const auto subject = crypto::make_signer("mixed-subject", SignatureScheme::hmac_sha256_simulated);
  const Certificate cert = base_builder(*subject).add_dns_san("www.example.org").sign(*ca);
  const Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded.tbs.key_scheme, SignatureScheme::hmac_sha256_simulated);
  EXPECT_TRUE(decoded.verify(ca->public_key()));
}

TEST(CertificateTest, DecodeRejectsGarbage) {
  EXPECT_THROW(Certificate::decode(to_bytes("not a certificate")), std::invalid_argument);
  EXPECT_THROW(Certificate::decode(Bytes{}), std::invalid_argument);
}

}  // namespace
}  // namespace ctwatch::x509
