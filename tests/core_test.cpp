#include <gtest/gtest.h>

#include "ctwatch/core/ctwatch.hpp"

namespace ctwatch::core {
namespace {

sim::EcosystemOptions bulk_options(std::uint64_t seed = 7) {
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = false;
  options.seed = seed;
  return options;
}

// ---------- log evolution (§2) ----------

class EvolutionTest : public ::testing::Test {
 protected:
  EvolutionTest() : ecosystem_(bulk_options()) {
    sim::TimelineOptions options;
    options.scale = 1.0 / 20000.0;
    sim::TimelineSimulator(ecosystem_, options).run();
  }
  sim::Ecosystem ecosystem_;
};

TEST_F(EvolutionTest, CumulativeSeriesAreMonotonic) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  ASSERT_FALSE(report.months.empty());
  for (const auto& [ca, series] : report.cumulative_by_ca) {
    ASSERT_EQ(series.size(), report.months.size());
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1]) << ca;
    }
  }
}

TEST_F(EvolutionTest, MonthlySharesSumToOne) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  for (std::size_t i = 0; i < report.months.size(); ++i) {
    double sum = 0;
    for (const auto& [ca, shares] : report.monthly_share_by_ca) sum += shares[i];
    EXPECT_NEAR(sum, 1.0, 1e-9) << report.months[i];
  }
}

TEST_F(EvolutionTest, Top5ShareNearPaperValue) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  EXPECT_GT(report.top5_share, 0.95);  // paper: 99 %
}

TEST_F(EvolutionTest, LetsEncryptDominatesApril2018) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  const auto& shares = report.monthly_share_by_ca.at("Let's Encrypt");
  double april_share = 0;
  for (std::size_t i = 0; i < report.months.size(); ++i) {
    if (report.months[i] == "2018-04") april_share = shares[i];
  }
  EXPECT_GT(april_share, 0.5);
}

TEST_F(EvolutionTest, MatrixIsSparseAndLeLoadConcentrated) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run("2018-04");
  EXPECT_GT(report.matrix_sparsity, 0.6);
  // Let's Encrypt load goes (only) to Icarus + Nimbus2018.
  double icarus = 0, nimbus = 0, total = 0;
  for (const auto& [log, share] : report.le_log_share) {
    total += share;
    if (log == "Google Icarus") icarus = share;
    if (log == "Cloudflare Nimbus2018") nimbus = share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(icarus + nimbus, 0.99);
}

TEST_F(EvolutionTest, DeduplicatesAcrossLogs) {
  // Every DigiCert precert goes to 4 logs; cumulative counts must count it
  // once. Cross-check: unique certs <= total entries / logs-per-ca for that
  // CA's series.
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  std::uint64_t digicert_entries = 0;
  for (ct::CtLog* log : ecosystem_.all_logs()) {
    for (const auto& entry : log->entries()) {
      if (entry.issuer_cn == "DigiCert SHA2 Secure Server CA") ++digicert_entries;
    }
  }
  const auto& series = report.cumulative_by_ca.at("DigiCert");
  EXPECT_EQ(series.back() * 4, digicert_entries);
}

TEST_F(EvolutionTest, RendersAreNonEmpty) {
  const LogEvolutionReport report = LogEvolutionStudy(ecosystem_).run();
  EXPECT_FALSE(LogEvolutionStudy::render_cumulative(report).empty());
  EXPECT_FALSE(LogEvolutionStudy::render_matrix(report).empty());
}

// ---------- adoption renders (§3) ----------

TEST(AdoptionRenderTest, TotalsBlockContainsHeadlineNumbers) {
  monitor::MonitorTotals totals;
  totals.connections = 10000;
  totals.with_any_sct = 3261;
  totals.sct_in_cert = 2140;
  totals.sct_in_tls = 1121;
  totals.client_signaled = 6676;
  const std::string text = render_adoption_totals(totals);
  EXPECT_NE(text.find("32.61%"), std::string::npos);
  EXPECT_NE(text.find("21.40%"), std::string::npos);
  EXPECT_NE(text.find("11.21%"), std::string::npos);
  EXPECT_NE(text.find("66.76%"), std::string::npos);
}

TEST(AdoptionRenderTest, TopLogsSortedByCertColumn) {
  std::map<std::string, monitor::LogUsage> usage;
  usage["Alpha"] = {100, 5, 0};
  usage["Beta"] = {300, 1, 0};
  usage["Gamma"] = {200, 9, 0};
  const std::string table = render_top_logs(usage, 2);
  const auto beta = table.find("Beta");
  const auto gamma = table.find("Gamma");
  EXPECT_NE(beta, std::string::npos);
  EXPECT_NE(gamma, std::string::npos);
  EXPECT_LT(beta, gamma);
  EXPECT_EQ(table.find("Alpha"), std::string::npos);  // top-2 cut
}

TEST(AdoptionRenderTest, DailySeriesStride) {
  std::map<std::int64_t, monitor::DailyCounters> daily;
  for (int day = 0; day < 14; ++day) {
    daily[day] = monitor::DailyCounters{100, 33, 21, 11, 0};
  }
  const std::string weekly = render_daily_series(daily, 7);
  // Header + 2 sampled rows.
  EXPECT_EQ(std::count(weekly.begin(), weekly.end(), '\n'), 3);
}

// ---------- invalid SCT study (§3.4) ----------

class InvalidSctStudyTest : public ::testing::Test {
 protected:
  static sim::EcosystemOptions options() {
    sim::EcosystemOptions opts;
    opts.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
    opts.verify_submissions = true;
    opts.store_bodies = true;
    opts.seed = 3;
    return opts;
  }
};

TEST_F(InvalidSctStudyTest, FindsExactlyTheFourIncidents) {
  sim::Ecosystem ecosystem(options());
  InvalidSctOptions study_options;
  study_options.clean_per_bug = 10;
  InvalidSctStudy study(ecosystem, study_options);
  const InvalidSctReport report = study.run();
  EXPECT_EQ(report.certificates_checked, 44u);
  EXPECT_EQ(report.invalid, 4u);
  EXPECT_EQ(report.by_ca.size(), 4u);
  EXPECT_EQ(report.by_cause.at("san-reorder (GlobalSign class)"), 1u);
  EXPECT_EQ(report.by_cause.at("extension-reorder (D-Trust class)"), 1u);
  EXPECT_EQ(report.by_cause.at("name-mismatch (NetLock class)"), 1u);
  EXPECT_EQ(report.by_cause.at("stale-sct-reissue (TeliaSonera class)"), 1u);
  EXPECT_FALSE(InvalidSctStudy::render(report).empty());
}

TEST(ClassifierTest, ValidPairClassifiesAsUnknownDivergence) {
  // Identical precert/final pair: nothing to attribute.
  sim::Ecosystem ecosystem(bulk_options(11));
  sim::CertificateAuthority& ca = ecosystem.ca("DigiCert");
  sim::IssuanceRequest request;
  request.subject_cn = "same.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = SimTime::parse("2018-04-01");
  request.not_after = SimTime::parse("2019-04-01");
  const auto issued = ca.issue(request, SimTime::parse("2018-04-01"));
  EXPECT_EQ(classify_divergence(issued.final_certificate, issued.precertificate),
            RootCause::unknown);
  EXPECT_EQ(classify_divergence(issued.final_certificate, std::nullopt), RootCause::stale_sct);
}

// ---------- leakage renders (§4) ----------

TEST(LeakageRenderTest, Table2AndFunnelRender) {
  sim::DomainCorpusOptions corpus_options;
  corpus_options.registrable_count = 2500;
  sim::DomainCorpus corpus(corpus_options);
  LeakageStudy study(corpus);
  enumeration::EnumerationOptions options;
  options.min_label_count = 20;
  const LeakageReport report = study.run(options);
  const std::string table2 = LeakageStudy::render_table2(report);
  EXPECT_NE(table2.find("www"), std::string::npos);
  const std::string funnel = LeakageStudy::render_funnel(report);
  EXPECT_NE(funnel.find("novel discoveries"), std::string::npos);
}

// ---------- month key ----------

TEST(MonthKeyTest, Formats) {
  EXPECT_EQ(month_key(SimTime::parse("2018-04-18 10:00:00")), "2018-04");
  EXPECT_EQ(month_key(SimTime::parse("2013-01-01")), "2013-01");
}

}  // namespace
}  // namespace ctwatch::core
