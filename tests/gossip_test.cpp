// ctwatch::gossip — the split-view adversarial harness.
//
// The adversary is a real equivocating log (two LogService faces, one
// signing key); the countermeasure is STH gossip with aggregation
// points. The matrix drives every fork position (first entry, second
// entry, tile boundary, tail) through every partition shape and
// requires detection with full aggregation coverage — and the verdict's
// evidence is re-verified *cryptographically here*, never trusted from
// the detector. The honest-log leg proves the dual: heavy chaos
// (outages, losses, delayed challenges) may slow gossip down but can
// never manufacture a SplitViewDetected.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/gossip/gossip.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::gossip {
namespace {

using namespace std::chrono_literals;

const SimTime kNow = SimTime::parse("2018-04-01");

SimTime at_round(std::uint64_t round) {
  return SimTime{kNow.unix_seconds() + static_cast<std::int64_t>(round) * 60};
}

logsvc::Config fast_config(const std::string& name) {
  logsvc::Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 500us;
  return config;
}

EquivocationPlan fast_plan(std::uint64_t fork_index, const std::string& name = "Equivocator") {
  EquivocationPlan plan;
  plan.base = fast_config(name);
  plan.fork_index = fork_index;
  return plan;
}

/// The adversarial gate's teeth: a verdict is accepted only when its
/// evidence re-verifies from scratch — both signatures under the log's
/// public key, plus either a same-size root conflict or the log's own
/// proof failing `ct::verify_consistency`. Nothing about the detector is
/// trusted.
void verify_evidence(const SplitViewDetected& detection, BytesView public_key) {
  ASSERT_TRUE(ct::verify_sth(detection.sth_a, public_key)) << detection.reason;
  ASSERT_TRUE(ct::verify_sth(detection.sth_b, public_key)) << detection.reason;
  if (detection.same_size) {
    EXPECT_EQ(detection.sth_a.tree_size, detection.sth_b.tree_size);
    EXPECT_NE(detection.sth_a.root_hash, detection.sth_b.root_hash);
    EXPECT_TRUE(detection.proof.empty());
    return;
  }
  const ct::SignedTreeHead& old_sth =
      detection.sth_a.tree_size <= detection.sth_b.tree_size ? detection.sth_a : detection.sth_b;
  const ct::SignedTreeHead& new_sth =
      detection.sth_a.tree_size <= detection.sth_b.tree_size ? detection.sth_b : detection.sth_a;
  ASSERT_NE(old_sth.tree_size, new_sth.tree_size);
  EXPECT_FALSE(ct::verify_consistency(old_sth.tree_size, new_sth.tree_size, old_sth.root_hash,
                                      new_sth.root_hash, detection.proof))
      << "the carried proof reconciles the pair; this is not evidence";
}

// ---------------------------------------------------------------------------
// The attack baseline: per-client auditing is blind.

TEST(GossipTest, NaivePerClientAuditingNeverFiresOnEitherFace) {
  EquivocatingLog log(fast_plan(/*fork_index=*/1));
  for (const Side side : {Side::left, Side::right}) {
    logsvc::LogService& face = log.service(side);
    ct::SignedTreeHead previous = face.get_sth();
    EXPECT_TRUE(ct::verify_sth(previous, log.public_key()));
    for (int step = 0; step < 6; ++step) {
      log.grow(at_round(static_cast<std::uint64_t>(step)));
      const ct::SignedTreeHead sth = face.get_sth();
      // Signature checks out...
      EXPECT_TRUE(ct::verify_sth(sth, log.public_key()));
      // ...the face proves its own history consistent...
      EXPECT_TRUE(ct::verify_consistency(
          previous.tree_size, sth.tree_size, previous.root_hash, sth.root_hash,
          face.consistency_proof(previous.tree_size, sth.tree_size)));
      // ...and every leaf it serves is included. A solo auditor is happy.
      const std::uint64_t last = sth.tree_size - 1;
      EXPECT_TRUE(ct::verify_inclusion(face.leaf_hash_at(last), last, sth.tree_size,
                                       face.inclusion_proof(last, sth.tree_size),
                                       sth.root_hash));
      previous = sth;
    }
  }
  // Yet the two faces diverged from entry 1 on.
  EXPECT_NE(log.service(Side::left).get_sth().root_hash,
            log.service(Side::right).get_sth().root_hash);
}

// ---------------------------------------------------------------------------
// The adversarial matrix: every fork position x every partition shape.

enum class Shape { split, bridge, isolated };

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::split: return "split";
    case Shape::bridge: return "bridge";
    case Shape::isolated: return "isolated";
  }
  return "?";
}

/// Builds the partitioned topology: 2 peers per side. `split` has no
/// cross-partition gossip (only the straddling aggregation point sees
/// both); `bridge` adds one cross edge; `isolated` strands one left peer
/// entirely (coverage is its only link to the world).
struct Topology {
  GossipNet* net;
  std::vector<std::size_t> left_peers;
  std::vector<std::size_t> right_peers;
  std::size_t aggregator = 0;
};

Topology build_topology(GossipNet& net, EquivocatingLog& log, Shape shape) {
  Topology topo{&net, {}, {}, 0};
  for (int i = 0; i < 2; ++i) topo.left_peers.push_back(net.add_peer(log.view(Side::left)));
  for (int i = 0; i < 2; ++i) topo.right_peers.push_back(net.add_peer(log.view(Side::right)));
  // Intra-partition gossip is always on (it is what makes the partitions
  // internally convincing) — except the isolated peer, which talks to
  // nobody.
  const bool strand_first_left = shape == Shape::isolated;
  if (!strand_first_left) net.connect(topo.left_peers[0], topo.left_peers[1]);
  net.connect(topo.right_peers[0], topo.right_peers[1]);
  if (shape == Shape::bridge) net.connect(topo.left_peers[1], topo.right_peers[0]);
  // Full aggregation coverage: the aggregation point observes a peer in
  // each partition (its own face is the left one; any face works — the
  // challenge only needs *some* window onto the log).
  topo.aggregator = net.add_aggregator(log.view(Side::left));
  net.cover(topo.aggregator, topo.left_peers[0]);
  net.cover(topo.aggregator, topo.right_peers[0]);
  return topo;
}

TEST(GossipAdversarialTest, ForkMatrixDetectsWithFullAggregationCoverage) {
  // Fork positions: the very first entry, the second, the tile boundary
  // (256-leaf pages are the storage layer's unit), and the tail (only
  // the newest entry diverges). Trees grow a few entries past the fork.
  const struct { std::uint64_t fork; std::uint64_t extra; } forks[] = {
      {0, 4}, {1, 4}, {256, 3}, {6, 1} /* tail: fork at final entry */};
  for (const auto& fork_case : forks) {
    const std::uint64_t total = fork_case.fork + fork_case.extra;
    for (const Shape shape : {Shape::split, Shape::bridge, Shape::isolated}) {
      SCOPED_TRACE(std::string("fork=") + std::to_string(fork_case.fork) +
                   " shape=" + shape_name(shape));
      EquivocatingLog log(fast_plan(fork_case.fork));
      log.grow(total, kNow);
      ASSERT_EQ(log.size(Side::left), total);
      ASSERT_NE(log.service(Side::left).get_sth().root_hash,
                log.service(Side::right).get_sth().root_hash);

      NetConfig config;
      config.fanout = 2;
      config.seed = 0x90551f + fork_case.fork;
      GossipNet net(config, log.public_key());
      build_topology(net, log, shape);
      for (std::uint64_t round = 1; round <= 8 && !net.detected(); ++round) {
        net.step(at_round(round));
      }
      ASSERT_TRUE(net.detected());
      for (const SplitViewDetected& detection : net.detections()) {
        verify_evidence(detection, log.public_key());
      }
      EXPECT_EQ(net.stats().forged_dropped, 0u);
    }
  }
}

TEST(GossipAdversarialTest, SplitShapeWithoutCoverageNeverLearns) {
  // The control for the aggregation math: remove the straddling
  // aggregation point from the `split` shape and the partitions stay
  // mutually invisible — no actor ever holds both views, so the (real)
  // equivocation goes undetected. Coverage is what detection buys.
  EquivocatingLog log(fast_plan(/*fork_index=*/1));
  log.grow(5, kNow);
  GossipNet net(NetConfig{}, log.public_key());
  const std::size_t l0 = net.add_peer(log.view(Side::left));
  const std::size_t l1 = net.add_peer(log.view(Side::left));
  const std::size_t r0 = net.add_peer(log.view(Side::right));
  const std::size_t r1 = net.add_peer(log.view(Side::right));
  net.connect(l0, l1);
  net.connect(r0, r1);
  for (std::uint64_t round = 1; round <= 10; ++round) net.step(at_round(round));
  EXPECT_FALSE(net.detected());
  EXPECT_GT(net.stats().sths_gossiped, 0u);
}

TEST(GossipAdversarialTest, AsymmetricGrowthDetectsViaFailingProof) {
  // Faces of different sizes: the same-size shortcut cannot fire, so
  // detection must come from the log's own consistency proof failing to
  // verify against the cross-partition head.
  EquivocatingLog log(fast_plan(/*fork_index=*/2));
  log.grow(3, kNow);                                      // both faces: 3
  for (int i = 0; i < 3; ++i) log.grow_side(Side::left, kNow);  // left: 6
  ASSERT_EQ(log.size(Side::left), 6u);
  ASSERT_EQ(log.size(Side::right), 3u);

  GossipNet net(NetConfig{}, log.public_key());
  const std::size_t left_peer = net.add_peer(log.view(Side::left));
  const std::size_t right_peer = net.add_peer(log.view(Side::right));
  net.connect(left_peer, right_peer);
  for (std::uint64_t round = 1; round <= 4 && !net.detected(); ++round) {
    net.step(at_round(round));
  }
  ASSERT_TRUE(net.detected());
  const SplitViewDetected& detection = net.detections().front();
  EXPECT_FALSE(detection.same_size);
  EXPECT_EQ(detection.actor, left_peer);  // only the bigger face can serve the pair
  verify_evidence(detection, log.public_key());
  // The right peer's face cannot serve (3, 6): its pair stays pending —
  // unavailability is never treated as evidence.
  EXPECT_GT(net.stats().challenges_pending, 0u);
}

TEST(GossipAdversarialTest, SignedZeroSizeJunkRootIsCaughtEndToEnd) {
  // Regression lock for the verify_consistency empty-tree fix: a signed
  // size-0 head with a junk root used to be "consistent with anything"
  // (empty proof), so an equivocating log could hand them out freely.
  // Through the challenge path it must now yield a verdict.
  EquivocationPlan plan = fast_plan(/*fork_index=*/1000);  // beyond growth: faces identical
  EquivocatingLog log(plan);
  log.grow(5, kNow);

  GossipNet net(NetConfig{}, log.public_key());
  const std::size_t peer = net.add_peer(log.view(Side::left));
  net.step(at_round(1));  // fetches the honest size-5 head
  ASSERT_FALSE(net.detected());

  crypto::Digest junk = crypto::Sha256::hash(to_bytes("not-the-empty-root"));
  const ct::SignedTreeHead forged_empty = log.sign_arbitrary_sth(0, 1522540800000, junk);
  ASSERT_TRUE(ct::verify_sth(forged_empty, log.public_key()));  // it IS validly signed
  ASSERT_TRUE(net.inject(peer, forged_empty, at_round(1)));
  net.step(at_round(2));

  ASSERT_TRUE(net.detected());
  const SplitViewDetected& detection = net.detections().front();
  EXPECT_FALSE(detection.same_size);
  EXPECT_TRUE(detection.proof.empty());  // the face's 0->5 proof is empty, and still fails
  verify_evidence(detection, log.public_key());
}

TEST(GossipAdversarialTest, DegenerateSameSizePairsResolveCorrectly) {
  EquivocationPlan plan = fast_plan(/*fork_index=*/1000);
  EquivocatingLog log(plan);
  log.grow(4, kNow);

  GossipNet net(NetConfig{}, log.public_key());
  const std::size_t peer = net.add_peer(log.view(Side::left));
  net.step(at_round(1));

  // first == second with the SAME root: a re-signed duplicate head is
  // deduped, never challenged, never a verdict.
  const ct::SignedTreeHead sth = log.service(Side::left).get_sth();
  const ct::SignedTreeHead resigned =
      log.sign_arbitrary_sth(sth.tree_size, sth.timestamp_ms + 1, sth.root_hash);
  ASSERT_TRUE(net.inject(peer, resigned, at_round(1)));
  net.step(at_round(2));
  EXPECT_FALSE(net.detected());

  // first == second with a DIFFERENT root: immediate verdict, no proof
  // fetch involved.
  crypto::Digest junk = crypto::Sha256::hash(to_bytes("same-size-junk"));
  const ct::SignedTreeHead conflicting =
      log.sign_arbitrary_sth(sth.tree_size, sth.timestamp_ms + 2, junk);
  ASSERT_TRUE(net.inject(peer, conflicting, at_round(2)));
  ASSERT_TRUE(net.detected());
  const SplitViewDetected& detection = net.detections().front();
  EXPECT_TRUE(detection.same_size);
  verify_evidence(detection, log.public_key());
}

TEST(GossipTest, ForgedSthIsDroppedNotTrusted) {
  // A head signed by a DIFFERENT key must be rejected at the gossip
  // boundary — otherwise anyone could frame an honest log.
  EquivocatingLog log(fast_plan(1));
  log.grow(3, kNow);
  EquivocatingLog impostor(fast_plan(1, "Impostor"));
  impostor.grow(3, kNow);

  GossipNet net(NetConfig{}, log.public_key());
  const std::size_t peer = net.add_peer(log.view(Side::left));
  net.step(at_round(1));
  const ct::SignedTreeHead forged = impostor.service(Side::right).get_sth();
  EXPECT_FALSE(net.inject(peer, forged, at_round(1)));
  net.step(at_round(2));
  EXPECT_FALSE(net.detected());
  EXPECT_EQ(net.stats().forged_dropped, 1u);
}

// ---------------------------------------------------------------------------
// No false positives: an honest log under heavy chaos.

TEST(GossipTest, HonestLogUnderHeavyChaosNeverYieldsAVerdict) {
  logsvc::Config config = fast_config("Honest Under Fire");
  logsvc::LogService honest(config);
  ServiceView view(honest);

  chaos::FaultInjector injector(0xbadbadbadULL);
  chaos::FaultPlan flaky;
  flaky.error_probability = 0.45;
  flaky.timeout_fraction = 0.5;
  flaky.latency_base_us = 1000;
  flaky.latency_jitter_us = 5000;
  injector.plan("gossip.fetch", flaky);
  injector.plan("gossip.challenge", flaky);
  // Link outages: every edge dies for a stretch of virtual time mid-run
  // (rounds are 60 virtual seconds apart).
  chaos::FaultPlan outage = flaky;
  outage.outages.push_back(
      {static_cast<std::uint64_t>(at_round(5).unix_seconds()) * 1'000'000,
       static_cast<std::uint64_t>(at_round(12).unix_seconds()) * 1'000'000});
  for (const char* edge : {"gossip.link.0-1", "gossip.link.1-2", "gossip.link.2-3",
                           "gossip.link.0-3", "gossip.link.1-4", "gossip.link.3-4"}) {
    injector.plan(edge, outage);
  }

  NetConfig net_config;
  net_config.fanout = 2;
  net_config.chaos = &injector;
  GossipNet net(net_config, honest.public_key());
  std::vector<std::size_t> peers;
  for (int i = 0; i < 5; ++i) peers.push_back(net.add_peer(view));
  net.connect(peers[0], peers[1]);
  net.connect(peers[1], peers[2]);
  net.connect(peers[2], peers[3]);
  net.connect(peers[0], peers[3]);
  net.connect(peers[1], peers[4]);
  net.connect(peers[3], peers[4]);
  const std::size_t agg = net.add_aggregator(view);
  for (const std::size_t p : peers) net.cover(agg, p);

  for (std::uint64_t round = 1; round <= 25; ++round) {
    // The log keeps growing mid-gossip, so actors constantly hold stale
    // + fresh head pairs — all of which the honest log must reconcile.
    std::promise<void> done;
    auto wait = done.get_future();
    const logsvc::SubmitStatus status = honest.submit(
        ct::SignedEntry{ct::EntryType::x509_entry, to_bytes("h-" + std::to_string(round)), {}},
        crypto::Sha256::hash(to_bytes("hfp-" + std::to_string(round))), "CA", at_round(round),
        [&done](const logsvc::SubmitOutcome&) { done.set_value(); });
    ASSERT_EQ(status, logsvc::SubmitStatus::ok);
    wait.get();
    net.step(at_round(round));
  }

  // Chaos genuinely fired...
  EXPECT_GT(net.stats().fetch_faults, 0u);
  EXPECT_GT(net.stats().link_faults, 0u);
  EXPECT_GT(net.stats().challenge_faults, 0u);
  // ...heads flowed and challenges ran...
  EXPECT_GT(net.stats().sths_accepted, 0u);
  EXPECT_GT(net.stats().challenges_run, 0u);
  // ...and not one verdict: outages and losses are not misbehaviour.
  EXPECT_FALSE(net.detected());
  EXPECT_TRUE(net.detections().empty());
}

// ---------------------------------------------------------------------------
// Storage-backed faces: the adversary runs two durable databases.

TEST(GossipAdversarialTest, StorageBackedFacesEquivocateAndAreDetected) {
  struct TempDir {
    std::string path;
    explicit TempDir(const char* tag) {
      std::string tmpl = std::string("ctwatch_") + tag + ".XXXXXX";
      path = ::mkdtemp(tmpl.data());
      EXPECT_FALSE(path.empty());
    }
    ~TempDir() { std::filesystem::remove_all(path); }
  };
  TempDir left_dir("gossip_left");
  TempDir right_dir("gossip_right");
  storage::LogStoreOptions left_options;
  left_options.dir = left_dir.path;
  storage::LogStoreOptions right_options;
  right_options.dir = right_dir.path;
  storage::LogStore::Open left_open = storage::LogStore::open(left_options);
  storage::LogStore::Open right_open = storage::LogStore::open(right_options);
  ASSERT_NE(left_open.store, nullptr) << left_open.detail;
  ASSERT_NE(right_open.store, nullptr) << right_open.detail;

  ct::SignedTreeHead left_sth, right_sth;
  Bytes public_key;
  {
    EquivocationPlan plan = fast_plan(/*fork_index=*/2, "Durable Equivocator");
    plan.storage_left = left_open.store.get();
    plan.storage_right = right_open.store.get();
    EquivocatingLog log(plan);
    log.grow(6, kNow);

    GossipNet net(NetConfig{}, log.public_key());
    const std::size_t left_peer = net.add_peer(log.view(Side::left));
    const std::size_t right_peer = net.add_peer(log.view(Side::right));
    net.connect(left_peer, right_peer);
    for (std::uint64_t round = 1; round <= 4 && !net.detected(); ++round) {
      net.step(at_round(round));
    }
    ASSERT_TRUE(net.detected());
    verify_evidence(net.detections().front(), log.public_key());
    left_sth = log.service(Side::left).get_sth();
    right_sth = log.service(Side::right).get_sth();
    public_key = log.public_key();
  }
  ASSERT_TRUE(left_open.store->close().ok()) << "left face close";
  ASSERT_TRUE(right_open.store->close().ok()) << "right face close";
  left_open.store.reset();
  right_open.store.reset();

  // Both divergent histories are durable: each face recovers to its own
  // committed head — the equivocation survives a restart intact.
  storage::LogStore::Open left_again = storage::LogStore::open(left_options);
  storage::LogStore::Open right_again = storage::LogStore::open(right_options);
  ASSERT_NE(left_again.store, nullptr) << left_again.detail;
  ASSERT_NE(right_again.store, nullptr) << right_again.detail;
  {
    logsvc::Config config = fast_config("Durable Equivocator");
    config.storage = left_again.store.get();
    logsvc::LogService recovered(config);
    EXPECT_EQ(recovered.get_sth(), left_sth);
  }
  {
    logsvc::Config config = fast_config("Durable Equivocator");
    config.storage = right_again.store.get();
    logsvc::LogService recovered(config);
    EXPECT_EQ(recovered.get_sth(), right_sth);
    EXPECT_TRUE(ct::verify_sth(recovered.get_sth(), public_key));
  }
}

// ---------------------------------------------------------------------------
// Differential parity: one face == an honest log with that history.

class GossipParityTest : public ::testing::TestWithParam<crypto::SignatureScheme> {};

TEST_P(GossipParityTest, SingleFaceIsByteIndistinguishableFromHonestLog) {
  // The attack's viability rests on this: a client pinned to one face
  // can NEVER tell it from an honest log, byte for byte — STHs
  // (signatures included), every proof, every entry. The harness grows
  // an equivocating face and an honest twin through the identical
  // submission history and diffs the full read surface at every step.
  const std::uint64_t fork = 3;
  const std::uint64_t total = 8;

  EquivocationPlan plan = fast_plan(fork, "Parity Log");
  plan.base.scheme = GetParam();
  EquivocatingLog equivocating(plan);

  logsvc::Config honest_config = fast_config("Parity Log");  // same name => same key
  honest_config.scheme = GetParam();
  logsvc::LogService honest(honest_config);

  for (std::uint64_t i = 0; i < total; ++i) {
    const SimTime now{kNow.unix_seconds() + static_cast<std::int64_t>(i) * 7};
    equivocating.grow(now);
    // The honest twin integrates the left face's exact history.
    std::promise<logsvc::SubmitOutcome> promise;
    auto future = promise.get_future();
    ASSERT_EQ(honest.submit(EquivocatingLog::entry_at(i, fork, Side::left),
                            EquivocatingLog::fingerprint_at(i, fork, Side::left),
                            "Equivocation CA", now,
                            [&promise](const logsvc::SubmitOutcome& outcome) {
                              promise.set_value(outcome);
                            }),
              logsvc::SubmitStatus::ok);
    ASSERT_EQ(future.get().status, logsvc::SubmitStatus::ok);

    logsvc::LogService& face = equivocating.service(Side::left);
    const std::uint64_t size = i + 1;
    ASSERT_EQ(face.tree_size(), size);
    ASSERT_EQ(honest.tree_size(), size);
    // STH parity is byte-exact INCLUDING the signature (deterministic
    // nonces), so even signature bytes carry no tell.
    EXPECT_EQ(face.get_sth(), honest.get_sth()) << "step " << i;
    for (std::uint64_t j = 0; j < size; ++j) {
      EXPECT_EQ(face.leaf_hash_at(j), honest.leaf_hash_at(j));
      EXPECT_EQ(face.inclusion_proof(j, size), honest.inclusion_proof(j, size));
    }
    for (std::uint64_t old_size = 0; old_size <= size; ++old_size) {
      EXPECT_EQ(face.consistency_proof(old_size, size), honest.consistency_proof(old_size, size));
    }
  }

  // Full entry-stream parity, and cross-check against the reference
  // in-core recursion (the PR 9 parity style: two independent
  // implementations of the same math must agree).
  const auto face_entries = equivocating.service(Side::left).get_entries(0, total);
  const auto honest_entries = honest.get_entries(0, total);
  ASSERT_EQ(face_entries.size(), honest_entries.size());
  ct::MerkleTree reference;
  for (std::size_t i = 0; i < face_entries.size(); ++i) {
    EXPECT_EQ(face_entries[i].signed_entry.data, honest_entries[i].signed_entry.data);
    EXPECT_EQ(face_entries[i].timestamp_ms, honest_entries[i].timestamp_ms);
    reference.append(equivocating.service(Side::left).leaf_hash_at(i));
  }
  EXPECT_EQ(reference.root(), honest.get_sth().root_hash);
}

INSTANTIATE_TEST_SUITE_P(Schemes, GossipParityTest,
                         ::testing::Values(crypto::SignatureScheme::hmac_sha256_simulated,
                                           crypto::SignatureScheme::ecdsa_p256_sha256));

// ---------------------------------------------------------------------------
// Concurrency: pollination + challenges racing the growing log (the
// ThreadSanitizer target for the gossip subsystem).

TEST(GossipTest, ConcurrentPollinationAndChallengesAreRaceFree) {
  EquivocatingLog log(fast_plan(/*fork_index=*/1));
  log.grow(2, kNow);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> verdicts{0};
  std::atomic<std::uint64_t> challenges{0};

  std::thread grower([&] {
    for (int i = 0; i < 40 && !stop.load(std::memory_order_relaxed); ++i) {
      log.grow(SimTime{kNow.unix_seconds() + i});
    }
    stop.store(true, std::memory_order_relaxed);
  });

  std::vector<std::thread> challengers;
  for (int t = 0; t < 4; ++t) {
    challengers.emplace_back([&, t] {
      const Side mine = (t % 2 == 0) ? Side::left : Side::right;
      const Side other = (t % 2 == 0) ? Side::right : Side::left;
      ServiceView view(log.service(mine));
      while (!stop.load(std::memory_order_relaxed)) {
        const ct::SignedTreeHead ours = view.get_sth();
        const ct::SignedTreeHead theirs = log.service(other).get_sth();
        ASSERT_TRUE(ct::verify_sth(ours, log.public_key()));
        const ChallengeResult result = challenge_pair(view, ours, theirs);
        challenges.fetch_add(1, std::memory_order_relaxed);
        if (result.status == ChallengeStatus::split_view) {
          verdicts.fetch_add(1, std::memory_order_relaxed);
          // Evidence must re-verify even when sampled mid-growth.
          if (result.same_size_conflict) {
            ASSERT_EQ(ours.tree_size, theirs.tree_size);
            ASSERT_NE(ours.root_hash, theirs.root_hash);
          } else {
            const auto& old_sth = ours.tree_size <= theirs.tree_size ? ours : theirs;
            const auto& new_sth = ours.tree_size <= theirs.tree_size ? theirs : ours;
            ASSERT_FALSE(ct::verify_consistency(old_sth.tree_size, new_sth.tree_size,
                                                old_sth.root_hash, new_sth.root_hash,
                                                result.proof));
          }
        }
      }
    });
  }
  grower.join();
  for (auto& thread : challengers) thread.join();

  EXPECT_GT(challenges.load(), 0u);
  // Both faces diverge from entry 1 on, so racing challengers must have
  // caught the split many times over.
  EXPECT_GT(verdicts.load(), 0u);
}

}  // namespace
}  // namespace ctwatch::gossip
