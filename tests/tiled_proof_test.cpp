// Differential parity: the tile-addressed proof math (ct/tiled.hpp) must
// be byte-identical to the resident RFC 6962 recursion (ct/merkle.hpp)
// for every tree size, watermark position, and page-availability shape —
// including trees that do not align to tile boundaries, proofs that
// straddle the paged/resident boundary, and sources whose upper-level
// pages are missing (forcing the recursion down to level 0).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/tiled.hpp"

namespace ctwatch::ct {
namespace {

constexpr std::uint64_t kTile = 256;

Digest leaf_of(std::uint64_t i) {
  return leaf_hash(to_bytes("tiled-parity-leaf-" + std::to_string(i)));
}

/// A TileSource over an in-memory leaf vector, shaped like the storage
/// layer's: level-0 pages cover exactly [0, watermark) with a partial
/// last page, upper-level pages exist only when FULL (256 entries), and
/// leaf() serves any index (the resident tail and nothing else in a
/// correctly-paged query — `strict_tail` asserts that).
class FakeTileSource : public TileSource {
 public:
  FakeTileSource(const std::vector<Digest>& leaves, std::uint64_t watermark,
                 bool drop_upper = false, bool strict_tail = false)
      : leaves_(leaves), watermark_(watermark), drop_upper_(drop_upper),
        strict_tail_(strict_tail) {
    // Entry e of level L is the root of leaves [e·256^L, (e+1)·256^L):
    // exactly fold_perfect over 256 entries of the level below.
    levels_.push_back(std::vector<Digest>(leaves.begin(),
                                          leaves.begin() + static_cast<std::ptrdiff_t>(watermark)));
    while (levels_.back().size() >= kTile) {
      const std::vector<Digest>& below = levels_.back();
      std::vector<Digest> up;
      for (std::size_t e = 0; e + kTile <= below.size(); e += kTile) {
        up.push_back(fold_perfect(below.data() + e, kTile));
      }
      if (up.empty()) break;
      levels_.push_back(std::move(up));
    }
  }

  [[nodiscard]] std::uint64_t paged_leaves() const override { return watermark_; }

  bool page(unsigned level, std::uint64_t tile, std::uint64_t min_count,
            TilePageView& out) override {
    ++page_requests_;
    if (level >= levels_.size()) return false;
    if (level > 0 && drop_upper_) return false;
    const std::vector<Digest>& row = levels_[level];
    const std::uint64_t first = tile * kTile;
    if (first >= row.size()) return false;
    const std::uint64_t avail = std::min(kTile, row.size() - first);
    // Upper pages are only ever durable when full — a partial upper page
    // does not exist on disk, so the math must descend instead.
    if (level > 0 && avail < kTile) return false;
    if (avail < min_count) return false;
    out.entries = row.data() + first;
    out.count = avail;
    return true;
  }

  Digest leaf(std::uint64_t index) override {
    ++leaf_requests_;
    if (strict_tail_) {
      // The math must never fall back to leaf() below the watermark: a
      // page request below it can only fail through corruption.
      EXPECT_GE(index, watermark_) << "tiled math read a paged leaf through the tail";
    }
    return leaves_[static_cast<std::size_t>(index)];
  }

  std::uint64_t page_requests() const { return page_requests_; }
  std::uint64_t leaf_requests() const { return leaf_requests_; }

 private:
  const std::vector<Digest>& leaves_;
  std::uint64_t watermark_;
  bool drop_upper_;
  bool strict_tail_;
  std::vector<std::vector<Digest>> levels_;
  std::uint64_t page_requests_ = 0;
  std::uint64_t leaf_requests_ = 0;
};

std::vector<Digest> make_leaves(std::uint64_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) leaves.push_back(leaf_of(i));
  return leaves;
}

/// Watermarks worth testing for a tree of size n: fully paged, the tile
/// floor (the storage layer's invariant position), a non-aligned interior
/// cut, and fully resident.
std::vector<std::uint64_t> watermarks_for(std::uint64_t n) {
  std::vector<std::uint64_t> marks{n, n / kTile * kTile, n / 2, 0};
  std::sort(marks.begin(), marks.end());
  marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  return marks;
}

TEST(TiledProofTest, FoldPerfectMatchesRangeRoot) {
  const std::vector<Digest> leaves = make_leaves(512);
  const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
    return leaves[static_cast<std::size_t>(i)];
  };
  for (const std::uint64_t width : {1ull, 2ull, 4ull, 64ull, 256ull, 512ull}) {
    for (std::uint64_t begin = 0; begin + width <= leaves.size(); begin += width) {
      EXPECT_EQ(fold_perfect(leaves.data() + begin, width),
                merkle_range_root(leaf_fn, begin, begin + width))
          << "width=" << width << " begin=" << begin;
    }
  }
}

TEST(TiledProofTest, RootParityAcrossSizesAndWatermarks) {
  for (const std::uint64_t n : {1ull, 2ull, 3ull, 255ull, 256ull, 257ull, 511ull, 512ull,
                                513ull, 1000ull, 4095ull, 4096ull, 4097ull}) {
    const std::vector<Digest> leaves = make_leaves(n);
    const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
      return leaves[static_cast<std::size_t>(i)];
    };
    const Digest expected = merkle_root_of(leaf_fn, n);
    for (const std::uint64_t w : watermarks_for(n)) {
      FakeTileSource source(leaves, w, false, true);
      EXPECT_EQ(tiled_root(source, n), expected) << "n=" << n << " watermark=" << w;
    }
  }
}

TEST(TiledProofTest, InclusionParityAcrossSizesAndWatermarks) {
  std::mt19937_64 rng(0x711ED);
  for (const std::uint64_t n :
       {1ull, 2ull, 255ull, 256ull, 257ull, 511ull, 513ull, 1000ull, 4095ull, 4097ull}) {
    const std::vector<Digest> leaves = make_leaves(n);
    const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
      return leaves[static_cast<std::size_t>(i)];
    };
    const Digest root = merkle_root_of(leaf_fn, n);
    for (const std::uint64_t w : watermarks_for(n)) {
      FakeTileSource source(leaves, w, false, true);
      std::vector<std::uint64_t> indices{0, n - 1, n / 2};
      for (int i = 0; i < 4; ++i) indices.push_back(rng() % n);
      // Indices hugging the paged/resident boundary are the interesting
      // ones: their paths mix page entries and resident leaves.
      if (w > 0 && w < n) indices.insert(indices.end(), {w - 1, w});
      for (const std::uint64_t index : indices) {
        const std::vector<Digest> tiled = tiled_inclusion_path(source, index, n);
        EXPECT_EQ(tiled, merkle_inclusion_path(leaf_fn, index, n))
            << "n=" << n << " w=" << w << " index=" << index;
        EXPECT_TRUE(verify_inclusion(leaves[static_cast<std::size_t>(index)], index, n, tiled,
                                     root));
      }
    }
  }
}

TEST(TiledProofTest, ConsistencyParityAcrossSizesAndWatermarks) {
  std::mt19937_64 rng(0xC0515);
  for (const std::uint64_t n : {2ull, 256ull, 257ull, 512ull, 1000ull, 4097ull}) {
    const std::vector<Digest> leaves = make_leaves(n);
    const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
      return leaves[static_cast<std::size_t>(i)];
    };
    for (const std::uint64_t w : watermarks_for(n)) {
      FakeTileSource source(leaves, w, false, true);
      std::vector<std::uint64_t> olds{1, n / 2, n - 1, n};
      for (int i = 0; i < 3; ++i) olds.push_back(1 + rng() % n);
      if (w > 0 && w < n) olds.push_back(w);
      for (const std::uint64_t old_size : olds) {
        EXPECT_EQ(tiled_consistency_path(source, old_size, n),
                  merkle_consistency_path(leaf_fn, old_size, n))
            << "n=" << n << " w=" << w << " old=" << old_size;
      }
    }
  }
}

TEST(TiledProofTest, StaleTreeSizeProvesAgainstNewerWatermark) {
  // A checkpoint racing a query can advance the watermark past the tree
  // size being proven (a stale snapshot). Append-only Merkle: the perfect
  // subtrees of the old tree are unchanged, so parity must hold.
  const std::uint64_t n = 1500;
  const std::vector<Digest> leaves = make_leaves(n);
  const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
    return leaves[static_cast<std::size_t>(i)];
  };
  FakeTileSource source(leaves, n, false, true);  // watermark covers ALL leaves
  for (const std::uint64_t stale : {1ull, 255ull, 256ull, 700ull, 1499ull}) {
    EXPECT_EQ(tiled_inclusion_path(source, stale / 2, stale),
              merkle_inclusion_path(leaf_fn, stale / 2, stale))
        << "stale=" << stale;
    EXPECT_EQ(tiled_consistency_path(source, stale, n),
              merkle_consistency_path(leaf_fn, stale, n))
        << "stale=" << stale;
  }
}

TEST(TiledProofTest, MissingUpperPagesFallThroughByteIdentically) {
  // 66000 leaves > 256² so a full level-1 page exists; dropping every
  // upper page forces the recursion to resolve the same subtrees from
  // level-0 pages — more fetches, identical bytes.
  const std::uint64_t n = 66000;
  const std::vector<Digest> leaves = make_leaves(n);
  const auto leaf_fn = [&](std::uint64_t i) -> const Digest& {
    return leaves[static_cast<std::size_t>(i)];
  };
  FakeTileSource with_upper(leaves, n, false, true);
  FakeTileSource without_upper(leaves, n, true, true);
  const std::vector<Digest> expected = merkle_inclusion_path(leaf_fn, 70000 / 2, n);
  EXPECT_EQ(tiled_inclusion_path(with_upper, 70000 / 2, n), expected);
  EXPECT_EQ(tiled_inclusion_path(without_upper, 70000 / 2, n), expected);
  // The upper pages are what keep the fetch count logarithmic.
  EXPECT_LT(with_upper.page_requests(), without_upper.page_requests());
  EXPECT_EQ(tiled_root(without_upper, n), merkle_root_of(leaf_fn, n));
}

TEST(TiledProofTest, ProofsTouchLogarithmicallyManyPages) {
  // 65536 leaves: 256 full level-0 tiles AND a full level-1 page, so
  // every perfect path node of ≥256 leaves resolves from one level-1
  // fetch instead of walking its level-0 tiles. The 16-node inclusion
  // path must cost O(path length) page requests (counting failed
  // higher-level probes), nowhere near the 256 tiles the tree spans.
  const std::uint64_t n = 65536;
  const std::vector<Digest> leaves = make_leaves(n);
  FakeTileSource source(leaves, n, false, true);
  (void)tiled_inclusion_path(source, 30000, n);
  EXPECT_LE(source.page_requests(), 40u);
  EXPECT_EQ(source.leaf_requests(), 0u);  // nothing resident: no tail reads
}

}  // namespace
}  // namespace ctwatch::ct
