#include <gtest/gtest.h>

#include "ctwatch/ct/auditor.hpp"
#include "ctwatch/ct/loglist.hpp"
#include "ctwatch/ct/stream.hpp"
#include "ctwatch/sim/ca.hpp"

namespace ctwatch::ct {
namespace {

using crypto::SignatureScheme;

class CtLogTest : public ::testing::TestWithParam<SignatureScheme> {
 protected:
  CtLogTest()
      : ca_("Test CA", "Test Issuing CA", GetParam()), now_(SimTime::parse("2018-04-01")) {
    LogConfig config;
    config.name = "Test Log";
    config.operator_name = "TestOp";
    config.scheme = GetParam();
    log_ = std::make_unique<CtLog>(config);
  }

  sim::IssuanceRequest request(const std::string& cn) {
    sim::IssuanceRequest req;
    req.subject_cn = cn;
    req.sans = {x509::SanEntry::dns(cn)};
    req.not_before = now_;
    req.not_after = now_ + 90 * 86400;
    req.logs = {log_.get()};
    return req;
  }

  sim::CertificateAuthority ca_;
  std::unique_ptr<CtLog> log_;
  SimTime now_;
};

TEST_P(CtLogTest, FullIssuanceFlowProducesVerifiableSct) {
  const auto issued = ca_.issue(request("www.example.org"), now_);
  ASSERT_EQ(issued.scts.size(), 1u);
  EXPECT_TRUE(issued.failed_logs.empty());
  EXPECT_EQ(log_->tree_size(), 1u);

  // Validate against the final certificate, as a client would.
  const SignedEntry entry = make_precert_entry(issued.final_certificate, ca_.public_key());
  EXPECT_TRUE(verify_sct(issued.scts[0], entry, log_->public_key()));
}

TEST_P(CtLogTest, SctDoesNotVerifyWithWrongLogKey) {
  const auto issued = ca_.issue(request("www.example.org"), now_);
  LogConfig other_config;
  other_config.name = "Other Log";
  other_config.scheme = GetParam();
  CtLog other(other_config);
  const SignedEntry entry = make_precert_entry(issued.final_certificate, ca_.public_key());
  EXPECT_FALSE(verify_sct(issued.scts[0], entry, other.public_key()));
}

TEST_P(CtLogTest, RejectsFinalCertOnPreChainAndViceVersa) {
  const auto issued = ca_.issue(request("www.example.org"), now_);
  EXPECT_EQ(log_->add_pre_chain(issued.final_certificate, ca_.public_key(), now_).status,
            SubmitStatus::rejected_invalid);
  EXPECT_EQ(log_->add_chain(issued.precertificate, ca_.public_key(), now_).status,
            SubmitStatus::rejected_invalid);
}

TEST_P(CtLogTest, RejectsBadChainSignature) {
  const auto issued = ca_.issue(request("www.example.org"), now_);
  sim::CertificateAuthority other("Other CA", "Other Issuing CA", GetParam());
  EXPECT_EQ(log_->add_chain(issued.final_certificate, other.public_key(), now_).status,
            SubmitStatus::rejected_invalid);
}

TEST_P(CtLogTest, DeduplicatesResubmission) {
  const auto issued = ca_.issue(request("www.example.org"), now_);
  const std::uint64_t size_before = log_->tree_size();
  const auto again = log_->add_pre_chain(issued.precertificate, ca_.public_key(), now_ + 3600);
  EXPECT_EQ(again.status, SubmitStatus::ok);
  EXPECT_EQ(log_->tree_size(), size_before);  // no new entry
  // The replayed SCT carries the original timestamp and still verifies.
  ASSERT_TRUE(again.sct);
  EXPECT_EQ(again.sct->timestamp_ms, issued.scts[0].timestamp_ms);
  const SignedEntry entry = make_precert_entry(issued.final_certificate, ca_.public_key());
  EXPECT_TRUE(verify_sct(*again.sct, entry, log_->public_key()));
}

TEST_P(CtLogTest, SthSignsCurrentTree) {
  ca_.issue(request("a.example.org"), now_);
  ca_.issue(request("b.example.org"), now_ + 60);
  const SignedTreeHead sth = log_->get_sth(now_ + 120);
  EXPECT_EQ(sth.tree_size, 2u);
  EXPECT_TRUE(verify_sth(sth, log_->public_key()));
  SignedTreeHead tampered = sth;
  tampered.tree_size = 3;
  EXPECT_FALSE(verify_sth(tampered, log_->public_key()));
}

TEST_P(CtLogTest, InclusionProofForEveryEntry) {
  for (int i = 0; i < 9; ++i) {
    ca_.issue(request("site" + std::to_string(i) + ".example.org"), now_ + i * 60);
  }
  const SignedTreeHead sth = log_->get_sth(now_ + 3600);
  for (std::uint64_t index = 0; index < 9; ++index) {
    EXPECT_TRUE(LogAuditor::check_inclusion(*log_, index, sth)) << index;
  }
}

TEST_P(CtLogTest, GetEntriesRange) {
  for (int i = 0; i < 5; ++i) {
    ca_.issue(request("e" + std::to_string(i) + ".example.org"), now_ + i);
  }
  const auto middle = log_->get_entries(1, 3);
  ASSERT_EQ(middle.size(), 3u);
  EXPECT_EQ(middle[0].index, 1u);
  EXPECT_EQ(middle[2].index, 3u);
  EXPECT_EQ(log_->get_entries(4, 10).size(), 1u);  // clamped at tree size
  EXPECT_TRUE(log_->get_entries(9, 3).empty());
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, CtLogTest,
                         ::testing::Values(SignatureScheme::ecdsa_p256_sha256,
                                           SignatureScheme::hmac_sha256_simulated));

// ---------- capacity / overload ----------

TEST(CtLogCapacityTest, OverloadedBeyondHourlyCapacity) {
  LogConfig config;
  config.name = "Tiny Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  config.capacity_per_hour = 3;
  CtLog log(config);
  sim::CertificateAuthority ca("Cap CA", "Cap Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime base = SimTime::parse("2018-03-10 12:00:00");
  int ok = 0, overloaded = 0;
  for (int i = 0; i < 6; ++i) {
    sim::IssuanceRequest request;
    request.subject_cn = "c" + std::to_string(i) + ".example.org";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = base;
    request.not_after = base + 90 * 86400;
    request.logs = {&log};
    const auto result = ca.issue(request, base + i * 60);
    if (result.failed_logs.empty()) {
      ++ok;
    } else {
      ++overloaded;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(overloaded, 3);
  EXPECT_EQ(log.overload_rejections(), 3u);
  // The next hour has fresh capacity.
  sim::IssuanceRequest request;
  request.subject_cn = "later.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = base;
  request.not_after = base + 90 * 86400;
  request.logs = {&log};
  EXPECT_TRUE(ca.issue(request, base + 3700).failed_logs.empty());
}

// ---------- auditor ----------

TEST(AuditorTest, DetectsHistoryRewrite) {
  LogConfig config;
  config.name = "Audited Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  CtLog log(config);
  sim::CertificateAuthority ca("Audit CA", "Audit Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime base = SimTime::parse("2018-04-01");
  auto issue = [&](int i, SimTime when) {
    sim::IssuanceRequest request;
    request.subject_cn = "a" + std::to_string(i) + ".example.org";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = when;
    request.not_after = when + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, when);
  };
  for (int i = 0; i < 6; ++i) issue(i, base + i * 60);

  LogAuditor auditor;
  EXPECT_TRUE(auditor.audit(log, base + 3600).ok);
  for (int i = 6; i < 10; ++i) issue(i, base + i * 60);
  EXPECT_TRUE(auditor.audit(log, base + 7200).ok);

  // The log rewrites an old entry; the next audit must fail.
  log.corrupt_leaf_for_test(2);
  issue(10, base + 8000);
  const AuditOutcome outcome = auditor.audit(log, base + 9000);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.problem, "consistency proof failed: history rewritten");
}

// ---------- log list & Chrome policy ----------

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : google_log_(make_config("Google Policy Log")),
        other_log_(make_config("Indie Policy Log")),
        ca_("Policy CA", "Policy Issuing CA", SignatureScheme::hmac_sha256_simulated),
        now_(SimTime::parse("2018-04-20")) {
    log_list_.add_log(google_log_, SimTime::parse("2015-01-01"), /*google=*/true);
    log_list_.add_log(other_log_, SimTime::parse("2016-01-01"), /*google=*/false);
  }

  static LogConfig make_config(const std::string& name) {
    LogConfig config;
    config.name = name;
    config.scheme = SignatureScheme::hmac_sha256_simulated;
    config.verify_submissions = false;
    return config;
  }

  sim::IssuanceResult issue(const std::vector<CtLog*>& logs, int lifetime_days = 90) {
    sim::IssuanceRequest request;
    request.subject_cn = "policy" + std::to_string(++counter_) + ".example.org";
    request.sans = {x509::SanEntry::dns(request.subject_cn)};
    request.not_before = now_;
    request.not_after = now_ + lifetime_days * 86400;
    request.logs = logs;
    return ca_.issue(request, now_);
  }

  PolicyVerdict evaluate(const sim::IssuanceResult& issued) {
    const SignedEntry entry = make_precert_entry(issued.final_certificate, ca_.public_key());
    return evaluate_chrome_policy(issued.scts, entry, log_list_, now_,
                                  issued.final_certificate.tbs.not_before,
                                  issued.final_certificate.tbs.not_after);
  }

  CtLog google_log_;
  CtLog other_log_;
  LogList log_list_;
  sim::CertificateAuthority ca_;
  SimTime now_;
  int counter_ = 0;
};

TEST_F(PolicyTest, CompliantWithDiverseLogs) {
  const auto issued = issue({&google_log_, &other_log_});
  const PolicyVerdict verdict = evaluate(issued);
  EXPECT_TRUE(verdict.compliant) << verdict.reason;
  EXPECT_EQ(verdict.valid_scts, 2u);
  EXPECT_TRUE(verdict.has_google);
  EXPECT_TRUE(verdict.has_non_google);
}

TEST_F(PolicyTest, NonCompliantWithoutDiversity) {
  const auto issued = issue({&google_log_});
  const PolicyVerdict verdict = evaluate(issued);
  EXPECT_FALSE(verdict.compliant);
}

TEST_F(PolicyTest, LongLivedCertificatesNeedMoreScts) {
  EXPECT_EQ(required_sct_count(now_, now_ + 90 * 86400), 2u);
  EXPECT_EQ(required_sct_count(now_, now_ + 2 * 365 * 86400), 3u);
  EXPECT_EQ(required_sct_count(now_, now_ + 3 * 365 * 86400), 4u);
  EXPECT_EQ(required_sct_count(now_, now_ + 4 * 365 * 86400), 5u);
  // A two-year certificate with only two SCTs fails on count.
  const auto issued = issue({&google_log_, &other_log_}, 2 * 365);
  const PolicyVerdict verdict = evaluate(issued);
  EXPECT_FALSE(verdict.compliant);
  EXPECT_EQ(verdict.required_scts, 3u);
}

TEST_F(PolicyTest, DisqualifiedLogDoesNotCount) {
  const auto issued = issue({&google_log_, &other_log_});
  log_list_.disqualify(other_log_.log_id(), SimTime::parse("2018-04-10"));
  const PolicyVerdict verdict = evaluate(issued);
  EXPECT_FALSE(verdict.compliant);
  EXPECT_EQ(verdict.valid_scts, 1u);
}

TEST_F(PolicyTest, UnknownLogSctIgnored) {
  LogConfig config = make_config("Rogue Log");
  CtLog rogue(config);
  const auto issued = issue({&rogue, &google_log_});
  const PolicyVerdict verdict = evaluate(issued);
  EXPECT_EQ(verdict.valid_scts, 1u);  // the rogue SCT is not counted
  EXPECT_FALSE(verdict.compliant);
}

TEST(PolicyDateTest, EnforcementOnlyCoversPostDeadlineIssuance) {
  const SimTime deadline = chrome_enforcement_date();
  EXPECT_EQ(deadline.date_string(), "2018-04-18");
  const SimTime before = SimTime::parse("2018-03-01");
  const SimTime after = SimTime::parse("2018-05-01");
  // Pre-deadline certificates are grandfathered even once enforcement is on.
  EXPECT_FALSE(chrome_requires_ct(before, after));
  // Post-deadline certificates need CT once enforcement has begun...
  EXPECT_TRUE(chrome_requires_ct(SimTime::parse("2018-04-20"), after));
  // ...but nothing is enforced before the switch was flipped.
  EXPECT_FALSE(chrome_requires_ct(before, SimTime::parse("2018-01-01")));
}

TEST(LogListTest, FindByIdAndName) {
  LogConfig config;
  config.name = "Find Me";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  CtLog log(config);
  LogList list;
  list.add_log(log, SimTime::parse("2017-01-01"), false);
  EXPECT_NE(list.find(log.log_id()), nullptr);
  EXPECT_NE(list.find_by_name("Find Me"), nullptr);
  EXPECT_EQ(list.find_by_name("Missing"), nullptr);
  const LogId bogus{};
  EXPECT_EQ(list.find(bogus), nullptr);
}

// ---------- streaming & polling ----------

TEST(StreamTest, CertStreamDeliversEntries) {
  LogConfig config;
  config.name = "Streamed Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  CtLog log(config);
  CertStream stream;
  stream.attach(log);
  std::vector<std::string> seen;
  stream.on_entry([&](const CtLog& source, const LogEntry& entry) {
    seen.push_back(source.name() + "/" + entry.certificate.tbs.subject.common_name);
  });
  sim::CertificateAuthority ca("Stream CA", "Stream Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime now = SimTime::parse("2018-04-12 14:16:14");
  sim::IssuanceRequest request;
  request.subject_cn = "hp1.example.net";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now;
  request.not_after = now + 90 * 86400;
  request.logs = {&log};
  ca.issue(request, now);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "Streamed Log/hp1.example.net");
  EXPECT_EQ(stream.delivered(), 1u);
}

TEST(StreamTest, BatchPollerReturnsOnlyNewEntries) {
  LogConfig config;
  config.name = "Polled Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  CtLog log(config);
  sim::CertificateAuthority ca("Poll CA", "Poll Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime now = SimTime::parse("2018-04-12");
  auto issue = [&](const std::string& cn) {
    sim::IssuanceRequest request;
    request.subject_cn = cn;
    request.sans = {x509::SanEntry::dns(cn)};
    request.not_before = now;
    request.not_after = now + 90 * 86400;
    request.logs = {&log};
    ca.issue(request, now);
  };
  BatchPoller poller(log);
  EXPECT_TRUE(poller.poll().empty());
  issue("a.example.net");
  issue("b.example.net");
  EXPECT_EQ(poller.poll().size(), 2u);
  EXPECT_TRUE(poller.poll().empty());
  issue("c.example.net");
  const auto batch = poller.poll();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].certificate.tbs.subject.common_name, "c.example.net");
}

// ---------- SCT list serialization ----------

TEST(SctListTest, SerializeParseRoundTrip) {
  SignedCertificateTimestamp a;
  a.log_id.fill(0x11);
  a.timestamp_ms = 1523542574000ull;
  a.signature = crypto::SignatureBlob{SignatureScheme::hmac_sha256_simulated, Bytes(32, 0xaa)};
  SignedCertificateTimestamp b;
  b.log_id.fill(0x22);
  b.timestamp_ms = 1523542575000ull;
  b.extensions = to_bytes("ext");
  b.signature = crypto::SignatureBlob{SignatureScheme::ecdsa_p256_sha256, Bytes(64, 0xbb)};
  const std::vector<SignedCertificateTimestamp> scts{a, b};
  EXPECT_EQ(parse_sct_list(serialize_sct_list(scts)), scts);
}

TEST(SctListTest, ParseRejectsTrailingBytes) {
  Bytes data = serialize_sct_list({});
  data.push_back(0x00);
  EXPECT_THROW(parse_sct_list(data), std::invalid_argument);
}

TEST(SctListTest, SctSerializationRoundTrip) {
  SignedCertificateTimestamp sct;
  sct.log_id.fill(0x5a);
  sct.timestamp_ms = 1234567890123ull;
  sct.signature = crypto::SignatureBlob{SignatureScheme::hmac_sha256_simulated, Bytes(32, 0x7f)};
  EXPECT_EQ(SignedCertificateTimestamp::deserialize(sct.serialize()), sct);
}

TEST(SctListTest, DeserializeRejectsTruncated) {
  SignedCertificateTimestamp sct;
  sct.log_id.fill(0x5a);
  sct.signature = crypto::SignatureBlob{SignatureScheme::hmac_sha256_simulated, Bytes(32, 0x7f)};
  Bytes data = sct.serialize();
  data.resize(data.size() - 1);
  EXPECT_THROW(SignedCertificateTimestamp::deserialize(data), std::invalid_argument);
}

// ---------- slim (store_bodies=false) mode ----------

TEST(SlimModeTest, KeepsFingerprintsAndTreeButNotBodies) {
  LogConfig config;
  config.name = "Slim Log";
  config.scheme = SignatureScheme::hmac_sha256_simulated;
  config.verify_submissions = false;
  config.store_bodies = false;
  CtLog log(config);
  sim::CertificateAuthority ca("Slim CA", "Slim Issuing CA",
                               SignatureScheme::hmac_sha256_simulated);
  const SimTime now = SimTime::parse("2018-04-01");
  sim::IssuanceRequest request;
  request.subject_cn = "slim.example.org";
  request.sans = {x509::SanEntry::dns(request.subject_cn)};
  request.not_before = now;
  request.not_after = now + 90 * 86400;
  request.logs = {&log};
  const auto issued = ca.issue(request, now);
  ASSERT_EQ(log.entries().size(), 1u);
  const LogEntry& entry = log.entries()[0];
  EXPECT_EQ(entry.issuer_cn, "Slim Issuing CA");
  EXPECT_TRUE(entry.certificate.tbs.public_key.empty());  // body dropped
  EXPECT_EQ(hex_encode(crypto::digest_bytes(entry.fingerprint)),
            hex_encode(crypto::digest_bytes(issued.precertificate.fingerprint())));
  // The Merkle tree is fully populated regardless.
  EXPECT_EQ(log.tree_size(), 1u);
  const SignedTreeHead sth = log.get_sth(now + 60);
  EXPECT_TRUE(verify_sth(sth, log.public_key()));
}

}  // namespace
}  // namespace ctwatch::ct
