#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ctwatch/honeypot/analysis.hpp"
#include "ctwatch/honeypot/attackers.hpp"

namespace ctwatch::honeypot {
namespace {

sim::EcosystemOptions eco_options() {
  sim::EcosystemOptions options;
  options.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  options.verify_submissions = false;
  options.store_bodies = true;
  options.seed = 2024;
  return options;
}

class HoneypotTest : public ::testing::Test {
 protected:
  HoneypotTest() : ecosystem_(eco_options()), honeypot_(ecosystem_) {}
  sim::Ecosystem ecosystem_;
  CtHoneypot honeypot_;
};

TEST_F(HoneypotTest, SubdomainCreationLeaksOnlyViaCt) {
  const SimTime now = SimTime::parse("2018-04-12 14:16:14");
  const HoneypotDomain& domain = honeypot_.create_subdomain(now);

  EXPECT_EQ(domain.label.size(), 12u);
  EXPECT_EQ(domain.fqdn, domain.label + ".hp-parent.net");
  EXPECT_EQ(domain.ct_logged - now, honeypot_.options().validation_lead);

  // DNS records are live on the honeypot's own authoritative server.
  const dns::Zone* zone =
      honeypot_.dns_server().find_zone(dns::DnsName::parse_or_throw(domain.fqdn));
  ASSERT_NE(zone, nullptr);
  EXPECT_FALSE(zone->lookup(dns::DnsName::parse_or_throw(domain.fqdn), dns::RrType::A).empty());
  EXPECT_FALSE(
      zone->lookup(dns::DnsName::parse_or_throw(domain.fqdn), dns::RrType::AAAA).empty());

  // The precertificate reached the configured logs.
  bool found = false;
  for (const auto& entry : ecosystem_.log("Google Icarus").entries()) {
    for (const std::string& name : entry.certificate.tbs.dns_names()) {
      if (name == domain.fqdn) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HoneypotTest, UniqueAddressesPerSubdomain) {
  const SimTime now = SimTime::parse("2018-04-12 14:00:00");
  std::set<std::string> v6;
  std::set<std::string> labels;
  for (int i = 0; i < 5; ++i) {
    const HoneypotDomain& domain = honeypot_.create_subdomain(now + i * 90);
    v6.insert(domain.aaaa_record.to_string());
    labels.insert(domain.label);
  }
  EXPECT_EQ(v6.size(), 5u);
  EXPECT_EQ(labels.size(), 5u);
}

TEST_F(HoneypotTest, ValidationQueriesPrecedeLogging) {
  const SimTime now = SimTime::parse("2018-04-12 14:16:14");
  const HoneypotDomain& domain = honeypot_.create_subdomain(now);
  bool saw_validation = false;
  for (const auto& entry : honeypot_.dns_server().log()) {
    if (entry.question.qname.to_string() != domain.fqdn) continue;
    EXPECT_EQ(entry.context.resolver_label, CtHoneypot::kValidationLabel);
    EXPECT_LT(entry.context.time, domain.ct_logged);
    saw_validation = true;
  }
  EXPECT_TRUE(saw_validation);
}

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() : ecosystem_(eco_options()), honeypot_(ecosystem_) {
    for (int i = 0; i < 4; ++i) {
      honeypot_.create_subdomain(SimTime::parse("2018-04-30 13:00:00") + i * 600);
    }
    AttackerFleet fleet(honeypot_, standard_fleet(), Rng(17));
    stats_ = fleet.run();
    report_ = analyze(honeypot_);
  }
  sim::Ecosystem ecosystem_;
  CtHoneypot honeypot_;
  FleetStats stats_;
  HoneypotReport report_;
};

TEST_F(FleetTest, EveryDomainIsQueriedWithinMinutes) {
  ASSERT_EQ(report_.rows.size(), 4u);
  for (const DomainTimeline& row : report_.rows) {
    ASSERT_TRUE(row.first_dns) << row.tag;
    EXPECT_GE(row.dns_delta, 60) << row.tag;    // paper: fastest 73s
    EXPECT_LE(row.dns_delta, 300) << row.tag;   // paper: ~3 minutes
    EXPECT_GE(row.query_count, 10u);
    EXPECT_GE(row.asn_count, 5u);
  }
}

TEST_F(FleetTest, ValidationQueriesAreFiltered) {
  EXPECT_GT(report_.queries_filtered_as_validation, 0u);
  // And never leak into per-domain counters: first DNS is after logging.
  for (const DomainTimeline& row : report_.rows) {
    EXPECT_GT(*row.first_dns, row.ct_entry);
  }
}

TEST_F(FleetTest, EcsUnmasksStubNetworks) {
  EXPECT_GE(report_.ecs_subnets.size(), 2u);
  // The Hetzner stub is the heaviest ECS user.
  const auto hetzner = report_.ecs_subnets.find("88.198.7.0/24");
  ASSERT_NE(hetzner, report_.ecs_subnets.end());
  for (const auto& [subnet, count] : report_.ecs_subnets) {
    EXPECT_LE(count, hetzner->second) << subnet;
  }
  EXPECT_GE(report_.ecs_subnets_with_connections, 1u);
}

TEST_F(FleetTest, PortScannerDetectedAndAttributed) {
  ASSERT_EQ(report_.port_scanners.size(), 1u);
  const PortScanFinding& scanner = report_.port_scanners[0];
  EXPECT_GE(scanner.distinct_ports, 30u);
  const auto origin = honeypot_.as_registry().origin(scanner.source);
  ASSERT_TRUE(origin);
  EXPECT_EQ(*origin, 29073u);  // Quasi Networks
  ASSERT_TRUE(honeypot_.as_registry().lookup(*origin));
  EXPECT_FALSE(honeypot_.as_registry().lookup(*origin)->honors_abuse);
}

TEST_F(FleetTest, NoIpv6ContactBeyondValidator) {
  EXPECT_EQ(report_.ipv6_contacts, 0u);
}

TEST_F(FleetTest, HttpConnectionsTrailDns) {
  for (const DomainTimeline& row : report_.rows) {
    if (!row.first_http) continue;
    EXPECT_GT(*row.first_http, *row.first_dns) << row.tag;
    EXPECT_GE(row.http_delta, 3000) << row.tag;  // paper: ~1-2 hours
    EXPECT_FALSE(row.http_asns.empty());
  }
}

TEST_F(FleetTest, FirstAsesAreStreamingMonitors) {
  // The first responders come from the streaming set the paper names.
  const std::set<net::Asn> streaming = {15169, 8560, 54054, 16509, 36692, 44050};
  for (const DomainTimeline& row : report_.rows) {
    ASSERT_FALSE(row.first_asns.empty());
    EXPECT_TRUE(streaming.contains(row.first_asns[0]))
        << row.tag << " first AS " << row.first_asns[0];
  }
}

TEST_F(FleetTest, RenderedTableHasOneRowPerDomain) {
  const std::string table = render_table4(report_);
  // Header + 4 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);
  EXPECT_NE(table.find("CT log entry"), std::string::npos);
}

TEST(FleetConfigTest, StandardFleetShape) {
  const auto fleet = standard_fleet();
  // 6 streaming + DO + Amazon-legacy + 2 named stubs + 10 small stubs + 76 batch.
  EXPECT_GE(fleet.size(), 90u);
  std::size_t batch = 0, ecs = 0, scanners = 0;
  for (const auto& actor : fleet) {
    if (actor.mode == MonitorActorSpec::Mode::batch) ++batch;
    if (actor.via_google_dns) ++ecs;
    if (actor.scan_ports > 0) ++scanners;
  }
  EXPECT_EQ(batch, 76u);  // "76 other ASes"
  EXPECT_EQ(scanners, 1u);
  EXPECT_GE(ecs, 12u - 2u);
}

}  // namespace
}  // namespace ctwatch::honeypot
