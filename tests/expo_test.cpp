// ctwatch::obs — ExpoServer: live scrapes of a working process.
//
// These tests run a real LogService under submission traffic and scrape
// the exposition endpoint over actual TCP: the /metrics body must carry
// the per-stage latency summaries (p50/p99) while the service works, the
// poll loop must survive keep-alive, pipelined, and concurrent clients
// (the TSAN target for the endpoint), and unknown paths must 404 without
// disturbing the loop.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cctype>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/logsvc/logsvc.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::obs {
namespace {

using namespace std::chrono_literals;

#ifndef CTWATCH_OBS_DISABLED

// ---------- tiny blocking HTTP client ----------

class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_all(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one full response off the stream: headers, then exactly
  /// Content-Length body bytes. Leaves any pipelined follow-up buffered.
  [[nodiscard]] std::string read_response() {
    std::string headers;
    while (true) {
      const std::size_t end = buffer_.find("\r\n\r\n");
      if (end != std::string::npos) {
        headers = buffer_.substr(0, end + 4);
        buffer_.erase(0, end + 4);
        break;
      }
      if (!fill()) return "";
    }
    const std::size_t length = content_length(headers);
    while (buffer_.size() < length) {
      if (!fill()) return "";
    }
    const std::string body = buffer_.substr(0, length);
    buffer_.erase(0, length);
    return headers + body;
  }

 private:
  static std::size_t content_length(const std::string& headers) {
    // Case-insensitive scan for the Content-Length header.
    std::string lowered = headers;
    for (char& c : lowered) c = static_cast<char>(std::tolower(c));
    const std::size_t pos = lowered.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<std::size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }

  bool fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string http_get(std::uint16_t port, const std::string& path) {
  Client client(port);
  if (!client.connected()) return "";
  if (!client.send_all("GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                       "Connection: close\r\n\r\n")) {
    return "";
  }
  return client.read_response();
}

// ---------- logsvc traffic helpers ----------

ct::SignedEntry entry_of(std::uint64_t n) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  entry.data = to_bytes("expo-entry-" + std::to_string(n));
  return entry;
}

logsvc::SubmitOutcome submit_wait(logsvc::LogService& service, std::uint64_t n) {
  static const SimTime kNow = SimTime::parse("2018-04-01");
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = service.submit(
      entry_of(n), crypto::Sha256::hash(to_bytes("expo-fp-" + std::to_string(n))), "Test CA",
      kNow, [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) {
    return logsvc::SubmitOutcome{status, 0, std::nullopt};
  }
  return future.get();
}

logsvc::Config fast_config(const std::string& name) {
  logsvc::Config config;
  config.name = name;
  config.scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  config.merge_delay = 500us;
  return config;
}

// ---------- tests ----------

TEST(ExpoServerTest, BindsEphemeralPortAndStopsCleanly) {
  ExpoServer server;
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // idempotent while running
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // safe when already stopped
}

TEST(ExpoServerTest, ServesMetricsDuringLiveTraffic) {
  logsvc::LogService service(fast_config("Expo Svc"));
  ExpoServer server;
  ASSERT_TRUE(server.start());

  for (std::uint64_t n = 0; n < 5; ++n) {
    ASSERT_EQ(submit_wait(service, n).status, logsvc::SubmitStatus::ok);
  }

  const std::string response = http_get(server.port(), "/metrics");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);

  // Per-stage latency summaries are present with their quantile samples —
  // the scrape observed the pipeline while it worked.
  for (const std::string stage :
       {"ctwatch_logsvc_queue_wait_us", "ctwatch_logsvc_merge_delay_us",
        "ctwatch_logsvc_sign_us", "ctwatch_logsvc_submit_us"}) {
    EXPECT_NE(response.find("# TYPE " + stage + " summary"), std::string::npos) << stage;
    const std::string s50 = stage + "{quantile=\"0.5\"} ";
    const std::string s99 = stage + "{quantile=\"0.99\"} ";
    const std::size_t p50 = response.find(s50);
    const std::size_t p99 = response.find(s99);
    ASSERT_NE(p50, std::string::npos) << stage;
    ASSERT_NE(p99, std::string::npos) << stage;
    // The samples parse as non-negative numbers.
    const double v50 = std::strtod(response.c_str() + p50 + s50.size(), nullptr);
    const double v99 = std::strtod(response.c_str() + p99 + s99.size(), nullptr);
    EXPECT_GE(v50, 0.0) << stage;
    EXPECT_GE(v99, v50) << stage;
    EXPECT_NE(response.find(stage + "_count "), std::string::npos) << stage;
    EXPECT_NE(response.find(stage + "_sum "), std::string::npos) << stage;
  }
  // Counters flow through too.
  EXPECT_NE(response.find("ctwatch_logsvc_submissions "), std::string::npos);

  service.stop();
  server.stop();
}

TEST(ExpoServerTest, VarsTraceRootAndErrors) {
  ExpoServer server;
  ASSERT_TRUE(server.start());

  const std::string vars = http_get(server.port(), "/vars");
  EXPECT_NE(vars.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(vars.find("application/json"), std::string::npos);
  EXPECT_NE(vars.find("\"counters\""), std::string::npos);
  EXPECT_NE(vars.find("\"histograms\""), std::string::npos);

  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  { Span span("expo_test.traced"); }
  tracer.set_enabled(false);
  const std::string trace = http_get(server.port(), "/trace");
  EXPECT_NE(trace.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("expo_test.traced"), std::string::npos);
  tracer.clear();

  // Query strings are routing-irrelevant; unknown paths 404; the loop
  // answers politely and keeps serving afterwards.
  EXPECT_NE(http_get(server.port(), "/metrics?x=1").find("200 OK"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/no-such").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/").find("ctwatch obs"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"), std::string::npos);

  Client poster(server.port());
  ASSERT_TRUE(poster.connected());
  ASSERT_TRUE(poster.send_all("POST /metrics HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n"));
  EXPECT_NE(poster.read_response().find("405"), std::string::npos);

  EXPECT_GE(server.requests_served(), 7u);
  server.stop();
}

TEST(ExpoServerTest, KeepAliveServesPipelinedRequestsOnOneConnection) {
  ExpoServer server;
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  // Two requests in one write; HTTP/1.1 defaults to keep-alive, so both
  // answers arrive on the same connection, in order.
  ASSERT_TRUE(client.send_all("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                              "GET /vars HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string first = client.read_response();
  const std::string second = client.read_response();
  EXPECT_NE(first.find("ctwatch obs"), std::string::npos);
  EXPECT_NE(second.find("\"counters\""), std::string::npos);
  server.stop();
}

TEST(ExpoServerTest, ConcurrentScrapesDuringTrafficAreRaceFree) {
  // The TSAN target: several clients hammer every endpoint while a
  // LogService generates metrics and spans on its own threads.
  logsvc::LogService service(fast_config("Expo Race Svc"));
  ExpoServer server;
  ASSERT_TRUE(server.start());

  std::thread traffic([&service] {
    for (std::uint64_t n = 100; n < 140; ++n) submit_wait(service, n);
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&server, &ok, t] {
      const char* paths[] = {"/metrics", "/vars", "/trace"};
      for (int i = 0; i < 12; ++i) {
        const std::string response = http_get(server.port(), paths[(t + i) % 3]);
        if (response.find("200 OK") != std::string::npos) ok.fetch_add(1);
      }
    });
  }
  traffic.join();
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(ok.load(), 48);
  service.stop();
  server.stop();
}

#else  // CTWATCH_OBS_DISABLED

TEST(ExpoServerDisabledTest, StartFailsInert) {
  ExpoServer server;
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  EXPECT_EQ(server.requests_served(), 0u);
  server.stop();
}

#endif  // CTWATCH_OBS_DISABLED

}  // namespace
}  // namespace ctwatch::obs
