// The 2013–2018 issuance timeline behind Fig. 1.
//
// Each CA follows a phase schedule calibrated to the paper's observations:
// DigiCert logging steadily from early 2015, Comodo/GlobalSign/StartCom in
// irregular bursts, Symantec at moderate volume, and Let's Encrypt
// switching on in March 2018 at >2M precertificates/day — with all big CAs
// jumping as the Chrome enforcement deadline (2018-04-18) approached.
//
// All volumes are scaled by `TimelineOptions::scale`: the simulator runs at
// a configurable fraction of real-world volume, and the analyses report
// shares and shapes, which are scale-invariant.
#pragma once

#include <string>
#include <vector>

#include "ctwatch/sim/ecosystem.hpp"

namespace ctwatch::sim {

/// A constant-rate (with optional burstiness) issuance phase of one CA.
struct IssuancePhase {
  std::string start;        ///< "YYYY-MM-DD", inclusive
  std::string end;          ///< exclusive
  double certs_per_day;     ///< real-world volume before scaling
  bool bursty = false;      ///< if set, the CA logs in irregular batches
};

struct CaTimeline {
  std::string ca;
  std::vector<IssuancePhase> phases;
};

/// The calibrated standard schedule (see file comment).
const std::vector<CaTimeline>& standard_timeline();

struct TimelineOptions {
  std::string start = "2013-01-01";
  std::string end = "2018-05-01";
  /// Fraction of real-world volume to simulate.
  double scale = 1.0 / 2000.0;
};

/// Result of running the timeline: per-(day, CA, log) counts, which is all
/// the Fig. 1 analyses need, are queried straight from the logs.
struct TimelineStats {
  std::uint64_t issued = 0;             ///< certificates issued (with CT)
  std::uint64_t log_submissions = 0;    ///< pre-chain submissions attempted
  std::uint64_t overloaded = 0;         ///< submissions rejected for load
};

/// Drives the CA issuance schedule against an ecosystem's logs.
class TimelineSimulator {
 public:
  TimelineSimulator(Ecosystem& ecosystem, TimelineOptions options);

  /// Runs the whole schedule. Idempotence is not attempted: run once.
  TimelineStats run();

 private:
  Ecosystem* ecosystem_;
  TimelineOptions options_;
};

}  // namespace ctwatch::sim
