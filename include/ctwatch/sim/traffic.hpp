// Traffic and scan drivers feeding the passive-monitor pipeline.
//
// TrafficGenerator models the Berkeley uplink: connections per day drawn
// over the site population with Zipf popularity, per-connection client SCT
// signaling, and occasional graph.facebook.com request storms (the peaks
// the paper observed in Fig. 2 and traced to that endpoint).
//
// ScanDriver models the weekly active HTTPS scan: one connection per site,
// uniformly — the other half of the §3.3 contrast.
#pragma once

#include <set>

#include "ctwatch/monitor/passive_monitor.hpp"
#include "ctwatch/sim/population.hpp"

namespace ctwatch::sim {

struct TrafficOptions {
  std::string start = "2017-04-26";
  std::string end = "2018-05-24";  ///< exclusive; paper window ends 2018-05-23
  std::uint64_t connections_per_day = 5000;
  double client_signal_rate = 0.6676;
  /// Number of facebook-burst days (Fig. 2 peaks).
  std::size_t burst_days = 6;
  /// Burst-day multiplier on connections to the burst site.
  double burst_factor = 2.0;
};

struct TrafficStats {
  std::uint64_t connections = 0;
  std::uint64_t days = 0;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const ServerPopulation& population, TrafficOptions options, Rng rng);

  /// Streams the whole window through the monitor.
  TrafficStats run(monitor::PassiveMonitor& monitor);

 private:
  const ServerPopulation* population_;
  TrafficOptions options_;
  Rng rng_;
};

struct ScanOptions {
  std::string date = "2018-05-18";  ///< the paper's scan snapshot
  /// Ethics (§3.1): operators who asked to be excluded. The scanner
  /// maintains a blacklist and skips them.
  std::set<std::string> blacklist;
};

struct ScanStats {
  std::uint64_t servers_scanned = 0;
  std::uint64_t blacklist_skipped = 0;
};

class ScanDriver {
 public:
  ScanDriver(const ServerPopulation& population, ScanOptions options)
      : population_(&population), options_(std::move(options)) {}

  /// One TLS connection per site, through the same pipeline as passive.
  ScanStats run(monitor::PassiveMonitor& monitor);

 private:
  const ServerPopulation* population_;
  ScanOptions options_;
};

}  // namespace ctwatch::sim
