// The simulated CT ecosystem: the logs and CAs of 2013–2018.
//
// Log roster and Chrome inclusion dates follow Table 1 of the paper; the
// CA→log publication matrix is calibrated to Fig. 1c (sparse: each CA
// publishes to a small, fixed selection of logs, with Let's Encrypt's
// load landing on Google logs plus Cloudflare Nimbus).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctwatch/ct/loglist.hpp"
#include "ctwatch/sim/ca.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::sim {

struct LogSpec {
  std::string name;
  std::string operator_name;
  bool google_operated = false;
  std::string chrome_inclusion;     ///< "YYYY-MM-DD"
  std::uint64_t capacity_per_hour;  ///< 0 = unlimited (scaled units)
};

struct CaSpec {
  std::string name;       ///< e.g. "Let's Encrypt"
  std::string issuer_cn;  ///< e.g. "Let's Encrypt Authority X3"
  std::vector<std::string> logs;  ///< publication targets (Fig. 1c row)
};

struct EcosystemOptions {
  /// Bulk simulations default to the MAC signer; set ecdsa for
  /// cryptographically real (but slower) runs.
  crypto::SignatureScheme scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  /// Log-side chain validation (off for bulk speed; on in tests).
  bool verify_submissions = false;
  /// Whether logs retain full entry bodies (certificates). Off for bulk
  /// timeline simulation where only (time, CA, log) matter.
  bool store_bodies = false;
  std::uint64_t seed = 42;
};

class Ecosystem {
 public:
  explicit Ecosystem(const EcosystemOptions& options = EcosystemOptions());

  /// The Table 1 log roster.
  static const std::vector<LogSpec>& standard_logs();
  /// The big five CAs plus the small CAs of the §3.4 incidents.
  static const std::vector<CaSpec>& standard_cas();

  [[nodiscard]] ct::CtLog& log(const std::string& name);
  [[nodiscard]] CertificateAuthority& ca(const std::string& name);
  [[nodiscard]] std::vector<ct::CtLog*> logs_of(const std::string& ca_name);

  [[nodiscard]] const ct::LogList& log_list() const { return log_list_; }
  [[nodiscard]] ct::LogList& log_list() { return log_list_; }
  [[nodiscard]] std::vector<ct::CtLog*> all_logs();
  [[nodiscard]] std::vector<CertificateAuthority*> all_cas();

  [[nodiscard]] const EcosystemOptions& options() const { return options_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  EcosystemOptions options_;
  Rng rng_;
  std::map<std::string, std::unique_ptr<ct::CtLog>> logs_;
  std::map<std::string, std::unique_ptr<CertificateAuthority>> cas_;
  std::map<std::string, std::vector<std::string>> ca_logs_;
  ct::LogList log_list_;
};

}  // namespace ctwatch::sim
