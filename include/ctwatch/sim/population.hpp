// The simulated HTTPS server population and its CT behaviour.
//
// Calibration targets (§3 of the paper):
//  * Passive view (popularity-weighted, Table 1 / Fig. 2): ~21.4 % of
//    connections carry an SCT in the certificate, ~11.2 % in the TLS
//    extension, OCSP negligible; per-log shares follow Table 1; the client
//    signals SCT support in ~66.8 % of connections.
//  * Scan view (uniform over servers, §3.3): ~69 % of unique certificates
//    carry embedded SCTs, dominated by Cloudflare Nimbus2018 and Google
//    Icarus — i.e. Let's Encrypt's long tail, which the popularity-weighted
//    view barely touches. The divergence is the paper's point; here it
//    emerges from Zipf traffic over one population.
//
// Long-tail sites using Let's Encrypt replace their certificates gradually
// from March 2018 (LE only began CT logging then), so a scan late in the
// window sees far more embedded SCTs than the year of traffic did.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctwatch/sim/ecosystem.hpp"
#include "ctwatch/tls/connection.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::sim {

/// One HTTPS site: name, address, and how it delivers SCTs.
struct SiteProfile {
  std::string fqdn;
  net::IPv4 address;

  /// The certificate served before `ct_cert_active_from` (may itself carry
  /// SCTs for legacy-CA sites; carries none for pre-replacement LE sites).
  std::shared_ptr<const x509::Certificate> legacy_certificate;
  /// The CT-logged replacement certificate, if the site gets one.
  std::shared_ptr<const x509::Certificate> ct_certificate;
  SimTime ct_cert_active_from = SimTime{std::int64_t{1} << 60};  ///< "never" by default

  std::shared_ptr<const Bytes> issuer_public_key;
  std::shared_ptr<const tls::SctList> tls_extension_scts;  ///< null when unused
  std::shared_ptr<const tls::SctList> ocsp_scts;           ///< null when unused

  /// The certificate served at a given time.
  [[nodiscard]] const std::shared_ptr<const x509::Certificate>& certificate_at(SimTime t) const {
    return (ct_certificate && t >= ct_cert_active_from) ? ct_certificate : legacy_certificate;
  }
};

struct PopulationOptions {
  std::size_t site_count = 20000;
  double zipf_exponent = 1.50;  ///< traffic concentration
  double zipf_shift = 30.0;     ///< Zipf–Mandelbrot head flattening
  /// Sites below this rank form the "popular" tier with legacy-CA CT
  /// behaviour; the rest are the Let's Encrypt long tail.
  std::size_t popular_tier = 2000;

  // Popular-tier CT behaviour (drives the passive totals).
  double popular_cert_sct_rate = 0.225;
  double popular_tls_sct_rate = 0.125;
  double popular_both_rate = 0.0015;   ///< cert + TLS extension (rare)
  double popular_ocsp_rate = 0.0008;   ///< OCSP staple users (mostly with TLS ext)

  // Tail behaviour (drives the scan view).
  double tail_le_adoption = 0.73;  ///< fraction of tail sites on Let's Encrypt
  std::string le_replacement_start = "2018-03-08";
  std::string le_replacement_end = "2018-05-15";
  /// Extra embedded SCTs on tail certs (matching §3.3's secondary logs).
  double tail_extra_rocketeer = 0.19;
  double tail_extra_sabre = 0.125;
};

/// Builds and owns the site population.
class ServerPopulation {
 public:
  ServerPopulation(Ecosystem& ecosystem, const PopulationOptions& options);

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  [[nodiscard]] const SiteProfile& site(std::size_t rank) const { return sites_.at(rank); }
  [[nodiscard]] const std::vector<SiteProfile>& sites() const { return sites_; }
  [[nodiscard]] const ZipfSampler& popularity() const { return popularity_; }
  [[nodiscard]] const PopulationOptions& options() const { return options_; }

  /// Builds the connection a client would observe to `rank` at time `t`.
  [[nodiscard]] tls::ConnectionRecord connect(std::size_t rank, SimTime t,
                                              bool client_signals) const;

 private:
  PopulationOptions options_;
  std::vector<SiteProfile> sites_;
  ZipfSampler popularity_;
};

}  // namespace ctwatch::sim
