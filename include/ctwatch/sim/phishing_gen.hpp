// Phishing-domain generator for §5.
//
// Emits FQDNs shaped like the paper's observed phishing registrations —
// brand names or brand-FQDN fragments combined with cheap/free suffixes
// (eBay heavily on bid/review, Microsoft on live, Apple on ga/tk/ml/gq) —
// plus legitimate brand names the detector must not flag.
#pragma once

#include <string>
#include <vector>

#include "ctwatch/util/rng.hpp"

namespace ctwatch::sim {

struct PhishingGenOptions {
  /// Scale on the Table 3 counts (Apple 63k, PayPal 58k, Microsoft 4k,
  /// Google 1k, eBay ~800, taxation ~300).
  double scale = 1.0 / 100.0;
  std::uint64_t seed = 11;
};

struct PhishingCorpus {
  std::vector<std::string> names;        ///< phishing + legitimate, shuffled
  std::uint64_t planted_phishing = 0;    ///< ground truth: phishing count
  std::uint64_t planted_legitimate = 0;  ///< brand-owned names included
};

PhishingCorpus generate_phishing_corpus(const PhishingGenOptions& options = PhishingGenOptions());

}  // namespace ctwatch::sim
