// Certificate authorities for the simulated ecosystem.
//
// Implements the real RFC 6962 embedding flow: build a poisoned
// precertificate, submit it to the CA's chosen logs (add-pre-chain),
// collect SCTs, then issue the final certificate with the SCT-list
// extension and the poison removed.
//
// The §3.4 study is driven by the `IssuanceBug` knob, which reproduces the
// four real-world CA failures the paper disclosed:
//   * `san_reorder`       — GlobalSign: SANs with both DNS names and IP
//                           addresses changed order in the final cert.
//   * `extension_reorder` — D-Trust: X.509 extension ordering differed
//                           between precertificate and final certificate.
//   * `name_swap`         — NetLock: final certificate carried entirely
//                           different SAN names and issuer.
//   * `stale_sct_reissue` — TeliaSonera: a re-issued certificate embedded
//                           the SCT of the earlier certificate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctwatch/ct/log.hpp"
#include "ctwatch/x509/certificate.hpp"

namespace ctwatch::sim {

enum class IssuanceBug : std::uint8_t {
  none,
  san_reorder,
  extension_reorder,
  name_swap,
  stale_sct_reissue,
};

std::string to_string(IssuanceBug bug);

struct IssuanceRequest {
  std::string subject_cn;               ///< usually the first DNS name
  std::vector<x509::SanEntry> sans;     ///< order is preserved into the precert
  SimTime not_before;
  SimTime not_after;
  std::vector<ct::CtLog*> logs;         ///< logs to obtain SCTs from
  IssuanceBug bug = IssuanceBug::none;
  /// CT label redaction (the countermeasure of x509/redaction.hpp): the
  /// logged precertificate carries "?.example.com"-style SANs; the final
  /// certificate keeps the real names plus the redaction marker.
  bool redact_subdomains = false;
};

struct IssuanceResult {
  x509::Certificate precertificate;
  x509::Certificate final_certificate;
  std::vector<ct::SignedCertificateTimestamp> scts;  ///< as embedded
  /// Logs that rejected the pre-chain submission (e.g. overloaded).
  std::vector<std::string> failed_logs;
};

class CertificateAuthority {
 public:
  /// `scheme` picks real ECDSA or the bulk simulation signer; keys are
  /// derived from the CA name for reproducibility.
  CertificateAuthority(std::string name, std::string issuer_cn,
                       crypto::SignatureScheme scheme);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const x509::DistinguishedName& issuer_dn() const { return issuer_dn_; }
  [[nodiscard]] Bytes public_key() const { return signer_->public_key(); }
  [[nodiscard]] const crypto::Signer& signer() const { return *signer_; }

  /// Full CT issuance flow. With `bug != none` the final certificate is
  /// deliberately inconsistent with what the logs signed.
  IssuanceResult issue(const IssuanceRequest& request, SimTime now);

  /// TeliaSonera reproduction: issues a *new* certificate (fresh serial,
  /// shifted validity) that wrongly embeds the SCTs of `previous`.
  x509::Certificate reissue_with_stale_scts(const IssuanceResult& previous, SimTime now);

  /// Issues a plain certificate without any CT involvement (pre-CT era or
  /// deliberately unlogged).
  x509::Certificate issue_unlogged(const IssuanceRequest& request, SimTime now);

  [[nodiscard]] std::uint64_t certificates_issued() const { return serial_counter_; }

 private:
  [[nodiscard]] x509::CertificateBuilder base_builder(const IssuanceRequest& request);
  std::uint64_t next_serial() { return ++serial_counter_; }

  std::string name_;
  x509::DistinguishedName issuer_dn_;
  std::unique_ptr<crypto::Signer> signer_;
  std::unique_ptr<crypto::Signer> subject_key_;  ///< shared leaf key (simulation)
  std::uint64_t serial_counter_ = 0;
};

}  // namespace ctwatch::sim
