// Synthetic domain-name corpora for the §4 leakage study.
//
// Three artifacts, mirroring the paper's data sources:
//  * the CT corpus — every DNS name extractable from CN/SAN fields of
//    CT-logged certificates (including a sprinkling of invalid names the
//    RFC 1035 filter must reject),
//  * the registrable-domain list — the paper's 206M zone-file-derived
//    list, scaled,
//  * a Sonar-like forward-DNS list with the paper's calibrated overlaps
//    (82 % of registrable domains shared, only 21 % of subdomain labels).
//
// Alongside the name corpora, the generator materializes the ground-truth
// DNS universe the §4.3 verification pipeline probes: zones with real
// subdomain records, catch-all (default-A) zones the control probes must
// unmask, CNAME chains (some deliberately longer than the 10-hop budget),
// and a slice of answers pointing outside the border router's routing
// table.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ctwatch/dns/psl.hpp"
#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/net/autonomous_system.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::sim {

struct DomainCorpusOptions {
  std::size_t registrable_count = 60000;
  /// Scale factor applied to the paper's Table 2 label counts.
  double label_scale = 1.0 / 1000.0;
  /// Fraction of zones that answer any A query (catch-all) — what the
  /// pseudo-random controls detect. Calibrated to the §4.3 funnel.
  double default_a_fraction = 0.29;
  /// Fraction of domain operators using CT label redaction: their
  /// CT-logged names appear as "?.example.com". 0 reproduces the paper's
  /// world (redaction never deployed); the redaction_ablation bench sweeps
  /// this to quantify the countermeasure.
  double redaction_fraction = 0.0;
  /// Fraction of zones whose answers fall outside the routing table.
  double unroutable_fraction = 0.02;
  /// Fraction of real records implemented as CNAME chains.
  double cname_fraction = 0.05;
  /// Fraction of those chains that are deliberately over the 10-hop budget.
  double long_chain_fraction = 0.03;
  std::uint64_t seed = 7;
};

/// Table 2's top-20 labels plus the per-suffix signature labels of §4.2.
struct LabelSpec {
  const char* label;
  double paper_count;  ///< occurrences in the paper's CT corpus
};
const std::vector<LabelSpec>& table2_labels();

class DomainCorpus {
 public:
  explicit DomainCorpus(const DomainCorpusOptions& options = DomainCorpusOptions());

  /// FQDNs extracted from CT-logged certificates (unsorted, deduplicated;
  /// contains some RFC 1035-invalid strings on purpose).
  [[nodiscard]] const std::vector<std::string>& ct_names() const { return ct_names_; }
  /// The registrable-domain list (the "[1] domain list" of the paper).
  [[nodiscard]] const std::vector<std::string>& registrable_domains() const {
    return registrable_;
  }
  /// The Sonar-like forward-DNS FQDN list.
  [[nodiscard]] const std::vector<std::string>& sonar_names() const { return sonar_; }

  /// Ground truth: does this FQDN really exist in the DNS?
  [[nodiscard]] bool truly_exists(const std::string& fqdn) const {
    return truth_.contains(fqdn);
  }
  [[nodiscard]] std::size_t truth_size() const { return truth_.size(); }

  /// The authoritative DNS serving the whole corpus universe.
  [[nodiscard]] dns::AuthoritativeServer& authoritative() { return *authoritative_; }
  [[nodiscard]] const dns::DnsUniverse& universe() const { return universe_; }
  /// The border router's view for the §4.3 routability filter.
  [[nodiscard]] const net::RoutingTable& routing_table() const { return routing_; }

  [[nodiscard]] const dns::PublicSuffixList& psl() const { return psl_; }
  [[nodiscard]] const DomainCorpusOptions& options() const { return options_; }

 private:
  DomainCorpusOptions options_;
  dns::PublicSuffixList psl_;
  std::vector<std::string> ct_names_;
  std::vector<std::string> registrable_;
  std::vector<std::string> sonar_;
  std::set<std::string> truth_;
  std::unique_ptr<dns::AuthoritativeServer> authoritative_;
  dns::DnsUniverse universe_;
  net::RoutingTable routing_;
};

}  // namespace ctwatch::sim
