// Deterministic random number generation for reproducible simulations.
//
// All stochastic behaviour in the library flows through Rng so that every
// experiment is exactly reproducible from a seed. The generator is
// xoshiro256** seeded via splitmix64 (the recommended seeding procedure).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ctwatch {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent child generator; use to give each simulation
  /// actor its own stream so adding actors does not perturb others.
  [[nodiscard]] Rng fork() { return Rng{(*this)()}; }

  /// Uniform integer in [0, bound). Throws on bound == 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below(0)");
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal (sum of uniforms), mean 0, stddev 1.
  double normal();

  /// Pareto-ish heavy-tailed positive value with scale `xm` and shape `alpha`.
  double pareto(double xm, double alpha);

  /// Picks a uniformly random element; container must be non-empty.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick on empty span");
    return items[below(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>{items});
  }

  /// Samples an index from unnormalized non-negative weights.
  std::size_t weighted(std::span<const double> weights);

  /// Random lowercase a-z0-9 string of the given length (e.g. honeypot labels).
  std::string alnum_label(std::size_t length);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Zipf–Mandelbrot sampler over ranks 0..n-1: weight(i) ∝ 1/(i+1+q)^s.
///
/// Used to model site popularity: the passive-monitor view of the TLS
/// ecosystem is popularity-weighted while active scans are uniform, which is
/// what makes Table 1 and §3.3 of the paper disagree. The shift q flattens
/// the extreme head (no single site carries a third of campus traffic)
/// while keeping the long tail negligible.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n, double s, double q = 0.0);

  /// Returns a rank in [0, n): rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of the given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace ctwatch
