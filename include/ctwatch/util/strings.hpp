// Small string helpers used across the library (no locale dependence:
// DNS names and labels are ASCII by construction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ctwatch {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if `text` contains `needle` (case-sensitive).
bool contains(std::string_view text, std::string_view needle);

/// Formats a count the way the paper does: 61.1M, 303k, 8.6G, 994.85M…
/// `decimals` controls fractional digits (default 1).
std::string human_count(double value, int decimals = 1);

/// Formats a ratio as a percentage with two decimals, e.g. "32.61%".
std::string percent(double numerator, double denominator, int decimals = 2);

/// Left/right padding for plain-text table rendering.
std::string pad_left(std::string s, std::size_t width);
std::string pad_right(std::string s, std::size_t width);

}  // namespace ctwatch
