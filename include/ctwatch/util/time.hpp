// Simulated time for the CT ecosystem.
//
// Every component of the library runs on simulated time: issuance timelines
// span 2013..2018 (the period the paper measures) and must be reproducible,
// so nothing ever reads the wall clock. Time is kept as seconds since the
// Unix epoch (UTC) in a strong type, with proleptic-Gregorian civil-date
// conversion implemented here (no dependence on the C library's timezone
// handling).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace ctwatch {

/// A civil (calendar) date-time in UTC.
struct CivilTime {
  int year = 1970;   ///< e.g. 2018
  int month = 1;     ///< 1..12
  int day = 1;       ///< 1..31
  int hour = 0;      ///< 0..23
  int minute = 0;    ///< 0..59
  int second = 0;    ///< 0..59

  friend auto operator<=>(const CivilTime&, const CivilTime&) = default;
};

/// A point in simulated time: seconds since 1970-01-01T00:00:00Z.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t unix_seconds) : secs_(unix_seconds) {}

  /// Constructs from a civil UTC date-time.
  static SimTime from_civil(const CivilTime& c);
  /// Convenience: from "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
  /// Throws std::invalid_argument on malformed input.
  static SimTime parse(const std::string& text);

  [[nodiscard]] constexpr std::int64_t unix_seconds() const { return secs_; }
  [[nodiscard]] CivilTime civil() const;

  /// Days since the Unix epoch (floor); useful as a daily-aggregation key.
  [[nodiscard]] constexpr std::int64_t day_index() const {
    // Floor division that is correct for pre-epoch times too.
    const std::int64_t d = secs_ / 86400;
    return (secs_ % 86400 < 0) ? d - 1 : d;
  }

  /// Start of the UTC day containing this time.
  [[nodiscard]] constexpr SimTime start_of_day() const {
    return SimTime{day_index() * 86400};
  }

  /// "YYYY-MM-DD"
  [[nodiscard]] std::string date_string() const;
  /// "YYYY-MM-DD HH:MM:SS"
  [[nodiscard]] std::string datetime_string() const;
  /// "MM-DD HH:MM:SS" — the compact format Table 4 of the paper uses.
  [[nodiscard]] std::string short_string() const;

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
  friend constexpr SimTime operator+(SimTime t, std::int64_t s) {
    return SimTime{t.secs_ + s};
  }
  friend constexpr SimTime operator-(SimTime t, std::int64_t s) {
    return SimTime{t.secs_ - s};
  }
  /// Difference in seconds.
  friend constexpr std::int64_t operator-(SimTime a, SimTime b) {
    return a.secs_ - b.secs_;
  }
  constexpr SimTime& operator+=(std::int64_t s) {
    secs_ += s;
    return *this;
  }

 private:
  std::int64_t secs_ = 0;
};

/// Days since the epoch for a civil date (proleptic Gregorian).
/// Valid for all dates this library cares about.
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Number of days in the given month of the given year.
int days_in_month(int year, int month);

/// Renders a duration in seconds the way Table 4 does: "73s", "12m", "2h", "19d".
std::string format_delta(std::int64_t seconds);

/// A monotonically advancing simulation clock shared by simulation actors.
///
/// The clock only moves forward; components that need the current simulated
/// time hold a reference to the clock rather than caching values.
class SimClock {
 public:
  explicit SimClock(SimTime start = SimTime{0}) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Advances the clock. Throws std::logic_error on attempts to move backwards.
  void advance_to(SimTime t);
  void advance_by(std::int64_t seconds) { advance_to(now_ + seconds); }

 private:
  SimTime now_;
};

}  // namespace ctwatch
