// Byte-string encodings: hex and base64 (RFC 4648), as used for key ids,
// SCT serialization in reports, and test fixtures.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ctwatch {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex of the input.
std::string hex_encode(BytesView data);

/// Decodes hex (upper or lower case). Throws std::invalid_argument on
/// odd length or non-hex characters.
Bytes hex_decode(const std::string& hex);

/// Non-throwing hex decode: nullopt on odd length or non-hex characters.
std::optional<Bytes> try_hex_decode(std::string_view hex);

/// Standard base64 with padding.
std::string base64_encode(BytesView data);

/// Decodes base64 (padding required). Throws std::invalid_argument on
/// malformed input; same strictness as try_base64_decode.
Bytes base64_decode(const std::string& b64);

/// Strict RFC 4648 §4 decode, nullopt instead of throwing — the right
/// form on untrusted-input paths (HTTP handlers, report ingestion).
/// Rejects: length not a multiple of 4, whitespace or any character
/// outside the standard alphabet, misplaced or missing padding, data
/// after padding, and non-canonical encodings (nonzero bits discarded
/// from the final quantum, e.g. "QR==" for "QQ==").
std::optional<Bytes> try_base64_decode(std::string_view b64);

/// Converts a string's bytes to a byte vector (no encoding change).
Bytes to_bytes(const std::string& s);

/// Converts bytes to a std::string (no encoding change).
std::string to_string(BytesView data);

}  // namespace ctwatch
