// TLS connection records: the unit of observation for the passive monitor.
//
// The paper's Bro deployment reduces each TLS connection to exactly what
// this struct carries: when it happened, the server name, whether the
// client signaled SCT support, the served leaf certificate, and any SCTs
// delivered via the TLS extension or a stapled OCSP response (SCTs
// embedded in the certificate travel inside it). The issuer public key is
// included the way a chain would deliver it — SCT validation over precert
// entries needs the issuer key hash.
//
// Certificates and SCT lists are shared immutable state (one server serves
// the same certificate to millions of connections), so records hold
// shared_ptrs; the monitor exploits pointer identity to cache validation
// work per certificate, as real passive analyzers do.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctwatch/ct/sct.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::tls {

/// How an SCT reached the client.
enum class SctDelivery : std::uint8_t { certificate, tls_extension, ocsp_staple };

std::string to_string(SctDelivery delivery);

using SctList = std::vector<ct::SignedCertificateTimestamp>;

struct ConnectionRecord {
  SimTime time;
  std::string server_name;  ///< SNI
  std::uint16_t port = 443;
  bool client_signals_sct = true;  ///< client offered the SCT TLS extension

  std::shared_ptr<const x509::Certificate> certificate;  ///< served leaf (required)
  std::shared_ptr<const Bytes> issuer_public_key;        ///< from the presented chain

  std::shared_ptr<const SctList> tls_extension_scts;  ///< may be null
  std::shared_ptr<const SctList> ocsp_scts;           ///< may be null
};

/// SCTs embedded in the served certificate (empty when none/malformed —
/// malformed lists are counted by the monitor, not thrown here).
SctList embedded_scts(const x509::Certificate& certificate);

}  // namespace ctwatch::tls
