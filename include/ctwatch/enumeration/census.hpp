// Subdomain census over CT-extracted DNS names (§4.1/§4.2).
//
// Takes raw names from certificate CN/SAN fields, filters them down to
// valid FQDNs (RFC 1035 rules, as the paper does with a validators
// library), splits them at the public suffix, and counts subdomain labels
// globally and per suffix — Table 2 and the per-suffix signature analysis.
//
// Storage is interned: every name lands in a namepool::NamePool and all
// counting is keyed on LabelId / NameRef (integer hashing, one copy of
// every label). The string-keyed std::map accessors remain for reporting
// and tests; they are materialized lazily from the pooled state and always
// agree with it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ctwatch/dns/psl.hpp"
#include "ctwatch/namepool/namepool.hpp"

namespace ctwatch::enumeration {

struct ExtractionStats {
  std::uint64_t names_in = 0;
  std::uint64_t valid_fqdns = 0;
  std::uint64_t invalid_rejected = 0;
  std::uint64_t duplicates = 0;
  /// Names hidden by CT label redaction ("?.example.com"); they carry no
  /// label information and are excluded from the census.
  std::uint64_t redacted = 0;
};

class SubdomainCensus {
 public:
  using RefSet = std::unordered_set<namepool::NameRef, namepool::NameRefHash>;
  using RefCountMap = std::unordered_map<namepool::NameRef, std::uint64_t, namepool::NameRefHash>;

  explicit SubdomainCensus(const dns::PublicSuffixList& psl) : psl_(&psl) {}

  /// Ingests names (deduplicated across calls; each FQDN counted once, as
  /// in the paper). Runs sharded-parallel over the global par pool when
  /// one exists: names are parsed in chunks, bucketed by NameRef hash,
  /// deduplicated and counted shard-locally, then merged in shard order —
  /// every stat and every materialized view is identical at any thread
  /// count, including the serial (1-thread) inline path.
  void add_names(std::span<const std::string> names);

  [[nodiscard]] const ExtractionStats& stats() const { return stats_; }

  /// The pool every census name, label and suffix is interned into. The
  /// pool is internally synchronized, so handing out a mutable reference
  /// from a const census is sound; the enumerator interns its candidate
  /// compositions into the same pool.
  [[nodiscard]] namepool::NamePool& pool() const { return *pool_; }

  // -- Pooled views (primary storage; O(1) hashing, no string keys) --

  /// Global leading-label -> occurrence count.
  [[nodiscard]] const std::unordered_map<namepool::LabelId, std::uint64_t>&
  label_counts_by_id() const {
    return label_counts_ref_;
  }
  /// label -> (public suffix -> count).
  [[nodiscard]] const std::unordered_map<namepool::LabelId, RefCountMap>&
  label_suffix_counts_by_id() const {
    return label_suffix_ref_;
  }
  /// Registrable domains seen, grouped by suffix.
  [[nodiscard]] const std::unordered_map<namepool::NameRef, RefSet, namepool::NameRefHash>&
  domains_by_suffix_refs() const {
    return domains_by_suffix_ref_;
  }

  /// O(1) count lookup for a label by text (0 when never seen leading).
  [[nodiscard]] std::uint64_t label_count(std::string_view label) const;

  // -- String views (materialized lazily from the pooled state) --

  /// Global label -> occurrence count (one count per FQDN the label leads).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& label_counts() const;
  /// label -> (suffix -> count).
  [[nodiscard]] const std::map<std::string, std::map<std::string, std::uint64_t>>&
  label_suffix_counts() const;
  /// Registrable domains seen, grouped by suffix.
  [[nodiscard]] const std::map<std::string, std::set<std::string>>& domains_by_suffix() const;

  /// The top-n labels by count (Table 2).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top_labels(
      std::size_t n) const;
  /// The most common subdomain label per public suffix (§4.2).
  [[nodiscard]] std::map<std::string, std::string> top_label_per_suffix() const;

  [[nodiscard]] std::uint64_t total_label_occurrences() const { return total_occurrences_; }

 private:
  void materialize_caches() const;

  const dns::PublicSuffixList* psl_;
  ExtractionStats stats_;
  // NamePool is internally synchronized; mutable lets const pipeline stages
  // (enumerator::run) intern into the shared pool. unique_ptr because the
  // pool's arenas are address-pinned while the census moves by value.
  mutable std::unique_ptr<namepool::NamePool> pool_ = std::make_unique<namepool::NamePool>();
  // Census-level dedup, sharded by NameRef hash so the parallel ingestion
  // shards own disjoint key sets without locking. (The pool dedups too,
  // but it is shared with the enumerator, so "fresh in pool" is not "new
  // to the census".) The shard count is a constant of the data layout,
  // never of the thread count — totals are invariant under it.
  static constexpr std::size_t kShards = 64;
  std::array<RefSet, kShards> seen_shards_;
  std::unordered_map<namepool::LabelId, std::uint64_t> label_counts_ref_;
  std::unordered_map<namepool::LabelId, RefCountMap> label_suffix_ref_;
  std::unordered_map<namepool::NameRef, RefSet, namepool::NameRefHash> domains_by_suffix_ref_;
  std::uint64_t total_occurrences_ = 0;

  // Lazily-materialized string views of the pooled state.
  mutable bool caches_valid_ = false;
  mutable std::map<std::string, std::uint64_t> label_counts_;
  mutable std::map<std::string, std::map<std::string, std::uint64_t>> label_suffix_;
  mutable std::map<std::string, std::set<std::string>> domains_by_suffix_;
};

/// §4.3's wordlist sanity check: how many entries of a brute-force wordlist
/// actually occur as subdomain labels in CT.
struct WordlistComparison {
  std::size_t wordlist_size = 0;
  std::size_t present_in_ct = 0;
};
WordlistComparison compare_wordlist(std::span<const std::string> wordlist,
                                    const SubdomainCensus& census);

/// Representative slices of the subbrute (101k entries) and dnsrecon (1.9k
/// entries) wordlists: mostly exotic guesses, a handful of real-world hits
/// (the paper finds just 16 and 12 matches respectively).
std::vector<std::string> subbrute_like_wordlist(std::size_t size = 2000);
std::vector<std::string> dnsrecon_like_wordlist(std::size_t size = 400);

}  // namespace ctwatch::enumeration
