// Subdomain census over CT-extracted DNS names (§4.1/§4.2).
//
// Takes raw names from certificate CN/SAN fields, filters them down to
// valid FQDNs (RFC 1035 rules, as the paper does with a validators
// library), splits them at the public suffix, and counts subdomain labels
// globally and per suffix — Table 2 and the per-suffix signature analysis.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "ctwatch/dns/psl.hpp"

namespace ctwatch::enumeration {

struct ExtractionStats {
  std::uint64_t names_in = 0;
  std::uint64_t valid_fqdns = 0;
  std::uint64_t invalid_rejected = 0;
  std::uint64_t duplicates = 0;
  /// Names hidden by CT label redaction ("?.example.com"); they carry no
  /// label information and are excluded from the census.
  std::uint64_t redacted = 0;
};

class SubdomainCensus {
 public:
  explicit SubdomainCensus(const dns::PublicSuffixList& psl) : psl_(&psl) {}

  /// Ingests names (deduplicated across calls; each FQDN counted once, as
  /// in the paper).
  void add_names(std::span<const std::string> names);

  [[nodiscard]] const ExtractionStats& stats() const { return stats_; }

  /// Global label -> occurrence count (one count per FQDN the label leads).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& label_counts() const {
    return label_counts_;
  }
  /// label -> (suffix -> count).
  [[nodiscard]] const std::map<std::string, std::map<std::string, std::uint64_t>>&
  label_suffix_counts() const {
    return label_suffix_;
  }
  /// Registrable domains seen, grouped by suffix.
  [[nodiscard]] const std::map<std::string, std::set<std::string>>& domains_by_suffix() const {
    return domains_by_suffix_;
  }

  /// The top-n labels by count (Table 2).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top_labels(
      std::size_t n) const;
  /// The most common subdomain label per public suffix (§4.2).
  [[nodiscard]] std::map<std::string, std::string> top_label_per_suffix() const;

  [[nodiscard]] std::uint64_t total_label_occurrences() const { return total_occurrences_; }

 private:
  const dns::PublicSuffixList* psl_;
  ExtractionStats stats_;
  std::set<std::string> seen_;
  std::map<std::string, std::uint64_t> label_counts_;
  std::map<std::string, std::map<std::string, std::uint64_t>> label_suffix_;
  std::map<std::string, std::set<std::string>> domains_by_suffix_;
  std::uint64_t total_occurrences_ = 0;
};

/// §4.3's wordlist sanity check: how many entries of a brute-force wordlist
/// actually occur as subdomain labels in CT.
struct WordlistComparison {
  std::size_t wordlist_size = 0;
  std::size_t present_in_ct = 0;
};
WordlistComparison compare_wordlist(std::span<const std::string> wordlist,
                                    const SubdomainCensus& census);

/// Representative slices of the subbrute (101k entries) and dnsrecon (1.9k
/// entries) wordlists: mostly exotic guesses, a handful of real-world hits
/// (the paper finds just 16 and 12 matches respectively).
std::vector<std::string> subbrute_like_wordlist(std::size_t size = 2000);
std::vector<std::string> dnsrecon_like_wordlist(std::size_t size = 400);

}  // namespace ctwatch::enumeration
