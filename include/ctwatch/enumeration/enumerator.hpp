// Subdomain enumeration from CT data with DNS verification (§4.3).
//
// The paper's methodology, implemented step for step:
//  1. keep subdomain labels that occur >= `min_label_count` times in CT,
//  2. per label, take the 10 public suffixes it occurs in most, skipping
//     com/net/org ("too generic"),
//  3. prepend the label to the registrable domains of those suffixes,
//  4. for every constructed FQDN also build a control FQDN whose label is
//     a 16-character pseudo-random string — zones that answer the control
//     answer anything (default A) and are rejected,
//  5. resolve both (following CNAME indirection up to 10 hops), and
//  6. discard answers whose address is not in the border router's routing
//     table (misconfigured servers); what remains and resolves while its
//     control does not is a confirmed discovery. Finally diff against the
//     Sonar-like list to count *novel* FQDNs.
//
// Candidate construction runs on the census name pool: the label × suffix
// cross product is composed as integer work (LabelId prepended to an
// interned registrable domain), with strings only built when a probe or a
// report needs one.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/net/autonomous_system.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::enumeration {

struct EnumerationOptions {
  /// Minimum CT occurrences for a label to be used. The paper uses 100k on
  /// the full corpus; scale alongside the corpus.
  std::uint64_t min_label_count = 100;
  std::size_t top_suffixes_per_label = 10;
  std::set<std::string> excluded_suffixes = {"com", "net", "org"};
  int max_cname_hops = 10;
  std::size_t control_label_length = 16;
  /// Cap on retained discovered FQDN strings (counting is exact either way).
  std::size_t keep_discoveries = 50000;
  /// Ablation switch: disable the pseudo-random control probes to
  /// demonstrate how default-A zones inflate the result.
  bool use_controls = true;
  /// Ablation switch: disable the routing-table filter.
  bool use_routing_filter = true;
  /// Lossy-DNS hardening: re-ask a query that timed out or SERVFAILed up
  /// to this many extra times before declaring it lost.
  int dns_max_retries = 2;
  /// First retry delay in simulated seconds; doubles per retry. Advancing
  /// virtual time matters: it lets chaos outage windows pass.
  std::int64_t retry_backoff_s = 1;
};

/// The §4.3 funnel, top to bottom. Under a lossy resolver the funnel
/// accounts for every candidate explicitly — residual loss is counted,
/// never silently folded into "did not resolve". Two invariants hold:
///
///   candidates   == test_replies + test_unanswered + lost_test_queries
///   test_replies == unroutable_dropped + lost_control_queries
///                   + control_rejected + confirmed
struct FunnelResult {
  std::size_t labels_selected = 0;
  std::size_t label_suffix_pairs = 0;
  std::uint64_t candidates = 0;       ///< constructed FQDNs (paper: 210.7M)
  std::uint64_t unique_candidates = 0;///< distinct refs the composition interned
  std::uint64_t test_replies = 0;     ///< answers to constructed names (80.3M)
  std::uint64_t test_unanswered = 0;  ///< definitive negatives (nxdomain/no_data/...)
  std::uint64_t control_replies = 0;  ///< answers to pseudo-random controls (61.5M)
  std::uint64_t unroutable_dropped = 0;
  std::uint64_t chain_too_long = 0;
  std::uint64_t control_rejected = 0; ///< test answered, but so did the control
  std::uint64_t confirmed = 0;        ///< new FQDNs (18.8M)
  std::uint64_t known_in_sonar = 0;   ///< of confirmed, already on Sonar (1.1M)
  std::uint64_t novel = 0;            ///< confirmed - known (17.7M)

  // Residual loss under chaos, after retries. A lost control probe is a
  // *conservative reject*: we cannot prove the zone is not a default-A
  // responder, so the candidate is not confirmed — but it is counted
  // here, not silently dropped.
  std::uint64_t lost_test_queries = 0;
  std::uint64_t lost_control_queries = 0;
  std::uint64_t dns_timeouts = 0;   ///< per-attempt timeouts observed
  std::uint64_t dns_servfails = 0;  ///< per-attempt SERVFAILs observed
  std::uint64_t dns_retries = 0;    ///< extra attempts made after a loss

  std::vector<std::string> discoveries;  ///< capped sample

  /// The conservation invariants above; tests assert this under chaos.
  [[nodiscard]] bool conserves() const {
    return candidates == test_replies + test_unanswered + lost_test_queries &&
           test_replies ==
               unroutable_dropped + lost_control_queries + control_rejected + confirmed;
  }
};

class SubdomainEnumerator {
 public:
  /// One (label, suffix) step of the construction plan, fully interned.
  struct PlanEntry {
    namepool::LabelId label;
    namepool::NameRef suffix;
  };

  /// Candidate composition output for a domain list (step 3 on its own) —
  /// what bench/name_interning measures. Every candidate lives in the
  /// census pool; `refs` holds one 8-byte ref per constructed FQDN.
  struct CandidateSet {
    std::vector<namepool::NameRef> refs;
    std::uint64_t composed = 0;   ///< total compositions (== refs.size())
    std::uint64_t unique = 0;     ///< compositions that were new to the pool
    std::uint64_t too_long = 0;   ///< skipped: textual form would exceed 253 chars
  };

  SubdomainEnumerator(const SubdomainCensus& census, const dns::PublicSuffixList& psl,
                      EnumerationOptions options = EnumerationOptions())
      : census_(&census), psl_(&psl), options_(std::move(options)) {}

  /// Runs the funnel. `domain_list` is the zone-file-derived registrable
  /// domain list; `sonar` the known-FQDN baseline; `resolver` performs the
  /// verification lookups; `routing` is the border router's table.
  FunnelResult run(const std::vector<std::string>& domain_list,
                   const std::set<std::string>& sonar, const dns::RecursiveResolver& resolver,
                   const net::RoutingTable& routing, Rng& rng, SimTime when) const;

  /// Step 1+2 only: the (label, suffix) construction plan, interned.
  [[nodiscard]] std::vector<PlanEntry> build_plan_refs() const;

  /// Step 1+2 as text (materialized from build_plan_refs; same order).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> build_plan() const;

  /// Step 3 only: compose every candidate FQDN as a pooled ref (no DNS).
  [[nodiscard]] CandidateSet generate_candidates(
      const std::vector<std::string>& domain_list) const;

 private:
  const SubdomainCensus* census_;
  const dns::PublicSuffixList* psl_;
  EnumerationOptions options_;
};

}  // namespace ctwatch::enumeration
