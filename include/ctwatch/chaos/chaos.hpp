// ctwatch::chaos — umbrella header.
//
// Deterministic fault injection for the subsystems that must survive a
// misbehaving ecosystem: named fault points with per-point plans (error
// probability, latency distributions, timed outage windows), reproducible
// from a seed. See fault.hpp for the determinism contract and DESIGN.md
// for the seam map (which modules consult which points).
#pragma once

#include "ctwatch/chaos/fault.hpp"
