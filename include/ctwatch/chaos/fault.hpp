// ctwatch::chaos — deterministic, seeded fault injection.
//
// The ecosystem the paper measures is defined by partial failure: logs go
// down or get disqualified, CAs issue bad SCTs past capacity (the Nimbus
// incident), and the §4.3 mass-resolution funnel runs over a DNS that
// times out and lies. This module turns those failure modes into named,
// reproducible seams. A `FaultPoint` is a string naming a place in the
// code that can misbehave ("logsvc.submit", "dns.auth", ...); a
// `FaultPlan` says *how* it misbehaves (error probability, latency
// distribution, timed outage windows); the `FaultInjector` evaluates a
// point and returns a `FaultDecision`.
//
// Determinism contract: the i-th evaluation of a point is a pure function
// of (injector seed, point name, i) — plus the caller-supplied virtual
// time for outage windows. Evaluations at different points draw from
// independent streams, so adding a fault point never perturbs another
// point's sequence. Two injectors built from the same seed and plans
// produce identical decision sequences; `reset_ordinals()` rewinds an
// injector to replay its sequence exactly.
//
// Thread-safety: `evaluate` may be called from any thread. Each point's
// ordinal counter is atomic, so concurrent callers each get a distinct
// draw from the point's deterministic stream (the *set* of decisions is
// reproducible; which thread observes which draw is scheduling-dependent,
// which is why the fully-deterministic harnesses are single-threaded).
//
// Parallel determinism (`StreamScope`): a chunked-parallel caller (the
// ctwatch::par funnel) cannot rely on the global per-point ordinal — the
// interleaving of chunks would decide which chunk sees which draw. While
// a thread holds a StreamScope, evaluations on that thread instead use a
// scope-local ordinal per point and mix the scope's stream id into the
// draw: the i-th evaluation of a point inside stream s is a pure function
// of (seed, point, s, i), independent of how chunks interleave. A caller
// that opens one scope per chunk (stream id = chunk index) gets fault
// sequences that are identical at every thread count, including the
// serial inline path. Without an active scope nothing changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ctwatch::obs {
class Counter;
}

namespace ctwatch::chaos {

/// How a fault surfaces at the seam. `timeout` models a lost/overdue
/// message (the caller waits out its deadline and learns nothing);
/// `error` models an explicit failure answer (SERVFAIL, 5xx, a refused
/// submission) that arrives quickly.
enum class FaultKind : std::uint8_t { none, error, timeout };

/// A half-open window [start_us, end_us) of virtual time during which the
/// point faults unconditionally — a log outage, a DNS server falling over.
struct OutageWindow {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;

  [[nodiscard]] bool contains(std::uint64_t now_us) const {
    return now_us >= start_us && now_us < end_us;
  }
};

/// Per-point misbehaviour description. The default plan is a healthy
/// point: no errors, no latency.
struct FaultPlan {
  /// Probability in [0,1] that an evaluation faults (outside outages).
  double error_probability = 0.0;
  /// Of the injected faults, the fraction surfaced as `timeout` rather
  /// than `error`.
  double timeout_fraction = 0.0;
  /// Latency composition: base + uniform jitter in [0, jitter] + an
  /// exponential tail with the given mean. All evaluations (faulted or
  /// not) carry this latency, which is how slow-but-correct dependencies
  /// are modelled.
  std::uint64_t latency_base_us = 0;
  std::uint64_t latency_jitter_us = 0;
  double latency_exp_mean_us = 0.0;
  /// Timed outages in virtual time; inside a window every evaluation
  /// faults with `outage_kind`.
  std::vector<OutageWindow> outages;
  FaultKind outage_kind = FaultKind::timeout;
};

struct FaultDecision {
  FaultKind kind = FaultKind::none;
  /// Simulated service latency for this evaluation (virtual µs).
  std::uint64_t latency_us = 0;

  [[nodiscard]] bool faulted() const { return kind != FaultKind::none; }
};

/// RAII deterministic-stream scope for chunked-parallel callers (see the
/// header comment). Scopes nest per thread (the innermost wins) and apply
/// to every FaultInjector evaluated on the owning thread while active.
/// The global per-point ordinals (and `evaluations()` accounting) still
/// advance; only the *draw* is re-keyed to (stream id, local ordinal).
class StreamScope {
 public:
  explicit StreamScope(std::uint64_t stream_id);
  ~StreamScope();
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

  [[nodiscard]] std::uint64_t stream_id() const { return stream_id_; }

  /// The scope active on the calling thread, or nullptr.
  static StreamScope* current();

 private:
  friend class FaultInjector;

  /// Next scope-local ordinal for a point (keyed by its name hash).
  std::uint64_t next_ordinal(std::uint64_t point_hash) { return ordinals_[point_hash]++; }

  std::uint64_t stream_id_;
  StreamScope* prev_;
  std::unordered_map<std::uint64_t, std::uint64_t> ordinals_;
};

/// Evaluates named fault points against their plans, deterministically
/// from a seed. Points without a registered plan evaluate as healthy (and
/// still consume an ordinal, so registering a plan later does not shift
/// other points' streams).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xc4a0c4a0c4a0c4a0ULL) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Registers (or replaces) the plan for a point. Replacing a plan keeps
  /// the point's ordinal, so the random stream continues where it was.
  void plan(const std::string& point, FaultPlan plan);

  /// Draws the next decision for the point. `now_us` is the caller's
  /// virtual time, checked against the plan's outage windows.
  FaultDecision evaluate(const std::string& point, std::uint64_t now_us = 0);

  /// Total evaluations / injected faults at a point so far.
  [[nodiscard]] std::uint64_t evaluations(const std::string& point) const;
  [[nodiscard]] std::uint64_t faults(const std::string& point) const;

  /// Rewinds every point's ordinal to zero (plans stay). The next
  /// evaluation sequence replays the previous one exactly.
  void reset_ordinals();

 private:
  struct Point {
    std::shared_ptr<const FaultPlan> plan;  ///< swapped whole under mu_
    std::uint64_t name_hash = 0;
    std::atomic<std::uint64_t> ordinal{0};
    std::atomic<std::uint64_t> faults{0};
  };

  /// Looks up or creates the point; must be called with mu_ held.
  Point& point_for_locked(const std::string& name);

  const std::uint64_t seed_;
  mutable std::mutex mu_;  // guards the map, not the per-point atomics
  std::map<std::string, std::unique_ptr<Point>> points_;
};

}  // namespace ctwatch::chaos
