// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the hash underpinning everything RFC 6962 does: Merkle tree leaf
// and node hashes, log key ids, and the ECDSA message digests on SCTs and
// STHs.
#pragma once

#include <array>
#include <cstdint>

#include "ctwatch/util/encoding.hpp"

namespace ctwatch::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(BytesView data);
  Sha256& update(std::uint8_t byte) { return update(BytesView{&byte, 1}); }

  /// Finalizes and returns the digest. The object must be reset() before reuse.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t length_ = 0;  // total bytes consumed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(BytesView key, BytesView message);

/// HKDF-SHA256 expand-only step (RFC 5869); enough for deriving simulation
/// key material from labels.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Digest as a Bytes vector (handy for APIs taking BytesView).
Bytes digest_bytes(const Digest& d);

}  // namespace ctwatch::crypto
