// NIST P-256 (secp256r1) elliptic curve and ECDSA, from scratch.
//
// CT logs sign SCTs and STHs with ECDSA P-256/SHA-256 in practice; this
// module provides the real thing so that signature validation failures in
// the §3.4 invalid-SCT study are genuine cryptographic failures, not flag
// checks. Field arithmetic uses the NIST fast (Solinas) reduction; point
// arithmetic uses Jacobian coordinates.
//
// Scope note: this implementation is for simulation and research use. It is
// deliberately *not* constant-time.
#pragma once

#include <optional>

#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/crypto/u256.hpp"

namespace ctwatch::crypto {

/// Curve constants for P-256.
namespace p256 {
/// Field prime p = 2^256 - 2^224 + 2^192 + 2^96 - 1.
const U256& prime();
/// Group order n.
const U256& order();
/// Curve coefficient b (a = -3 mod p).
const U256& coeff_b();

/// (a * b) mod p using the NIST fast reduction.
U256 field_mul(const U256& a, const U256& b);
/// a^2 mod p.
U256 field_sqr(const U256& a);
}  // namespace p256

/// An affine point on P-256, or the point at infinity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint make(const U256& x, const U256& y) { return {x, y, false}; }

  /// True if the point satisfies the curve equation (or is infinity).
  [[nodiscard]] bool on_curve() const;

  /// SEC1 uncompressed encoding (0x04 || X || Y), 65 bytes. Infinity encodes
  /// as a single zero byte.
  [[nodiscard]] Bytes encode() const;
  /// Decodes a SEC1 uncompressed point. Throws std::invalid_argument if the
  /// encoding is malformed or the point is not on the curve.
  static AffinePoint decode(BytesView data);

  friend bool operator==(const AffinePoint& a, const AffinePoint& b) {
    if (a.infinity || b.infinity) return a.infinity == b.infinity;
    return a.x == b.x && a.y == b.y;
  }
};

/// The generator point G.
const AffinePoint& p256_generator();

/// Scalar multiplication k * P (Jacobian double-and-add).
AffinePoint p256_multiply(const U256& k, const AffinePoint& point);
/// u1 * G + u2 * Q, the ECDSA verification combination.
AffinePoint p256_double_multiply(const U256& u1, const U256& u2, const AffinePoint& q);
/// Point addition (affine API over Jacobian internals).
AffinePoint p256_add(const AffinePoint& a, const AffinePoint& b);

/// A raw ECDSA signature: the pair (r, s).
struct EcdsaSignature {
  U256 r;
  U256 s;

  /// Fixed-width 64-byte encoding (r || s, big-endian).
  [[nodiscard]] Bytes to_bytes() const;
  static EcdsaSignature from_bytes(BytesView data);

  friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) = default;
};

/// An ECDSA P-256 private key with its public point.
class EcdsaKeyPair {
 public:
  /// Derives a reproducible key pair from a seed label (HKDF over the label).
  /// Every simulated log/CA key is derived this way, making runs replayable.
  static EcdsaKeyPair derive(const std::string& seed_label);

  /// Constructs from a raw private scalar in [1, n-1].
  static EcdsaKeyPair from_private(const U256& d);

  [[nodiscard]] const U256& private_scalar() const { return d_; }
  [[nodiscard]] const AffinePoint& public_point() const { return q_; }

  /// Signs a SHA-256 digest with a deterministic (RFC 6979 style) nonce.
  [[nodiscard]] EcdsaSignature sign_digest(const Digest& digest) const;
  /// Convenience: hash then sign.
  [[nodiscard]] EcdsaSignature sign(BytesView message) const;

 private:
  EcdsaKeyPair(U256 d, AffinePoint q) : d_(d), q_(q) {}
  U256 d_;
  AffinePoint q_;
};

/// Verifies an ECDSA P-256 signature over a SHA-256 digest.
bool ecdsa_verify_digest(const AffinePoint& public_key, const Digest& digest,
                         const EcdsaSignature& sig);
/// Convenience: hash then verify.
bool ecdsa_verify(const AffinePoint& public_key, BytesView message, const EcdsaSignature& sig);

}  // namespace ctwatch::crypto
