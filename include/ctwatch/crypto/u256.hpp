// Fixed-width 256-bit unsigned arithmetic, the foundation of the P-256
// implementation. Little-endian 64-bit limbs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "ctwatch/util/encoding.hpp"

namespace ctwatch::crypto {

struct U512;

/// 256-bit unsigned integer. Value semantics, constexpr-friendly storage.
struct U256 {
  // limb[0] is least significant.
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  /// Parses a big-endian hex string (up to 64 hex digits, no 0x prefix).
  static U256 from_hex(const std::string& hex);
  /// Big-endian 32-byte decoding; input must be exactly 32 bytes.
  static U256 from_bytes(BytesView be32);
  /// Interprets an arbitrary-length big-endian buffer, reducing to the low
  /// 256 bits (used for hashing digests into scalars).
  static U256 from_bytes_truncated(BytesView be);

  [[nodiscard]] Bytes to_bytes() const;  ///< big-endian, 32 bytes
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] constexpr bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  [[nodiscard]] constexpr bool is_odd() const { return limb[0] & 1; }
  [[nodiscard]] constexpr bool bit(int i) const {
    return (limb[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  /// Index of the highest set bit, or -1 for zero.
  [[nodiscard]] int bit_length() const;

  friend constexpr std::strong_ordering operator<=>(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
      const auto ai = a.limb[static_cast<std::size_t>(i)];
      const auto bi = b.limb[static_cast<std::size_t>(i)];
      if (ai != bi) return ai <=> bi;
    }
    return std::strong_ordering::equal;
  }
  friend constexpr bool operator==(const U256&, const U256&) = default;

  /// Addition returning the carry-out bit.
  static bool add(const U256& a, const U256& b, U256& out);
  /// Subtraction returning the borrow-out bit.
  static bool sub(const U256& a, const U256& b, U256& out);
  /// Full 256x256 -> 512-bit multiplication.
  static U512 mul(const U256& a, const U256& b);

  /// Logical shift right by 1 bit.
  [[nodiscard]] U256 shr1() const;
};

/// 512-bit product type (little-endian 64-bit limbs).
struct U512 {
  std::array<std::uint64_t, 8> limb{};

  [[nodiscard]] constexpr bool bit(int i) const {
    return (limb[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  /// Low and high 256-bit halves.
  [[nodiscard]] U256 lo() const { return U256{limb[0], limb[1], limb[2], limb[3]}; }
  [[nodiscard]] U256 hi() const { return U256{limb[4], limb[5], limb[6], limb[7]}; }
};

/// Modular arithmetic helpers for a fixed odd modulus m (m > 1).
/// Generic (not constant-time): this library signs simulated artifacts.
namespace modmath {

/// (a + b) mod m; requires a, b < m.
U256 add(const U256& a, const U256& b, const U256& m);
/// (a - b) mod m; requires a, b < m.
U256 sub(const U256& a, const U256& b, const U256& m);
/// (a * b) mod m; requires a, b < m.
U256 mul(const U256& a, const U256& b, const U256& m);
/// Reduces a 512-bit value mod m (binary long division).
U256 reduce(const U512& x, const U256& m);
/// Reduces a possibly >= m 256-bit value mod m.
U256 reduce(const U256& x, const U256& m);
/// Modular inverse via binary extended GCD; requires gcd(a, m) == 1, a != 0.
/// Throws std::domain_error otherwise.
U256 inverse(const U256& a, const U256& m);
/// a^e mod m (square and multiply).
U256 pow(const U256& a, const U256& e, const U256& m);

}  // namespace modmath

}  // namespace ctwatch::crypto
