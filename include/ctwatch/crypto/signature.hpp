// Unified signing abstraction used by CT logs and CAs.
//
// Two schemes are provided:
//
//  * `ecdsa_p256_sha256` — the real algorithm CT logs use. Employed by the
//    correctness-critical paths (unit tests, the §3.4 invalid-SCT study,
//    small honeypot runs) so that signature validation is cryptographically
//    genuine.
//
//  * `hmac_sha256_simulated` — a simulation oracle for bulk workloads
//    (hundreds of thousands of issuances in the Fig. 1 timeline). The
//    "public key" is the shared MAC key; verification recomputes the MAC.
//    This models an unforgeable signature at symmetric-crypto cost. It is a
//    documented substitution (see DESIGN.md): none of the paper's analyses
//    depend on the asymmetry of log signatures, only on their validity
//    being checkable.
//
// Both schemes share a uniform interface: a key pair exposes public-key
// bytes (from which RFC 6962 key ids are derived via SHA-256) and signing;
// verification is a free function over public-key bytes.
#pragma once

#include <memory>
#include <string>

#include "ctwatch/crypto/ec_p256.hpp"
#include "ctwatch/crypto/sha256.hpp"

namespace ctwatch::crypto {

enum class SignatureScheme : std::uint8_t {
  ecdsa_p256_sha256 = 0,
  hmac_sha256_simulated = 1,
};

std::string to_string(SignatureScheme scheme);

/// A scheme-tagged signature blob.
struct SignatureBlob {
  SignatureScheme scheme = SignatureScheme::ecdsa_p256_sha256;
  Bytes data;

  friend bool operator==(const SignatureBlob&, const SignatureBlob&) = default;
};

/// Interface for signing keys.
class Signer {
 public:
  virtual ~Signer() = default;

  [[nodiscard]] virtual SignatureScheme scheme() const = 0;
  /// Public key bytes: SEC1 point for ECDSA, shared key for the simulated
  /// scheme.
  [[nodiscard]] virtual Bytes public_key() const = 0;
  [[nodiscard]] virtual SignatureBlob sign(BytesView message) const = 0;

  /// RFC 6962 style key id: SHA-256 over the public key bytes.
  [[nodiscard]] Digest key_id() const { return Sha256::hash(public_key()); }
};

/// Real ECDSA P-256 signer.
class EcdsaSigner final : public Signer {
 public:
  explicit EcdsaSigner(EcdsaKeyPair keys) : keys_(std::move(keys)) {}
  /// Reproducible key derivation from a label (e.g. the log's name).
  static std::unique_ptr<EcdsaSigner> derive(const std::string& seed_label) {
    return std::make_unique<EcdsaSigner>(EcdsaKeyPair::derive(seed_label));
  }

  [[nodiscard]] SignatureScheme scheme() const override {
    return SignatureScheme::ecdsa_p256_sha256;
  }
  [[nodiscard]] Bytes public_key() const override { return keys_.public_point().encode(); }
  [[nodiscard]] SignatureBlob sign(BytesView message) const override {
    return SignatureBlob{scheme(), keys_.sign(message).to_bytes()};
  }

 private:
  EcdsaKeyPair keys_;
};

/// Simulation-grade MAC signer (see file comment).
class SimulatedSigner final : public Signer {
 public:
  explicit SimulatedSigner(Bytes shared_key) : key_(std::move(shared_key)) {}
  static std::unique_ptr<SimulatedSigner> derive(const std::string& seed_label);

  [[nodiscard]] SignatureScheme scheme() const override {
    return SignatureScheme::hmac_sha256_simulated;
  }
  [[nodiscard]] Bytes public_key() const override { return key_; }
  [[nodiscard]] SignatureBlob sign(BytesView message) const override;

 private:
  Bytes key_;
};

/// Verifies a signature against public key bytes for either scheme.
/// Malformed inputs verify as false (never throws).
bool verify_signature(BytesView public_key, BytesView message, const SignatureBlob& sig);

/// Factory used by the simulator: chooses the scheme for a derived key.
std::unique_ptr<Signer> make_signer(const std::string& seed_label, SignatureScheme scheme);

}  // namespace ctwatch::crypto
