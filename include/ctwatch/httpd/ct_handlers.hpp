// RFC 6962 endpoints over a logsvc::LogService, mounted on a Router.
//
// The read endpoints (get-sth, get-sth-consistency, get-proof-by-hash,
// get-entries) answer synchronously from the service's lock-light
// snapshot and append-only stores. add-chain and add-pre-chain are
// asynchronous end to end: the handler submits, the sequencer seals the
// batch under its merge delay, and the SCT travels back through the
// logsvc CompletionFn into the connection's response slot — the event
// loop never blocks on the merge delay.
//
// JSON shapes follow RFC 6962 §4: base64 bodies, `tree_head_signature`
// and `signature` carrying the TLS digitally-signed blob (here:
// u8 scheme + u16-length-prefixed signature bytes, matching
// SignedCertificateTimestamp::serialize). Errors are structured:
// {"error": "<code>", "detail": "..."}.
#pragma once

#include <functional>

#include "ctwatch/httpd/router.hpp"
#include "ctwatch/logsvc/service.hpp"

namespace ctwatch::httpd {

struct CtApiOptions {
  /// Submission timestamp source. Everything here runs on simulated
  /// time; the default pins the paper's measurement era.
  std::function<SimTime()> clock = [] { return SimTime{1522540800}; };  // 2018-04-01
  /// Longest accepted submission chain (leaf + intermediates).
  std::size_t max_chain = 8;
};

/// Picks the backing log for one request — the partition-aware serving
/// seam. An honest deployment returns the same service for every
/// request; an equivocating one keys on the client (header, IP, ...) and
/// hands each partition its own face (see gossip::EquivocatingLog).
/// Returning nullptr yields a 503. Called from event-loop threads; must
/// be thread-safe and cheap.
using ViewSelector = std::function<logsvc::LogService*(const Request&)>;

/// Registers /ct/v1/{add-chain, add-pre-chain, get-sth,
/// get-sth-consistency, get-proof-by-hash, get-entries} on `router`.
/// `service` must outlive the server the router is given to.
void register_ct_api(Router& router, logsvc::LogService& service, CtApiOptions options = {});

/// Same endpoints, but every request is routed to the LogService the
/// selector picks. Everything the selector can reach must outlive the
/// server.
void register_ct_api(Router& router, ViewSelector select, CtApiOptions options = {});

}  // namespace ctwatch::httpd
