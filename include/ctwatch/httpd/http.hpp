// ctwatch::httpd — HTTP/1.1 message layer: the one parser in the tree.
//
// The edge serves adversarial bytes: requests arrive torn across reads,
// pipelined many-per-read, oversized, or malformed. `RequestParser` is an
// incremental state machine over an internal buffer — feed() it whatever
// the socket produced, then pull complete requests off the front with
// next() until it reports need_more. Errors are typed (head_too_large /
// body_too_large / bad_request / unsupported) so the connection layer can
// answer 431/413/400/501 and close, instead of guessing.
//
// `ResponseParser` is the mirror image for client-side use: the wire
// load generator (bench/httpd_wire), the in-tree tests, and the demo's
// self-check all parse real server bytes with it.
//
// Both parsers are plain deterministic code: no I/O, no allocation
// beyond the buffered bytes, usable under sanitizers and in fuzz-style
// byte-at-a-time tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ctwatch::httpd {

/// Parser bounds. Crossing one is a typed error, not a truncation.
struct Limits {
  /// Request line + headers, up to and including the blank line.
  std::size_t max_head_bytes = 16 * 1024;
  /// Declared Content-Length ceiling (413 when exceeded).
  std::size_t max_body_bytes = 1 << 20;
};

/// One parsed request. Header names are kept as received; lookup is
/// case-insensitive. `path` is the percent-decoded target without the
/// query string; `query` is the raw query string (still encoded —
/// query_param() decodes per-value).
struct Request {
  std::string method;
  std::string target;  ///< raw request target as received
  std::string path;    ///< decoded path component
  std::string query;   ///< raw query string ("" when absent)
  bool http11 = true;  ///< false = HTTP/1.0
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; first match wins.
  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
  /// Percent-decoded value of `key` in the query string.
  [[nodiscard]] std::optional<std::string> query_param(std::string_view key) const;
};

enum class ParseResult : std::uint8_t {
  need_more,       ///< buffer holds no complete request yet
  request,         ///< one request extracted into `out`
  bad_request,     ///< malformed request line / header / Content-Length
  head_too_large,  ///< headers exceed Limits::max_head_bytes (431)
  body_too_large,  ///< declared body exceeds Limits::max_body_bytes (413)
  unsupported,     ///< parseable but not served (chunked TE, unknown version)
};

/// True for the terminal states: the connection must answer-and-close
/// (the buffer is no longer trustworthy after a malformed request).
[[nodiscard]] constexpr bool parse_failed(ParseResult r) {
  return r != ParseResult::need_more && r != ParseResult::request;
}

class RequestParser {
 public:
  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Appends raw socket bytes. Never fails; errors surface via next().
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  /// Extracts the next complete request, if the buffer holds one.
  /// Pipelined requests come out one next() call at a time. After a
  /// failed result every further next() repeats the failure until
  /// reset().
  ParseResult next(Request& out);

  /// Discards buffered bytes and clears a sticky error.
  void reset();

  /// Bytes currently buffered (tests).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  ParseResult parse_head(Request& out);
  ParseResult fail(ParseResult r) {
    error_ = r;
    return r;
  }

  Limits limits_;
  std::string buffer_;
  std::optional<ParseResult> error_;
  // Body state: set once the head parsed, cleared when the body completes.
  bool in_body_ = false;
  std::size_t body_remaining_ = 0;
  Request pending_;
};

/// One response under construction. serialize() renders status line,
/// Content-Type/Length, Connection, extra headers, then the body.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  [[nodiscard]] std::string serialize() const;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
[[nodiscard]] const char* status_reason(int status);

/// Convenience constructors for the common shapes.
Response json_response(int status, std::string body, bool keep_alive = true);
Response text_response(int status, std::string body, bool keep_alive = true);
/// {"error":"<code>","detail":"<detail>"} — the structured error shape
/// every ctwatch endpoint returns.
Response error_response(int status, std::string_view code, std::string_view detail,
                        bool keep_alive = true);

/// A parsed response, for client-side use.
struct ParsedResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
};

/// Incremental HTTP/1.x response parser (status line + headers +
/// Content-Length body; no chunked decoding — the in-tree server never
/// sends it).
class ResponseParser {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  /// need_more / request (one response extracted) / bad_request.
  ParseResult next(ParsedResponse& out);
  void reset();

 private:
  std::string buffer_;
  bool in_body_ = false;
  std::size_t body_remaining_ = 0;
  ParsedResponse pending_;
};

/// Percent-decodes a URL component ('+' also decodes to space, as query
/// strings encode it). Returns nullopt on a malformed %-escape.
[[nodiscard]] std::optional<std::string> url_decode(std::string_view in);

/// ASCII case-insensitive string equality (header names, token values).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

}  // namespace ctwatch::httpd
