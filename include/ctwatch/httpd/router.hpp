// ctwatch::httpd — request routing.
//
// A route is (method, exact path) -> handler. Handlers complete through a
// `Completion` callable — immediately for synchronous reads (get-sth and
// friends answer from the lock-light snapshot), or later from another
// thread for asynchronous work (add-chain's SCT arrives from the logsvc
// sequencer's CompletionFn). The completion is thread-safe and
// at-most-once: calling it after the connection died is a silent no-op,
// never a dangling write.
//
// Each route carries its obs handles (request counter + latency
// histogram), resolved once at registration so the per-request hot path
// never takes the registry lock.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ctwatch/httpd/http.hpp"
#include "ctwatch/obs/histogram.hpp"
#include "ctwatch/obs/metrics.hpp"

namespace ctwatch::httpd {

/// Completes one request. Callable from any thread, at most once; later
/// calls (and calls after the connection closed) are dropped.
using Completion = std::function<void(Response)>;

/// A handler either calls `done` before returning (synchronous) or
/// stores it and calls it exactly once later (asynchronous). It must not
/// block the calling thread: it runs on the event loop.
using Handler = std::function<void(const Request&, Completion done)>;

class Router {
 public:
  struct Route {
    std::string method;
    std::string path;
    Handler handler;
    /// Sanitized path used in metric names ("/ct/v1/get-sth" ->
    /// "ct_v1_get_sth").
    std::string metric_key;
    obs::Counter* hits = nullptr;
    obs::LogLinearHistogram* latency_us = nullptr;
  };

  enum class Match : std::uint8_t { ok, not_found, method_not_allowed };

  /// Registers a route; replaces an existing (method, path) route.
  Router& handle(std::string method, std::string path, Handler handler);
  Router& get(std::string path, Handler handler) {
    return handle("GET", std::move(path), std::move(handler));
  }
  Router& post(std::string path, Handler handler) {
    return handle("POST", std::move(path), std::move(handler));
  }

  /// Exact-path lookup. `route` is set only on `ok`.
  [[nodiscard]] Match find(const std::string& method, const std::string& path,
                           const Route** route) const;

  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

 private:
  std::vector<Route> routes_;
};

}  // namespace ctwatch::httpd
