// ctwatch::httpd — the epoll edge: event loops serving a Router.
//
// Architecture (DESIGN.md §10):
//
//   listen fd ──> worker 0 accept loop ──> round-robin fd handoff
//                                          (inbox + eventfd wake)
//   worker i: epoll (edge-triggered) over its connections
//     read  ──> RequestParser ──> dispatch ──> response slot queue
//     write <── in-order flush of ready slots (partial-write buffers,
//               write backpressure pauses parsing)
//   async handlers complete from any thread through the worker's inbox;
//   the eventfd wakes the loop, the slot fills, the flush happens on the
//   owning worker — connections are single-threaded by construction.
//
// Keep-alive and pipelining come from the parser/slot design: many
// requests may be in flight per connection, responses always leave in
// request order. Slow clients (stalled writes) and idle connections are
// evicted on a coarse timer. Chaos fault points ("httpd.accept",
// "httpd.read", "httpd.respond") inject accept drops, stalled/aborted
// reads, and response latency or 503s. Everything observable lands in
// obs: per-endpoint latency histograms, connection/byte counters, flight
// notes for every anomaly.
//
// On non-Linux POSIX the same loop runs over poll(2) (level-triggered)
// behind the small Poller shim in server.cpp; the public API is
// identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/httpd/router.hpp"

namespace ctwatch::httpd {

struct ServerOptions {
  /// 0 picks an ephemeral port; read it back with port() after start().
  std::uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// Event-loop threads. Worker 0 owns the accept loop and hands
  /// accepted fds round-robin across all workers.
  int workers = 1;
  /// Open connections across all workers; accepts beyond are closed.
  std::size_t max_connections = 4096;
  /// Parser bounds (431/413 when exceeded).
  Limits limits;
  /// Responses queued per connection before parsing pauses (pipelining
  /// depth bound).
  std::size_t max_pipeline = 64;
  /// Bytes of unflushed response per connection before parsing pauses
  /// (write backpressure bound).
  std::size_t max_outbuf_bytes = 1 << 20;
  /// Connections with no request activity are evicted after this long.
  std::chrono::milliseconds idle_timeout{30000};
  /// Connections whose writes make no progress (slow/stalled clients)
  /// are evicted after this long.
  std::chrono::milliseconds write_stall_timeout{10000};
  /// Optional fault seams (not owned; nullptr disables chaos):
  ///   "<prefix>.accept"  — accepted fd dropped at ingress,
  ///   "<prefix>.read"    — latency stalls parsing; error aborts the
  ///                        connection mid-request,
  ///   "<prefix>.respond" — latency delays the response; error turns it
  ///                        into an injected 503.
  chaos::FaultInjector* chaos = nullptr;
  std::string chaos_prefix = "httpd";
};

class Server {
 public:
  Server(ServerOptions options, Router router);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the worker loops. False if the socket could
  /// not be set up. Idempotent while running.
  bool start();

  /// Wakes every loop, closes every socket, joins the threads. Safe to
  /// call when not running; idempotent.
  void stop();

  /// Graceful stop: stops accepting (new connections are closed on
  /// arrival), lets in-flight requests finish and their responses flush,
  /// closes each connection once it is quiescent, and waits up to
  /// `drain_deadline` for every connection to drain before the hard
  /// stop(). Returns true when the drain completed in time (open
  /// connections hit zero), false when the deadline forced the remainder
  /// closed. Safe to call when not running; idempotent.
  bool shutdown(std::chrono::milliseconds drain_deadline = std::chrono::milliseconds(5000));

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// True between shutdown() initiating a drain and stop() completing.
  [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Actual bound port (resolves ServerOptions::port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

  // --- counters (relaxed; for tests and exposition) ---
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_open() const {
    return open_.load(std::memory_order_relaxed);
  }
  /// Requests dispatched (including 404/405 and parse-reject replies).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t responses_sent() const {
    return responses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t parse_rejects() const {
    return parse_rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evicted_idle() const {
    return evicted_idle_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evicted_slow() const {
    return evicted_slow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t chaos_accept_drops() const {
    return chaos_accept_drops_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ServerOptions& options() const { return options_; }

  struct WorkerState;  // event-loop internals; defined in server.cpp

 private:
  friend struct WorkerLoop;

  ServerOptions options_;
  Router router_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ = -1;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> parse_rejects_{0};
  std::atomic<std::uint64_t> evicted_idle_{0};
  std::atomic<std::uint64_t> evicted_slow_{0};
  std::atomic<std::uint64_t> chaos_accept_drops_{0};
};

}  // namespace ctwatch::httpd
