// ctwatch::httpd — a minimal JSON value model for the RFC 6962 bodies.
//
// The CT API's JSON is small and regular: objects of strings, numbers,
// and arrays of strings (add-chain's {"chain":[b64...]}, the SCT and
// proof replies). This is a strict recursive-descent parser over that
// grammar — full escape handling, depth-capped, rejecting trailing
// garbage — plus an escaping writer. It exists so the edge never parses
// hostile bytes with ad-hoc string surgery, and so tests/bench can read
// server replies back without a dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ctwatch::httpd::json {

class Value;
using Array = std::vector<Value>;
/// Ordered map: rendering is deterministic, lookups are by key.
using Object = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::boolean), bool_(b) {}
  Value(double d) : kind_(Kind::number), num_(d) {}
  Value(std::int64_t i) : kind_(Kind::number), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : kind_(Kind::number), num_(static_cast<double>(u)) {}
  Value(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::string), str_(s) {}
  Value(Array a) : kind_(Kind::array), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::object), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const;
  /// get(key) if it is a string.
  [[nodiscard]] std::optional<std::string_view> get_string(std::string_view key) const;
  /// get(key) if it is a number representable as u64 (rejects negatives
  /// and fractions).
  [[nodiscard]] std::optional<std::uint64_t> get_u64(std::string_view key) const;

  /// Renders with full string escaping. Numbers that are integral render
  /// without a decimal point (the CT API's numbers all are).
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Strict parse of a complete JSON document (trailing garbage rejected,
/// nesting depth capped). nullopt on any malformation.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace ctwatch::httpd::json
