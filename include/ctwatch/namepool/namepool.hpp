// ctwatch::namepool — interned DNS-name storage for funnel-scale corpora.
//
// The §4/§5 analyses operate on hundreds of millions of FQDNs (210.7M
// candidates in the enumeration funnel alone); storing each name as a
// vector of heap strings makes allocation the hot path. This module keeps
// every distinct label exactly once in a string arena (LabelTable) and
// every distinct name exactly once as a contiguous run of LabelIds in a
// flat arena (NamePool). A NameRef is then an 8-byte value with O(1)
// hash/equality (the pool canonicalizes: equal names get the same ref),
// cheap parent()/is_subdomain_of() (integer compares, no strings), and
// lazy to_string().
//
// Concurrency model, designed for read-mostly analysis pipelines:
//  * intern/parent/with_prefix (writers) serialize on an internal mutex;
//  * readers of already-published data — text(), ids(), to_string(),
//    is_subdomain_of() — are wait-free: arenas are chunked (addresses
//    never move) and entry counts are published with release stores.
// A ref obtained from any intern call may be used concurrently with
// further interning, which is exactly what the TSAN target exercises.
//
// Memory accounting is explicit: bytes_used() reports what the arenas,
// dedup tables and indexes actually hold, and every growth step is
// mirrored into the obs gauges namepool.bytes / namepool.labels /
// namepool.names (aggregated across pools via add/sub deltas).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ctwatch::namepool {

/// Index of an interned string in a LabelTable. Dense, starting at 0.
using LabelId = std::uint32_t;

/// A table of unique strings. General-purpose: DNS labels in NamePool,
/// but also e.g. observed TLS server names in the passive monitor.
/// intern() and find() serialize on a mutex; text()/size() are wait-free.
class LabelTable {
 public:
  LabelTable() = default;
  ~LabelTable();
  LabelTable(const LabelTable&) = delete;
  LabelTable& operator=(const LabelTable&) = delete;

  /// Returns the id of `text`, interning it on first sight.
  /// Throws std::length_error when the table is full.
  LabelId intern(std::string_view text);

  /// Lookup without interning.
  [[nodiscard]] std::optional<LabelId> find(std::string_view text) const;

  /// The interned string. `id` must be < size(). Wait-free; the returned
  /// view stays valid for the table's lifetime.
  [[nodiscard]] std::string_view text(LabelId id) const;

  /// Number of unique strings interned so far. Wait-free.
  [[nodiscard]] std::size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Bytes held by the arena, the entry blocks and the dedup index.
  [[nodiscard]] std::size_t bytes_used() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    const char* ptr;
    std::uint32_t len;
  };
  static constexpr std::size_t kEntriesPerBlock = 1u << 12;
  static constexpr std::size_t kMaxBlocks = 1u << 12;  // up to ~16.7M strings
  static constexpr std::size_t kMinChunk = 1u << 16;

  const char* store_text(std::string_view text);  // caller holds mu_

  // Readers: acquire count_, then entries below it are safely published.
  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_{};
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::size_t> bytes_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_cap_ = 0;
  // Open-addressed dedup index over the entries: slot = id + 1, 0 empty.
  std::vector<std::uint32_t> index_;
  std::size_t index_used_ = 0;
};

/// A name held by a NamePool: `count` labels starting at `offset` in the
/// pool's flat LabelId arena, leftmost (host) label first. Equal names in
/// the same pool always carry the same (offset, count), so hash and
/// equality are O(1) and never touch the arena. The empty (root) name is
/// {0, 0}. Refs are only meaningful against the pool that produced them.
struct NameRef {
  std::uint32_t offset = 0;
  std::uint32_t count = 0;

  [[nodiscard]] bool empty() const { return count == 0; }
  friend bool operator==(const NameRef&, const NameRef&) = default;
};

struct NameRefHash {
  std::size_t operator()(const NameRef& ref) const {
    std::uint64_t x = (static_cast<std::uint64_t>(ref.offset) << 32) | ref.count;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Arena-backed, deduplicating storage for label sequences.
class NamePool {
 public:
  NamePool() = default;
  ~NamePool();
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  struct Interned {
    NameRef ref;
    bool fresh = false;  ///< true when this intern created the name
  };

  /// The label table backing this pool.
  [[nodiscard]] LabelTable& labels() { return labels_; }
  [[nodiscard]] const LabelTable& labels() const { return labels_; }

  /// Interns a label sequence (leftmost label first). Ids must come from
  /// labels(). O(count) hash + one table probe; allocation only when new.
  Interned intern_ids(std::span<const LabelId> ids);

  /// Splits `dotted` on '.' and interns every piece as a label. No DNS
  /// validation — dns::DnsName::parse_into() is the validated entry point.
  Interned intern_text(std::string_view dotted);

  /// Lookup without interning.
  [[nodiscard]] std::optional<NameRef> find_ids(std::span<const LabelId> ids) const;

  /// The label ids of `ref`, leftmost first. Wait-free; the span stays
  /// valid for the pool's lifetime.
  [[nodiscard]] std::span<const LabelId> ids(NameRef ref) const;

  /// Text of the i-th label of `ref` (0 = leftmost).
  [[nodiscard]] std::string_view label(NameRef ref, std::size_t i) const {
    return labels_.text(ids(ref)[i]);
  }

  /// Dotted textual form, no trailing dot; "" for the empty name.
  [[nodiscard]] std::string to_string(NameRef ref) const;
  /// Appends the dotted form to `out` (reusable buffer, no extra allocs).
  void append_to(std::string& out, NameRef ref) const;

  /// The name with the leftmost `n` labels dropped (n <= ref.count).
  /// Interns the suffix when it was never seen on its own — usually a
  /// pure table hit, never a string operation.
  NameRef parent(NameRef ref, std::size_t n = 1);

  /// Prepends one interned label — the §4 candidate composition
  /// (label × registrable domain) as pure integer work.
  Interned with_prefix(NameRef ref, LabelId label);

  /// Batched with_prefix over one label: composes label.suffix for every
  /// suffix in order, appending each resulting ref to `out`, under a
  /// single lock acquisition (the funnel composes hundreds of thousands
  /// per plan entry). Returns how many compositions were new to the pool.
  std::uint64_t with_prefix_batch(LabelId label, std::span<const NameRef> suffixes,
                                  std::vector<NameRef>& out);

  /// True if `name` equals `ancestor` or sits below it. Wait-free.
  [[nodiscard]] bool is_subdomain_of(NameRef name, NameRef ancestor) const;

  /// Unique names interned.
  [[nodiscard]] std::uint64_t size() const { return names_.load(std::memory_order_relaxed); }

  /// Bytes held by the label table, the id arena and the dedup table.
  [[nodiscard]] std::size_t bytes_used() const {
    return labels_.bytes_used() + bytes_.load(std::memory_order_relaxed);
  }

  /// Distinct for every pool ever constructed. Caches keyed by pool
  /// identity must use this, not the pool's address: a destroyed pool's
  /// storage can be reused for a fresh pool at the same address, and ids
  /// cached against the old pool are meaningless in the new one.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  static constexpr std::size_t kIdsPerBlock = 1u << 16;
  static constexpr std::size_t kMaxBlocks = 1u << 13;  // up to ~536M label slots

  [[nodiscard]] static std::uint64_t hash_ids(std::span<const LabelId> ids);
  [[nodiscard]] bool ids_equal(std::uint32_t offset, std::span<const LabelId> ids) const;
  Interned intern_ids_locked(std::span<const LabelId> ids);  // caller holds mu_, no metrics
  std::uint32_t append_ids(std::span<const LabelId> ids);  // caller holds mu_
  void grow_dedup();                                       // caller holds mu_

  LabelTable labels_;

  // Flat LabelId arena, chunked so published entries never move. Each
  // name occupies count+1 contiguous slots: [count][ids...]; a NameRef's
  // offset points at ids[0] so the dedup table can store bare offsets.
  std::array<std::atomic<LabelId*>, kMaxBlocks> blocks_{};
  std::atomic<std::uint32_t> arena_used_{0};
  std::atomic<std::uint64_t> names_{0};
  std::atomic<std::size_t> bytes_{0};

  mutable std::mutex mu_;
  // Open-addressed dedup: slot = ids-offset + 1, 0 empty. The label count
  // lives in the arena at offset - 1, so slots are 4 bytes, not 8.
  std::vector<std::uint32_t> dedup_;
  std::size_t dedup_used_ = 0;

  const std::uint64_t generation_ = next_generation();
  [[nodiscard]] static std::uint64_t next_generation() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }
};

}  // namespace ctwatch::namepool
