// The third-party CT-monitor fleet observed by the honeypot (§6.2).
//
// Behaviour classes the paper distinguishes, each modeled explicitly:
//  * streaming monitors (CertStream-like) reacting within minutes —
//    Google, 1&1, Deteque/Spamhaus, Amazon, OpenDNS, Petersburg Internet;
//  * slower near-streaming actors (DigitalOcean ≈2 h) that also open
//    HTTP(S) connections to the A record afterwards;
//  * batch processors (76 other ASes) that poll logs and query one or two
//    domains, rarely earlier than one to two hours in;
//  * stub resolvers behind Google Public DNS, unmasked by EDNS Client
//    Subnet — including a Quasi-Networks machine that follows up with a
//    30-port scan (and, per the paper, ignores all abuse handling);
//  * nobody contacts the unique IPv6 addresses except the CA validator.
#pragma once

#include "ctwatch/honeypot/honeypot.hpp"

namespace ctwatch::honeypot {

struct MonitorActorSpec {
  std::string name;
  net::Asn asn = 0;
  net::IPv4 address;                  ///< resolver (or stub) address
  enum class Mode : std::uint8_t { streaming, batch } mode = Mode::streaming;
  std::int64_t delay_min = 60;        ///< seconds after the CT log entry
  std::int64_t delay_max = 600;
  double coverage = 1.0;              ///< probability to act per domain
  std::vector<dns::RrType> qtypes = {dns::RrType::A};
  int queries_per_type = 1;           ///< repeat factor
  bool via_google_dns = false;        ///< query through Google DNS (adds ECS)
  bool connects_http = false;
  /// Scanning best practice (informative rDNS name): none of the observed
  /// scanners had one, which is how the paper rules out benevolent
  /// researchers. Settable for what-if actors in tests.
  bool informative_rdns = false;
  std::int64_t http_delay_min = 3300;  ///< seconds after the CT log entry
  std::int64_t http_delay_max = 7500;
  double http_straggler_chance = 0.0;  ///< chance of a days-late connection
  int scan_ports = 0;                  ///< >0: port-scans the honeypot
};

/// The fleet calibrated to Table 4 and the §6.2 narrative.
std::vector<MonitorActorSpec> standard_fleet();

/// Google Public DNS identity (AS 15169) used by `via_google_dns` actors.
dns::RecursiveResolver::Identity google_public_dns();

struct FleetStats {
  std::uint64_t dns_queries = 0;
  std::uint64_t http_connections = 0;
  std::uint64_t port_probes = 0;
};

/// Replays the fleet against every honeypot domain. Queries land in the
/// honeypot's authoritative query log, connections in its packet capture;
/// timestamps carry the ordering (the log itself is not time-sorted).
class AttackerFleet {
 public:
  AttackerFleet(CtHoneypot& honeypot, std::vector<MonitorActorSpec> fleet, Rng rng);

  FleetStats run();

 private:
  void act(const MonitorActorSpec& actor, const HoneypotDomain& domain, FleetStats& stats);

  CtHoneypot* honeypot_;
  std::vector<MonitorActorSpec> fleet_;
  Rng rng_;
  dns::DnsUniverse universe_;
};

}  // namespace ctwatch::honeypot
