// The CT honeypot (§6).
//
// Four building blocks, as the paper defines them:
//  (i)   unique random (sub-)domains that are hard to guess,
//  (ii)  existence leaked *exclusively* through CT (certificate issuance),
//  (iii) a controlled authoritative DNS server logging every query, and
//  (iv)  traffic monitoring on the subdomains' A/AAAA addresses —
//        each subdomain gets a unique IPv6 address never used elsewhere.
//
// Issuing the certificate triggers the CA's domain-validation lookups;
// like the paper, the analysis filters those out (they arrive before the
// CT log entry and come from the CA's validation infrastructure).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/dns/resolver.hpp"
#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/net/autonomous_system.hpp"
#include "ctwatch/net/capture.hpp"
#include "ctwatch/net/reverse_dns.hpp"
#include "ctwatch/sim/ecosystem.hpp"

namespace ctwatch::honeypot {

struct HoneypotOptions {
  std::string parent_domain = "hp-parent.net";
  std::size_t label_length = 12;
  /// CA used to obtain certificates (must exist in the ecosystem).
  std::string ca = "Let's Encrypt";
  /// Logs receiving the precertificates.
  std::vector<std::string> logs = {"Google Icarus", "Cloudflare Nimbus2018"};
  /// Seconds between the validation lookup and the CT log entry.
  std::int64_t validation_lead = 45;
};

/// One honeypot subdomain and its ground-truth timeline.
struct HoneypotDomain {
  std::string label;        ///< the random 12-char label
  std::string fqdn;
  namepool::NameRef name;   ///< fqdn interned in the honeypot's pool
  net::IPv4 a_record;
  net::IPv6 aaaa_record;    ///< unique, never published elsewhere
  SimTime ct_logged;        ///< precertificate CT log entry time
};

class CtHoneypot {
 public:
  CtHoneypot(sim::Ecosystem& ecosystem, const HoneypotOptions& options = HoneypotOptions());

  /// Creates one subdomain at `now`: DNS records go live, the CA validates
  /// (producing the to-be-filtered lookups) and the precertificate is
  /// logged `validation_lead` seconds later.
  const HoneypotDomain& create_subdomain(SimTime now);

  [[nodiscard]] const std::vector<HoneypotDomain>& domains() const { return domains_; }
  [[nodiscard]] dns::AuthoritativeServer& dns_server() { return dns_server_; }
  [[nodiscard]] const dns::AuthoritativeServer& dns_server() const { return dns_server_; }
  [[nodiscard]] net::PacketCapture& capture() { return capture_; }
  [[nodiscard]] const net::PacketCapture& capture() const { return capture_; }
  /// BGP-derived origin data used to attribute sources to ASes (the fleet
  /// announces its prefixes here, like route collectors would see).
  [[nodiscard]] net::AsRegistry& as_registry() { return as_registry_; }
  [[nodiscard]] const net::AsRegistry& as_registry() const { return as_registry_; }
  /// The global rDNS view. The honeypot's own addresses are deliberately
  /// absent ("we do not enter these IPv6 addresses into the rDNS tree to
  /// avoid discovery through rDNS walking"); benevolent scanners would
  /// register informative names here — the analysis checks for them.
  [[nodiscard]] net::ReverseDns& reverse_dns() { return reverse_dns_; }
  [[nodiscard]] const net::ReverseDns& reverse_dns() const { return reverse_dns_; }
  [[nodiscard]] sim::Ecosystem& ecosystem() { return *ecosystem_; }
  [[nodiscard]] const HoneypotOptions& options() const { return options_; }
  /// Pool the honeypot's names live in; the analysis interns observed
  /// query names into it to group the DNS log by interned ref instead of
  /// comparing strings per (domain × log entry). Internally synchronized.
  [[nodiscard]] namepool::NamePool& pool() const { return *pool_; }

  /// The label every CA-validation query carries in the query log, so the
  /// analysis can filter it (the paper filters by validation-infrastructure
  /// origin and pre-logging timing).
  static constexpr const char* kValidationLabel = "ca-validation";

 private:
  sim::Ecosystem* ecosystem_;
  HoneypotOptions options_;
  dns::AuthoritativeServer dns_server_;
  dns::Zone* zone_ = nullptr;
  net::PacketCapture capture_;
  net::AsRegistry as_registry_;
  net::ReverseDns reverse_dns_;
  mutable std::unique_ptr<namepool::NamePool> pool_ = std::make_unique<namepool::NamePool>();
  std::vector<HoneypotDomain> domains_;
  Rng rng_;
  std::uint32_t next_host_ = 0;
};

}  // namespace ctwatch::honeypot
