// Honeypot data analysis: turns the authoritative query log and the packet
// capture into Table 4, the EDNS-Client-Subnet study, and the suspicious-
// connection findings of §6.2.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/honeypot/honeypot.hpp"

namespace ctwatch::honeypot {

/// One Table 4 row.
struct DomainTimeline {
  std::string tag;       ///< "A".."K"
  std::string fqdn;
  SimTime ct_entry;
  std::optional<SimTime> first_dns;
  std::int64_t dns_delta = 0;  ///< seconds from CT entry to first query
  std::uint64_t query_count = 0;   ///< Q column (CA validation filtered)
  std::size_t asn_count = 0;       ///< AS column
  std::size_t ecs_subnet_count = 0;  ///< CS column
  std::vector<net::Asn> first_asns;  ///< first 3 querying ASes
  std::optional<SimTime> first_http;
  std::int64_t http_delta = 0;
  std::vector<net::Asn> http_asns;
};

/// A source that probed many distinct ports (the Quasi machine).
struct PortScanFinding {
  net::IPv4 source;
  std::size_t distinct_ports = 0;
};

struct HoneypotReport {
  std::vector<DomainTimeline> rows;
  /// Global ECS statistics: /24 -> query count.
  std::map<std::string, std::uint64_t> ecs_subnets;
  std::vector<PortScanFinding> port_scanners;
  /// ECS-revealed client subnets that later connected over IPv4.
  std::size_t ecs_subnets_with_connections = 0;
  /// IPv6 contacts excluding the CA validator (the paper observed zero).
  std::uint64_t ipv6_contacts = 0;
  /// Connecting sources that follow scanning best practices (informative
  /// rDNS). The paper: "no source IP address followed scanning best
  /// practices ... this likely excludes benevolent scanners".
  std::size_t sources_total = 0;
  std::size_t sources_with_best_practices = 0;
  std::uint64_t queries_filtered_as_validation = 0;
};

struct AnalysisOptions {
  /// Sources probing at least this many distinct ports count as scanners.
  std::size_t port_scan_threshold = 10;
};

HoneypotReport analyze(const CtHoneypot& honeypot,
                       const AnalysisOptions& options = AnalysisOptions());

/// Renders a Table 4-style text table.
std::string render_table4(const HoneypotReport& report);

}  // namespace ctwatch::honeypot
