// Phishing-domain detection over CT-logged DNS names (§5).
//
// The paper's method: match domains that embed a target service's name or
// a subset of its FQDN labels (e.g. "login.live" for Microsoft), then
// exclude the service's legitimate registrable domains. The same logic is
// implemented here with std::regex patterns per brand; findings carry the
// public suffix so the brand↔suffix link (eBay→bid/review, Microsoft→live)
// can be quantified.
#pragma once

#include <map>
#include <regex>
#include <span>
#include <set>
#include <string>
#include <vector>

#include "ctwatch/dns/psl.hpp"

namespace ctwatch::phishing {

/// Matching rule for one impersonation target.
struct BrandRule {
  std::string brand;                         ///< e.g. "Apple"
  std::string pattern;                       ///< ECMAScript regex over the FQDN
  std::set<std::string> legitimate_domains;  ///< registrable domains to exclude
};

/// The five services of Table 3 plus the government taxation offices.
const std::vector<BrandRule>& standard_rules();

struct Finding {
  std::string brand;
  std::string fqdn;
  std::string public_suffix;
  std::string registrable_domain;
};

struct BrandSummary {
  std::uint64_t count = 0;
  std::string example;
  /// Findings per public suffix, for the suffix-choice analysis.
  std::map<std::string, std::uint64_t> by_suffix;
};

class PhishingDetector {
 public:
  PhishingDetector(const dns::PublicSuffixList& psl, std::vector<BrandRule> rules);

  /// Scans FQDNs; invalid names are skipped (count reported separately).
  std::vector<Finding> scan(std::span<const std::string> fqdns);

  /// Aggregates findings per brand.
  static std::map<std::string, BrandSummary> summarize(const std::vector<Finding>& findings);

  [[nodiscard]] std::uint64_t names_scanned() const { return scanned_; }
  [[nodiscard]] std::uint64_t names_skipped() const { return skipped_; }

 private:
  const dns::PublicSuffixList* psl_;
  std::vector<BrandRule> rules_;
  std::vector<std::regex> compiled_;
  std::uint64_t scanned_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace ctwatch::phishing
