// Phishing-domain detection over CT-logged DNS names (§5).
//
// The paper's method: match domains that embed a target service's name or
// a subset of its FQDN labels (e.g. "login.live" for Microsoft), then
// exclude the service's legitimate registrable domains. The same logic is
// implemented here with std::regex patterns per brand; findings carry the
// public suffix so the brand↔suffix link (eBay→bid/review, Microsoft→live)
// can be quantified.
//
// Scanning is interned-label first: each rule declares dot-free keyword
// literals, and a per-LabelId bitmask cache records which rules a label
// can possibly satisfy. A name only reaches the (expensive) regex when one
// of its labels carries a keyword of that rule — computed once per unique
// label, not once per name. Rules without keywords always run their regex.
//
// scan()/scan_refs() run chunked over the ctwatch::par global pool when
// one exists; chunk outputs are concatenated in chunk order, so the
// findings vector (and every counter) is byte-identical to the serial
// scan at any thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <regex>
#include <span>
#include <set>
#include <string>
#include <vector>

#include "ctwatch/dns/psl.hpp"
#include "ctwatch/namepool/namepool.hpp"

namespace ctwatch::phishing {

/// Matching rule for one impersonation target.
struct BrandRule {
  std::string brand;                         ///< e.g. "Apple"
  std::string pattern;                       ///< ECMAScript regex over the FQDN
  std::set<std::string> legitimate_domains;  ///< registrable domains to exclude
  /// Prefilter contract: every match of `pattern` contains at least one of
  /// these dot-free, lowercase literals. A dot-free substring of a dotted
  /// FQDN always lies inside a single label, so "some label contains a
  /// keyword" is a sound necessary condition. Empty = no prefilter; the
  /// regex runs on every name.
  std::vector<std::string> keywords;
};

/// The five services of Table 3 plus the government taxation offices.
const std::vector<BrandRule>& standard_rules();

struct Finding {
  std::string brand;
  std::string fqdn;
  std::string public_suffix;
  std::string registrable_domain;
};

struct BrandSummary {
  std::uint64_t count = 0;
  std::string example;
  /// Findings per public suffix, for the suffix-choice analysis.
  std::map<std::string, std::uint64_t> by_suffix;
};

class PhishingDetector {
 public:
  PhishingDetector(const dns::PublicSuffixList& psl, std::vector<BrandRule> rules);

  /// Scans FQDNs; invalid names are skipped (count reported separately).
  std::vector<Finding> scan(std::span<const std::string> fqdns);

  /// Scans names already interned in this detector's pool.
  std::vector<Finding> scan_refs(std::span<const namepool::NameRef> refs);

  /// Aggregates findings per brand.
  static std::map<std::string, BrandSummary> summarize(const std::vector<Finding>& findings);

  [[nodiscard]] std::uint64_t names_scanned() const { return scanned_; }
  [[nodiscard]] std::uint64_t names_skipped() const { return skipped_; }
  /// How many regex_search calls actually ran — the prefilter's receipt.
  [[nodiscard]] std::uint64_t regex_evaluations() const { return regex_evaluations_; }

  /// The pool scanned names are interned into (scan_refs input must come
  /// from here).
  [[nodiscard]] namepool::NamePool& pool() { return *pool_; }

 private:
  static constexpr std::uint64_t kMaskUnset = ~0ull;

  /// Thread-safe lazily-filled LabelId -> rule-mask cache. Slots live in
  /// fixed blocks of atomics; a block is allocated under the mutex the
  /// first time its id range is touched, and readers never lock.
  /// Concurrent first computations of the same label are benign — the
  /// mask is a pure function of the label text, so both writers store the
  /// same value. Held by unique_ptr to keep the detector movable.
  struct MaskCache {
    static constexpr std::size_t kBlockSize = 4096;
    static constexpr std::size_t kMaxBlocks = 4096;
    struct Block {
      std::array<std::atomic<std::uint64_t>, kBlockSize> slots;
    };

    ~MaskCache() {
      for (auto& slot : blocks) delete slot.load(std::memory_order_relaxed);
    }

    /// The slot for a label id, allocating its block on first touch;
    /// nullptr for ids beyond the fixed capacity (callers recompute).
    std::atomic<std::uint64_t>* slot(std::size_t id) {
      const std::size_t block_index = id / kBlockSize;
      if (block_index >= kMaxBlocks) return nullptr;
      Block* block = blocks[block_index].load(std::memory_order_acquire);
      if (!block) {
        std::lock_guard<std::mutex> lock(grow_mu);
        block = blocks[block_index].load(std::memory_order_relaxed);
        if (!block) {
          block = new Block;
          for (auto& s : block->slots) s.store(kMaskUnset, std::memory_order_relaxed);
          blocks[block_index].store(block, std::memory_order_release);
        }
      }
      return &block->slots[id % kBlockSize];
    }

    std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
    std::mutex grow_mu;
  };

  /// Per-chunk counter partial; merged serially in chunk order.
  struct ScanTally {
    std::uint64_t scanned = 0;
    std::uint64_t skipped = 0;
    std::uint64_t regex_evaluations = 0;
  };

  void scan_one(namepool::NameRef ref, std::vector<Finding>& findings, ScanTally& tally) const;
  [[nodiscard]] std::uint64_t label_mask(namepool::LabelId id) const;
  std::vector<Finding> merge_chunks(std::vector<Finding> findings,
                                    std::vector<std::vector<Finding>>& chunk_findings,
                                    std::vector<ScanTally>& tallies);

  const dns::PublicSuffixList* psl_;
  std::vector<BrandRule> rules_;
  std::vector<std::regex> compiled_;
  // Address-pinned arenas; unique_ptr keeps the detector movable.
  std::unique_ptr<namepool::NamePool> pool_ = std::make_unique<namepool::NamePool>();
  /// Which of the first 63 rules each interned label can satisfy; lazily
  /// computed, kMaskUnset = not yet. Rules beyond 63 always run.
  std::unique_ptr<MaskCache> masks_ = std::make_unique<MaskCache>();
  std::uint64_t always_mask_ = 0;  ///< rules with no keywords
  std::uint64_t scanned_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t regex_evaluations_ = 0;
};

}  // namespace ctwatch::phishing
