// Reverse DNS registry.
//
// Two §6 uses:
//  * the honeypot deliberately does NOT register its unique IPv6 addresses
//    "to avoid discovery through rDNS walking" — an rDNS walker over the
//    honeypot prefix must come up empty;
//  * scanning best practices ("informative rDNS names, websites, abuse
//    contacts", §3.1/§6.2): the analysis checks connecting sources against
//    this registry and finds that none of the inbound scanners follows
//    them — the paper's argument for excluding benevolent researchers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/net/ip.hpp"
#include "ctwatch/util/encoding.hpp"

namespace ctwatch::net {

class ReverseDns {
 public:
  void register_v4(IPv4 addr, std::string name);
  void register_v6(const IPv6& addr, std::string name);

  [[nodiscard]] std::optional<std::string> lookup(IPv4 addr) const;
  [[nodiscard]] std::optional<std::string> lookup(const IPv6& addr) const;

  /// Enumerates registered IPv6 names whose address starts with the given
  /// byte prefix — the "rDNS tree walking" attack the honeypot avoids by
  /// never registering its addresses.
  [[nodiscard]] std::vector<std::string> walk_v6(BytesView prefix) const;

  [[nodiscard]] std::size_t size() const { return v4_.size() + v6_.size(); }

 private:
  std::map<std::uint32_t, std::string> v4_;
  std::map<std::array<std::uint8_t, 16>, std::string> v6_;
};

}  // namespace ctwatch::net
