// Autonomous systems and prefix-to-AS mapping.
//
// Table 4 of the paper attributes every honeypot DNS query and connection to
// an origin AS; §4.3 filters DNS answers through "our border router's
// routing table". This module provides an AS registry and a longest-prefix-
// match routing/origin table over IPv4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/net/ip.hpp"

namespace ctwatch::net {

using Asn = std::uint32_t;

/// Descriptive AS metadata.
struct AsInfo {
  Asn asn = 0;
  std::string name;     ///< e.g. "Google"
  bool honors_abuse = true;  ///< Quasi Networks famously does not
};

/// Registry of ASes and their announced IPv4 prefixes.
class AsRegistry {
 public:
  /// Registers an AS (idempotent on the same ASN; metadata is replaced).
  void add(const AsInfo& info);
  /// Announces a prefix from an AS. The AS must be registered.
  void announce(Asn asn, const Prefix4& prefix);

  [[nodiscard]] std::optional<AsInfo> lookup(Asn asn) const;
  /// Longest-prefix-match origin AS for an address.
  [[nodiscard]] std::optional<Asn> origin(IPv4 addr) const;
  [[nodiscard]] const std::vector<std::pair<Prefix4, Asn>>& announcements() const {
    return announcements_;
  }

  /// AS name or "AS<number>" when unknown.
  [[nodiscard]] std::string name_of(Asn asn) const;

 private:
  std::map<Asn, AsInfo> ases_;
  std::vector<std::pair<Prefix4, Asn>> announcements_;
};

/// A routing table answering "is this destination routable from here" —
/// the paper disregards DNS answers outside its border router's table to
/// filter out misconfigured DNS servers.
class RoutingTable {
 public:
  void add_route(const Prefix4& prefix);
  /// Installs every announcement of a registry.
  void add_all(const AsRegistry& registry);

  [[nodiscard]] bool routable(IPv4 addr) const;
  /// Longest matching prefix, if any.
  [[nodiscard]] std::optional<Prefix4> match(IPv4 addr) const;
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  std::vector<Prefix4> routes_;
};

}  // namespace ctwatch::net
