// Packet/flow capture model.
//
// The honeypot stores "full packet captures from our monitors"; what the
// analysis actually consumes are connection-level events: who connected,
// when, to which address/port, and with which application payload hints
// (TLS SNI, HTTP Host). This models exactly that.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctwatch/net/ip.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::net {

enum class Transport : std::uint8_t { tcp, udp };

/// One observed inbound connection attempt (or datagram).
struct ConnectionEvent {
  SimTime time;
  IPv4 src;
  std::optional<IPv4> dst4;  ///< exactly one of dst4/dst6 is set
  std::optional<IPv6> dst6;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::tcp;
  std::string sni;        ///< TLS SNI if the payload carried one
  std::string http_host;  ///< HTTP Host if the payload carried one
};

/// Append-only event store with the filters the honeypot analysis needs.
class PacketCapture {
 public:
  void record(const ConnectionEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<ConnectionEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events within [from, to).
  [[nodiscard]] std::vector<ConnectionEvent> between(SimTime from, SimTime to) const;
  /// Events whose SNI or HTTP Host equals the given name.
  [[nodiscard]] std::vector<ConnectionEvent> with_name(const std::string& fqdn) const;
  /// Events destined to the given IPv6 address (the honeypot's unique AAAA).
  [[nodiscard]] std::vector<ConnectionEvent> to_address(const IPv6& addr) const;
  /// Events destined to the given IPv4 address.
  [[nodiscard]] std::vector<ConnectionEvent> to_address(IPv4 addr) const;
  /// Distinct destination ports probed by a given source.
  [[nodiscard]] std::vector<std::uint16_t> ports_probed_by(IPv4 src) const;

 private:
  std::vector<ConnectionEvent> events_;
};

}  // namespace ctwatch::net
