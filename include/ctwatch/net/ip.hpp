// IPv4/IPv6 addresses and CIDR prefixes.
//
// Used for A/AAAA records, EDNS Client Subnet payloads, the honeypot's
// per-subdomain unique IPv6 addresses, and the §4.3 "is this answer inside
// our border router's routing table" filter.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace ctwatch::net {

/// An IPv4 address (host byte order internally).
class IPv4 {
 public:
  constexpr IPv4() = default;
  constexpr explicit IPv4(std::uint32_t value) : value_(value) {}
  constexpr IPv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  /// Parses dotted-quad; std::nullopt when malformed.
  static std::optional<IPv4> parse(const std::string& text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IPv4, IPv4) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv6 address (16 bytes, network order).
class IPv6 {
 public:
  constexpr IPv6() = default;
  constexpr explicit IPv6(std::array<std::uint8_t, 16> bytes) : bytes_(bytes) {}

  /// Builds from 8 hextets.
  static IPv6 from_hextets(const std::array<std::uint16_t, 8>& h);

  /// Parses full or "::"-compressed textual form; std::nullopt when malformed.
  static std::optional<IPv6> parse(const std::string& text);

  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }
  /// Canonical lowercase form with "::" compression of the longest zero run.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const IPv6&, const IPv6&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// An IPv4 CIDR prefix.
class Prefix4 {
 public:
  constexpr Prefix4() = default;
  /// Throws std::invalid_argument when length > 32; the address is masked.
  Prefix4(IPv4 base, int length);

  /// Parses "a.b.c.d/len".
  static std::optional<Prefix4> parse(const std::string& text);

  [[nodiscard]] IPv4 base() const { return base_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] bool contains(IPv4 addr) const;
  /// True if `other` is fully inside this prefix.
  [[nodiscard]] bool covers(const Prefix4& other) const;
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix4&, const Prefix4&) = default;

 private:
  IPv4 base_;
  int length_ = 0;
};

/// The /24 containing an address — the granularity EDNS Client Subnet uses
/// in the paper ("12 unique EDNS client subnets at size /24").
Prefix4 slash24(IPv4 addr);

}  // namespace ctwatch::net
