// ctwatch — umbrella header.
//
// A Certificate Transparency ecosystem library and measurement pipeline
// reproducing Scheitle et al., "The Rise of Certificate Transparency and
// Its Implications on the Internet Ecosystem" (IMC 2018).
//
// Layering (bottom to top):
//   util      — simulated time, deterministic RNG, encodings
//   crypto    — SHA-256, HMAC, P-256 ECDSA (from scratch)
//   asn1      — DER
//   x509      — certificates, precertificates, SCT-list extension
//   dns / net — names, PSL, zones, resolvers / IPs, ASes, captures
//   ct        — RFC 6962: Merkle trees, logs, SCTs, STHs, policy, auditing
//   tls       — connection records with the three SCT delivery channels
//   monitor   — the Bro-like passive analyzer
//   sim       — the simulated 2013-2018 internet: CAs, logs, sites, attackers
//   studies   — §2..§6 of the paper (this directory plus the enumeration,
//               phishing and honeypot modules)
#pragma once

#include "ctwatch/core/adoption.hpp"
#include "ctwatch/core/invalid_sct.hpp"
#include "ctwatch/core/leakage.hpp"
#include "ctwatch/core/log_evolution.hpp"
#include "ctwatch/honeypot/analysis.hpp"
#include "ctwatch/honeypot/attackers.hpp"
#include "ctwatch/phishing/detector.hpp"
#include "ctwatch/sim/phishing_gen.hpp"
#include "ctwatch/sim/population.hpp"
#include "ctwatch/sim/timeline.hpp"
#include "ctwatch/sim/traffic.hpp"
