// §2: the evolution of CT logs over time (Fig. 1a, 1b, 1c).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ctwatch/sim/ecosystem.hpp"

namespace ctwatch::core {

/// Month key "YYYY-MM" used by the evolution series.
std::string month_key(SimTime t);

struct LogEvolutionReport {
  /// Fig. 1a: cumulative unique precertificates per CA, sampled monthly.
  /// months[i] labels row i of cumulative_by_ca[ca].
  std::vector<std::string> months;
  std::map<std::string, std::vector<std::uint64_t>> cumulative_by_ca;

  /// Fig. 1b: per-month share (0..1) each CA contributes to that month's
  /// newly logged precertificates.
  std::map<std::string, std::vector<double>> monthly_share_by_ca;

  /// Fig. 1c: CA x log submission counts for one focus month.
  std::string focus_month;
  std::map<std::string, std::map<std::string, std::uint64_t>> ca_log_matrix;
  double matrix_sparsity = 0;  ///< fraction of zero cells
  /// Share of Let's Encrypt's focus-month submissions carried by each log.
  std::map<std::string, double> le_log_share;

  /// Top-5 CA share of all precertificates (the paper: 99 %).
  double top5_share = 0;
  /// Overload rejections per log (the Nimbus incident indicator).
  std::map<std::string, std::uint64_t> overload_rejections;
};

/// Analyzes the (already simulated) ecosystem's logs. Deduplicates entries
/// across logs by certificate fingerprint, so a precertificate submitted to
/// three logs counts once in Fig. 1a/1b (and three times in the Fig. 1c
/// load matrix, which measures log utilization).
class LogEvolutionStudy {
 public:
  explicit LogEvolutionStudy(sim::Ecosystem& ecosystem) : ecosystem_(&ecosystem) {}

  [[nodiscard]] LogEvolutionReport run(const std::string& focus_month = "2018-04") const;

  /// Renders Fig. 1a as a text series (one line per CA).
  static std::string render_cumulative(const LogEvolutionReport& report);
  /// Renders the Fig. 1c matrix.
  static std::string render_matrix(const LogEvolutionReport& report);

 private:
  sim::Ecosystem* ecosystem_;
};

}  // namespace ctwatch::core
