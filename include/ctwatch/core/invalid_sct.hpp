// §3.4: certificates with invalid embedded SCTs.
//
// Reproduces the study end to end: CAs with the four real-world issuance
// bugs (TeliaSonera stale re-issuance, GlobalSign SAN reorder, D-Trust
// extension reorder, NetLock name swap) issue certificates; validation
// over the reconstructed precertificate entry flags them; and — as the
// paper did by comparing precertificates with final certificates — a
// classifier attributes each failure to its root cause.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctwatch/sim/ecosystem.hpp"

namespace ctwatch::core {

enum class RootCause : std::uint8_t {
  valid,              ///< SCT verifies; nothing wrong
  san_reorder,        ///< SAN entries reordered between precert and final
  extension_reorder,  ///< extension order changed
  name_mismatch,      ///< different SAN/issuer names entirely
  stale_sct,          ///< SCT belongs to a different (earlier) certificate
  unknown,
};

std::string to_string(RootCause cause);

struct InvalidSctCase {
  std::string ca;
  std::string subject;
  bool sct_valid = false;
  RootCause cause = RootCause::unknown;
};

/// Compares a final certificate against the precertificate the log
/// actually signed (fetched from the log by serial) and classifies the
/// divergence.
RootCause classify_divergence(const x509::Certificate& final_cert,
                              const std::optional<x509::Certificate>& precert);

struct InvalidSctReport {
  std::vector<InvalidSctCase> cases;
  std::uint64_t certificates_checked = 0;
  std::uint64_t invalid = 0;
  /// Count per root cause name.
  std::map<std::string, std::uint64_t> by_cause;
  std::map<std::string, std::uint64_t> by_ca;
};

/// Options for InvalidSctStudy.
struct InvalidSctOptions {
  /// Correct certificates per buggy one (the paper: 16 invalid among tens
  /// of millions; we keep the ratio printable).
  std::size_t clean_per_bug = 25;
  std::string issue_date = "2018-03-20";
};

/// Issues a mix of correct and buggy certificates through the ecosystem
/// and validates every embedded SCT.
class InvalidSctStudy {
 public:
  using Options = InvalidSctOptions;

  explicit InvalidSctStudy(sim::Ecosystem& ecosystem, Options options = Options())
      : ecosystem_(&ecosystem), options_(options) {}

  [[nodiscard]] InvalidSctReport run();

  static std::string render(const InvalidSctReport& report);

 private:
  sim::Ecosystem* ecosystem_;
  Options options_;
};

}  // namespace ctwatch::core
