// §4: DNS information leakage — Table 2, the §4.2 per-suffix analysis and
// the §4.3 enumeration funnel, glued over a domain corpus.
#pragma once

#include <string>

#include "ctwatch/enumeration/census.hpp"
#include "ctwatch/enumeration/enumerator.hpp"
#include "ctwatch/sim/domains.hpp"

namespace ctwatch::core {

struct LeakageReport {
  enumeration::ExtractionStats extraction;
  std::vector<std::pair<std::string, std::uint64_t>> top_labels;  ///< Table 2
  std::map<std::string, std::string> suffix_signatures;           ///< §4.2
  enumeration::WordlistComparison subbrute;
  enumeration::WordlistComparison dnsrecon;
  enumeration::FunnelResult funnel;                               ///< §4.3
  // Footprint of the interned name corpus (census names + every funnel
  // candidate composition) after the study ran.
  std::size_t interned_bytes = 0;
  std::uint64_t interned_names = 0;
  std::size_t interned_labels = 0;
};

class LeakageStudy {
 public:
  explicit LeakageStudy(sim::DomainCorpus& corpus) : corpus_(&corpus) {}

  /// Runs census + wordlist comparison + the verification funnel.
  [[nodiscard]] LeakageReport run(const enumeration::EnumerationOptions& options =
                                      enumeration::EnumerationOptions()) const;

  static std::string render_table2(const LeakageReport& report, std::size_t top_n = 20);
  static std::string render_funnel(const LeakageReport& report);

 private:
  sim::DomainCorpus* corpus_;
};

}  // namespace ctwatch::core
