// §3: server deployment of CT — the passive view (Fig. 2, Table 1, the
// §3.2 scalars) and the active-scan view (§3.3), both built on the shared
// PassiveMonitor pipeline.
#pragma once

#include <string>

#include "ctwatch/monitor/passive_monitor.hpp"

namespace ctwatch::core {

/// Renders the §3.2 headline block: total connections, SCT share per
/// channel, channel overlaps, client signaling.
std::string render_adoption_totals(const monitor::MonitorTotals& totals);

/// Renders Fig. 2 as a text series: per day, % connections with an SCT,
/// split by delivery channel. `stride` thins the series (e.g. weekly).
std::string render_daily_series(const std::map<std::int64_t, monitor::DailyCounters>& daily,
                                int stride = 7);

/// Renders Table 1: top-n logs by observed SCTs, split cert/TLS-extension,
/// with column shares.
std::string render_top_logs(const std::map<std::string, monitor::LogUsage>& usage,
                            std::size_t top_n = 15);

/// Renders the §3.3 scan block: unique certificates, embedded-SCT share,
/// and per-log share of SCT-bearing certificates.
std::string render_scan_view(const monitor::PassiveMonitor& monitor);

/// A day whose SCT share spikes above the series baseline, with the server
/// responsible for most of that day's SCT-bearing connections — the
/// automated version of the paper's manual peak inspection (which traced
/// its Fig. 2 peaks to graph.facebook.com).
struct PeakFinding {
  std::int64_t day = 0;          ///< day index
  double sct_share = 0;          ///< that day's with-SCT share
  double baseline_share = 0;     ///< series mean
  std::string top_server;        ///< dominant SCT-conn server that day
  std::uint64_t top_count = 0;
};

/// Flags days whose SCT share exceeds mean + `sigma` standard deviations
/// and attributes each to its dominant server.
std::vector<PeakFinding> detect_peaks(const monitor::PassiveMonitor& monitor,
                                      double sigma = 3.0);
std::string render_peaks(const std::vector<PeakFinding>& peaks);

}  // namespace ctwatch::core
