// Umbrella header for ctwatch::gossip — the split-view attack scenario
// (equivocating log) and its countermeasure (STH gossip with aggregation
// points and consistency-proof challenges).
#pragma once

#include "ctwatch/gossip/equivocate.hpp"
#include "ctwatch/gossip/net.hpp"
#include "ctwatch/gossip/view.hpp"
