// ctwatch::gossip — STH exchange and split-view detection.
//
// A CT log can equivocate: maintain several internally-consistent trees
// and serve each client partition exactly one of them. Per-client
// auditing (verify the STH signature, check consistency between the
// STHs *you* saw) never fires, because every answer a single client
// receives is coherent. The countermeasure is gossip: clients and
// monitors exchange the signed STHs they observed, and any actor holding
// STHs from two different views challenges the log for a consistency
// proof between them. The log signed both heads, so it must prove them
// consistent — failure to do so is cryptographic evidence of
// misbehaviour (Dahlberg et al., "Aggregation-Based Certificate
// Transparency Gossip").
//
// This header is the challenger side: `LogView` is an actor's read
// window onto the log (the adversary controls which face it talks to),
// and `challenge_pair` turns one STH pair plus the view's answer into a
// fail-closed verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/logsvc/service.hpp"

namespace ctwatch::gossip {

/// A read-only window onto a CT log, as one client partition sees it.
/// Implementations must be callable from any thread.
class LogView {
 public:
  virtual ~LogView() = default;

  /// get-sth: the latest head this face publishes.
  virtual ct::SignedTreeHead get_sth() = 0;

  /// get-sth-consistency between two tree sizes. Returns nullopt when the
  /// face cannot serve the pair *yet* (its tree has not reached `second`)
  /// — the challenger keeps the pair pending and retries; an answered
  /// proof that fails verification is the detection signal.
  virtual std::optional<std::vector<crypto::Digest>> get_consistency(std::uint64_t first,
                                                                     std::uint64_t second) = 0;
};

/// LogView over a live LogService (the face the adversary assigned us).
class ServiceView final : public LogView {
 public:
  explicit ServiceView(logsvc::LogService& service) : service_(&service) {}

  ct::SignedTreeHead get_sth() override { return service_->get_sth(); }
  std::optional<std::vector<crypto::Digest>> get_consistency(std::uint64_t first,
                                                             std::uint64_t second) override;

  [[nodiscard]] logsvc::LogService& service() const { return *service_; }

 private:
  logsvc::LogService* service_;
};

enum class ChallengeStatus : std::uint8_t {
  consistent,  ///< the log proved the pair consistent
  pending,     ///< the face cannot serve the pair yet; retry later
  split_view,  ///< signed heads the log cannot reconcile — misbehaviour
};

struct ChallengeResult {
  ChallengeStatus status = ChallengeStatus::pending;
  /// The proof the face served (kept as evidence when it fails to
  /// verify); empty for same-size conflicts, where the two signed heads
  /// are self-evident.
  std::vector<crypto::Digest> proof;
  /// Two signed heads of the same size with different roots: the
  /// strongest evidence — no proof fetch is even needed.
  bool same_size_conflict = false;
  std::string reason;
};

/// Challenges a log face with a pair of STHs that both carry valid
/// signatures from the log. Orders the pair by tree size internally.
/// Pure apart from the view call; safe to run from any thread.
ChallengeResult challenge_pair(LogView& view, const ct::SignedTreeHead& a,
                               const ct::SignedTreeHead& b);

}  // namespace ctwatch::gossip
