// STH gossip with aggregation points (Dahlberg et al.).
//
// Actors are monitors/clients (peers: they poll the log each round) and
// aggregation points (they do not poll; they passively observe the STHs
// fetched by the peers they cover — the in-network vantage of
// aggregation-based gossip). Gossip edges are undirected: each round an
// actor pollinates up to `fanout` neighbours with every signed STH it
// knows. Any actor holding two heads it cannot reconcile challenges the
// log face *it* talks to for a consistency proof; a proof that fails to
// verify — or a same-size root conflict, which needs no proof at all —
// yields a fail-closed `SplitViewDetected` verdict carrying both signed
// heads as evidence.
//
// Everything is deterministic: one seed drives the fanout choices, the
// chaos injector (when present) drives link outages / fetch faults /
// challenge faults from its own seed, and rounds advance on simulated
// time. Chaos can only *delay* detection (pairs stay pending), never
// manufacture it: a verdict requires two valid signatures over heads
// the log cannot prove consistent.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/gossip/view.hpp"
#include "ctwatch/util/rng.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::gossip {

/// The verdict: cryptographic evidence of log misbehaviour. `sth_a` and
/// `sth_b` both carry valid signatures from the log; either they share a
/// size with different roots (`same_size`), or `proof` is the log's own
/// consistency answer for the pair and it does not verify. Verifiable by
/// anyone holding the log's public key — no trust in the detector needed.
struct SplitViewDetected {
  std::size_t actor = 0;    ///< detecting actor id
  std::uint64_t round = 0;  ///< gossip round of detection (1-based)
  std::int64_t at_unix = 0;
  ct::SignedTreeHead sth_a;
  ct::SignedTreeHead sth_b;
  std::vector<crypto::Digest> proof;  ///< failing proof; empty when same_size
  bool same_size = false;
  std::string reason;
};

struct NetConfig {
  /// Gossip targets per actor per round (Dahlberg's pollination rate).
  std::size_t fanout = 2;
  /// Drives the per-actor neighbour choices; independent of chaos.
  std::uint64_t seed = 0x60551f60551f60ULL;
  /// Optional fault seams (not owned). Points consulted, named under
  /// `chaos_prefix`:
  ///   "<prefix>.fetch"        — a peer's get-sth poll is lost this round
  ///   "<prefix>.link.<a>-<b>" — the gossip edge (a,b) drops this round's
  ///                             pollination (a < b; outage windows model
  ///                             partitions in virtual time)
  ///   "<prefix>.challenge"    — a consistency challenge is lost; the
  ///                             pair stays pending and is retried
  chaos::FaultInjector* chaos = nullptr;
  std::string chaos_prefix = "gossip";
  /// Per-actor STH pool cap (deduped by (size, root)); oldest evicted.
  std::size_t max_known = 256;
};

struct NetStats {
  std::uint64_t sths_fetched = 0;
  std::uint64_t sths_gossiped = 0;   ///< deliveries (per STH per edge)
  std::uint64_t sths_accepted = 0;   ///< novel signed heads entering a pool
  std::uint64_t forged_dropped = 0;  ///< signature-invalid heads rejected
  std::uint64_t fetch_faults = 0;
  std::uint64_t link_faults = 0;
  std::uint64_t challenge_faults = 0;
  std::uint64_t challenges_run = 0;
  std::uint64_t challenges_pending = 0;  ///< currently queued pairs (gauge)
};

class GossipNet {
 public:
  GossipNet(NetConfig config, Bytes log_public_key);

  GossipNet(const GossipNet&) = delete;
  GossipNet& operator=(const GossipNet&) = delete;

  /// A polling actor (monitor/client). `view` is the log face the
  /// adversary assigned it; must outlive the net. Returns the actor id.
  std::size_t add_peer(LogView& view);
  /// An aggregation point: never polls, observes the fetches of the
  /// peers it covers, challenges through `view`.
  std::size_t add_aggregator(LogView& view);

  /// Undirected gossip edge. Self-loops and duplicates are ignored.
  void connect(std::size_t a, std::size_t b);
  /// `aggregator` observes every STH `peer` fetches from the log.
  void cover(std::size_t aggregator, std::size_t peer);

  /// Test hook: hands `actor` a signed head out of band (e.g. an
  /// adversary-signed degenerate STH). Returns false iff the signature
  /// was invalid (the head is dropped, exactly like a forged gossip).
  bool inject(std::size_t actor, const ct::SignedTreeHead& sth, SimTime now);

  /// One gossip round: peers poll (aggregators observing), everyone
  /// pollinates `fanout` neighbours with its known heads, pending
  /// challenges run. Call on a monotonically advancing simulated clock.
  void step(SimTime now);

  [[nodiscard]] std::uint64_t rounds() const { return round_; }
  [[nodiscard]] const std::vector<SplitViewDetected>& detections() const { return detections_; }
  [[nodiscard]] bool detected() const { return !detections_.empty(); }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  /// Signed heads actor currently holds (deduped; test introspection).
  [[nodiscard]] const std::vector<ct::SignedTreeHead>& known(std::size_t actor) const {
    return actors_[actor].known;
  }

 private:
  struct Actor {
    LogView* view = nullptr;
    bool aggregator = false;
    std::vector<std::size_t> neighbors;
    std::vector<std::size_t> observers;  ///< aggregators covering this peer
    std::vector<ct::SignedTreeHead> known;
    std::vector<std::pair<ct::SignedTreeHead, ct::SignedTreeHead>> pending;
    bool verdict = false;  ///< stops challenging after its first detection
    Rng rng;               ///< fanout target choices
  };

  std::size_t add_actor(LogView& view, bool aggregator);
  /// Validates, dedupes, raises same-size conflicts, queues proof
  /// challenges. Returns false iff the signature was invalid.
  bool receive(std::size_t actor, const ct::SignedTreeHead& sth, SimTime now);
  void run_challenges(std::size_t actor, SimTime now);
  void record_detection(std::size_t actor, SimTime now, const ct::SignedTreeHead& a,
                        const ct::SignedTreeHead& b, std::vector<crypto::Digest> proof,
                        bool same_size, std::string reason);
  [[nodiscard]] std::uint64_t now_us(SimTime now) const {
    return static_cast<std::uint64_t>(now.unix_seconds()) * 1'000'000;
  }

  NetConfig config_;
  Bytes log_public_key_;
  Rng master_rng_;
  std::vector<Actor> actors_;
  std::vector<SplitViewDetected> detections_;
  NetStats stats_;
  std::uint64_t round_ = 0;
};

}  // namespace ctwatch::gossip
