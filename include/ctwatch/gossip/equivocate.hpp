// The adversary: an equivocating CT log.
//
// Built from two real `logsvc::LogService` instances configured with the
// SAME log name — the signing key derives from the name, so both faces
// sign with one identity (one log_id, one public key). Entries below the
// fork index are byte-identical on both faces; from the fork on, each
// face integrates its own history. Every face is a full, honest-looking
// log: its STHs verify, its inclusion and consistency proofs verify, its
// get-entries match its tree. A client pinned to one face can audit
// forever and see nothing wrong — which is the attack, and exactly what
// the differential parity test locks in (a single face is
// byte-indistinguishable from an honest log with that history).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/gossip/view.hpp"
#include "ctwatch/logsvc/service.hpp"

namespace ctwatch::gossip {

enum class Side : std::uint8_t { left, right };

[[nodiscard]] constexpr const char* side_name(Side side) {
  return side == Side::left ? "left" : "right";
}

struct EquivocationPlan {
  /// Shared by both faces; `name` fixes the (single) signing identity.
  logsvc::Config base;
  /// First leaf index where the two histories diverge. 0 forks from the
  /// very first entry; anything at or beyond the final size degenerates
  /// to an honest log (both faces identical).
  std::uint64_t fork_index = 0;
  /// Optional durable backing, one store per face (an equivocating
  /// operator runs two databases). Not owned.
  storage::LogStore* storage_left = nullptr;
  storage::LogStore* storage_right = nullptr;
};

class EquivocatingLog {
 public:
  explicit EquivocatingLog(EquivocationPlan plan);

  EquivocatingLog(const EquivocatingLog&) = delete;
  EquivocatingLog& operator=(const EquivocatingLog&) = delete;

  /// The deterministic payload each face integrates at `index` — shared
  /// below the fork, suffixed "/left" or "/right" from it. Exposed so
  /// the parity harness can replay one face's exact history into an
  /// honest log.
  [[nodiscard]] static ct::SignedEntry entry_at(std::uint64_t index, std::uint64_t fork_index,
                                                Side side);
  [[nodiscard]] static crypto::Digest fingerprint_at(std::uint64_t index,
                                                     std::uint64_t fork_index, Side side);

  /// Appends the next entry to BOTH faces (lockstep growth: sizes stay
  /// equal, roots diverge from the fork). Blocks until both batches
  /// seal, so each call publishes exactly one new STH per face.
  void grow(SimTime now);
  void grow(std::uint64_t n, SimTime now);

  /// Appends the next entry to one face only (asymmetric histories —
  /// the proof-challenge detection path, as opposed to the same-size
  /// conflict the lockstep growth produces).
  void grow_side(Side side, SimTime now);

  /// Signing oracle: the adversary signs any head it likes (it owns the
  /// key). Lets tests feed degenerate signed heads — e.g. size 0 with a
  /// junk root — through the real challenge path.
  [[nodiscard]] ct::SignedTreeHead sign_arbitrary_sth(std::uint64_t tree_size,
                                                      std::uint64_t timestamp_ms,
                                                      const crypto::Digest& root) const;

  [[nodiscard]] logsvc::LogService& service(Side side) {
    return side == Side::left ? *left_ : *right_;
  }
  [[nodiscard]] LogView& view(Side side) {
    return side == Side::left ? left_view_ : right_view_;
  }
  [[nodiscard]] std::uint64_t fork_index() const { return fork_index_; }
  [[nodiscard]] std::uint64_t size(Side side) const {
    return side == Side::left ? left_->tree_size() : right_->tree_size();
  }
  [[nodiscard]] Bytes public_key() const { return left_->public_key(); }
  [[nodiscard]] ct::LogId log_id() const { return left_->log_id(); }

 private:
  void append(logsvc::LogService& svc, std::uint64_t index, Side side, SimTime now);

  std::uint64_t fork_index_;
  std::unique_ptr<crypto::Signer> oracle_;  ///< same key as both faces
  std::unique_ptr<logsvc::LogService> left_;
  std::unique_ptr<logsvc::LogService> right_;
  ServiceView left_view_;
  ServiceView right_view_;
  std::uint64_t next_left_ = 0;
  std::uint64_t next_right_ = 0;
};

}  // namespace ctwatch::gossip
