// Deterministic data-parallel primitives over index ranges.
//
// The determinism contract that makes byte-identical parallel output
// possible:
//  * chunk boundaries are a pure function of (n, grain, max_chunks) —
//    never of the worker count or the scheduling. The same call chunks
//    the same way at 1 thread and at 64;
//  * chunks execute in any order on any thread, so a chunk body must only
//    touch its own slot/partial (plus internally-synchronized sinks like
//    NamePool or obs counters);
//  * partial results are combined in fixed chunk order: parallel_reduce
//    tree-merges pairwise (c0⊕c1)⊕(c2⊕c3)…, which for any associative ⊕
//    equals the serial left fold — commutativity is not required.
// When TaskPool::global() is null (1 thread) the same chunk structure
// runs inline on the caller: the serial path, no pool machinery.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "ctwatch/par/task_pool.hpp"

namespace ctwatch::par {

/// Half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Cap on chunks per parallel call: enough slack for stealing to balance
/// a skewed workload, small enough that per-chunk state stays cheap.
inline constexpr std::size_t kDefaultMaxChunks = 256;

/// The chunk decomposition of [0, n): `chunks` ranges whose sizes differ
/// by at most one, boundaries independent of thread count.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunks = 0;

  static ChunkPlan over(std::size_t n, std::size_t grain = 1,
                        std::size_t max_chunks = kDefaultMaxChunks) {
    ChunkPlan plan;
    plan.n = n;
    if (n == 0) return plan;
    if (grain == 0) grain = 1;
    if (max_chunks == 0) max_chunks = 1;
    const std::size_t desired = (n + grain - 1) / grain;
    plan.chunks = desired < max_chunks ? desired : max_chunks;
    return plan;
  }

  [[nodiscard]] IndexRange chunk(std::size_t i) const {
    const std::size_t base = n / chunks;
    const std::size_t remainder = n % chunks;
    const std::size_t begin = i * base + (i < remainder ? i : remainder);
    return {begin, begin + base + (i < remainder ? 1 : 0)};
  }
};

/// Runs fn(chunk_index, range) over the chunk decomposition of [0, n).
/// Chunks run concurrently when the global pool exists, inline otherwise;
/// either way the set of (chunk_index, range) pairs is identical.
template <typename Fn>
void parallel_for_chunks(std::size_t n, std::size_t grain, Fn&& fn,
                         std::size_t max_chunks = kDefaultMaxChunks) {
  const ChunkPlan plan = ChunkPlan::over(n, grain, max_chunks);
  if (plan.chunks == 0) return;
  TaskPool* pool = plan.chunks > 1 ? TaskPool::global() : nullptr;
  TaskGroup group(pool);
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    group.run([&fn, &plan, c] { fn(c, plan.chunk(c)); });
  }
  group.wait();
}

/// Element-wise parallel loop: fn(i) for every i in [0, n).
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_for_chunks(n, grain, [&fn](std::size_t, IndexRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) fn(i);
  });
}

/// Maps every chunk to a partial (map(chunk_index, range) -> T) and
/// combines the partials with a deterministic pairwise tree merge in
/// chunk order, finally folding `init` in from the left. For associative
/// `merge` the result equals the serial fold
///   merge(...merge(merge(init, map(c0)), map(c1))..., map(ck))
/// at every thread count.
template <typename T, typename MapFn, typename MergeFn>
T parallel_reduce(std::size_t n, std::size_t grain, T init, MapFn&& map, MergeFn&& merge,
                  std::size_t max_chunks = kDefaultMaxChunks) {
  const ChunkPlan plan = ChunkPlan::over(n, grain, max_chunks);
  if (plan.chunks == 0) return init;
  std::vector<std::optional<T>> partials(plan.chunks);
  parallel_for_chunks(
      n, grain,
      [&](std::size_t c, IndexRange range) { partials[c].emplace(map(c, range)); },
      max_chunks);
  std::vector<T> level;
  level.reserve(partials.size());
  for (auto& partial : partials) level.push_back(std::move(*partial));
  while (level.size() > 1) {
    std::vector<T> next;
    next.reserve(level.size() / 2 + 1);
    std::size_t i = 0;
    for (; i + 1 < level.size(); i += 2) {
      next.push_back(merge(std::move(level[i]), std::move(level[i + 1])));
    }
    if (i < level.size()) next.push_back(std::move(level[i]));
    level = std::move(next);
  }
  return merge(std::move(init), std::move(level.front()));
}

}  // namespace ctwatch::par
