// ShardedAccumulator — per-shard partial state, merged in shard order.
//
// The census and funnel aggregate by interned key (LabelId / NameRef).
// Instead of one global map behind a lock, state is split into a fixed
// number of shards keyed by the key's hash: each shard is owned by at
// most one task at a time, so shard-local mutation needs no lock, and the
// final collapse walks shards in index order — a deterministic merge as
// long as the per-shard content is order-independent (counts, sets).
//
// The shard count is part of the decomposition, not of the execution: it
// must be a constant of the call site (never derived from the thread
// count), because the shard a key lands in determines which partial it
// mutates. Totals are invariant under the shard count (every key lands in
// exactly one shard); the property suite locks that in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ctwatch::par {

template <typename T>
class ShardedAccumulator {
 public:
  static constexpr std::size_t kDefaultShards = 64;

  explicit ShardedAccumulator(std::size_t shards = kDefaultShards)
      : shards_(shards > 0 ? shards : 1) {}

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  T& shard(std::size_t index) { return shards_[index].value; }
  [[nodiscard]] const T& shard(std::size_t index) const { return shards_[index].value; }

  /// The shard a hash value lands in. Mixes before reducing so that
  /// low-entropy hashes (e.g. sequential LabelIds) still spread.
  [[nodiscard]] std::size_t shard_of(std::uint64_t hash) const {
    hash = (hash ^ (hash >> 30)) * 0xbf58476d1ce4e5b9ULL;
    hash = (hash ^ (hash >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((hash ^ (hash >> 31)) % shards_.size());
  }

  template <typename Key, typename Hash>
  [[nodiscard]] std::size_t shard_for(const Key& key, const Hash& hasher) const {
    return shard_of(static_cast<std::uint64_t>(hasher(key)));
  }

  /// Visits shards in index order: fn(shard_index, shard). This is the
  /// deterministic merge point.
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    for (std::size_t i = 0; i < shards_.size(); ++i) fn(i, shards_[i].value);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    for (std::size_t i = 0; i < shards_.size(); ++i) fn(i, shards_[i].value);
  }

  /// Folds every shard into `target` in shard order: merge(target, shard).
  template <typename Target, typename MergeFn>
  void collapse_into(Target& target, MergeFn&& merge) {
    for (auto& slot : shards_) merge(target, slot.value);
  }

  /// max/mean shard load in milli-units (1000 = perfectly balanced),
  /// given a per-shard size extractor; 0 when everything is empty. Feeds
  /// the par.imbalance.* gauges.
  template <typename SizeFn>
  [[nodiscard]] std::int64_t imbalance_milli(SizeFn&& size_of) const {
    std::uint64_t total = 0;
    std::uint64_t max_size = 0;
    for (const auto& slot : shards_) {
      const std::uint64_t s = size_of(slot.value);
      total += s;
      if (s > max_size) max_size = s;
    }
    if (total == 0) return 0;
    const double mean = static_cast<double>(total) / static_cast<double>(shards_.size());
    return static_cast<std::int64_t>(static_cast<double>(max_size) * 1000.0 / mean);
  }

 private:
  // Padded so neighbouring shards do not share a cache line while tasks
  // mutate them concurrently.
  struct alignas(64) Padded {
    T value{};
  };
  std::vector<Padded> shards_;
};

}  // namespace ctwatch::par
