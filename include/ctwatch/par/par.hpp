// Umbrella header for ctwatch::par: work-stealing TaskPool + TaskGroup,
// deterministic parallel_for / parallel_reduce, ShardedAccumulator.
#pragma once

#include "ctwatch/par/parallel.hpp"   // IWYU pragma: export
#include "ctwatch/par/sharded.hpp"    // IWYU pragma: export
#include "ctwatch/par/task_pool.hpp"  // IWYU pragma: export
