// ctwatch::par — work-stealing task pool for the analysis pipeline.
//
// The paper's workloads are embarrassingly parallel (§4's funnel alone
// composes hundreds of millions of candidates), but the repo's contract is
// stronger than "fast": every consumer must produce byte-identical output
// at any thread count, including 1. The pool therefore only provides
// *execution*; all determinism lives in the callers (see parallel.hpp):
// work is pre-split into chunks whose boundaries never depend on the
// worker count, and partial results are merged in fixed chunk order.
//
// Execution model:
//  * one deque per worker; the owner pushes/pops at the back (LIFO,
//    cache-warm), thieves take half of a victim's queue from the front
//    (FIFO — the oldest, coarsest work migrates first);
//  * idle workers park on a condition variable (no spinning between
//    parallel sections; idle time is metered into par.idle_ns);
//  * TaskGroup is the fork/join primitive: the caller that wait()s helps
//    execute queued tasks, so nested parallel sections cannot deadlock;
//    the first exception thrown by any task is rethrown from wait().
//
// Thread-count policy: the process-wide pool is sized by the
// CTWATCH_PAR_THREADS environment variable, else the compile-time default
// (-DCTWATCH_PAR_THREADS=N), else the hardware. At 1 thread global()
// returns nullptr and every par primitive runs its chunks inline on the
// caller — the serial path, with no pool, no locks and no worker handoff.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ctwatch::par {

using Task = std::function<void()>;

namespace detail {

/// One worker's queue. Mutex-guarded: the owner end is uncontended in
/// steady state and steal traffic only appears when the pool is
/// imbalanced, which is exactly when a cache-friendly lock-free deque
/// would not help either.
class WorkDeque {
 public:
  void push(Task task) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }

  /// Owner end: newest task first.
  bool pop(Task& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    out = std::move(tasks_.back());
    tasks_.pop_back();
    return true;
  }

  /// Thief end: oldest task first (used by TaskGroup::wait helpers).
  bool take_front(Task& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  /// Takes ceil(size/2) tasks from the front into `out` (appended in
  /// queue order). Returns how many were taken.
  std::size_t steal_half(std::deque<Task>& out) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t take = (tasks_.size() + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(tasks_.front()));
      tasks_.pop_front();
    }
    return take;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace detail

class TaskPool {
 public:
  /// Spawns `workers` worker threads (>= 1).
  explicit TaskPool(unsigned workers);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task (round-robin over the worker deques) and wakes a
  /// parked worker if any.
  void submit(Task task);

  /// Runs one queued task on the calling thread if one can be found.
  /// Returns false when every deque looked empty — the caller should
  /// then briefly block rather than spin.
  bool help_one();

  /// Tasks queued but not yet taken by any thread.
  [[nodiscard]] std::size_t queued() const {
    return queued_.load(std::memory_order_relaxed);
  }

  // ---- process-wide pool ----

  /// Thread count from the environment (CTWATCH_PAR_THREADS), else the
  /// compile-time default (-DCTWATCH_PAR_THREADS), else the hardware.
  static unsigned configured_threads();
  /// The shared pool, or nullptr when the effective thread count is 1
  /// (the serial path: par primitives then run inline on the caller).
  static TaskPool* global();
  /// Re-sizes the shared pool (0 = re-resolve from env/hardware). Callers
  /// must not hold work in flight; intended for tests and benches that
  /// compare thread counts in one process.
  static void set_global_threads(unsigned threads);
  /// The thread count global() represents (>= 1; 1 means serial).
  static unsigned effective_threads();

 private:
  struct Worker {
    detail::WorkDeque deque;
    std::thread thread;
  };

  void worker_loop(unsigned index);
  bool find_task(unsigned self, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_{0};     // round-robin submit cursor
  std::atomic<std::size_t> queued_{0};   // tasks sitting in deques
  std::atomic<unsigned> parked_{0};
  std::atomic<bool> stop_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

/// Fork/join scope over a pool. With a null pool every run() executes
/// inline (the serial path) with the same exception semantics: the first
/// exception is captured and rethrown from wait(), later tasks still run.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  template <typename Fn>
  void run(Fn&& fn) {
    if (pool_ == nullptr) {
      try {
        fn();
      } catch (...) {
        record_error();
      }
      return;
    }
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_->submit([this, fn = std::forward<Fn>(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        record_error();
      }
      finish_one();
    });
  }

  /// Blocks until every task submitted through this group finished. The
  /// caller helps execute queued tasks (its own or other groups'), so a
  /// task may itself create a group and wait on it. Rethrows the first
  /// captured exception; the group is reusable afterwards.
  void wait();

 private:
  void record_error() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  void finish_one() {
    // The decrement and the notify must form one critical section: wait()
    // makes its return decision under mu_, so it can never observe zero
    // while a worker sits between the decrement and the notify — the
    // group is a stack local in the fork/join callers, and returning in
    // that window would destroy the mutex under the worker's feet.
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cv_.notify_all();
    }
  }

  TaskPool* pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

}  // namespace ctwatch::par
