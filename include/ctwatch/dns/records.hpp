// DNS resource records.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/net/ip.hpp"

namespace ctwatch::dns {

enum class RrType : std::uint8_t { A, AAAA, CNAME, MX, NS, SOA, TXT };

std::string to_string(RrType type);

/// Record payload. CNAME/NS carry a target name; MX a (pref, target) pair is
/// simplified to the target name; SOA/TXT carry opaque text.
using RData = std::variant<net::IPv4, net::IPv6, DnsName, std::string>;

struct ResourceRecord {
  DnsName name;
  RrType type = RrType::A;
  std::uint32_t ttl = 300;
  RData data;

  [[nodiscard]] net::IPv4 a() const { return std::get<net::IPv4>(data); }
  [[nodiscard]] net::IPv6 aaaa() const { return std::get<net::IPv6>(data); }
  [[nodiscard]] const DnsName& target() const { return std::get<DnsName>(data); }
  [[nodiscard]] const std::string& text() const { return std::get<std::string>(data); }
};

}  // namespace ctwatch::dns
