// Authoritative DNS zones.
//
// Beyond plain record storage, zones model the two behaviours §4.3's
// verification methodology must contend with:
//   * wildcard records ("*.example.com"), and
//   * catch-all zones that answer *every* name with a default A record —
//     exactly what the paper's pseudo-random control probes are designed to
//     detect and exclude.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "ctwatch/dns/records.hpp"

namespace ctwatch::dns {

class Zone {
 public:
  explicit Zone(DnsName origin) : origin_(std::move(origin)) {}

  [[nodiscard]] const DnsName& origin() const { return origin_; }

  /// Enables catch-all behaviour: any in-zone A query gets `addr`.
  void set_default_a(net::IPv4 addr) { default_a_ = addr; }
  [[nodiscard]] bool has_default_a() const { return default_a_.has_value(); }

  /// Adds a record; its name must be the origin or below it. A leftmost "*"
  /// label creates a wildcard record.
  void add(ResourceRecord record);

  /// True if the name is at/below this zone's origin.
  [[nodiscard]] bool in_zone(const DnsName& name) const { return name.is_subdomain_of(origin_); }

  /// Authoritative lookup: exact match, then wildcard synthesis, then the
  /// default-A catch-all. Returns matching records of the requested type,
  /// or the name's CNAME record when one exists (regardless of qtype,
  /// mirroring real resolution). Empty when the name does not exist.
  [[nodiscard]] std::vector<ResourceRecord> lookup(const DnsName& name, RrType type) const;

  [[nodiscard]] std::size_t record_count() const;

 private:
  DnsName origin_;
  std::optional<net::IPv4> default_a_;
  // Keyed by textual FQDN; wildcard entries keyed with their "*." form.
  std::map<std::string, std::vector<ResourceRecord>> records_;
};

}  // namespace ctwatch::dns
