// DNS names: parsing, validation (RFC 1035 + RFC 1123 LDH rule), and label
// access. The §4 leakage study lives and dies on careful name handling —
// the paper explicitly filters certificate names that are not valid FQDNs
// before counting subdomain labels.
//
// Two storage forms share one validation core:
//  * DnsName — labels as owned strings; convenient, used off the hot path;
//  * namepool::NameRef via parse_into() — arena-interned labels for the
//    funnel-scale §4/§5 pipelines (no per-name heap allocations).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ctwatch/namepool/namepool.hpp"

namespace ctwatch::dns {

/// A validated, lowercase DNS name. Labels are stored in wire order
/// (leftmost label first); the root is the empty name.
/// Name-parsing options.
struct ParseOptions {
  bool allow_wildcard = false;    ///< leftmost label may be "*" (cert SANs)
  bool allow_underscore = false;  ///< permit '_' (e.g. service labels)
};

class DnsName {
 public:
  DnsName() = default;

  using Options = ParseOptions;

  /// Parses and validates; returns std::nullopt when invalid.
  ///
  /// Rules enforced (mirroring the paper's FQDN filtering):
  ///  * whole name <= 253 characters, at least two labels,
  ///  * labels 1..63 chars from [a-z0-9-] (plus options), case-folded,
  ///  * labels must not start or end with '-',
  ///  * the TLD must not be all-numeric (rejects bare IPv4 strings),
  ///  * a single trailing dot is accepted and stripped.
  static std::optional<DnsName> parse(std::string_view text, ParseOptions options = ParseOptions());

  /// Like parse() but throws std::invalid_argument.
  static DnsName parse_or_throw(std::string_view text, ParseOptions options = ParseOptions());

  /// Validates exactly like parse(), but interns the labels into `pool`
  /// and returns the canonical ref — no per-name heap allocation. The
  /// accepted/rejected set and the resulting label sequence are identical
  /// to parse()'s.
  static std::optional<namepool::NameRef> parse_into(namepool::NamePool& pool,
                                                     std::string_view text,
                                                     ParseOptions options = ParseOptions());

  /// Rebuilds the owned-string form from an interned ref (no validation:
  /// refs only hold labels that already passed it).
  static DnsName materialize(const namepool::NamePool& pool, namepool::NameRef ref);

  /// Interns this name's labels into `pool` (canonicalizing ref).
  [[nodiscard]] namepool::NameRef intern_into(namepool::NamePool& pool) const;

  [[nodiscard]] const std::vector<std::string>& labels() const { return labels_; }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  /// Textual form, no trailing dot.
  [[nodiscard]] std::string to_string() const;

  /// The leftmost label, e.g. "www" in www.example.co.uk. The root (empty)
  /// name has no labels; it yields an empty view, never undefined behavior.
  [[nodiscard]] std::string_view first_label() const {
    return labels_.empty() ? std::string_view{} : std::string_view{labels_.front()};
  }

  /// Drops the leftmost `n` labels (n <= label_count()).
  [[nodiscard]] DnsName parent(std::size_t n = 1) const;

  /// True if this name equals `other` or is a subdomain of it.
  [[nodiscard]] bool is_subdomain_of(const DnsName& other) const;

  /// Prepends a label (label must itself be valid); returns the new name.
  [[nodiscard]] DnsName with_prefix_label(std::string_view label) const;

  friend bool operator==(const DnsName&, const DnsName&) = default;
  friend auto operator<=>(const DnsName&, const DnsName&) = default;

 private:
  explicit DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {}
  std::vector<std::string> labels_;
};

/// Validates a single label under the default rules.
bool valid_label(std::string_view label, bool allow_underscore = false);

}  // namespace ctwatch::dns
