// Authoritative servers, the query log, and a recursive resolver.
//
// The honeypot's central observable is the query log of its *own*
// authoritative server ("to closely monitor lookup activities, we control
// the authoritative name server for these DNS domain names"). Every query
// carries attribution metadata: time, resolver address/AS, and optionally
// an EDNS Client Subnet (RFC 7871) revealing the stub network behind a
// public resolver — the paper uses ECS to unmask clients behind Google DNS.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/dns/zone.hpp"
#include "ctwatch/net/autonomous_system.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::dns {

struct DnsQuestion {
  DnsName qname;
  RrType qtype = RrType::A;
};

/// Who asked, from where, and with what ECS attachment.
struct QueryContext {
  SimTime time;
  net::IPv4 resolver_addr;
  net::Asn resolver_asn = 0;
  std::string resolver_label;              ///< e.g. "google-public-dns"
  std::optional<net::Prefix4> client_subnet;  ///< EDNS Client Subnet, /24
};

struct QueryLogEntry {
  DnsQuestion question;
  QueryContext context;
  bool answered = false;
};

/// What the wire did to one authoritative query. `timed_out` means the
/// packet (or its reply) never arrived — the server logs nothing, because
/// from its vantage point nothing happened. `servfail` is a failure the
/// server itself produced, so the query *is* logged (unanswered).
enum class ServerStatus : std::uint8_t { ok, timed_out, servfail };

/// An authoritative server over a set of zones, with a full query log.
/// Zone lookup is indexed by origin (ancestor walk), so serving tens of
/// thousands of zones stays O(labels) per query.
class AuthoritativeServer {
 public:
  AuthoritativeServer() = default;
  // Movable for setup-time composition only (the log mutex is not moved,
  // the target gets a fresh one); never move a server with queries in
  // flight.
  AuthoritativeServer(AuthoritativeServer&& other) noexcept
      : zones_(std::move(other.zones_)),
        log_(std::move(other.log_)),
        logging_(other.logging_),
        chaos_(other.chaos_),
        chaos_point_(std::move(other.chaos_point_)) {}
  AuthoritativeServer& operator=(AuthoritativeServer&& other) noexcept {
    zones_ = std::move(other.zones_);
    log_ = std::move(other.log_);
    logging_ = other.logging_;
    chaos_ = other.chaos_;
    chaos_point_ = std::move(other.chaos_point_);
    return *this;
  }

  /// Adds a zone; overlapping origins resolve to the longest match.
  /// Re-adding an origin replaces the zone.
  Zone& add_zone(DnsName origin);

  [[nodiscard]] Zone* find_zone(const DnsName& name);
  [[nodiscard]] const Zone* find_zone(const DnsName& name) const;
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

  /// Answers a query and appends it to the log (when logging is enabled).
  std::vector<ResourceRecord> query(const DnsQuestion& question, const QueryContext& context);

  /// As above, but reports chaos-injected faults through `status`. With no
  /// injector attached, `status` is always `ok`.
  std::vector<ResourceRecord> query(const DnsQuestion& question, const QueryContext& context,
                                    ServerStatus& status);

  /// Attaches a fault injector; faults on `point` turn queries into
  /// timeouts or SERVFAILs. Pass nullptr to detach.
  void set_chaos(chaos::FaultInjector* injector, std::string point = "dns.auth") {
    chaos_ = injector;
    chaos_point_ = std::move(point);
  }

  /// Query logging costs memory; bulk-resolution servers turn it off. The
  /// honeypot's own server keeps it on — it is the §6 observable.
  /// Call before queries start, not concurrently with them.
  void set_logging(bool enabled) { logging_ = enabled; }
  /// The log itself is append-safe under concurrent queries (the parallel
  /// funnel resolves from many chunks at once; entries land in completion
  /// order, so a parallel run's log *order* is interleaving-dependent —
  /// order-sensitive consumers must drive the server serially). The
  /// returned reference is unguarded: read it only after in-flight
  /// queries have drained.
  [[nodiscard]] const std::vector<QueryLogEntry>& log() const { return log_; }
  /// Releases the log's memory, not just its size — long honeypot runs
  /// clear between observation windows and must actually get bytes back.
  void clear_log() {
    std::lock_guard<std::mutex> lock(log_mu_);
    std::vector<QueryLogEntry>().swap(log_);
  }
  /// Approximate heap footprint of the query log (capacity, not size —
  /// what the allocator is actually holding for it).
  [[nodiscard]] std::size_t log_bytes_approx() const {
    std::lock_guard<std::mutex> lock(log_mu_);
    return log_.capacity() * sizeof(QueryLogEntry);
  }

 private:
  std::map<std::string, std::unique_ptr<Zone>> zones_;  // keyed by origin text
  mutable std::mutex log_mu_;
  std::vector<QueryLogEntry> log_;
  bool logging_ = true;
  chaos::FaultInjector* chaos_ = nullptr;
  std::string chaos_point_;
};

/// The set of authoritative servers making up the simulated DNS.
class DnsUniverse {
 public:
  /// Registers a server; the universe does not own it.
  void add_server(AuthoritativeServer& server) { servers_.push_back(&server); }

  /// The server authoritative for the name (longest zone-origin match).
  [[nodiscard]] AuthoritativeServer* find_authoritative(const DnsName& name) const;

 private:
  std::vector<AuthoritativeServer*> servers_;
};

enum class ResolveStatus : std::uint8_t {
  ok,               ///< answers present
  nxdomain,         ///< no such name anywhere
  no_data,          ///< name exists but not for this type
  chain_too_long,   ///< CNAME indirection exceeded the hop limit
  timed_out,        ///< a query in the chain was lost (chaos); retryable
  servfail,         ///< a server in the chain failed (chaos); retryable
};

/// A status the caller may retry — the answer is unknown, not negative.
[[nodiscard]] constexpr bool is_lossy(ResolveStatus status) {
  return status == ResolveStatus::timed_out || status == ResolveStatus::servfail;
}

struct ResolveResult {
  ResolveStatus status = ResolveStatus::nxdomain;
  std::vector<ResourceRecord> answers;  ///< final answers (qtype records)
  int cname_hops = 0;

  [[nodiscard]] std::optional<net::IPv4> first_a() const;
};

/// A recursive resolver identity (e.g. Google Public DNS, a hoster's
/// resolver). Resolution follows CNAME chains up to a hop limit — the
/// paper follows "CNAME indirection up to 10 times".
class RecursiveResolver {
 public:
  struct Identity {
    net::IPv4 address;
    net::Asn asn = 0;
    std::string label;
    bool sends_ecs = false;  ///< attaches the stub client's /24 (RFC 7871)
  };

  RecursiveResolver(const DnsUniverse& universe, Identity identity)
      : universe_(&universe), identity_(std::move(identity)) {}

  [[nodiscard]] const Identity& identity() const { return identity_; }

  /// Attaches a fault injector to the resolver's own client path (the
  /// stub → resolver leg): faults on `point` lose or fail the whole
  /// resolution before any authoritative server is asked. Faults on the
  /// resolver → authoritative leg come from the *servers'* injectors.
  void set_chaos(chaos::FaultInjector* injector, std::string point = "dns.resolver") {
    chaos_ = injector;
    chaos_point_ = std::move(point);
  }

  /// Resolves on behalf of a stub client. When the resolver `sends_ecs`,
  /// the client's /24 is attached to upstream queries. Under chaos the
  /// result may be `timed_out` or `servfail` — unknown, not negative.
  ResolveResult resolve(const DnsName& qname, RrType qtype, SimTime when,
                        std::optional<net::IPv4> stub_client = std::nullopt,
                        int max_cname_hops = 10) const;

 private:
  const DnsUniverse* universe_;
  Identity identity_;
  chaos::FaultInjector* chaos_ = nullptr;
  std::string chaos_point_;
};

}  // namespace ctwatch::dns
