// Public Suffix List engine.
//
// The paper defines "base domain" (registrable domain) as the domain
// directly under a public suffix per Mozilla's PSL, and everything in §4/§5
// is keyed on that split: subdomain labels are the labels *below* the
// registrable domain. This implements the PSL matching algorithm — normal
// rules, wildcard rules ("*.ck") and exception rules ("!www.ck") — over a
// bundled snapshot, with the ability to add rules at runtime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ctwatch/dns/name.hpp"

namespace ctwatch::dns {

/// Result of splitting a name at its public suffix.
struct NameSplit {
  std::string public_suffix;            ///< e.g. "co.uk"
  std::string registrable_domain;       ///< e.g. "example.co.uk"
  std::vector<std::string> subdomain_labels;  ///< e.g. {"www","dev"} for www.dev.example.co.uk

  /// The subdomain part joined with dots ("" when none).
  [[nodiscard]] std::string subdomain() const;
};

/// Pooled split: the same decomposition, but every part stays interned.
/// The leading subdomain label (what Table 2 counts) is
/// pool.ids(name)[0] whenever subdomain_label_count > 0.
struct RefSplit {
  namepool::NameRef public_suffix;
  namepool::NameRef registrable_domain;
  std::uint32_t subdomain_label_count = 0;  ///< labels below the registrable domain
};

class PublicSuffixList {
 public:
  /// Empty list: every name's suffix is its TLD (the PSL "prevailing rule"
  /// is "*", i.e. match one label).
  PublicSuffixList() = default;
  // The compiled-rule cache (mutex + pool binding) never travels with the
  // list: copies and moved-from lists start with a fresh empty cache and
  // recompile lazily.
  PublicSuffixList(const PublicSuffixList& other) : rules_(other.rules_) {}
  PublicSuffixList& operator=(const PublicSuffixList& other) {
    if (this != &other) {
      rules_ = other.rules_;
      compiled_ = std::make_unique<CompiledCache>();
    }
    return *this;
  }
  PublicSuffixList(PublicSuffixList&& other)
      : rules_(std::move(other.rules_)), compiled_(std::move(other.compiled_)) {
    other.compiled_ = std::make_unique<CompiledCache>();
  }
  PublicSuffixList& operator=(PublicSuffixList&& other) {
    if (this != &other) {
      rules_ = std::move(other.rules_);
      compiled_ = std::move(other.compiled_);
      other.compiled_ = std::make_unique<CompiledCache>();
    }
    return *this;
  }

  /// The bundled snapshot with the suffixes the experiments exercise plus
  /// common ICANN suffixes. Shaped like (a subset of) the real PSL.
  static PublicSuffixList bundled();

  /// Adds a rule in PSL syntax: "co.uk", "*.ck", "!www.ck".
  /// Throws std::invalid_argument on malformed rules.
  void add_rule(const std::string& rule);
  /// Parses newline-separated PSL text (comments "//" and blanks skipped).
  void add_rules_text(const std::string& text);

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Longest-matching public suffix for the name, per the PSL algorithm.
  /// A name that *is* a public suffix (or is shorter) has no registrable
  /// domain; those return std::nullopt from split().
  [[nodiscard]] std::string public_suffix(const DnsName& name) const;

  /// Splits into suffix / registrable domain / subdomain labels.
  [[nodiscard]] std::optional<NameSplit> split(const DnsName& name) const;

  /// Convenience over a textual name; invalid names yield std::nullopt.
  [[nodiscard]] std::optional<NameSplit> split(const std::string& name) const;

  /// Splits a pooled name. Suffix and registrable domain are interned into
  /// `pool` (usually pure table hits); no label text is copied. Applies the
  /// same rules as split(), so the two decompositions always agree.
  [[nodiscard]] std::optional<RefSplit> split(namepool::NamePool& pool,
                                              namepool::NameRef name) const;

 private:
  enum class RuleKind { normal, wildcard, exception };
  struct Rule {
    RuleKind kind;
    std::vector<std::string> labels;  // reversed: TLD first
  };

  /// Number of labels the matched suffix spans (>= 1 by the prevailing rule).
  [[nodiscard]] std::size_t suffix_label_count(std::span<const std::string_view> labels) const;
  [[nodiscard]] std::size_t suffix_label_count(const std::vector<std::string>& labels) const;
  /// Same decision over interned ids — what split(pool, ref) runs on. The
  /// rules are lazily compiled to LabelId paths against `pool`'s label
  /// table, so matching is integer hashing with no string in sight.
  [[nodiscard]] std::size_t suffix_label_count_ids(namepool::NamePool& pool,
                                                   std::span<const namepool::LabelId> ids) const;

  // Keyed by reversed label path joined with '.'. The transparent
  // comparator lets the hot matching loop probe with string_views built in
  // a reusable buffer instead of allocating a key per lookup.
  std::map<std::string, Rule, std::less<>> rules_;

  /// One rule path compiled to interned ids (reversed, TLD first); the
  /// three kinds are merged per path.
  struct CompiledRule {
    std::vector<namepool::LabelId> path;
    bool normal = false;
    bool wildcard = false;
    bool exception = false;
  };
  // Compiled-rule cache for suffix_label_count_ids, keyed by the running
  // hash of the reversed path. Bound to one pool at a time (recompiled on
  // pool change or rule addition); all fields guarded by mu. Heap-held so
  // the list itself stays copyable and movable.
  struct CompiledCache {
    std::mutex mu;
    // Keyed by NamePool::generation(), never by address: a fresh pool can
    // reuse a destroyed pool's address, and rule ids compiled against the
    // old pool would silently mis-match every multi-label suffix.
    std::uint64_t pool_generation = 0;  // 0 = never compiled
    std::size_t rule_count = 0;
    std::size_t max_depth = 0;
    std::unordered_map<std::uint64_t, std::vector<CompiledRule>> rules;
  };
  mutable std::unique_ptr<CompiledCache> compiled_ = std::make_unique<CompiledCache>();
};

}  // namespace ctwatch::dns
