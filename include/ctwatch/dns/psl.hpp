// Public Suffix List engine.
//
// The paper defines "base domain" (registrable domain) as the domain
// directly under a public suffix per Mozilla's PSL, and everything in §4/§5
// is keyed on that split: subdomain labels are the labels *below* the
// registrable domain. This implements the PSL matching algorithm — normal
// rules, wildcard rules ("*.ck") and exception rules ("!www.ck") — over a
// bundled snapshot, with the ability to add rules at runtime.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/dns/name.hpp"

namespace ctwatch::dns {

/// Result of splitting a name at its public suffix.
struct NameSplit {
  std::string public_suffix;            ///< e.g. "co.uk"
  std::string registrable_domain;       ///< e.g. "example.co.uk"
  std::vector<std::string> subdomain_labels;  ///< e.g. {"www","dev"} for www.dev.example.co.uk

  /// The subdomain part joined with dots ("" when none).
  [[nodiscard]] std::string subdomain() const;
};

class PublicSuffixList {
 public:
  /// Empty list: every name's suffix is its TLD (the PSL "prevailing rule"
  /// is "*", i.e. match one label).
  PublicSuffixList() = default;

  /// The bundled snapshot with the suffixes the experiments exercise plus
  /// common ICANN suffixes. Shaped like (a subset of) the real PSL.
  static PublicSuffixList bundled();

  /// Adds a rule in PSL syntax: "co.uk", "*.ck", "!www.ck".
  /// Throws std::invalid_argument on malformed rules.
  void add_rule(const std::string& rule);
  /// Parses newline-separated PSL text (comments "//" and blanks skipped).
  void add_rules_text(const std::string& text);

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Longest-matching public suffix for the name, per the PSL algorithm.
  /// A name that *is* a public suffix (or is shorter) has no registrable
  /// domain; those return std::nullopt from split().
  [[nodiscard]] std::string public_suffix(const DnsName& name) const;

  /// Splits into suffix / registrable domain / subdomain labels.
  [[nodiscard]] std::optional<NameSplit> split(const DnsName& name) const;

  /// Convenience over a textual name; invalid names yield std::nullopt.
  [[nodiscard]] std::optional<NameSplit> split(const std::string& name) const;

 private:
  enum class RuleKind { normal, wildcard, exception };
  struct Rule {
    RuleKind kind;
    std::vector<std::string> labels;  // reversed: TLD first
  };

  /// Number of labels the matched suffix spans (>= 1 by the prevailing rule).
  [[nodiscard]] std::size_t suffix_label_count(const std::vector<std::string>& labels) const;

  // Keyed by reversed label path joined with '.'; simple and fast enough.
  std::map<std::string, Rule> rules_;
};

}  // namespace ctwatch::dns
