// Metrics snapshot helpers — the machine-readable end of the registry.
//
// Shared by the bench binaries and the integration tests: resolve where a
// snapshot should go (CTWATCH_METRICS_JSON, or a name derived from
// argv[0]) and write the full registry as one JSON object. Works in both
// obs builds: with CTWATCH_OBS_DISABLED the stub registry still renders
// a valid (empty) JSON document.
#pragma once

#include <string>

namespace ctwatch::obs {

/// Where dump_metrics_snapshot callers write by default: the
/// CTWATCH_METRICS_JSON environment variable when set and non-empty,
/// otherwise "<basename of argv0>.metrics.json" in the working directory.
std::string metrics_snapshot_path(const char* argv0);

/// Pre-registers the headline pipeline metrics (stable key set), then
/// writes the registry's JSON rendering to `path`, newline-terminated.
/// Returns false (with a note on stderr) when the file cannot be opened.
bool dump_metrics_snapshot(const std::string& path);

}  // namespace ctwatch::obs
