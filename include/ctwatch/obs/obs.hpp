// ctwatch::obs — umbrella header.
//
// Observability for the measurement pipeline itself: a metrics registry
// (counters / gauges / fixed-bucket and log-linear histograms), causal
// tracing spans with chrome://tracing export (cross-thread hand-offs as
// flow events), an always-on flight recorder, a structured logger, and a
// live HTTP exposition endpoint. Sits below util in the layering — it
// depends on nothing else in ctwatch, so every module may instrument
// itself freely.
//
// Environment knobs (all optional; silence is the default):
//   CTWATCH_LOG=trace|debug|info|warn|error   enable the logger
//   CTWATCH_TRACE=1                           enable span collection
//   CTWATCH_METRICS_JSON=path                 bench metrics snapshot path
//
// Define CTWATCH_OBS_DISABLED (CMake: -DCTWATCH_OBS_DISABLED=ON) to
// compile the whole subsystem down to no-ops.
#pragma once

#include "ctwatch/obs/expo.hpp"
#include "ctwatch/obs/flight.hpp"
#include "ctwatch/obs/histogram.hpp"
#include "ctwatch/obs/log.hpp"
#include "ctwatch/obs/metrics.hpp"
#include "ctwatch/obs/snapshot.hpp"
#include "ctwatch/obs/trace.hpp"

namespace ctwatch::obs {

/// Registers the pipeline's headline metrics (ct.log.*, sim.timeline.*,
/// monitor.*, dns.resolver.*, enum.funnel.*) so that a snapshot taken
/// before the corresponding code path ran still carries them as zeros —
/// the BENCH_*.json trajectory wants a stable key set.
void preregister_pipeline_metrics();

}  // namespace ctwatch::obs
