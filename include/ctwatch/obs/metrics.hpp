// ctwatch::obs — metrics registry.
//
// Monotonic counters, gauges, and fixed-bucket histograms with quantile
// readout, held in a process-global registry. Handles are pre-registered
// once (name lookup under a mutex) and then shared; after that a hot-path
// event costs one relaxed atomic RMW. The registry renders as a human
// table and as JSON — the machine-readable source of truth the bench
// binaries snapshot next to their artifact output.
//
// Defining CTWATCH_OBS_DISABLED compiles the whole subsystem down to
// empty inline stubs with the identical API: call sites need no #ifdefs
// and the optimizer erases them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace ctwatch::obs {

/// Monotonically increasing event count. Thread-safe; increments are
/// relaxed — totals are exact, ordering against other metrics is not.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (current simulated day, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges plus an
/// implicit +inf overflow bucket. Observation is one bucket search plus
/// three relaxed atomics; quantiles are reconstructed from bucket counts
/// with linear interpolation inside the hit bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  /// q in [0,1]; returns the interpolated value, or 0 when empty. Mass in
  /// the overflow bucket reports the largest finite bound.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;                       // sorted upper edges
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` edges starting at `start`, each `factor` times the previous —
/// the usual latency-histogram layout.
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

/// Times a scope and records microseconds into a histogram. Compiles to
/// nothing when the subsystem is disabled (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Name -> metric. Lookup is mutexed; returned references live for the
/// process, so modules resolve their handles once in a local static.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram ignores `bounds`. An empty
  /// `bounds` gets the default microsecond latency layout.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// Human-readable table, one metric per line, sorted by name.
  [[nodiscard]] std::string render_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// p50,p90,p99}}} with names sorted.
  [[nodiscard]] std::string render_json() const;
  /// Zeroes every metric; handles stay valid. Intended for tests.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED — same API, empty inline bodies.

namespace ctwatch::obs {

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  [[nodiscard]] std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  void observe(double) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double mean() const { return 0.0; }
  [[nodiscard]] double quantile(double) const { return 0.0; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const { return {}; }
  void reset() {}
};

inline std::vector<double> exponential_bounds(double, double, std::size_t) { return {}; }

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
};

class Registry {
 public:
  static Registry& global() {
    static Registry registry;
    return registry;
  }
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<double> = {}) { return histogram_; }
  [[nodiscard]] std::string render_text() const { return ""; }
  [[nodiscard]] std::string render_json() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
